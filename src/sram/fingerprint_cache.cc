#include "sram/fingerprint_cache.hh"

#include <cstdlib>
#include <list>
#include <mutex>
#include <unordered_map>

#include "sim/rng.hh"
#include "telemetry/counters.hh"

namespace voltboot
{

namespace
{

/**
 * Default byte budget for cached planes: holds roughly a dozen
 * bcm2711-class dies — comfortably the reuse window of a sweep grid,
 * where the same seed recurs once per slower grid axis value — while
 * bounding memory on seed-heavy campaigns.
 */
constexpr size_t kDefaultCacheBytes = size_t{512} << 20;

/** VOLTBOOT_FINGERPRINT_CACHE_MB, or the default on unset/garbage. */
size_t
initialCapacityBytes()
{
    const char *env = std::getenv("VOLTBOOT_FINGERPRINT_CACHE_MB");
    if (!env || !*env)
        return kDefaultCacheBytes;
    char *end = nullptr;
    const unsigned long long mb = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0')
        return kDefaultCacheBytes;
    return static_cast<size_t>(mb) << 20;
}

struct KeyHash
{
    size_t
    operator()(const FingerprintKey &k) const
    {
        uint64_t h = hashCombine(k.chip_seed, k.array_id);
        h = hashCombine(h, k.size_bytes);
        auto mix = [&](double d) {
            uint64_t bits;
            static_assert(sizeof(bits) == sizeof(d));
            __builtin_memcpy(&bits, &d, sizeof(bits));
            h = hashCombine(h, bits);
        };
        mix(k.metastable_fraction);
        mix(k.metastable_bias_min);
        mix(k.metastable_bias_max);
        return static_cast<size_t>(h);
    }
};

struct Cache
{
    std::mutex mutex;
    /** Most-recently-used at the front. */
    std::list<std::pair<FingerprintKey,
                        std::shared_ptr<const FingerprintPlanes>>>
        lru;
    std::unordered_map<FingerprintKey, decltype(lru)::iterator, KeyHash>
        index;
    size_t bytes = 0;
    size_t capacity = initialCapacityBytes();
    FingerprintCacheStats stats;
};

Cache &
cache()
{
    static Cache c;
    return c;
}

void
evictOverBudgetLocked(Cache &c)
{
    while (c.bytes > c.capacity && !c.lru.empty()) {
        auto &victim = c.lru.back();
        c.bytes -= victim.second->footprint();
        c.index.erase(victim.first);
        c.lru.pop_back();
        ++c.stats.evictions;
        telemetry::add(telemetry::Counter::FingerprintEvictions);
    }
}

} // namespace

std::shared_ptr<const FingerprintPlanes>
acquireFingerprintPlanes(const FingerprintKey &key,
                         const std::function<FingerprintPlanes()> &build)
{
    Cache &c = cache();
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        if (auto it = c.index.find(key); it != c.index.end()) {
            ++c.stats.hits;
            telemetry::add(telemetry::Counter::FingerprintHits);
            c.lru.splice(c.lru.begin(), c.lru, it->second);
            return it->second->second;
        }
        ++c.stats.misses;
        telemetry::add(telemetry::Counter::FingerprintMisses);
    }
    // Build outside the lock: derivations are deterministic, so two
    // threads racing on the same key waste work but cannot disagree.
    auto planes = std::make_shared<const FingerprintPlanes>(build());
    std::lock_guard<std::mutex> lock(c.mutex);
    if (auto it = c.index.find(key); it != c.index.end())
        return it->second->second; // lost the race; share the winner's
    if (planes->footprint() > c.capacity) {
        // Bigger than the whole budget: inserting it would evict every
        // other entry and still get evicted itself — serve it uncached.
        ++c.stats.oversize;
        return planes;
    }
    c.lru.emplace_front(key, planes);
    c.index.emplace(key, c.lru.begin());
    c.bytes += planes->footprint();
    evictOverBudgetLocked(c);
    return planes;
}

FingerprintCacheStats
fingerprintCacheStats()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    FingerprintCacheStats s = c.stats;
    s.entries = c.index.size();
    s.bytes = c.bytes;
    s.capacity = c.capacity;
    return s;
}

void
setFingerprintCacheCapacity(size_t bytes)
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.capacity = bytes;
    evictOverBudgetLocked(c);
}

void
clearFingerprintCache()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.lru.clear();
    c.index.clear();
    c.bytes = 0;
    c.stats = {};
}

} // namespace voltboot

/**
 * @file
 * Byte-addressable simulated memory arrays with retention physics.
 *
 * A MemoryArray owns the stored bits plus a power-state machine:
 *
 *   Powered  -- normal operation at a supply voltage;
 *   Retained -- externally held at some voltage (the Volt Boot probe) while
 *               the rest of the system power-cycles;
 *   Off      -- unpowered; state decays with time and temperature.
 *
 * Transitions apply the RetentionModel per cell. Cells that lose state
 * resolve to their power-up fingerprint (PUF-like, stable per chip seed,
 * with a metastable fraction that re-rolls every power-up).
 *
 * Internally the array is a bit-sliced structure-of-arrays: the stored
 * bits, the per-event loss mask, and the shared power-up planes
 * (fingerprint, metastable mask) are contiguous uint64_t word planes
 * carved out of PlaneArenas (see sim/plane_arena.hh), so the fast
 * kernels advance 64 cells per word op — or 512 per AVX-512 register
 * via sim/cell_hash_batch — and DRAM-scale arrays (hundreds of MB of
 * modeled cells) stay cache- and bandwidth-friendly. The byte API
 * below (readByte/write/snapshot/...) is a thin view over the packed
 * plane; on little-endian hosts block transfers are memcpys.
 */

#ifndef VOLTBOOT_SRAM_MEMORY_ARRAY_HH
#define VOLTBOOT_SRAM_MEMORY_ARRAY_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/plane_arena.hh"
#include "sim/rng.hh"
#include "sim/units.hh"
#include "sram/fingerprint_cache.hh"
#include "sram/retention_model.hh"

namespace voltboot
{

/** Power state of a memory array. */
enum class PowerState
{
    Powered,  ///< Supplied by its domain at nominal voltage.
    Retained, ///< Held by an external source (e.g., Volt Boot probe).
    Off,      ///< Unpowered; contents decay.
};

/** Convert a PowerState to a human-readable name. */
const char *toString(PowerState state);

/**
 * A byte-addressable array of simulated 6T-SRAM (or DRAM) cells.
 *
 * The array is always constructed Off with undefined content; the first
 * powerUp() fills it with the chip's power-up fingerprint, mirroring real
 * silicon where "SRAMs boot up into random states where approximately 50%
 * of the bits are 1s".
 */
class MemoryArray
{
  public:
    /**
     * @param name        Human-readable identifier (e.g. "core0.L1D.data").
     * @param size_bytes  Capacity in bytes.
     * @param config      Cell technology parameters.
     * @param chip_seed   Identifies the simulated die; the same seed always
     *                    yields identical silicon.
     * @param array_id    Distinguishes arrays within one chip.
     */
    MemoryArray(std::string name, size_t size_bytes,
                const RetentionConfig &config, uint64_t chip_seed,
                uint64_t array_id);

    const std::string &name() const { return name_; }
    size_t sizeBytes() const { return size_bytes_; }
    size_t sizeBits() const { return size_bytes_ * 8; }
    PowerState powerState() const { return state_; }
    Volt supplyVoltage() const { return supply_; }
    const RetentionModel &model() const { return model_; }

    /**
     * Power the array on at voltage @p v after having been Off for
     * @p off_time at temperature @p temp. Cells whose retention time
     * exceeds off_time keep their bits; the rest resolve to power-up
     * state. The very first power-up initialises every cell.
     */
    void powerUp(Volt v, Seconds off_time, Temperature temp);

    /** Convenience: first power-on (everything resolves to fingerprint). */
    void
    powerUp(Volt v)
    {
        powerUp(v, Seconds(1e9), Temperature::celsius(25.0));
    }

    /** Remove power. Contents will decay until the next powerUp(). */
    void powerDown();

    /**
     * Enter the Retained state at voltage @p v (a probe or an always-on
     * rail holds the array through a power cycle). Cells whose DRV exceeds
     * @p v lose state immediately.
     */
    void retainAt(Volt v);

    /**
     * Apply a transient voltage droop of the supply down to @p v_min (for
     * a few microseconds, long enough for marginal cells to flip). Valid
     * in Powered or Retained states.
     */
    void droopTo(Volt v_min);

    /** Resume normal powered operation from the Retained state. */
    void resumePowered(Volt v);

    /** Read/write bytes. Asserts the array is Powered. */
    uint8_t readByte(size_t addr) const;
    void writeByte(size_t addr, uint8_t value);
    void read(size_t addr, std::span<uint8_t> out) const;
    void write(size_t addr, std::span<const uint8_t> data);
    uint64_t readWord64(size_t addr) const;
    void writeWord64(size_t addr, uint64_t value);

    /**
     * Raw snapshot of the stored bits regardless of power state —
     * this is what a debug port (RAMINDEX / JTAG) sees after reboot.
     * Exported word-at-a-time from the packed plane. Reading an Off
     * array is a modelling error (real SRAM cannot be read without
     * power) and panics.
     */
    std::vector<uint8_t> snapshot() const;

    /** Fill with a repeated byte pattern (test/bench helper). One word
     * store per 8 bytes. */
    void fill(uint8_t value);

    /** Cell parameters for bit index @p bit (diagnostics/tests). */
    CellParams cellParams(uint64_t bit) const { return model_.cellParams(bit); }

    /** Number of power-up events so far (metastable-cell nonce). */
    uint64_t powerUpCount() const { return power_up_count_; }

    /** Cells resolved to their power-up state by the most recent loss
     * event (decay past retention time, droop below DRV, or a full
     * power-up resolution). Diagnostics / trace reporting. */
    uint64_t lastCellsLost() const { return last_cells_lost_; }

    /**
     * The loss mask of the most recent loss event, exported as packed
     * bytes (bit i == cell i lost). popcount equals lastCellsLost().
     * Diagnostics/tests; identical across kernels.
     */
    std::vector<uint8_t> lastLossMask() const { return loss_.toBytes(); }

    /**
     * Circuit aging / data imprinting (the Section 9.2 attack family):
     * holding a value for years of powered operation shifts the cell's
     * analog balance so its *power-up* state leans toward the stored
     * value. age() accrues @p years of imprint on the current contents;
     * subsequent power-up resolutions are biased accordingly. The drift
     * half-life is ~20 years: a decade of imprint yields only "modest"
     * recovery, matching the literature's characterisation.
     */
    void age(double years);

    /** Signed imprint-years on bit @p bit (positive leans 1). */
    double imprintYears(uint64_t bit) const;

  private:
    void requirePowered(const char *op) const;
    /** Reference kernel: resolve every cell that fails @p survives to
     * its power-up state, evaluating the full per-cell parameter
     * derivation (splitmix chains + inverse normal CDF) per cell. */
    template <typename SurvivesFn>
    void applyLoss(SurvivesFn survives);
    /**
     * Fast kernel: same result as applyLoss, but survival is one
     * integer compare of the cell's raw uniform hash on @p channel
     * against the threshold band (a cell at/above the band dies iff
     * @p loss_at_or_above; the rare hash inside the band is resolved by
     * @p scalarDies, the exact per-cell predicate). The loss bitmask is
     * derived 64 cells at a time straight into the loss word plane
     * (AVX-512 compare-to-mask where available, see
     * sim/cell_hash_batch) and applied with word ops against the
     * fingerprint/metastable planes — no per-cell scatter anywhere.
     * Requires imprint_ empty.
     */
    template <typename ScalarDiesFn>
    void applyLossFast(uint64_t channel,
                       RetentionModel::ThresholdBand band,
                       bool loss_at_or_above, ScalarDiesFn scalarDies);
    /** Every cell resolves to its power-up state. */
    void resolveAllToPowerUp();
    /** Word-masked resolveAllToPowerUp: copy the fingerprint plane and
     * re-roll metastable cells via batched draws, touching only words
     * with metastable bits. */
    void resolveAllToPowerUpFast();
    /** True when the threshold kernels may run (runtime selection says
     * fast and no aging imprint modulates power-up draws). */
    bool fastKernelEnabled() const;
    /** Lazily acquire the die's power-up planes (fingerprint,
     * metastable mask, first-power-on contents) from the process-wide
     * cache, deriving them on a miss. */
    void ensureFingerprint() const;
    /** Derive this die's power-up planes from scratch. */
    FingerprintPlanes buildFingerprintPlanes() const;
    /** FastCached: lazily built plane of raw-uniform *buckets* (top 32
     * bits of each cell's 53-bit raw hash — see rawBucketBandMask) for
     * @p channel, or nullptr when caching is off or the array is too
     * large. Half-width entries halve the stream the band compare
     * pulls from memory, which is the binding resource at >= 1 MiB
     * planes; the truncated low bits only ever widen the
     * scalar-resolve guard band, never change a classification. */
    const uint32_t *cachedPlane(uint64_t channel) const;

    std::string name_;
    /** Backing storage for the array's own word planes. */
    PlaneArena arena_;
    /** Stored bits, one bit per cell (cell i == bit i). */
    BitPlane bits_;
    /** Loss mask of the most recent loss event (same indexing). */
    BitPlane loss_;
    size_t size_bytes_ = 0;
    RetentionModel model_;
    /** Emit a "sram_state" trace event for the @p from -> @p to edge. */
    void traceTransition(PowerState from, PowerState to, Volt v) const;

    PowerState state_ = PowerState::Off;
    Volt supply_{0.0};
    uint64_t power_up_count_ = 0;
    uint64_t last_cells_lost_ = 0;
    bool ever_powered_ = false;
    /** Die identity, the fingerprint-cache key. */
    uint64_t chip_seed_ = 0;
    uint64_t array_id_ = 0;
    /** Shared immutable power-up planes (see FingerprintPlanes). */
    mutable std::shared_ptr<const FingerprintPlanes> planes_;
    /** FastCached raw-uniform bucket planes (DRV / retention). */
    mutable std::vector<uint32_t> drv_raw_plane_;
    mutable std::vector<uint32_t> retention_raw_plane_;
    /** Signed imprint-years per cell; empty until age() is first used. */
    std::vector<float> imprint_;
    /** Resolve @p cell's power-up state including any imprint drift. */
    bool agedPowerUpState(uint64_t cell, const CellParams &p,
                          uint64_t nonce) const;
};

/** An SRAM array with 6T-cell defaults. */
class SramArray : public MemoryArray
{
  public:
    SramArray(std::string name, size_t size_bytes, uint64_t chip_seed,
              uint64_t array_id,
              const RetentionConfig &config = RetentionConfig::sram6t())
        : MemoryArray(std::move(name), size_bytes, config, chip_seed,
                      array_id)
    {}
};

/** A DRAM array: same framework, capacitor-grade retention constants. */
class DramArray : public MemoryArray
{
  public:
    DramArray(std::string name, size_t size_bytes, uint64_t chip_seed,
              uint64_t array_id,
              const RetentionConfig &config = RetentionConfig::dram())
        : MemoryArray(std::move(name), size_bytes, config, chip_seed,
                      array_id)
    {}
};

} // namespace voltboot

#endif // VOLTBOOT_SRAM_MEMORY_ARRAY_HH

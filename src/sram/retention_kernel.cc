#include "sram/retention_kernel.hh"

#include <atomic>
#include <cstdlib>

namespace voltboot
{

namespace
{

/** Initial selection: VOLTBOOT_RETENTION_KERNEL if set and valid,
 * otherwise Fast. */
RetentionKernel
initialKernel()
{
    RetentionKernel k = RetentionKernel::Fast;
    if (const char *env = std::getenv("VOLTBOOT_RETENTION_KERNEL"))
        parseRetentionKernel(env, k);
    return k;
}

std::atomic<RetentionKernel> &
kernelSlot()
{
    static std::atomic<RetentionKernel> slot{initialKernel()};
    return slot;
}

} // namespace

RetentionKernel
retentionKernel()
{
    return kernelSlot().load(std::memory_order_relaxed);
}

void
setRetentionKernel(RetentionKernel kernel)
{
    kernelSlot().store(kernel, std::memory_order_relaxed);
}

bool
parseRetentionKernel(std::string_view name, RetentionKernel &out)
{
    if (name == "fast")
        out = RetentionKernel::Fast;
    else if (name == "fast-cached")
        out = RetentionKernel::FastCached;
    else if (name == "reference")
        out = RetentionKernel::Reference;
    else
        return false;
    return true;
}

const char *
toString(RetentionKernel kernel)
{
    switch (kernel) {
      case RetentionKernel::Fast:
        return "fast";
      case RetentionKernel::FastCached:
        return "fast-cached";
      case RetentionKernel::Reference:
        return "reference";
    }
    return "?";
}

} // namespace voltboot

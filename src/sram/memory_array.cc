#include "sram/memory_array.hh"

#include <bit>
#include <cmath>
#include <cstring>

#include "sim/cell_hash_batch.hh"
#include "sim/logging.hh"
#include "sram/retention_kernel.hh"
#include "trace/trace.hh"

namespace voltboot
{

namespace
{

/** Above this many cells the FastCached raw planes (8 bytes per cell
 * per channel) are not worth their memory; hash on the fly instead. */
constexpr uint64_t kPlaneCacheMaxBits = uint64_t{1} << 24;

/**
 * Load/store up to 8 bytes as one word (tail-safe), with byte i of
 * memory always occupying word bits [8i, 8i+8) so a word bit index
 * equals cell_index - 64 * word_index regardless of host endianness.
 */
inline uint64_t
loadWord(const uint8_t *p, size_t nbytes)
{
    uint64_t v = 0;
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(&v, p, nbytes);
    } else {
        for (size_t i = 0; i < nbytes; ++i)
            v |= static_cast<uint64_t>(p[i]) << (8 * i);
    }
    return v;
}

inline void
storeWord(uint8_t *p, uint64_t v, size_t nbytes)
{
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(p, &v, nbytes);
    } else {
        for (size_t i = 0; i < nbytes; ++i)
            p[i] = static_cast<uint8_t>(v >> (8 * i));
    }
}

/**
 * Re-roll every metastable cell of @p bytes in place at power-up nonce
 * @p nonce, via the planes' cached integer draw thresholds. Only words
 * with metastable bits are touched.
 */
void
rerollMetastable(std::vector<uint8_t> &bytes,
                 const FingerprintPlanes &planes, const CellRng &rng,
                 uint64_t nonce)
{
    const size_t nbytes = bytes.size();
    for (size_t w = 0; w * 8 < nbytes; ++w) {
        const size_t base_byte = w * 8;
        const size_t nb = std::min<size_t>(8, nbytes - base_byte);
        uint64_t ms = loadWord(&planes.metastable_mask[base_byte], nb);
        if (!ms)
            continue;
        const uint64_t cell0 = base_byte * 8;
        // Bits come out of the scan in ascending order, which is
        // exactly rank order: the threshold index just increments.
        uint32_t idx = planes.meta_rank[w];
        uint64_t word = loadWord(&bytes[base_byte], nb);
        do {
            const int b = std::countr_zero(ms);
            ms &= ms - 1;
            const uint64_t cell = cell0 + b;
            const uint64_t draw =
                rng.rawUniform(hashCombine(cell, nonce),
                               RetentionModel::ChannelMetastableDraw);
            const uint64_t value = draw < planes.meta_theta_raw[idx++];
            word = (word & ~(uint64_t{1} << b)) | (value << b);
        } while (ms);
        storeWord(&bytes[base_byte], word, nb);
    }
}

} // namespace

const char *
toString(PowerState state)
{
    switch (state) {
      case PowerState::Powered:
        return "Powered";
      case PowerState::Retained:
        return "Retained";
      case PowerState::Off:
        return "Off";
    }
    return "?";
}

MemoryArray::MemoryArray(std::string name, size_t size_bytes,
                         const RetentionConfig &config, uint64_t chip_seed,
                         uint64_t array_id)
    : name_(std::move(name)), bytes_(size_bytes, 0),
      model_(config, CellRng(chip_seed, array_id)),
      chip_seed_(chip_seed), array_id_(array_id)
{
    if (size_bytes == 0)
        fatal("MemoryArray ", name_, ": size must be nonzero");
}

void
MemoryArray::requirePowered(const char *op) const
{
    if (state_ != PowerState::Powered)
        panic("MemoryArray ", name_, ": ", op, " while ",
              toString(state_));
}

bool
MemoryArray::agedPowerUpState(uint64_t cell, const CellParams &p,
                              uint64_t nonce) const
{
    const bool base = model_.powerUpState(cell, p, nonce);
    if (imprint_.empty())
        return base;
    const double s = imprint_[cell];
    if (s == 0.0)
        return base;
    // Imprint drift: with weight w = |s| / (|s| + 20 years), the cell
    // powers up to the imprinted value instead of its intrinsic state.
    const double w = std::abs(s) / (std::abs(s) + 20.0);
    const bool imprinted = s > 0.0;
    const double u = model_.rng().uniform(
        hashCombine(cell, nonce), RetentionModel::ChannelStability + 100);
    return u < w ? imprinted : base;
}

template <typename SurvivesFn>
void
MemoryArray::applyLoss(SurvivesFn survives)
{
    const uint64_t nonce = power_up_count_;
    uint64_t lost = 0;
    for (size_t byte = 0; byte < bytes_.size(); ++byte) {
        uint8_t v = bytes_[byte];
        uint8_t out = 0;
        for (int bit = 0; bit < 8; ++bit) {
            const uint64_t cell = byte * 8 + bit;
            const CellParams p = model_.cellParams(cell);
            bool value;
            if (survives(p)) {
                value = (v >> bit) & 1;
            } else {
                value = agedPowerUpState(cell, p, nonce);
                ++lost;
            }
            out |= static_cast<uint8_t>(value) << bit;
        }
        bytes_[byte] = out;
    }
    last_cells_lost_ = lost;
}

void
MemoryArray::age(double years)
{
    requirePowered("age");
    if (years <= 0.0)
        fatal("MemoryArray ", name_, ": aging needs positive duration");
    if (imprint_.empty())
        imprint_.assign(sizeBits(), 0.0f);
    for (size_t byte = 0; byte < bytes_.size(); ++byte) {
        const uint8_t v = bytes_[byte];
        for (int bit = 0; bit < 8; ++bit) {
            const float delta =
                ((v >> bit) & 1) ? static_cast<float>(years)
                                 : -static_cast<float>(years);
            imprint_[byte * 8 + bit] += delta;
        }
    }
}

double
MemoryArray::imprintYears(uint64_t bit) const
{
    if (imprint_.empty() || bit >= imprint_.size())
        return 0.0;
    return imprint_[bit];
}

void
MemoryArray::ensureFingerprint() const
{
    if (planes_)
        return;
    FingerprintKey key;
    key.chip_seed = chip_seed_;
    key.array_id = array_id_;
    key.size_bytes = bytes_.size();
    key.metastable_fraction = model_.config().metastable_fraction;
    key.metastable_bias_min = model_.config().metastable_bias_min;
    key.metastable_bias_max = model_.config().metastable_bias_max;
    planes_ = acquireFingerprintPlanes(
        key, [this] { return buildFingerprintPlanes(); });
}

FingerprintPlanes
MemoryArray::buildFingerprintPlanes() const
{
    FingerprintPlanes planes;
    const size_t nbytes = bytes_.size();
    planes.fingerprint.assign(nbytes, 0);
    planes.metastable_mask.assign(nbytes, 0);
    planes.meta_rank.assign((nbytes + 7) / 8, 0);

    // Only the power-up and stability channels matter here; deriving
    // them directly (and turning the stability compare into an integer
    // threshold on the raw hash — exact, see CellRng::
    // rawUniformCountBelow) skips the two inverse-normal-CDF
    // evaluations cellParams() would burn per cell. The stable/
    // metastable split is hoisted once into these planes; power-up
    // re-rolls later touch only words with metastable bits. The mask
    // loops are branchless 64-cell passes (the per-cell hash chains are
    // independent, so they pipeline); only the metastable minority pays
    // for a bias threshold.
    const CellRng &rng = model_.rng();
    const uint64_t meta_min_raw = CellRng::rawUniformCountBelow(
        model_.config().metastable_fraction);
    planes.meta_theta_raw.reserve(static_cast<size_t>(
        static_cast<double>(sizeBits()) *
            model_.config().metastable_fraction +
        64.0));
    for (size_t w = 0; w * 8 < nbytes; ++w) {
        const size_t base_byte = w * 8;
        const size_t nb = std::min<size_t>(8, nbytes - base_byte);
        const uint64_t cell0 = base_byte * 8;
        const unsigned ncells = static_cast<unsigned>(nb * 8);
        uint64_t hashes[64];
        uint64_t fp = 0, ms = 0;
        cellBitsBatch(rng, cell0, RetentionModel::ChannelPowerUp, ncells,
                      hashes);
        for (unsigned b = 0; b < ncells; ++b)
            fp |= (hashes[b] & 1) << b;
        cellBitsBatch(rng, cell0, RetentionModel::ChannelStability,
                      ncells, hashes);
        for (unsigned b = 0; b < ncells; ++b)
            ms |= static_cast<uint64_t>((hashes[b] >> 11) <
                                        meta_min_raw)
                  << b;
        storeWord(&planes.fingerprint[base_byte], fp, nb);
        storeWord(&planes.metastable_mask[base_byte], ms, nb);
        planes.meta_rank[w] =
            static_cast<uint32_t>(planes.meta_theta_raw.size());
        while (ms) {
            const int b = std::countr_zero(ms);
            ms &= ms - 1;
            planes.meta_theta_raw.push_back(
                CellRng::rawUniformCountBelow(
                    model_.metastableTheta(cell0 + b)));
        }
    }
    // First-power-on contents: the fingerprint with every metastable
    // cell at its nonce-1 draw. Trials all start from this exact state,
    // so sharing it turns their first power-up into a memcpy.
    planes.initial_bytes = planes.fingerprint;
    rerollMetastable(planes.initial_bytes, planes, rng, /*nonce=*/1);
    return planes;
}

bool
MemoryArray::fastKernelEnabled() const
{
    // Aging imprint modulates every power-up draw per cell, so aged
    // arrays always take the reference path.
    return imprint_.empty() &&
           retentionKernel() != RetentionKernel::Reference;
}

const uint64_t *
MemoryArray::cachedPlane(uint64_t channel) const
{
    if (retentionKernel() != RetentionKernel::FastCached)
        return nullptr;
    if (sizeBits() > kPlaneCacheMaxBits)
        return nullptr;
    auto &plane = channel == RetentionModel::ChannelDrv
                      ? drv_raw_plane_
                      : retention_raw_plane_;
    if (plane.empty()) {
        const CellRng &rng = model_.rng();
        const uint64_t nbits = sizeBits();
        plane.resize(nbits);
        for (uint64_t cell0 = 0; cell0 < nbits; cell0 += 64) {
            const unsigned n = static_cast<unsigned>(
                std::min<uint64_t>(64, nbits - cell0));
            cellBitsBatch(rng, cell0, channel, n, &plane[cell0]);
            for (unsigned b = 0; b < n; ++b)
                plane[cell0 + b] >>= 11;
        }
    }
    return plane.data();
}

template <typename ScalarDiesFn>
void
MemoryArray::applyLossFast(uint64_t channel,
                           RetentionModel::ThresholdBand band,
                           bool loss_at_or_above, ScalarDiesFn scalarDies)
{
    ensureFingerprint();
    const uint64_t nonce = power_up_count_;
    const CellRng &rng = model_.rng();
    const uint64_t *plane = cachedPlane(channel);
    const size_t nbytes = bytes_.size();
    uint64_t lost = 0;
    // One integer compare per cell classifies everything outside the
    // guard band; the expected number of in-band cells per transition
    // is ~band_width / 2^53 * size_bits ~ 1e-3, so the scalar fallback
    // never shows up in profiles.
    const auto classify = [&](uint64_t cell, uint64_t raw) -> bool {
        if (raw < band.lo || raw >= band.hi)
            return (raw >= band.lo) == loss_at_or_above;
        return scalarDies(cell);
    };
    for (size_t w = 0; w * 8 < nbytes; ++w) {
        const size_t base_byte = w * 8;
        const size_t nb = std::min<size_t>(8, nbytes - base_byte);
        const uint64_t cell0 = base_byte * 8;
        const unsigned ncells = static_cast<unsigned>(nb * 8);
        uint64_t loss = 0;
        if (plane) {
            for (unsigned b = 0; b < ncells; ++b) {
                const bool dies = classify(cell0 + b, plane[cell0 + b]);
                loss |= static_cast<uint64_t>(dies) << b;
            }
        } else {
            uint64_t hashes[64];
            cellBitsBatch(rng, cell0, channel, ncells, hashes);
            for (unsigned b = 0; b < ncells; ++b) {
                const bool dies = classify(cell0 + b, hashes[b] >> 11);
                loss |= static_cast<uint64_t>(dies) << b;
            }
        }
        if (!loss)
            continue; // whole word survives untouched
        lost += std::popcount(loss);
        const uint64_t cur = loadWord(&bytes_[base_byte], nb);
        const uint64_t fp = loadWord(&planes_->fingerprint[base_byte], nb);
        const uint64_t ms =
            loadWord(&planes_->metastable_mask[base_byte], nb);
        uint64_t next = (cur & ~loss) | (fp & loss & ~ms);
        uint64_t meta_lost = loss & ms;
        if (meta_lost) {
            const uint32_t rank0 = planes_->meta_rank[w];
            do {
                const int b = std::countr_zero(meta_lost);
                meta_lost &= meta_lost - 1;
                const uint64_t cell = cell0 + b;
                const uint32_t idx =
                    rank0 + std::popcount(ms & ((uint64_t{1} << b) - 1));
                const uint64_t draw =
                    rng.rawUniform(hashCombine(cell, nonce),
                                   RetentionModel::ChannelMetastableDraw);
                const uint64_t value = draw < planes_->meta_theta_raw[idx];
                next = (next & ~(uint64_t{1} << b)) | (value << b);
            } while (meta_lost);
        }
        storeWord(&bytes_[base_byte], next, nb);
    }
    last_cells_lost_ = lost;
}

void
MemoryArray::traceTransition(PowerState from, PowerState to, Volt v) const
{
    trace::instant("sram", "sram_state",
                   {{"array", name_},
                    {"from", toString(from)},
                    {"to", toString(to)},
                    {"supply_v", v.volts()}});
}

void
MemoryArray::resolveAllToPowerUp()
{
    last_cells_lost_ = sizeBits();
    if (!imprint_.empty()) {
        // Aged arrays need the per-cell path: imprint drift modulates
        // every power-up draw, so the cached fingerprint is invalid.
        applyLoss([](const CellParams &) { return false; });
        return;
    }
    if (fastKernelEnabled()) {
        resolveAllToPowerUpFast();
        return;
    }
    ensureFingerprint();
    const uint64_t nonce = power_up_count_;
    bytes_ = planes_->fingerprint;
    // Metastable cells re-roll on every power-up.
    for (size_t byte = 0; byte < bytes_.size(); ++byte) {
        const uint8_t ms = planes_->metastable_mask[byte];
        if (!ms)
            continue;
        for (int bit = 0; bit < 8; ++bit) {
            if (!((ms >> bit) & 1))
                continue;
            const uint64_t cell = byte * 8 + bit;
            const bool value = model_.metastableDraw(cell, nonce);
            bytes_[byte] = (bytes_[byte] & ~(1u << bit)) |
                           (static_cast<uint8_t>(value) << bit);
        }
    }
}

void
MemoryArray::resolveAllToPowerUpFast()
{
    ensureFingerprint();
    const uint64_t nonce = power_up_count_;
    if (nonce == 1) {
        // First ever power-on: the nonce-1 resolve is precomputed in
        // the shared planes.
        bytes_ = planes_->initial_bytes;
        return;
    }
    // Metastable cells re-roll on every power-up; stable cells are
    // fully resolved by the fingerprint copy, so only words with
    // metastable bits are touched, via cached integer draw thresholds.
    bytes_ = planes_->fingerprint;
    rerollMetastable(bytes_, *planes_, model_.rng(), nonce);
}

void
MemoryArray::powerUp(Volt v, Seconds off_time, Temperature temp)
{
    if (state_ == PowerState::Powered)
        panic("MemoryArray ", name_, ": powerUp while already Powered");

    ++power_up_count_;
    if (state_ == PowerState::Retained) {
        // Held through the power cycle: nothing decays, but cells whose
        // DRV exceeds the retention voltage were already lost at
        // retainAt() time. Just resume.
        state_ = PowerState::Powered;
        supply_ = v;
        if (trace::enabled())
            traceTransition(PowerState::Retained, PowerState::Powered, v);
        return;
    }

    last_cells_lost_ = 0;
    if (!ever_powered_) {
        // First ever power-on: every cell resolves to its power-up state.
        resolveAllToPowerUp();
        ever_powered_ = true;
    } else {
        // Array-level fast paths bound the per-cell work: when the
        // expected survival is essentially 0 or 1 no individual cell can
        // deviate from it beyond the lognormal's far tail.
        const double p_survive = model_.expectedSurvival(off_time, temp);
        if (p_survive < 1e-12) {
            resolveAllToPowerUp();
        } else if (p_survive <= 1.0 - 1e-12) {
            if (fastKernelEnabled()) {
                // Survive iff the raw retention hash is at/above the
                // band, i.e. lose iff below it.
                applyLossFast(
                    RetentionModel::ChannelRetention,
                    model_.decaySurvivalBand(off_time, temp),
                    /*loss_at_or_above=*/false, [&](uint64_t cell) {
                        return !model_.survivesUnpowered(
                            model_.cellParams(cell), off_time, temp);
                    });
            } else {
                applyLoss([&](const CellParams &p) {
                    return model_.survivesUnpowered(p, off_time, temp);
                });
            }
        }
        // else: everything survives; contents untouched.
    }
    state_ = PowerState::Powered;
    supply_ = v;
    if (trace::enabled()) {
        traceTransition(PowerState::Off, PowerState::Powered, v);
        trace::instant("sram", "sram_decay",
                       {{"array", name_},
                        {"off_s", off_time.seconds()},
                        {"temp_c", temp.celsiusDegrees()},
                        {"cells_flipped", last_cells_lost_},
                        {"size_bits", sizeBits()}});
    }
}

void
MemoryArray::powerDown()
{
    if (state_ == PowerState::Off)
        return;
    const PowerState from = state_;
    state_ = PowerState::Off;
    supply_ = Volt(0.0);
    if (trace::enabled())
        traceTransition(from, PowerState::Off, Volt(0.0));
}

void
MemoryArray::retainAt(Volt v)
{
    if (state_ == PowerState::Off)
        panic("MemoryArray ", name_,
              ": cannot retain an already-unpowered array");
    // Cells that need more than the retention voltage lose state now.
    droopTo(v);
    const PowerState from = state_;
    state_ = PowerState::Retained;
    supply_ = v;
    ever_powered_ = true;
    if (trace::enabled())
        traceTransition(from, PowerState::Retained, v);
}

void
MemoryArray::droopTo(Volt v_min)
{
    if (state_ == PowerState::Off)
        panic("MemoryArray ", name_, ": droop while Off");
    last_cells_lost_ = 0;
    if (v_min >= model_.config().drv_max) {
        // Above every possible DRV: nothing can flip.
    } else if (v_min <= model_.config().drv_min) {
        resolveAllToPowerUp();
    } else if (fastKernelEnabled()) {
        // A cell dies iff its raw DRV hash is at/above the band
        // (higher hash => higher DRV).
        applyLossFast(RetentionModel::ChannelDrv,
                      model_.droopLossBand(v_min),
                      /*loss_at_or_above=*/true, [&](uint64_t cell) {
                          return !model_.survivesAtVoltage(
                              model_.cellParams(cell), v_min);
                      });
    } else {
        applyLoss([&](const CellParams &p) {
            return model_.survivesAtVoltage(p, v_min);
        });
    }
    if (trace::enabled()) {
        trace::instant("sram", "sram_droop",
                       {{"array", name_},
                        {"v_min", v_min.volts()},
                        {"cells_flipped", last_cells_lost_},
                        {"size_bits", sizeBits()}});
    }
}

void
MemoryArray::resumePowered(Volt v)
{
    if (state_ != PowerState::Retained)
        panic("MemoryArray ", name_, ": resumePowered while ",
              toString(state_));
    state_ = PowerState::Powered;
    supply_ = v;
    if (trace::enabled())
        traceTransition(PowerState::Retained, PowerState::Powered, v);
}

uint8_t
MemoryArray::readByte(size_t addr) const
{
    requirePowered("readByte");
    if (addr >= bytes_.size())
        panic("MemoryArray ", name_, ": read out of range: ", addr);
    return bytes_[addr];
}

void
MemoryArray::writeByte(size_t addr, uint8_t value)
{
    requirePowered("writeByte");
    if (addr >= bytes_.size())
        panic("MemoryArray ", name_, ": write out of range: ", addr);
    bytes_[addr] = value;
}

void
MemoryArray::read(size_t addr, std::span<uint8_t> out) const
{
    requirePowered("read");
    if (addr + out.size() > bytes_.size())
        panic("MemoryArray ", name_, ": block read out of range");
    std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void
MemoryArray::write(size_t addr, std::span<const uint8_t> data)
{
    requirePowered("write");
    if (addr + data.size() > bytes_.size())
        panic("MemoryArray ", name_, ": block write out of range");
    std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

uint64_t
MemoryArray::readWord64(size_t addr) const
{
    requirePowered("readWord64");
    if (addr + 8 > bytes_.size())
        panic("MemoryArray ", name_, ": word read out of range: ", addr);
    uint64_t v;
    std::memcpy(&v, bytes_.data() + addr, 8);
    return v;
}

void
MemoryArray::writeWord64(size_t addr, uint64_t value)
{
    requirePowered("writeWord64");
    if (addr + 8 > bytes_.size())
        panic("MemoryArray ", name_, ": word write out of range: ", addr);
    std::memcpy(bytes_.data() + addr, &value, 8);
}

std::vector<uint8_t>
MemoryArray::snapshot() const
{
    if (state_ == PowerState::Off)
        panic("MemoryArray ", name_,
              ": snapshot of an unpowered array is physically meaningless");
    return bytes_;
}

void
MemoryArray::fill(uint8_t value)
{
    requirePowered("fill");
    std::fill(bytes_.begin(), bytes_.end(), value);
}

} // namespace voltboot

#include "sram/memory_array.hh"

#include <cmath>
#include <cstring>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace voltboot
{

const char *
toString(PowerState state)
{
    switch (state) {
      case PowerState::Powered:
        return "Powered";
      case PowerState::Retained:
        return "Retained";
      case PowerState::Off:
        return "Off";
    }
    return "?";
}

MemoryArray::MemoryArray(std::string name, size_t size_bytes,
                         const RetentionConfig &config, uint64_t chip_seed,
                         uint64_t array_id)
    : name_(std::move(name)), bytes_(size_bytes, 0),
      model_(config, CellRng(chip_seed, array_id))
{
    if (size_bytes == 0)
        fatal("MemoryArray ", name_, ": size must be nonzero");
}

void
MemoryArray::requirePowered(const char *op) const
{
    if (state_ != PowerState::Powered)
        panic("MemoryArray ", name_, ": ", op, " while ",
              toString(state_));
}

bool
MemoryArray::agedPowerUpState(uint64_t cell, const CellParams &p,
                              uint64_t nonce) const
{
    const bool base = model_.powerUpState(cell, p, nonce);
    if (imprint_.empty())
        return base;
    const double s = imprint_[cell];
    if (s == 0.0)
        return base;
    // Imprint drift: with weight w = |s| / (|s| + 20 years), the cell
    // powers up to the imprinted value instead of its intrinsic state.
    const double w = std::abs(s) / (std::abs(s) + 20.0);
    const bool imprinted = s > 0.0;
    const double u = model_.rng().uniform(
        hashCombine(cell, nonce), RetentionModel::ChannelStability + 100);
    return u < w ? imprinted : base;
}

template <typename SurvivesFn>
void
MemoryArray::applyLoss(SurvivesFn survives)
{
    const uint64_t nonce = power_up_count_;
    uint64_t lost = 0;
    for (size_t byte = 0; byte < bytes_.size(); ++byte) {
        uint8_t v = bytes_[byte];
        uint8_t out = 0;
        for (int bit = 0; bit < 8; ++bit) {
            const uint64_t cell = byte * 8 + bit;
            const CellParams p = model_.cellParams(cell);
            bool value;
            if (survives(p)) {
                value = (v >> bit) & 1;
            } else {
                value = agedPowerUpState(cell, p, nonce);
                ++lost;
            }
            out |= static_cast<uint8_t>(value) << bit;
        }
        bytes_[byte] = out;
    }
    last_cells_lost_ = lost;
}

void
MemoryArray::age(double years)
{
    requirePowered("age");
    if (years <= 0.0)
        fatal("MemoryArray ", name_, ": aging needs positive duration");
    if (imprint_.empty())
        imprint_.assign(sizeBits(), 0.0f);
    for (size_t byte = 0; byte < bytes_.size(); ++byte) {
        const uint8_t v = bytes_[byte];
        for (int bit = 0; bit < 8; ++bit) {
            const float delta =
                ((v >> bit) & 1) ? static_cast<float>(years)
                                 : -static_cast<float>(years);
            imprint_[byte * 8 + bit] += delta;
        }
    }
}

double
MemoryArray::imprintYears(uint64_t bit) const
{
    if (imprint_.empty() || bit >= imprint_.size())
        return 0.0;
    return imprint_[bit];
}

void
MemoryArray::ensureFingerprint() const
{
    if (!fingerprint_.empty())
        return;
    fingerprint_.assign(bytes_.size(), 0);
    metastable_mask_.assign(bytes_.size(), 0);
    for (size_t byte = 0; byte < bytes_.size(); ++byte) {
        uint8_t fp = 0, ms = 0;
        for (int bit = 0; bit < 8; ++bit) {
            const CellParams p = model_.cellParams(byte * 8 + bit);
            fp |= static_cast<uint8_t>(p.power_up_bit) << bit;
            ms |= static_cast<uint8_t>(p.metastable) << bit;
        }
        fingerprint_[byte] = fp;
        metastable_mask_[byte] = ms;
    }
}

void
MemoryArray::traceTransition(PowerState from, PowerState to, Volt v) const
{
    trace::instant("sram", "sram_state",
                   {{"array", name_},
                    {"from", toString(from)},
                    {"to", toString(to)},
                    {"supply_v", v.volts()}});
}

void
MemoryArray::resolveAllToPowerUp()
{
    last_cells_lost_ = sizeBits();
    if (!imprint_.empty()) {
        // Aged arrays need the per-cell path: imprint drift modulates
        // every power-up draw, so the cached fingerprint is invalid.
        applyLoss([](const CellParams &) { return false; });
        return;
    }
    ensureFingerprint();
    const uint64_t nonce = power_up_count_;
    bytes_ = fingerprint_;
    // Metastable cells re-roll on every power-up.
    for (size_t byte = 0; byte < bytes_.size(); ++byte) {
        const uint8_t ms = metastable_mask_[byte];
        if (!ms)
            continue;
        for (int bit = 0; bit < 8; ++bit) {
            if (!((ms >> bit) & 1))
                continue;
            const uint64_t cell = byte * 8 + bit;
            const bool value = model_.metastableDraw(cell, nonce);
            bytes_[byte] = (bytes_[byte] & ~(1u << bit)) |
                           (static_cast<uint8_t>(value) << bit);
        }
    }
}

void
MemoryArray::powerUp(Volt v, Seconds off_time, Temperature temp)
{
    if (state_ == PowerState::Powered)
        panic("MemoryArray ", name_, ": powerUp while already Powered");

    ++power_up_count_;
    if (state_ == PowerState::Retained) {
        // Held through the power cycle: nothing decays, but cells whose
        // DRV exceeds the retention voltage were already lost at
        // retainAt() time. Just resume.
        state_ = PowerState::Powered;
        supply_ = v;
        if (trace::enabled())
            traceTransition(PowerState::Retained, PowerState::Powered, v);
        return;
    }

    last_cells_lost_ = 0;
    if (!ever_powered_) {
        // First ever power-on: every cell resolves to its power-up state.
        resolveAllToPowerUp();
        ever_powered_ = true;
    } else {
        // Array-level fast paths bound the per-cell work: when the
        // expected survival is essentially 0 or 1 no individual cell can
        // deviate from it beyond the lognormal's far tail.
        const double p_survive = model_.expectedSurvival(off_time, temp);
        if (p_survive < 1e-12) {
            resolveAllToPowerUp();
        } else if (p_survive <= 1.0 - 1e-12) {
            applyLoss([&](const CellParams &p) {
                return model_.survivesUnpowered(p, off_time, temp);
            });
        }
        // else: everything survives; contents untouched.
    }
    state_ = PowerState::Powered;
    supply_ = v;
    if (trace::enabled()) {
        traceTransition(PowerState::Off, PowerState::Powered, v);
        trace::instant("sram", "sram_decay",
                       {{"array", name_},
                        {"off_s", off_time.seconds()},
                        {"temp_c", temp.celsiusDegrees()},
                        {"cells_flipped", last_cells_lost_},
                        {"size_bits", sizeBits()}});
    }
}

void
MemoryArray::powerDown()
{
    if (state_ == PowerState::Off)
        return;
    const PowerState from = state_;
    state_ = PowerState::Off;
    supply_ = Volt(0.0);
    if (trace::enabled())
        traceTransition(from, PowerState::Off, Volt(0.0));
}

void
MemoryArray::retainAt(Volt v)
{
    if (state_ == PowerState::Off)
        panic("MemoryArray ", name_,
              ": cannot retain an already-unpowered array");
    // Cells that need more than the retention voltage lose state now.
    droopTo(v);
    const PowerState from = state_;
    state_ = PowerState::Retained;
    supply_ = v;
    ever_powered_ = true;
    if (trace::enabled())
        traceTransition(from, PowerState::Retained, v);
}

void
MemoryArray::droopTo(Volt v_min)
{
    if (state_ == PowerState::Off)
        panic("MemoryArray ", name_, ": droop while Off");
    last_cells_lost_ = 0;
    if (v_min >= model_.config().drv_max) {
        // Above every possible DRV: nothing can flip.
    } else if (v_min <= model_.config().drv_min) {
        resolveAllToPowerUp();
    } else {
        applyLoss([&](const CellParams &p) {
            return model_.survivesAtVoltage(p, v_min);
        });
    }
    if (trace::enabled()) {
        trace::instant("sram", "sram_droop",
                       {{"array", name_},
                        {"v_min", v_min.volts()},
                        {"cells_flipped", last_cells_lost_},
                        {"size_bits", sizeBits()}});
    }
}

void
MemoryArray::resumePowered(Volt v)
{
    if (state_ != PowerState::Retained)
        panic("MemoryArray ", name_, ": resumePowered while ",
              toString(state_));
    state_ = PowerState::Powered;
    supply_ = v;
    if (trace::enabled())
        traceTransition(PowerState::Retained, PowerState::Powered, v);
}

uint8_t
MemoryArray::readByte(size_t addr) const
{
    requirePowered("readByte");
    if (addr >= bytes_.size())
        panic("MemoryArray ", name_, ": read out of range: ", addr);
    return bytes_[addr];
}

void
MemoryArray::writeByte(size_t addr, uint8_t value)
{
    requirePowered("writeByte");
    if (addr >= bytes_.size())
        panic("MemoryArray ", name_, ": write out of range: ", addr);
    bytes_[addr] = value;
}

void
MemoryArray::read(size_t addr, std::span<uint8_t> out) const
{
    requirePowered("read");
    if (addr + out.size() > bytes_.size())
        panic("MemoryArray ", name_, ": block read out of range");
    std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void
MemoryArray::write(size_t addr, std::span<const uint8_t> data)
{
    requirePowered("write");
    if (addr + data.size() > bytes_.size())
        panic("MemoryArray ", name_, ": block write out of range");
    std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

uint64_t
MemoryArray::readWord64(size_t addr) const
{
    requirePowered("readWord64");
    if (addr + 8 > bytes_.size())
        panic("MemoryArray ", name_, ": word read out of range: ", addr);
    uint64_t v;
    std::memcpy(&v, bytes_.data() + addr, 8);
    return v;
}

void
MemoryArray::writeWord64(size_t addr, uint64_t value)
{
    requirePowered("writeWord64");
    if (addr + 8 > bytes_.size())
        panic("MemoryArray ", name_, ": word write out of range: ", addr);
    std::memcpy(bytes_.data() + addr, &value, 8);
}

std::vector<uint8_t>
MemoryArray::snapshot() const
{
    if (state_ == PowerState::Off)
        panic("MemoryArray ", name_,
              ": snapshot of an unpowered array is physically meaningless");
    return bytes_;
}

void
MemoryArray::fill(uint8_t value)
{
    requirePowered("fill");
    std::fill(bytes_.begin(), bytes_.end(), value);
}

} // namespace voltboot

#include "sram/memory_array.hh"

#include <bit>
#include <cmath>
#include <cstring>

#include "sim/cell_hash_batch.hh"
#include "sim/logging.hh"
#include "sram/retention_kernel.hh"
#include "telemetry/counters.hh"
#include "trace/trace.hh"

namespace voltboot
{

namespace
{

/** Above this many cells the FastCached bucket planes (4 bytes per
 * cell per channel) are not worth their memory; hash on the fly
 * instead. Half-width bucket entries let the cap sit one doubling
 * higher than the original 8-byte raw planes at the same byte
 * budget, so every real SRAM in the modeled SoCs — and 4 MiB bench
 * planes — stays on the cached path; only DRAM-scale arrays hash. */
constexpr uint64_t kPlaneCacheMaxBits = uint64_t{1} << 25;

/** Valid-lane mask for a word covering @p n <= 64 cells. */
inline uint64_t
laneMask(unsigned n)
{
    return n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

/**
 * Fresh power-up draws for the metastable cells selected by @p mask
 * (cell indices cell0 + bit) at power-up nonce @p nonce, returned as a
 * word with draw values at the mask positions and zeros elsewhere.
 *
 * Draw keys are hashCombine(cell, nonce) — non-consecutive — so the
 * hashes go through the gathered batch. The per-cell bias threshold is
 * taken from @p lane_cutoffs (the word's slice of the rank-compressed
 * FingerprintPlanes::meta_cutoffs table, one entry per set bit of
 * @p mask in bit order) when memoised, otherwise recomputed on the fly
 * from the bias channel: the double math is identical to
 * metastableTheta()/metastableDraw() (uniformFromRaw of the batched raw
 * hash), so the integer compare against rawUniformCountBelow(theta) is
 * bit-exact with the reference draw either way, and DRAM-scale arrays
 * carry no per-metastable-cell storage.
 */
uint64_t
rerolledDraws(const RetentionModel &model, uint64_t cell0, uint64_t mask,
              uint64_t nonce, const uint64_t *lane_cutoffs = nullptr)
{
    const CellRng &rng = model.rng();
    uint64_t cells[64], keys[64], draws[64];
    unsigned n = 0;
    for (uint64_t m = mask; m; m &= m - 1) {
        const uint64_t cell = cell0 + std::countr_zero(m);
        cells[n] = cell;
        keys[n] = hashCombine(cell, nonce);
        ++n;
    }
    cellBitsBatchIndexed(rng, keys, RetentionModel::ChannelMetastableDraw,
                         n, draws);
    uint64_t out = 0;
    uint64_t m = mask;
    if (lane_cutoffs) {
        for (unsigned i = 0; i < n; ++i, m &= m - 1) {
            const int b = std::countr_zero(m);
            const uint64_t value = (draws[i] >> 11) < lane_cutoffs[i];
            out |= value << b;
        }
        return out;
    }
    const RetentionConfig &cfg = model.config();
    uint64_t biases[64];
    cellBitsBatchIndexed(rng, cells, RetentionModel::ChannelMetastableBias,
                         n, biases);
    const double bias_lo = cfg.metastable_bias_min;
    const double bias_range = cfg.metastable_bias_max - bias_lo;
    for (unsigned i = 0; i < n; ++i, m &= m - 1) {
        const int b = std::countr_zero(m);
        const double theta =
            bias_lo +
            CellRng::uniformFromRaw(biases[i] >> 11) * bias_range;
        const uint64_t value =
            (draws[i] >> 11) < CellRng::rawUniformCountBelow(theta);
        out |= value << b;
    }
    return out;
}

/**
 * Re-roll every metastable cell of @p bits in place at power-up nonce
 * @p nonce. Only words with metastable bits are touched. @p cutoffs /
 * @p rank are the planes' rank-compressed cutoff table (may be null);
 * because every metastable bit of a word re-rolls here, word w's lanes
 * are exactly cutoffs[rank[w]...].
 */
void
rerollMetastable(BitPlane &bits, const BitPlane &metastable,
                 const RetentionModel &model, uint64_t nonce,
                 const uint64_t *cutoffs = nullptr,
                 const uint32_t *rank = nullptr)
{
    const size_t nwords = bits.sizeWords();
    uint64_t *words = bits.words();
    const uint64_t *ms = metastable.words();
    for (size_t w = 0; w < nwords; ++w) {
        const uint64_t m = ms[w];
        if (!m)
            continue;
        words[w] = (words[w] & ~m) |
                   rerolledDraws(model, w * 64, m, nonce,
                                 cutoffs ? cutoffs + rank[w] : nullptr);
    }
}

} // namespace

const char *
toString(PowerState state)
{
    switch (state) {
      case PowerState::Powered:
        return "Powered";
      case PowerState::Retained:
        return "Retained";
      case PowerState::Off:
        return "Off";
    }
    return "?";
}

MemoryArray::MemoryArray(std::string name, size_t size_bytes,
                         const RetentionConfig &config, uint64_t chip_seed,
                         uint64_t array_id)
    : name_(std::move(name)), size_bytes_(size_bytes),
      model_(config, CellRng(chip_seed, array_id)),
      chip_seed_(chip_seed), array_id_(array_id)
{
    if (size_bytes == 0)
        fatal("MemoryArray ", name_, ": size must be nonzero");
    // Both per-array planes come from one tight arena block.
    const uint64_t nbits = sizeBits();
    arena_.reserve(2 * PlaneArena::alignWords(BitPlane::wordsFor(nbits)));
    bits_ = arena_.allocBits(nbits);
    loss_ = arena_.allocBits(nbits);
}

void
MemoryArray::requirePowered(const char *op) const
{
    if (state_ != PowerState::Powered)
        panic("MemoryArray ", name_, ": ", op, " while ",
              toString(state_));
}

bool
MemoryArray::agedPowerUpState(uint64_t cell, const CellParams &p,
                              uint64_t nonce) const
{
    const bool base = model_.powerUpState(cell, p, nonce);
    if (imprint_.empty())
        return base;
    const double s = imprint_[cell];
    if (s == 0.0)
        return base;
    // Imprint drift: with weight w = |s| / (|s| + 20 years), the cell
    // powers up to the imprinted value instead of its intrinsic state.
    const double w = std::abs(s) / (std::abs(s) + 20.0);
    const bool imprinted = s > 0.0;
    const double u = model_.rng().uniform(
        hashCombine(cell, nonce), RetentionModel::ChannelStability + 100);
    return u < w ? imprinted : base;
}

template <typename SurvivesFn>
void
MemoryArray::applyLoss(SurvivesFn survives)
{
    // Invocation-granularity counts: one add per pass, never per cell.
    telemetry::add(telemetry::Counter::KernelReference);
    telemetry::add(telemetry::Counter::CellsProcessed, sizeBits());
    const uint64_t nonce = power_up_count_;
    uint64_t lost = 0;
    for (size_t byte = 0; byte < size_bytes_; ++byte) {
        const uint8_t v = bits_.byteAt(byte);
        uint8_t out = 0, loss8 = 0;
        for (int bit = 0; bit < 8; ++bit) {
            const uint64_t cell = byte * 8 + bit;
            const CellParams p = model_.cellParams(cell);
            bool value;
            if (survives(p)) {
                value = (v >> bit) & 1;
            } else {
                value = agedPowerUpState(cell, p, nonce);
                loss8 |= 1u << bit;
                ++lost;
            }
            out |= static_cast<uint8_t>(value) << bit;
        }
        bits_.setByte(byte, out);
        loss_.setByte(byte, loss8);
    }
    last_cells_lost_ = lost;
}

void
MemoryArray::age(double years)
{
    requirePowered("age");
    if (years <= 0.0)
        fatal("MemoryArray ", name_, ": aging needs positive duration");
    if (imprint_.empty())
        imprint_.assign(sizeBits(), 0.0f);
    for (size_t byte = 0; byte < size_bytes_; ++byte) {
        const uint8_t v = bits_.byteAt(byte);
        for (int bit = 0; bit < 8; ++bit) {
            const float delta =
                ((v >> bit) & 1) ? static_cast<float>(years)
                                 : -static_cast<float>(years);
            imprint_[byte * 8 + bit] += delta;
        }
    }
}

double
MemoryArray::imprintYears(uint64_t bit) const
{
    if (imprint_.empty() || bit >= imprint_.size())
        return 0.0;
    return imprint_[bit];
}

void
MemoryArray::ensureFingerprint() const
{
    if (planes_)
        return;
    FingerprintKey key;
    key.chip_seed = chip_seed_;
    key.array_id = array_id_;
    key.size_bytes = size_bytes_;
    key.metastable_fraction = model_.config().metastable_fraction;
    key.metastable_bias_min = model_.config().metastable_bias_min;
    key.metastable_bias_max = model_.config().metastable_bias_max;
    planes_ = acquireFingerprintPlanes(
        key, [this] { return buildFingerprintPlanes(); });
}

FingerprintPlanes
MemoryArray::buildFingerprintPlanes() const
{
    FingerprintPlanes planes;
    const uint64_t nbits = sizeBits();
    planes.arena.reserve(
        3 * PlaneArena::alignWords(BitPlane::wordsFor(nbits)));
    planes.fingerprint = planes.arena.allocBits(nbits);
    planes.metastable_mask = planes.arena.allocBits(nbits);
    planes.initial_bits = planes.arena.allocBits(nbits);

    // Only the power-up and stability channels matter here; deriving
    // them directly (and turning the stability compare into an integer
    // threshold on the raw hash — exact, see CellRng::
    // rawUniformCountBelow) skips the two inverse-normal-CDF
    // evaluations cellParams() would burn per cell. The stable/
    // metastable split is hoisted once into these planes; power-up
    // re-rolls later touch only words with metastable bits. Each word
    // of either plane is one mask-derivation call (eight AVX-512
    // compares on wide hosts, see sim/cell_hash_batch).
    const CellRng &rng = model_.rng();
    const uint64_t meta_min_raw = CellRng::rawUniformCountBelow(
        model_.config().metastable_fraction);
    uint64_t *fp = planes.fingerprint.words();
    uint64_t *ms = planes.metastable_mask.words();
    const size_t nwords = planes.fingerprint.sizeWords();
    for (size_t w = 0; w < nwords; ++w) {
        const uint64_t cell0 = w * 64;
        const unsigned n =
            static_cast<unsigned>(std::min<uint64_t>(64, nbits - cell0));
        fp[w] = cellLsbMaskBatch(rng, cell0,
                                 RetentionModel::ChannelPowerUp, n);
        // Metastable iff the raw stability hash is below the fraction
        // threshold: complement of the >= mask, valid lanes only.
        uint64_t in_band;
        const uint64_t ge = cellBandMaskBatch(
            rng, cell0, RetentionModel::ChannelStability, n,
            meta_min_raw, meta_min_raw, &in_band);
        ms[w] = ~ge & laneMask(n);
    }
    // Rank-compressed bias cutoff table: the bias theta is
    // wake-independent silicon, so its rawUniformCountBelow() image is
    // derived once per die and every later re-roll becomes one integer
    // compare. Skipped above the plane-cache cap — the table costs
    // 8 bytes per metastable cell, which DRAM-scale planes do not pay.
    if (nbits <= kPlaneCacheMaxBits) {
        const double bias_lo = model_.config().metastable_bias_min;
        const double bias_range =
            model_.config().metastable_bias_max - bias_lo;
        planes.meta_rank.resize(nwords);
        planes.meta_cutoffs.reserve(
            static_cast<size_t>(planes.metastable_mask.popcount()));
        uint64_t biases[64];
        for (size_t w = 0; w < nwords; ++w) {
            planes.meta_rank[w] =
                static_cast<uint32_t>(planes.meta_cutoffs.size());
            if (!ms[w])
                continue;
            const unsigned n = static_cast<unsigned>(
                std::min<uint64_t>(64, nbits - w * 64));
            cellBitsBatch(rng, w * 64,
                          RetentionModel::ChannelMetastableBias, n,
                          biases);
            for (uint64_t m = ms[w]; m; m &= m - 1) {
                const int b = std::countr_zero(m);
                const double theta =
                    bias_lo +
                    CellRng::uniformFromRaw(biases[b] >> 11) * bias_range;
                planes.meta_cutoffs.push_back(
                    CellRng::rawUniformCountBelow(theta));
            }
        }
    }
    // First-power-on contents: the fingerprint with every metastable
    // cell at its nonce-1 draw. Trials all start from this exact state,
    // so sharing it turns their first power-up into a memcpy.
    planes.initial_bits.copyFrom(planes.fingerprint);
    rerollMetastable(planes.initial_bits, planes.metastable_mask, model_,
                     /*nonce=*/1,
                     planes.meta_cutoffs.empty()
                         ? nullptr
                         : planes.meta_cutoffs.data(),
                     planes.meta_rank.data());
    return planes;
}

bool
MemoryArray::fastKernelEnabled() const
{
    // Aging imprint modulates every power-up draw per cell, so aged
    // arrays always take the reference path.
    return imprint_.empty() &&
           retentionKernel() != RetentionKernel::Reference;
}

const uint32_t *
MemoryArray::cachedPlane(uint64_t channel) const
{
    if (retentionKernel() != RetentionKernel::FastCached)
        return nullptr;
    if (sizeBits() > kPlaneCacheMaxBits)
        return nullptr;
    auto &plane = channel == RetentionModel::ChannelDrv
                      ? drv_raw_plane_
                      : retention_raw_plane_;
    if (plane.empty()) {
        const CellRng &rng = model_.rng();
        const uint64_t nbits = sizeBits();
        plane.resize(nbits);
        uint64_t hashes[64];
        for (uint64_t cell0 = 0; cell0 < nbits; cell0 += 64) {
            const unsigned n = static_cast<unsigned>(
                std::min<uint64_t>(64, nbits - cell0));
            cellBitsBatch(rng, cell0, channel, n, hashes);
            // Bucket = top 32 of the 53-bit raw = hash >> (11 + 21).
            for (unsigned b = 0; b < n; ++b)
                plane[cell0 + b] =
                    static_cast<uint32_t>(hashes[b] >> 32);
        }
    }
    return plane.data();
}

template <typename ScalarDiesFn>
void
MemoryArray::applyLossFast(uint64_t channel,
                           RetentionModel::ThresholdBand band,
                           bool loss_at_or_above, ScalarDiesFn scalarDies)
{
    telemetry::add(cellHashBatchAccelerated()
                       ? telemetry::Counter::KernelAvx512
                       : telemetry::Counter::KernelScalar);
    telemetry::add(telemetry::Counter::CellsProcessed, sizeBits());
    ensureFingerprint();
    const uint64_t nonce = power_up_count_;
    const CellRng &rng = model_.rng();
    const uint32_t *plane = cachedPlane(channel);
    const uint64_t *cut_table =
        planes_->meta_cutoffs.empty() ? nullptr
                                      : planes_->meta_cutoffs.data();
    const uint32_t *cut_rank = planes_->meta_rank.data();
    const uint64_t nbits = sizeBits();
    const size_t nwords = bits_.sizeWords();
    uint64_t *words = bits_.words();
    uint64_t *loss_words = loss_.words();
    const uint64_t *fp = planes_->fingerprint.words();
    const uint64_t *ms = planes_->metastable_mask.words();
    uint64_t lost = 0;
    // Lost metastable cells re-roll through the gathered hash batch.
    // At typical loss rates only a few bits per word re-roll, so
    // word-at-a-time batches would run at 1-4 of 8 lanes; accumulating
    // the re-roll set over a 16-word chunk keeps the batch full and
    // amortises the per-call cost ~16x.
    constexpr size_t kChunk = 16;
    uint64_t meta_masks[kChunk];
    uint64_t rcells[kChunk * 64], rkeys[kChunk * 64];
    uint64_t rdraws[kChunk * 64], rcuts[kChunk * 64];
    const double bias_lo = model_.config().metastable_bias_min;
    const double bias_range =
        model_.config().metastable_bias_max - bias_lo;
    for (size_t w0 = 0; w0 < nwords; w0 += kChunk) {
        const size_t wend = std::min(w0 + kChunk, nwords);
        unsigned lanes = 0;
        for (size_t w = w0; w < wend; ++w) {
            const uint64_t cell0 = w * 64;
            const unsigned n = static_cast<unsigned>(
                std::min<uint64_t>(64, nbits - cell0));
            // The whole 64-cell word classifies in one mask derivation:
            // one integer compare per cell settles everything outside
            // the guard band, and the expected number of in-band cells
            // per transition is ~band_width / 2^53 * size_bits ~ 1e-3,
            // so the scalar fallback never shows up in profiles.
            uint64_t in_band;
            const uint64_t ge =
                plane ? rawBucketBandMask(plane + cell0, n, band.lo,
                                          band.hi, &in_band)
                      : cellBandMaskBatch(rng, cell0, channel, n,
                                          band.lo, band.hi, &in_band);
            uint64_t loss =
                loss_at_or_above ? ge : (~ge & laneMask(n));
            for (uint64_t gb = in_band; gb; gb &= gb - 1) {
                const int b = std::countr_zero(gb);
                const uint64_t m = uint64_t{1} << b;
                loss =
                    (loss & ~m) |
                    (static_cast<uint64_t>(scalarDies(cell0 + b)) << b);
            }
            loss_words[w] = loss;
            meta_masks[w - w0] = 0;
            if (!loss)
                continue; // whole word survives untouched
            lost += std::popcount(loss);
            // Lost stable cells take their fingerprint bit; lost
            // metastable cells queue for the chunk's re-roll batch.
            words[w] = (words[w] & ~loss) | (fp[w] & loss & ~ms[w]);
            const uint64_t meta_lost = loss & ms[w];
            meta_masks[w - w0] = meta_lost;
            for (uint64_t m = meta_lost; m; m &= m - 1) {
                const int b = std::countr_zero(m);
                const uint64_t cell = cell0 + b;
                rcells[lanes] = cell;
                rkeys[lanes] = hashCombine(cell, nonce);
                if (cut_table) {
                    // Rank of this cell's cutoff: the word's base rank
                    // plus the metastable cells before it in the word.
                    rcuts[lanes] = cut_table
                        [cut_rank[w] +
                         std::popcount(ms[w] & ((uint64_t{1} << b) - 1))];
                }
                ++lanes;
            }
        }
        if (!lanes)
            continue;
        cellBitsBatchIndexed(rng, rkeys,
                             RetentionModel::ChannelMetastableDraw,
                             lanes, rdraws);
        if (!cut_table) {
            // Same double math as metastableTheta(): bit-exact with the
            // reference draw (see rerolledDraws).
            cellBitsBatchIndexed(rng, rcells,
                                 RetentionModel::ChannelMetastableBias,
                                 lanes, rcuts);
            for (unsigned i = 0; i < lanes; ++i) {
                const double theta =
                    bias_lo +
                    CellRng::uniformFromRaw(rcuts[i] >> 11) * bias_range;
                rcuts[i] = CellRng::rawUniformCountBelow(theta);
            }
        }
        unsigned lane = 0;
        for (size_t w = w0; w < wend; ++w) {
            uint64_t add = 0;
            for (uint64_t m = meta_masks[w - w0]; m; m &= m - 1, ++lane) {
                const uint64_t value = (rdraws[lane] >> 11) < rcuts[lane];
                add |= value << std::countr_zero(m);
            }
            words[w] |= add;
        }
    }
    last_cells_lost_ = lost;
    telemetry::drainHashStats();
}

void
MemoryArray::traceTransition(PowerState from, PowerState to, Volt v) const
{
    trace::instant("sram", "sram_state",
                   {{"array", name_},
                    {"from", toString(from)},
                    {"to", toString(to)},
                    {"supply_v", v.volts()}});
}

void
MemoryArray::resolveAllToPowerUp()
{
    last_cells_lost_ = sizeBits();
    if (!imprint_.empty()) {
        // Aged arrays need the per-cell path: imprint drift modulates
        // every power-up draw, so the cached fingerprint is invalid.
        applyLoss([](const CellParams &) { return false; });
        return;
    }
    loss_.setAll();
    if (fastKernelEnabled()) {
        resolveAllToPowerUpFast();
        return;
    }
    telemetry::add(telemetry::Counter::KernelReference);
    telemetry::add(telemetry::Counter::CellsProcessed, sizeBits());
    ensureFingerprint();
    const uint64_t nonce = power_up_count_;
    bits_.copyFrom(planes_->fingerprint);
    // Metastable cells re-roll on every power-up.
    for (size_t byte = 0; byte < size_bytes_; ++byte) {
        const uint8_t msb = planes_->metastable_mask.byteAt(byte);
        if (!msb)
            continue;
        uint8_t v = bits_.byteAt(byte);
        for (int bit = 0; bit < 8; ++bit) {
            if (!((msb >> bit) & 1))
                continue;
            const uint64_t cell = byte * 8 + bit;
            const bool value = model_.metastableDraw(cell, nonce);
            v = (v & ~(1u << bit)) | (static_cast<uint8_t>(value) << bit);
        }
        bits_.setByte(byte, v);
    }
}

void
MemoryArray::resolveAllToPowerUpFast()
{
    telemetry::add(cellHashBatchAccelerated()
                       ? telemetry::Counter::KernelAvx512
                       : telemetry::Counter::KernelScalar);
    telemetry::add(telemetry::Counter::CellsProcessed, sizeBits());
    ensureFingerprint();
    const uint64_t nonce = power_up_count_;
    if (nonce == 1) {
        // First ever power-on: the nonce-1 resolve is precomputed in
        // the shared planes.
        bits_.copyFrom(planes_->initial_bits);
        return;
    }
    // Metastable cells re-roll on every power-up; stable cells are
    // fully resolved by the fingerprint copy, so only words with
    // metastable bits are touched.
    bits_.copyFrom(planes_->fingerprint);
    rerollMetastable(bits_, planes_->metastable_mask, model_, nonce,
                     planes_->meta_cutoffs.empty()
                         ? nullptr
                         : planes_->meta_cutoffs.data(),
                     planes_->meta_rank.data());
    telemetry::drainHashStats();
}

void
MemoryArray::powerUp(Volt v, Seconds off_time, Temperature temp)
{
    if (state_ == PowerState::Powered)
        panic("MemoryArray ", name_, ": powerUp while already Powered");

    ++power_up_count_;
    if (state_ == PowerState::Retained) {
        // Held through the power cycle: nothing decays, but cells whose
        // DRV exceeds the retention voltage were already lost at
        // retainAt() time. Just resume.
        state_ = PowerState::Powered;
        supply_ = v;
        if (trace::enabled())
            traceTransition(PowerState::Retained, PowerState::Powered, v);
        return;
    }

    last_cells_lost_ = 0;
    if (!ever_powered_) {
        // First ever power-on: every cell resolves to its power-up state.
        resolveAllToPowerUp();
        ever_powered_ = true;
    } else {
        // Array-level fast paths bound the per-cell work: when the
        // expected survival is essentially 0 or 1 no individual cell can
        // deviate from it beyond the lognormal's far tail.
        const double p_survive = model_.expectedSurvival(off_time, temp);
        if (p_survive < 1e-12) {
            resolveAllToPowerUp();
        } else if (p_survive <= 1.0 - 1e-12) {
            if (fastKernelEnabled()) {
                // Survive iff the raw retention hash is at/above the
                // band, i.e. lose iff below it.
                applyLossFast(
                    RetentionModel::ChannelRetention,
                    model_.decaySurvivalBand(off_time, temp),
                    /*loss_at_or_above=*/false, [&](uint64_t cell) {
                        return !model_.survivesUnpowered(
                            model_.cellParams(cell), off_time, temp);
                    });
            } else {
                applyLoss([&](const CellParams &p) {
                    return model_.survivesUnpowered(p, off_time, temp);
                });
            }
        } else {
            // Everything survives; contents untouched.
            loss_.clear();
        }
    }
    state_ = PowerState::Powered;
    supply_ = v;
    if (trace::enabled()) {
        traceTransition(PowerState::Off, PowerState::Powered, v);
        trace::instant("sram", "sram_decay",
                       {{"array", name_},
                        {"off_s", off_time.seconds()},
                        {"temp_c", temp.celsiusDegrees()},
                        {"cells_flipped", last_cells_lost_},
                        {"size_bits", sizeBits()}});
    }
}

void
MemoryArray::powerDown()
{
    if (state_ == PowerState::Off)
        return;
    const PowerState from = state_;
    state_ = PowerState::Off;
    supply_ = Volt(0.0);
    if (trace::enabled())
        traceTransition(from, PowerState::Off, Volt(0.0));
}

void
MemoryArray::retainAt(Volt v)
{
    if (state_ == PowerState::Off)
        panic("MemoryArray ", name_,
              ": cannot retain an already-unpowered array");
    // Cells that need more than the retention voltage lose state now.
    droopTo(v);
    const PowerState from = state_;
    state_ = PowerState::Retained;
    supply_ = v;
    ever_powered_ = true;
    if (trace::enabled())
        traceTransition(from, PowerState::Retained, v);
}

void
MemoryArray::droopTo(Volt v_min)
{
    if (state_ == PowerState::Off)
        panic("MemoryArray ", name_, ": droop while Off");
    last_cells_lost_ = 0;
    if (v_min >= model_.config().drv_max) {
        // Above every possible DRV: nothing can flip.
        loss_.clear();
    } else if (v_min <= model_.config().drv_min) {
        resolveAllToPowerUp();
    } else if (fastKernelEnabled()) {
        // A cell dies iff its raw DRV hash is at/above the band
        // (higher hash => higher DRV).
        applyLossFast(RetentionModel::ChannelDrv,
                      model_.droopLossBand(v_min),
                      /*loss_at_or_above=*/true, [&](uint64_t cell) {
                          return !model_.survivesAtVoltage(
                              model_.cellParams(cell), v_min);
                      });
    } else {
        applyLoss([&](const CellParams &p) {
            return model_.survivesAtVoltage(p, v_min);
        });
    }
    if (trace::enabled()) {
        trace::instant("sram", "sram_droop",
                       {{"array", name_},
                        {"v_min", v_min.volts()},
                        {"cells_flipped", last_cells_lost_},
                        {"size_bits", sizeBits()}});
    }
}

void
MemoryArray::resumePowered(Volt v)
{
    if (state_ != PowerState::Retained)
        panic("MemoryArray ", name_, ": resumePowered while ",
              toString(state_));
    state_ = PowerState::Powered;
    supply_ = v;
    if (trace::enabled())
        traceTransition(PowerState::Retained, PowerState::Powered, v);
}

uint8_t
MemoryArray::readByte(size_t addr) const
{
    requirePowered("readByte");
    if (addr >= size_bytes_)
        panic("MemoryArray ", name_, ": read out of range: ", addr);
    return bits_.byteAt(addr);
}

void
MemoryArray::writeByte(size_t addr, uint8_t value)
{
    requirePowered("writeByte");
    if (addr >= size_bytes_)
        panic("MemoryArray ", name_, ": write out of range: ", addr);
    bits_.setByte(addr, value);
}

void
MemoryArray::read(size_t addr, std::span<uint8_t> out) const
{
    requirePowered("read");
    if (addr + out.size() > size_bytes_)
        panic("MemoryArray ", name_, ": block read out of range");
    bits_.readBytes(addr, out.data(), out.size());
}

void
MemoryArray::write(size_t addr, std::span<const uint8_t> data)
{
    requirePowered("write");
    if (addr + data.size() > size_bytes_)
        panic("MemoryArray ", name_, ": block write out of range");
    bits_.writeBytes(addr, data.data(), data.size());
}

uint64_t
MemoryArray::readWord64(size_t addr) const
{
    requirePowered("readWord64");
    if (addr + 8 > size_bytes_)
        panic("MemoryArray ", name_, ": word read out of range: ", addr);
    uint64_t v;
    bits_.readBytes(addr, reinterpret_cast<uint8_t *>(&v), 8);
    return v;
}

void
MemoryArray::writeWord64(size_t addr, uint64_t value)
{
    requirePowered("writeWord64");
    if (addr + 8 > size_bytes_)
        panic("MemoryArray ", name_, ": word write out of range: ", addr);
    bits_.writeBytes(addr, reinterpret_cast<const uint8_t *>(&value), 8);
}

std::vector<uint8_t>
MemoryArray::snapshot() const
{
    if (state_ == PowerState::Off)
        panic("MemoryArray ", name_,
              ": snapshot of an unpowered array is physically meaningless");
    return bits_.toBytes();
}

void
MemoryArray::fill(uint8_t value)
{
    requirePowered("fill");
    bits_.fillBytes(value);
}

} // namespace voltboot

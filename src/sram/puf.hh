/**
 * @file
 * SRAM power-up-state applications: PUF and TRNG.
 *
 * Section 5.2.4 explains why vendors ship SoCs whose SRAM powers up
 * uninitialised — the startup state has security applications: physical
 * unclonable functions (Holcomb et al.) and true random number
 * generation. That design choice is one of Volt Boot's enablers (no
 * reset hardware exists to clear retained data), so this module makes
 * the trade-off concrete and measurable: the same metastable-cell
 * physics that gives a usable PUF/TRNG is what a boot-time reset
 * countermeasure would destroy.
 */

#ifndef VOLTBOOT_SRAM_PUF_HH
#define VOLTBOOT_SRAM_PUF_HH

#include <cstdint>
#include <vector>

#include "sram/memory_array.hh"
#include "sram/memory_image.hh"

namespace voltboot
{

/** Quality metrics of an SRAM PUF over a set of observations. */
struct PufMetrics
{
    /** Mean fractional HD between repeated power-ups of one chip
     * (lower = more reliable; ~metastable_fraction / 2). */
    double intra_chip_hd = 0.0;
    /** Mean fractional HD between different chips (ideal 0.5). */
    double inter_chip_hd = 0.0;
    /** Fraction of ones across observations (ideal 0.5). */
    double uniformity = 0.0;
};

/**
 * An SRAM power-up PUF over a MemoryArray.
 *
 * Enrollment captures a reference fingerprint (with majority voting over
 * several power-ups to mask metastable cells); authentication power-
 * cycles the array and accepts when the fractional HD to the reference
 * is below a threshold sized between the intra- and inter-chip
 * distributions.
 */
class SramPuf
{
  public:
    /**
     * @param array       The SRAM whose power-up state is the PUF.
     * @param vote_rounds Power-ups used for majority-vote enrollment.
     * @param threshold   Accept when fractional HD < threshold.
     */
    SramPuf(MemoryArray &array, unsigned vote_rounds = 5,
            double threshold = 0.25)
        : array_(array), vote_rounds_(vote_rounds), threshold_(threshold)
    {}

    /** Capture one raw power-up observation (power cycles the array). */
    MemoryImage observe();

    /** Enroll: build the majority-voted reference fingerprint. */
    void enroll();

    bool enrolled() const { return !reference_.empty(); }
    const MemoryImage &reference() const { return reference_img_; }

    /**
     * Authenticate the chip: fresh power-up, compare to the reference.
     * @param out_hd Receives the measured fractional HD if non-null.
     */
    bool authenticate(double *out_hd = nullptr);

    /** Measure intra-chip stability over @p rounds observations. */
    double measureIntraChipHd(unsigned rounds = 8);

  private:
    MemoryArray &array_;
    unsigned vote_rounds_;
    double threshold_;
    std::vector<uint8_t> reference_;
    MemoryImage reference_img_;
};

/**
 * TRNG harvesting the metastable cells of SRAM power-up state.
 *
 * Enrollment identifies cells that flip across power-ups; extraction
 * reads only those cells on each power-up and Von Neumann-debiases
 * consecutive pairs into output bits.
 */
class SramTrng
{
  public:
    explicit SramTrng(MemoryArray &array) : array_(array) {}

    /** Find metastable cells by differencing @p rounds power-ups. */
    void calibrate(unsigned rounds = 6);

    size_t noisyCellCount() const { return noisy_cells_.size(); }

    /**
     * Harvest up to @p bits random bits (may power-cycle the array
     * multiple times). Returns the debiased bitstream.
     */
    std::vector<bool> harvest(size_t bits);

    /** Monobit frequency statistic: |#1 - #0| / n (small is good). */
    static double bias(const std::vector<bool> &bits);

    /** Serial correlation between adjacent bits (near 0 is good). */
    static double serialCorrelation(const std::vector<bool> &bits);

  private:
    MemoryArray &array_;
    std::vector<uint64_t> noisy_cells_;
};

/** Survey PUF quality across a population of simulated chips. */
PufMetrics measurePufMetrics(size_t array_bytes, size_t chips,
                             unsigned observations_per_chip,
                             uint64_t seed_base = 0x90f);

} // namespace voltboot

#endif // VOLTBOOT_SRAM_PUF_HH

/**
 * @file
 * Runtime selection of the per-cell retention kernel.
 *
 * The retention hot path (power-up resolve, unpowered decay, voltage
 * droop) has two bit-identical implementations:
 *
 *  - Fast: the threshold-transformed kernels — per-transition binary
 *    search finds the exact raw-hash cutoff once, then each cell is one
 *    integer compare and the results are applied 64 cells at a time
 *    with word-level bit ops (see docs/PERFORMANCE.md).
 *  - FastCached: Fast, plus a per-array cache of the raw 53-bit uniform
 *    planes for the DRV and retention channels, so repeated transitions
 *    on the same array skip even the per-cell hash chains.
 *  - Reference: the original scalar path — per-cell splitmix hash
 *    chains, Acklam's inverse normal CDF and an exp() per transition.
 *
 * The selection is process-global (campaign workers construct hermetic
 * per-trial SoCs, so a global is both safe and what the CLI wants) and
 * can be set three ways, in increasing priority: the built-in default
 * (Fast), the VOLTBOOT_RETENTION_KERNEL environment variable, and
 * setRetentionKernel() (driven by the CLI's --retention-path flag).
 */

#ifndef VOLTBOOT_SRAM_RETENTION_KERNEL_HH
#define VOLTBOOT_SRAM_RETENTION_KERNEL_HH

#include <string_view>

namespace voltboot
{

/** Which implementation the retention hot path runs. */
enum class RetentionKernel
{
    Fast,       ///< Threshold compares + word-masked application.
    FastCached, ///< Fast + cached per-array raw parameter planes.
    Reference,  ///< Original scalar per-cell transcendental path.
};

/** Current process-wide kernel selection (thread-safe). */
RetentionKernel retentionKernel();

/** Override the process-wide kernel selection (thread-safe). */
void setRetentionKernel(RetentionKernel kernel);

/**
 * Parse "fast", "fast-cached" or "reference" into @p out.
 * @return false (leaving @p out untouched) on any other spelling.
 */
bool parseRetentionKernel(std::string_view name, RetentionKernel &out);

/** Canonical spelling of @p kernel (the strings parse() accepts). */
const char *toString(RetentionKernel kernel);

} // namespace voltboot

#endif // VOLTBOOT_SRAM_RETENTION_KERNEL_HH

/**
 * @file
 * Bit-level memory images and the analysis primitives used throughout the
 * paper's evaluation: Hamming distance, ones-density, per-block error
 * profiles (Figure 10), visual bitmaps (Figures 3/7/8/9) and pattern
 * search (the "grep the i-cache" step of Section 7.1.2).
 */

#ifndef VOLTBOOT_SRAM_MEMORY_IMAGE_HH
#define VOLTBOOT_SRAM_MEMORY_IMAGE_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace voltboot
{

/** An immutable snapshot of memory contents taken during an attack. */
class MemoryImage
{
  public:
    MemoryImage() = default;
    explicit MemoryImage(std::vector<uint8_t> bytes)
        : bytes_(std::move(bytes))
    {}

    /** Construct filled with @p value. */
    static MemoryImage filled(size_t size, uint8_t value);

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    size_t sizeBytes() const { return bytes_.size(); }
    size_t sizeBits() const { return bytes_.size() * 8; }
    bool empty() const { return bytes_.empty(); }
    uint8_t byteAt(size_t i) const { return bytes_.at(i); }

    /** Bit value at bit index @p bit (LSB-first within each byte). */
    bool bitAt(size_t bit) const;

    /** A sub-range [offset, offset+length) of the image. */
    MemoryImage slice(size_t offset, size_t length) const;

    /** Number of bits set across the image. */
    size_t popcount() const;

    /** Fraction of bits set (~0.5 for an uninitialised SRAM image). */
    double onesDensity() const;

    /** Shannon entropy of the byte distribution, in bits per byte. */
    double byteEntropy() const;

    /** Number of differing bits between two equal-sized images. */
    static size_t hammingDistance(const MemoryImage &a, const MemoryImage &b);

    /** Hamming distance normalised by total bits (0 = identical). */
    static double fractionalHamming(const MemoryImage &a,
                                    const MemoryImage &b);

    /**
     * Hamming distance per @p granularity_bits block — the Figure 10
     * error-location profile. The last partial block (if any) is included.
     */
    static std::vector<size_t> blockHamming(const MemoryImage &a,
                                            const MemoryImage &b,
                                            size_t granularity_bits);

    /**
     * Byte offsets of every occurrence of @p needle (may overlap) —
     * used to grep an i-cache dump for known machine code.
     */
    std::vector<size_t> findAll(std::span<const uint8_t> needle) const;

    /** True if @p needle occurs at least once. */
    bool contains(std::span<const uint8_t> needle) const;

    /**
     * Count how many aligned @p element_size-byte elements of @p pattern
     * sequence appear in the image — the Table 4 "array elements
     * recovered" metric. @p elements holds the ground-truth elements; an
     * element counts as recovered when all its bytes appear contiguously
     * at some aligned offset.
     */
    size_t countRecoveredElements(std::span<const uint64_t> elements) const;

    /**
     * Render the bit image as a PBM (portable bitmap, P1) of the given
     * width in bits; height derives from the image size. This is how the
     * cache/iRAM figures are produced.
     */
    std::string toPbm(size_t width_bits) const;

    /**
     * Render a grayscale PGM (P2) where each pixel is one byte value —
     * used for the iRAM bitmap-extraction figure.
     */
    std::string toPgm(size_t width_bytes) const;

    /** Classic 16-byte-per-line hex dump (debugging aid). */
    std::string hexdump(size_t max_bytes = 256) const;

  private:
    std::vector<uint8_t> bytes_;
};

} // namespace voltboot

#endif // VOLTBOOT_SRAM_MEMORY_IMAGE_HH

/**
 * @file
 * Physical retention model for simulated SRAM/DRAM cells.
 *
 * The model captures the three phenomena the paper's attack and its
 * baselines hinge on:
 *
 *  1. Data retention voltage (DRV): a powered cell keeps its bit iff its
 *     supply stays at or above a per-cell DRV drawn from process variation
 *     (Holcomb et al., "DRV-fingerprinting"). This is what lets Volt Boot
 *     retain data with an external probe, and what loses bits when a weak
 *     probe droops during the power-cycle current surge.
 *
 *  2. Unpowered decay: with the supply removed, a cell's state survives for
 *     a per-cell retention time that shrinks exponentially with
 *     temperature (Arrhenius). Retention times are lognormal across cells,
 *     producing the smooth retention-vs-time curves in the SRAM remanence
 *     literature (~80% retention at -110 degC for 20 ms, ~0% at -40 degC).
 *     DRAM uses the same law with a vastly larger time constant, which is
 *     why classic cold boot works on DRAM and fails on SRAM.
 *
 *  3. Power-up state: a cell that lost its charge resolves to a
 *     process-determined power-up bit; most cells are strongly skewed
 *     (stable fingerprint / PUF behaviour) while a metastable fraction
 *     powers up randomly each time.
 */

#ifndef VOLTBOOT_SRAM_RETENTION_MODEL_HH
#define VOLTBOOT_SRAM_RETENTION_MODEL_HH

#include <cstdint>

#include "sim/rng.hh"
#include "sim/units.hh"

namespace voltboot
{

/** Physical parameters of a single simulated memory cell. */
struct CellParams
{
    /** Minimum supply voltage at which the cell keeps its state. */
    Volt drv;
    /**
     * Standard-normal deviate scaling this cell's retention time within
     * the array's lognormal distribution.
     */
    double retention_z;
    /** The bit this cell resolves to after losing its state. */
    bool power_up_bit;
    /** True if the cell powers up randomly instead of to power_up_bit. */
    bool metastable;
};

/** Distribution/calibration constants for a cell technology. */
struct RetentionConfig
{
    /** Mean data retention voltage across cells. */
    Volt drv_mean = Volt::millivolts(250);
    /** Process-variation sigma of the DRV. */
    Volt drv_sigma = Volt::millivolts(35);
    /** Hard physical bounds on the DRV. */
    Volt drv_min = Volt::millivolts(50);
    Volt drv_max = Volt::millivolts(550);

    /**
     * Natural log of the median unpowered retention time (seconds) at
     * ref_temperature. SRAM default calibrates to ~1.5 us at 25 degC.
     */
    double log_median_retention_ref = -13.42;
    /** Lognormal sigma of retention time across cells. */
    double retention_sigma_ln = 1.0;
    /**
     * Arrhenius activation temperature Ea / k_B in kelvin. 3731 K
     * corresponds to Ea ~ 0.32 eV, calibrated so the SRAM anchors
     * (80% @ -110 degC / 20 ms, ~0% @ -40 degC / 2 ms) hold.
     */
    double arrhenius_kelvin = 3731.0;
    /** Reference temperature for log_median_retention_ref. */
    Temperature ref_temperature = Temperature::celsius(25.0);

    /**
     * Fraction of cells whose power-up state is metastable. Metastable
     * cells are not fair coins: each has a per-cell bias drawn uniformly
     * from [metastable_bias_min, metastable_bias_max], which is what
     * makes majority-vote PUF enrollment effective. The fraction is
     * calibrated so the fractional Hamming distance between two
     * power-ups of the same array is ~0.10 — the figure the paper's
     * Table 1 reports for cache content after a power cycle vs the
     * cache's startup state.
     */
    double metastable_fraction = 0.27;
    double metastable_bias_min = 0.05;
    double metastable_bias_max = 0.95;

    /** Technology defaults. */
    static RetentionConfig sram6t();
    static RetentionConfig dram();
};

/**
 * Evaluates cell survival under voltage and temperature stress.
 *
 * All randomness comes from a CellRng keyed by (chip seed, array id), so a
 * given simulated chip behaves like one physical piece of silicon: the same
 * cells are weak on every run.
 */
class RetentionModel
{
  public:
    RetentionModel(const RetentionConfig &config, const CellRng &rng)
        : config_(config), rng_(rng)
    {}

    /** Per-cell parameter channels in the CellRng hash space. */
    enum Channel : uint64_t
    {
        ChannelDrv = 1,
        ChannelRetention = 2,
        ChannelPowerUp = 3,
        ChannelStability = 4,
        ChannelMetastableDraw = 5,
        ChannelMetastableBias = 6,
    };

    /** Derive the physical parameters of cell @p cell. */
    CellParams cellParams(uint64_t cell) const;

    /** The DRV a standard-normal deviate @p z maps to (mean + sigma * z,
     * clamped to the physical bounds) — the exact per-cell math. */
    Volt drvFromZ(double z) const;

    /*
     * Threshold transforms (see docs/PERFORMANCE.md). Every survival
     * predicate in this model is monotone in the 53-bit raw uniform
     * hash behind the relevant parameter channel *up to floating-point
     * noise*: the raw -> uniform step is exactly monotone, but Acklam's
     * inverse-CDF evaluation wobbles by a few ulps and jumps by up to
     * ~2.3e-9 in z at its branch seams (both branches approximate the
     * true quantile within 1.15e-9). A binary search over the hash
     * space — evaluating the *exact* scalar predicate, FP rounding
     * included — therefore yields a cutoff that classifies every raw
     * value identically to the scalar path except possibly inside a
     * narrow slop window around the cutoff. The returned ThresholdBand
     * widens the cutoff by a guard band that provably contains every
     * such deviation: outside [lo, hi) the integer compare is
     * bit-exact; the (vanishingly rare) cells whose hash lands inside
     * the band are re-evaluated with the scalar predicate.
     */

    /**
     * Exclusive raw-hash window around a searched threshold.
     * Classification below lo and at/above hi is exact; raw values in
     * [lo, hi) must be resolved by the scalar predicate.
     */
    struct ThresholdBand
    {
        uint64_t lo;
        uint64_t hi;
    };

    /**
     * Bound on how far (in z units) the FP-evaluated uniform->normal
     * chain can deviate from exact monotonicity: seam jumps are
     * <= 2.3e-9 and ulp wobble is ~1e-15, so 1e-8 carries > 4x margin.
     */
    static constexpr double kGuardSlopZ = 1e-8;

    /**
     * The guard half-window in raw-hash steps: a z interval of width
     * 2 * kGuardSlopZ maps to at most 2 * kGuardSlopZ * phi_max * 2^53
     * raw values (phi_max = standard normal density peak ~0.39894).
     */
    static constexpr uint64_t kGuardBandRaw =
        static_cast<uint64_t>(2.0 * kGuardSlopZ * 0.3989422804014327 *
                              0x1.0p53) +
        1;

    /**
     * Decay threshold: with band = decaySurvivalBand(off, t), a cell
     * with raw = rng().rawUniform(cell, ChannelRetention) is guaranteed
     * to lose state when raw < band.lo and to survive when raw >=
     * band.hi, bit-exactly matching survivesUnpowered(cellParams(c),
     * off, t); raws inside the band need the scalar predicate.
     */
    ThresholdBand decaySurvivalBand(Seconds off_time, Temperature t) const;

    /**
     * Droop threshold: with band = droopLossBand(v), a cell with raw =
     * rng().rawUniform(cell, ChannelDrv) is guaranteed to survive when
     * raw < band.lo and to lose state when raw >= band.hi (higher raw
     * hash => higher DRV), bit-exactly matching survivesAtVoltage();
     * raws inside the band need the scalar predicate. The drv_min/
     * drv_max clamp edges are exact: the search runs over the clamped
     * per-cell DRV math itself.
     */
    ThresholdBand droopLossBand(Volt v) const;

    /**
     * Natural log of the median retention time at temperature @p t,
     * Arrhenius-scaled from the reference point.
     */
    double logMedianRetention(Temperature t) const;

    /**
     * Per-cell unpowered retention time at temperature @p t: lognormal
     * around the Arrhenius-scaled median.
     */
    Seconds retentionTime(const CellParams &p, Temperature t) const;

    /**
     * Does this cell keep its state across an unpowered interval of
     * @p off_time at temperature @p t?
     */
    bool
    survivesUnpowered(const CellParams &p, Seconds off_time,
                      Temperature t) const
    {
        return off_time < retentionTime(p, t);
    }

    /** Does this cell keep its state at supply voltage @p v? */
    bool
    survivesAtVoltage(const CellParams &p, Volt v) const
    {
        return v >= p.drv;
    }

    /**
     * The state the cell resolves to when it has lost its data.
     * @p nonce distinguishes successive power-ups so metastable cells
     * draw a fresh value each time.
     */
    bool
    powerUpState(uint64_t cell, const CellParams &p, uint64_t nonce) const
    {
        if (p.metastable)
            return metastableDraw(cell, nonce);
        return p.power_up_bit;
    }

    /** Per-cell bias of a metastable cell: P(power-up draw == 1). */
    double
    metastableTheta(uint64_t cell) const
    {
        return config_.metastable_bias_min +
               rng_.uniform(cell, ChannelMetastableBias) *
                   (config_.metastable_bias_max -
                    config_.metastable_bias_min);
    }

    /** One power-up draw of a metastable cell at its per-cell bias. */
    bool
    metastableDraw(uint64_t cell, uint64_t nonce) const
    {
        const double u =
            rng_.uniform(hashCombine(cell, nonce), ChannelMetastableDraw);
        return u < metastableTheta(cell);
    }

    /**
     * Expected probability that a metastable cell's draw differs across
     * two power-ups: 2 E[theta (1 - theta)] for the uniform bias.
     * Array-level power-up noise = metastable_fraction * this.
     */
    double
    expectedMetastableFlipRate() const
    {
        const double a = config_.metastable_bias_min;
        const double b = config_.metastable_bias_max;
        const double mean = (a + b) / 2.0;
        const double mean_sq = (a * a + a * b + b * b) / 3.0;
        return 2.0 * (mean - mean_sq);
    }

    /**
     * Expected fraction of cells (array-level) that survive an unpowered
     * interval — the closed-form lognormal survival function, used by
     * tests to validate the Monte Carlo behaviour and by benches to print
     * smooth curves.
     */
    double expectedSurvival(Seconds off_time, Temperature t) const;

    const RetentionConfig &config() const { return config_; }
    const CellRng &rng() const { return rng_; }

  private:
    RetentionConfig config_;
    CellRng rng_;
};

} // namespace voltboot

#endif // VOLTBOOT_SRAM_RETENTION_MODEL_HH

#include "sram/retention_model.hh"

#include <algorithm>
#include <cmath>

namespace voltboot
{

RetentionConfig
RetentionConfig::sram6t()
{
    return RetentionConfig{};
}

RetentionConfig
RetentionConfig::dram()
{
    RetentionConfig c;
    // DRAM has no DRV in the SRAM sense: refresh keeps it alive, and what
    // matters to cold boot is the capacitor decay constant. We keep a DRV
    // channel anyway (sense-amp margin) but set it very low.
    c.drv_mean = Volt::millivolts(80);
    c.drv_sigma = Volt::millivolts(15);
    c.drv_min = Volt::millivolts(20);
    c.drv_max = Volt::millivolts(200);
    // Median capacitor retention ~1.5 s at 25 degC, Ea ~ 0.55 eV. At
    // -50 degC the median reaches tens of minutes, matching the classic
    // cold boot observation that chilled modules survive minute-scale
    // transplants with <0.1% decay.
    c.log_median_retention_ref = 0.405;
    c.retention_sigma_ln = 1.2;
    c.arrhenius_kelvin = 6382.0;
    c.metastable_fraction = 0.02;
    return c;
}

CellParams
RetentionModel::cellParams(uint64_t cell) const
{
    CellParams p;
    const double z_drv = rng_.gaussian(cell, ChannelDrv);
    const double raw_drv =
        config_.drv_mean.volts() + config_.drv_sigma.volts() * z_drv;
    p.drv = Volt(std::clamp(raw_drv, config_.drv_min.volts(),
                            config_.drv_max.volts()));
    p.retention_z = rng_.gaussian(cell, ChannelRetention);
    p.power_up_bit = rng_.bits(cell, ChannelPowerUp) & 1;
    p.metastable =
        rng_.uniform(cell, ChannelStability) < config_.metastable_fraction;
    return p;
}

double
RetentionModel::logMedianRetention(Temperature t) const
{
    const double inv_t = 1.0 / t.kelvins();
    const double inv_ref = 1.0 / config_.ref_temperature.kelvins();
    return config_.log_median_retention_ref +
           config_.arrhenius_kelvin * (inv_t - inv_ref);
}

Seconds
RetentionModel::retentionTime(const CellParams &p, Temperature t) const
{
    const double log_r =
        logMedianRetention(t) + config_.retention_sigma_ln * p.retention_z;
    return Seconds(std::exp(log_r));
}

namespace
{

/** Standard normal CDF. */
double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

} // namespace

double
RetentionModel::expectedSurvival(Seconds off_time, Temperature t) const
{
    if (off_time.seconds() <= 0.0)
        return 1.0;
    // P(R > off) where ln R ~ N(logMedian(t), sigma^2).
    const double z = (std::log(off_time.seconds()) - logMedianRetention(t)) /
                     config_.retention_sigma_ln;
    return 1.0 - normalCdf(z);
}

} // namespace voltboot

#include "sram/retention_model.hh"

#include <algorithm>
#include <cmath>

namespace voltboot
{

RetentionConfig
RetentionConfig::sram6t()
{
    return RetentionConfig{};
}

RetentionConfig
RetentionConfig::dram()
{
    RetentionConfig c;
    // DRAM has no DRV in the SRAM sense: refresh keeps it alive, and what
    // matters to cold boot is the capacitor decay constant. We keep a DRV
    // channel anyway (sense-amp margin) but set it very low.
    c.drv_mean = Volt::millivolts(80);
    c.drv_sigma = Volt::millivolts(15);
    c.drv_min = Volt::millivolts(20);
    c.drv_max = Volt::millivolts(200);
    // Median capacitor retention ~1.5 s at 25 degC, Ea ~ 0.55 eV. At
    // -50 degC the median reaches tens of minutes, matching the classic
    // cold boot observation that chilled modules survive minute-scale
    // transplants with <0.1% decay.
    c.log_median_retention_ref = 0.405;
    c.retention_sigma_ln = 1.2;
    c.arrhenius_kelvin = 6382.0;
    c.metastable_fraction = 0.02;
    return c;
}

Volt
RetentionModel::drvFromZ(double z) const
{
    const double raw_drv =
        config_.drv_mean.volts() + config_.drv_sigma.volts() * z;
    return Volt(std::clamp(raw_drv, config_.drv_min.volts(),
                           config_.drv_max.volts()));
}

CellParams
RetentionModel::cellParams(uint64_t cell) const
{
    CellParams p;
    p.drv = drvFromZ(rng_.gaussian(cell, ChannelDrv));
    p.retention_z = rng_.gaussian(cell, ChannelRetention);
    p.power_up_bit = rng_.bits(cell, ChannelPowerUp) & 1;
    p.metastable =
        rng_.uniform(cell, ChannelStability) < config_.metastable_fraction;
    return p;
}

double
RetentionModel::logMedianRetention(Temperature t) const
{
    const double inv_t = 1.0 / t.kelvins();
    const double inv_ref = 1.0 / config_.ref_temperature.kelvins();
    return config_.log_median_retention_ref +
           config_.arrhenius_kelvin * (inv_t - inv_ref);
}

Seconds
RetentionModel::retentionTime(const CellParams &p, Temperature t) const
{
    const double log_r =
        logMedianRetention(t) + config_.retention_sigma_ln * p.retention_z;
    return Seconds(std::exp(log_r));
}

namespace
{

/** Standard normal CDF. */
double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/**
 * Smallest raw uniform value in [0, 2^53] for which @p pred is true,
 * assuming pred is weakly monotone non-decreasing in the raw value
 * (false...false true...true). Returns CellRng::kRawUniformBuckets when
 * pred is false everywhere. ~53 predicate evaluations, once per state
 * transition — the per-cell loop it replaces evaluated transcendentals
 * hundreds of thousands of times.
 */
template <typename Pred>
uint64_t
lowerBoundRaw(Pred pred)
{
    if (pred(0))
        return 0;
    // Invariant: pred(lo) is false, pred(hi) is true (hi == 2^53 stands
    // for "past the end").
    uint64_t lo = 0, hi = CellRng::kRawUniformBuckets;
    while (hi - lo > 1) {
        const uint64_t mid = lo + (hi - lo) / 2;
        if (pred(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

/** Widen a searched cutoff by the monotonicity guard band, saturating
 * at the raw-hash space edges. */
RetentionModel::ThresholdBand
guardBand(uint64_t cutoff)
{
    const uint64_t w = RetentionModel::kGuardBandRaw;
    RetentionModel::ThresholdBand band;
    band.lo = cutoff > w ? cutoff - w : 0;
    band.hi = cutoff < CellRng::kRawUniformBuckets - w
                  ? cutoff + w
                  : CellRng::kRawUniformBuckets;
    return band;
}

} // namespace

RetentionModel::ThresholdBand
RetentionModel::decaySurvivalBand(Seconds off_time, Temperature t) const
{
    // The exact scalar predicate: raw -> uniform -> Acklam z ->
    // survivesUnpowered, every FP rounding included. Monotone up to the
    // guard slop: a larger raw hash means a larger retention_z means a
    // longer retention time.
    return guardBand(lowerBoundRaw([&](uint64_t raw) {
        CellParams p{};
        p.retention_z =
            CellRng::gaussianFromUniform(CellRng::uniformFromRaw(raw));
        return survivesUnpowered(p, off_time, t);
    }));
}

RetentionModel::ThresholdBand
RetentionModel::droopLossBand(Volt v) const
{
    // Monotone the other way round: a larger raw hash means a higher
    // DRV, and a cell dies once its DRV exceeds the supply. The search
    // therefore looks for the first raw value that *loses* state; the
    // drv_min/drv_max clamp is inside drvFromZ, so the flat clamp edges
    // are classified exactly as the scalar path classifies them.
    return guardBand(lowerBoundRaw([&](uint64_t raw) {
        CellParams p{};
        p.drv = drvFromZ(
            CellRng::gaussianFromUniform(CellRng::uniformFromRaw(raw)));
        return !survivesAtVoltage(p, v);
    }));
}

double
RetentionModel::expectedSurvival(Seconds off_time, Temperature t) const
{
    if (off_time.seconds() <= 0.0)
        return 1.0;
    // P(R > off) where ln R ~ N(logMedian(t), sigma^2).
    const double z = (std::log(off_time.seconds()) - logMedianRetention(t)) /
                     config_.retention_sigma_ln;
    return 1.0 - normalCdf(z);
}

} // namespace voltboot

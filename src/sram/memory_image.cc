#include "sram/memory_image.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace voltboot
{

MemoryImage
MemoryImage::filled(size_t size, uint8_t value)
{
    return MemoryImage(std::vector<uint8_t>(size, value));
}

bool
MemoryImage::bitAt(size_t bit) const
{
    const size_t byte = bit / 8;
    if (byte >= bytes_.size())
        panic("MemoryImage: bit index out of range: ", bit);
    return (bytes_[byte] >> (bit % 8)) & 1;
}

MemoryImage
MemoryImage::slice(size_t offset, size_t length) const
{
    if (offset + length > bytes_.size())
        panic("MemoryImage: slice out of range");
    return MemoryImage(std::vector<uint8_t>(bytes_.begin() + offset,
                                            bytes_.begin() + offset +
                                                length));
}

size_t
MemoryImage::popcount() const
{
    size_t total = 0;
    for (uint8_t b : bytes_)
        total += std::popcount(b);
    return total;
}

double
MemoryImage::onesDensity() const
{
    if (bytes_.empty())
        return 0.0;
    return static_cast<double>(popcount()) / static_cast<double>(sizeBits());
}

double
MemoryImage::byteEntropy() const
{
    if (bytes_.empty())
        return 0.0;
    std::array<size_t, 256> counts{};
    for (uint8_t b : bytes_)
        ++counts[b];
    double h = 0.0;
    const double n = static_cast<double>(bytes_.size());
    for (size_t c : counts) {
        if (c == 0)
            continue;
        const double p = static_cast<double>(c) / n;
        h -= p * std::log2(p);
    }
    return h;
}

size_t
MemoryImage::hammingDistance(const MemoryImage &a, const MemoryImage &b)
{
    if (a.sizeBytes() != b.sizeBytes())
        panic("MemoryImage: hammingDistance on images of different size (",
              a.sizeBytes(), " vs ", b.sizeBytes(), ")");
    size_t total = 0;
    for (size_t i = 0; i < a.bytes_.size(); ++i)
        total += std::popcount(
            static_cast<uint8_t>(a.bytes_[i] ^ b.bytes_[i]));
    return total;
}

double
MemoryImage::fractionalHamming(const MemoryImage &a, const MemoryImage &b)
{
    if (a.sizeBits() == 0)
        return 0.0;
    return static_cast<double>(hammingDistance(a, b)) /
           static_cast<double>(a.sizeBits());
}

std::vector<size_t>
MemoryImage::blockHamming(const MemoryImage &a, const MemoryImage &b,
                          size_t granularity_bits)
{
    if (a.sizeBytes() != b.sizeBytes())
        panic("MemoryImage: blockHamming on images of different size");
    if (granularity_bits == 0 || granularity_bits % 8 != 0)
        fatal("MemoryImage: blockHamming granularity must be a positive "
              "multiple of 8 bits");
    const size_t granularity_bytes = granularity_bits / 8;
    std::vector<size_t> out;
    out.reserve((a.sizeBytes() + granularity_bytes - 1) / granularity_bytes);
    for (size_t base = 0; base < a.sizeBytes(); base += granularity_bytes) {
        const size_t end = std::min(base + granularity_bytes, a.sizeBytes());
        size_t hd = 0;
        for (size_t i = base; i < end; ++i)
            hd += std::popcount(
                static_cast<uint8_t>(a.bytes_[i] ^ b.bytes_[i]));
        out.push_back(hd);
    }
    return out;
}

std::vector<size_t>
MemoryImage::findAll(std::span<const uint8_t> needle) const
{
    std::vector<size_t> hits;
    if (needle.empty() || needle.size() > bytes_.size())
        return hits;
    auto it = bytes_.begin();
    while (true) {
        it = std::search(it, bytes_.end(), needle.begin(), needle.end());
        if (it == bytes_.end())
            break;
        hits.push_back(static_cast<size_t>(it - bytes_.begin()));
        ++it;
    }
    return hits;
}

bool
MemoryImage::contains(std::span<const uint8_t> needle) const
{
    if (needle.empty() || needle.size() > bytes_.size())
        return false;
    return std::search(bytes_.begin(), bytes_.end(), needle.begin(),
                       needle.end()) != bytes_.end();
}

size_t
MemoryImage::countRecoveredElements(std::span<const uint64_t> elements) const
{
    size_t recovered = 0;
    for (uint64_t element : elements) {
        uint8_t needle[8];
        std::memcpy(needle, &element, 8);
        bool found = false;
        for (size_t off = 0; off + 8 <= bytes_.size() && !found; off += 8) {
            found = std::memcmp(bytes_.data() + off, needle, 8) == 0;
        }
        if (found)
            ++recovered;
    }
    return recovered;
}

std::string
MemoryImage::toPbm(size_t width_bits) const
{
    if (width_bits == 0)
        fatal("MemoryImage: PBM width must be nonzero");
    const size_t total_bits = sizeBits();
    const size_t height = (total_bits + width_bits - 1) / width_bits;
    std::ostringstream os;
    os << "P1\n" << width_bits << " " << height << "\n";
    for (size_t y = 0; y < height; ++y) {
        for (size_t x = 0; x < width_bits; ++x) {
            const size_t bit = y * width_bits + x;
            const int v = bit < total_bits ? (bitAt(bit) ? 1 : 0) : 0;
            os << v << (x + 1 == width_bits ? '\n' : ' ');
        }
    }
    return os.str();
}

std::string
MemoryImage::toPgm(size_t width_bytes) const
{
    if (width_bytes == 0)
        fatal("MemoryImage: PGM width must be nonzero");
    const size_t height = (bytes_.size() + width_bytes - 1) / width_bytes;
    std::ostringstream os;
    os << "P2\n" << width_bytes << " " << height << "\n255\n";
    for (size_t y = 0; y < height; ++y) {
        for (size_t x = 0; x < width_bytes; ++x) {
            const size_t i = y * width_bytes + x;
            const int v = i < bytes_.size() ? bytes_[i] : 0;
            os << v << (x + 1 == width_bytes ? '\n' : ' ');
        }
    }
    return os.str();
}

std::string
MemoryImage::hexdump(size_t max_bytes) const
{
    static const char *digits = "0123456789abcdef";
    std::ostringstream os;
    const size_t n = std::min(max_bytes, bytes_.size());
    for (size_t base = 0; base < n; base += 16) {
        os << std::hex;
        for (int shift = 28; shift >= 0; shift -= 4)
            os << digits[(base >> shift) & 0xf];
        os << "  ";
        for (size_t i = base; i < std::min(base + 16, n); ++i) {
            os << digits[bytes_[i] >> 4] << digits[bytes_[i] & 0xf] << ' ';
        }
        os << '\n';
    }
    if (n < bytes_.size())
        os << "... (" << std::dec << bytes_.size() - n << " more bytes)\n";
    return os.str();
}

} // namespace voltboot

#include "sram/puf.hh"

#include <cmath>

#include "sim/logging.hh"

namespace voltboot
{

namespace
{

/** Power-cycle an array long enough that nothing survives. */
void
freshPowerUp(MemoryArray &array)
{
    if (array.powerState() != PowerState::Off)
        array.powerDown();
    array.powerUp(Volt(0.8), Seconds(10.0), Temperature::celsius(25.0));
}

} // namespace

MemoryImage
SramPuf::observe()
{
    freshPowerUp(array_);
    return MemoryImage(array_.snapshot());
}

void
SramPuf::enroll()
{
    if (vote_rounds_ == 0)
        fatal("SramPuf: need at least one enrollment round");
    std::vector<unsigned> ones(array_.sizeBits(), 0);
    for (unsigned round = 0; round < vote_rounds_; ++round) {
        const MemoryImage obs = observe();
        for (size_t bit = 0; bit < obs.sizeBits(); ++bit)
            ones[bit] += obs.bitAt(bit);
    }
    reference_.assign(array_.sizeBytes(), 0);
    for (size_t bit = 0; bit < ones.size(); ++bit)
        if (ones[bit] * 2 > vote_rounds_)
            reference_[bit / 8] |= 1u << (bit % 8);
    reference_img_ = MemoryImage(reference_);
}

bool
SramPuf::authenticate(double *out_hd)
{
    if (!enrolled())
        fatal("SramPuf: enroll before authenticating");
    const MemoryImage obs = observe();
    const double hd =
        MemoryImage::fractionalHamming(obs, reference_img_);
    if (out_hd)
        *out_hd = hd;
    return hd < threshold_;
}

double
SramPuf::measureIntraChipHd(unsigned rounds)
{
    const MemoryImage first = observe();
    double total = 0.0;
    for (unsigned round = 1; round < rounds; ++round)
        total += MemoryImage::fractionalHamming(observe(), first);
    return rounds > 1 ? total / (rounds - 1) : 0.0;
}

void
SramTrng::calibrate(unsigned rounds)
{
    if (rounds < 2)
        fatal("SramTrng: need at least two calibration rounds");
    freshPowerUp(array_);
    const std::vector<uint8_t> base = array_.snapshot();
    std::vector<uint8_t> flipped(array_.sizeBytes(), 0);
    for (unsigned round = 1; round < rounds; ++round) {
        freshPowerUp(array_);
        const std::vector<uint8_t> obs = array_.snapshot();
        for (size_t i = 0; i < obs.size(); ++i)
            flipped[i] |= static_cast<uint8_t>(obs[i] ^ base[i]);
    }
    noisy_cells_.clear();
    for (size_t i = 0; i < flipped.size(); ++i)
        for (int bit = 0; bit < 8; ++bit)
            if ((flipped[i] >> bit) & 1)
                noisy_cells_.push_back(i * 8 + bit);
}

std::vector<bool>
SramTrng::harvest(size_t bits)
{
    if (noisy_cells_.empty())
        fatal("SramTrng: calibrate before harvesting");
    std::vector<bool> out;
    out.reserve(bits);
    // Temporal Von Neumann debiasing: compare the SAME cell across two
    // successive power-ups. Each cell's bias theta cancels exactly
    // (P(01) == P(10) == theta(1-theta)); pairing different cells would
    // not debias because their biases differ.
    size_t guard = 0;
    while (out.size() < bits && guard < 10000) {
        ++guard;
        freshPowerUp(array_);
        const std::vector<uint8_t> first = array_.snapshot();
        freshPowerUp(array_);
        const std::vector<uint8_t> second = array_.snapshot();
        for (uint64_t cell : noisy_cells_) {
            if (out.size() >= bits)
                break;
            const bool b1 = (first[cell / 8] >> (cell % 8)) & 1;
            const bool b2 = (second[cell / 8] >> (cell % 8)) & 1;
            if (b1 != b2)
                out.push_back(b1);
        }
    }
    return out;
}

double
SramTrng::bias(const std::vector<bool> &bits)
{
    if (bits.empty())
        return 0.0;
    long ones = 0;
    for (bool b : bits)
        ones += b;
    const long zeros = static_cast<long>(bits.size()) - ones;
    return std::abs(static_cast<double>(ones - zeros)) /
           static_cast<double>(bits.size());
}

double
SramTrng::serialCorrelation(const std::vector<bool> &bits)
{
    if (bits.size() < 2)
        return 0.0;
    double mean = 0.0;
    for (bool b : bits)
        mean += b;
    mean /= static_cast<double>(bits.size());
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i + 1 < bits.size(); ++i) {
        num += (bits[i] - mean) * (bits[i + 1] - mean);
        den += (bits[i] - mean) * (bits[i] - mean);
    }
    return den != 0.0 ? num / den : 0.0;
}

PufMetrics
measurePufMetrics(size_t array_bytes, size_t chips,
                  unsigned observations_per_chip, uint64_t seed_base)
{
    if (chips < 2)
        fatal("measurePufMetrics: need at least two chips");
    PufMetrics m;

    std::vector<MemoryImage> first_obs;
    double intra_total = 0.0;
    size_t intra_count = 0;
    double ones_total = 0.0;
    size_t ones_count = 0;

    for (size_t chip = 0; chip < chips; ++chip) {
        SramArray array("puf", array_bytes, seed_base + chip, 1);
        SramPuf puf(array);
        const MemoryImage base = puf.observe();
        first_obs.push_back(base);
        ones_total += base.onesDensity();
        ++ones_count;
        for (unsigned obs = 1; obs < observations_per_chip; ++obs) {
            const MemoryImage img = puf.observe();
            intra_total += MemoryImage::fractionalHamming(img, base);
            ++intra_count;
        }
    }

    double inter_total = 0.0;
    size_t inter_count = 0;
    for (size_t a = 0; a < chips; ++a) {
        for (size_t b = a + 1; b < chips; ++b) {
            inter_total += MemoryImage::fractionalHamming(first_obs[a],
                                                          first_obs[b]);
            ++inter_count;
        }
    }

    m.intra_chip_hd = intra_count ? intra_total / intra_count : 0.0;
    m.inter_chip_hd = inter_count ? inter_total / inter_count : 0.0;
    m.uniformity = ones_count ? ones_total / ones_count : 0.0;
    return m;
}

} // namespace voltboot

/**
 * @file
 * Process-wide cache of per-array power-up planes.
 *
 * Everything a MemoryArray derives at first power-up — the stable
 * power-up fingerprint, the metastable mask, and the fully resolved
 * first-power-on contents — is a pure function of the die identity
 * (chip seed, array id, array size, metastable calibration). Campaign
 * trials construct a fresh Soc per trial, and sweep grids deliberately
 * reuse dies across attack kinds, so without a cache every trial
 * re-hashes tens of millions of cells to rebuild planes an earlier
 * trial already derived. This cache shares them: keyed by the exact
 * inputs of the derivation, immutable once built, LRU-evicted under a
 * configurable byte budget, and safe to share across campaign worker
 * threads (values are deterministic, so a cache hit can never change
 * simulation output).
 *
 * The budget is bytes, not entries: one DRAM-scale plane triple can
 * weigh hundreds of MB, so counting entries would let a single huge
 * die blow memory while dozens of small dies barely register. It
 * defaults to 512 MB and is settable via the
 * VOLTBOOT_FINGERPRINT_CACHE_MB environment variable (read once at
 * first use; 0 disables caching entirely) or
 * setFingerprintCacheCapacity() (tests/embedders, takes effect
 * immediately). Entries whose own footprint exceeds the budget are
 * handed to the caller but never inserted — a plane bigger than the
 * whole cache would otherwise evict everything else and then be
 * evicted itself on the next insert, thrashing the cache without ever
 * producing a hit.
 */

#ifndef VOLTBOOT_SRAM_FINGERPRINT_CACHE_HH
#define VOLTBOOT_SRAM_FINGERPRINT_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/plane_arena.hh"

namespace voltboot
{

/**
 * Immutable per-die power-up planes (see MemoryArray): bit-packed
 * word planes carved out of one embedded arena, so the whole structure
 * moves as a unit and its footprint is one number. The BitPlane views
 * stay valid for the life of the FingerprintPlanes (arena lifetime
 * rule, see sim/plane_arena.hh); the cache shares them behind
 * shared_ptr<const ...> so a consumer can never outlive its planes.
 */
struct FingerprintPlanes
{
    /** Backing storage for every plane below. */
    PlaneArena arena;
    /** Stable power-up state per cell (metastable cells' bits here are
     * their intrinsic power_up_bit; re-rolls overwrite them). */
    BitPlane fingerprint;
    /** Bit mask of metastable cells. */
    BitPlane metastable_mask;
    /** Array contents after the first power-on (nonce-1 metastable
     * draws applied) — the state every fresh trial starts from. */
    BitPlane initial_bits;
    /** Rank-compressed metastable draw cutoffs: entry r is
     * rawUniformCountBelow(theta) of the r-th metastable cell in cell
     * order, so every re-roll is one integer compare instead of a bias
     * hash + double math. Empty above the plane-cache size cap (the
     * table costs 8 bytes per metastable cell); consumers then derive
     * the cutoff on the fly, bit-identically. */
    std::vector<uint64_t> meta_cutoffs;
    /** Per-word rank of the word's first metastable cell — the index
     * into meta_cutoffs where word w's cutoffs start. */
    std::vector<uint32_t> meta_rank;

    /** Heap footprint, for the cache byte budget. */
    size_t
    footprint() const
    {
        return arena.bytesReserved() +
               meta_cutoffs.capacity() * sizeof(uint64_t) +
               meta_rank.capacity() * sizeof(uint32_t);
    }
};

/** Identity of a derivation: every input the planes depend on. */
struct FingerprintKey
{
    uint64_t chip_seed = 0;
    uint64_t array_id = 0;
    uint64_t size_bytes = 0;
    double metastable_fraction = 0.0;
    double metastable_bias_min = 0.0;
    double metastable_bias_max = 0.0;

    bool operator==(const FingerprintKey &other) const = default;
};

/**
 * Return the cached planes for @p key, building them with @p build on a
 * miss. Thread-safe. The returned pointer stays valid for the caller's
 * lifetime even if the entry is evicted (or was never inserted because
 * it exceeds the byte budget).
 */
std::shared_ptr<const FingerprintPlanes>
acquireFingerprintPlanes(const FingerprintKey &key,
                         const std::function<FingerprintPlanes()> &build);

/** Cache observability (tests, diagnostics). */
struct FingerprintCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /** Builds too large for the budget, served uncached. */
    uint64_t oversize = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
    /** Current byte budget. */
    uint64_t capacity = 0;
};

FingerprintCacheStats fingerprintCacheStats();

/**
 * Override the byte budget (takes effect immediately; evicts down to
 * the new budget). Supersedes VOLTBOOT_FINGERPRINT_CACHE_MB.
 */
void setFingerprintCacheCapacity(size_t bytes);

/** Drop every cached entry and reset the counters (tests). The
 * capacity is left as configured. */
void clearFingerprintCache();

} // namespace voltboot

#endif // VOLTBOOT_SRAM_FINGERPRINT_CACHE_HH

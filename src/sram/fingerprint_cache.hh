/**
 * @file
 * Process-wide cache of per-array power-up planes.
 *
 * Everything a MemoryArray derives at first power-up — the stable
 * power-up fingerprint, the metastable mask, the rank index and integer
 * draw thresholds behind metastable re-rolls, and the fully resolved
 * first-power-on contents — is a pure function of the die identity
 * (chip seed, array id, array size, metastable calibration). Campaign
 * trials construct a fresh Soc per trial, and sweep grids deliberately
 * reuse dies across attack kinds, so without a cache every trial
 * re-hashes tens of millions of cells to rebuild planes an earlier
 * trial already derived. This cache shares them: keyed by the exact
 * inputs of the derivation, immutable once built, LRU-evicted under a
 * byte cap, and safe to share across campaign worker threads (values
 * are deterministic, so a cache hit can never change simulation
 * output).
 */

#ifndef VOLTBOOT_SRAM_FINGERPRINT_CACHE_HH
#define VOLTBOOT_SRAM_FINGERPRINT_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace voltboot
{

/** Immutable per-die power-up planes (see MemoryArray). */
struct FingerprintPlanes
{
    /** Stable power-up state, metastable cells at their nonce-1 draw. */
    std::vector<uint8_t> fingerprint;
    /** Bit mask of metastable cells. */
    std::vector<uint8_t> metastable_mask;
    /** Per 64-cell word: number of metastable cells in preceding
     * words — the rank index into meta_theta_raw. */
    std::vector<uint32_t> meta_rank;
    /** Per metastable cell (rank order): integer draw threshold. */
    std::vector<uint64_t> meta_theta_raw;
    /** Array contents after the first power-on (nonce-1 metastable
     * draws applied) — the state every fresh trial starts from. */
    std::vector<uint8_t> initial_bytes;

    /** Approximate heap footprint, for the cache byte cap. */
    size_t footprint() const;
};

/** Identity of a derivation: every input the planes depend on. */
struct FingerprintKey
{
    uint64_t chip_seed = 0;
    uint64_t array_id = 0;
    uint64_t size_bytes = 0;
    double metastable_fraction = 0.0;
    double metastable_bias_min = 0.0;
    double metastable_bias_max = 0.0;

    bool operator==(const FingerprintKey &other) const = default;
};

/**
 * Return the cached planes for @p key, building them with @p build on a
 * miss. Thread-safe. The returned pointer stays valid for the caller's
 * lifetime even if the entry is evicted.
 */
std::shared_ptr<const FingerprintPlanes>
acquireFingerprintPlanes(const FingerprintKey &key,
                         const std::function<FingerprintPlanes()> &build);

/** Cache observability (tests, diagnostics). */
struct FingerprintCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
};

FingerprintCacheStats fingerprintCacheStats();

/** Drop every cached entry and reset the counters (tests). */
void clearFingerprintCache();

} // namespace voltboot

#endif // VOLTBOOT_SRAM_FINGERPRINT_CACHE_HH

/**
 * @file
 * A minimal embedded HTTP/1.0 server for the live telemetry endpoints.
 *
 * One blocking-accept thread, one request per connection, Content-Length
 * framing, connection closed after every response — the smallest server
 * that `curl`, Prometheus scrapers, and `wget` all speak natively. No
 * keep-alive, no chunking, no TLS: this serves loopback-scale
 * observability traffic (`/metrics`, `/healthz`, `/progress`) from a
 * running sweep, not the public internet.
 *
 * Handlers run on the accept thread, so they must be fast and
 * thread-safe against the rest of the process (the telemetry monitor
 * hands out mutex-guarded snapshot copies for exactly this reason).
 * Binding port 0 picks an ephemeral port (see port()), which is what
 * the tests use.
 */

#ifndef VOLTBOOT_TELEMETRY_HTTP_SERVER_HH
#define VOLTBOOT_TELEMETRY_HTTP_SERVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace voltboot
{
namespace telemetry
{

/** One response: status code, content type, body. */
struct HttpResponse
{
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

/**
 * GET dispatcher: maps a request path ("/metrics") to a response.
 * Invoked on the server thread for every well-formed GET; return
 * status 404 for unknown paths.
 */
using HttpHandler = std::function<HttpResponse(const std::string &path)>;

/** The blocking-accept server. Listens from construction until stop()
 * or destruction. */
class HttpServer
{
  public:
    /**
     * Bind 0.0.0.0:@p port (0 = ephemeral), listen, and start the
     * accept thread. fatal() when the bind fails (port taken,
     * privileged port, no socket support).
     */
    HttpServer(uint16_t port, HttpHandler handler);
    ~HttpServer();
    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** The bound port (the kernel's pick when constructed with 0). */
    uint16_t port() const { return port_; }

    /** Close the listener and join the accept thread. Idempotent. */
    void stop();

  private:
    void serveLoop();
    void serveConnection(int fd);

    HttpHandler handler_;
    int listen_fd_ = -1;
    uint16_t port_ = 0;
    std::thread thread_;
};

} // namespace telemetry
} // namespace voltboot

#endif // VOLTBOOT_TELEMETRY_HTTP_SERVER_HH

/**
 * @file
 * The campaign telemetry monitor: a sampler thread that aggregates the
 * lock-free worker counters into periodic snapshots, derives the
 * progress model (trial rate, EWMA, ETA, per-axis grid completion),
 * appends the heartbeat JSONL stream, and hands mutex-guarded copies
 * to the /metrics + /progress endpoints.
 *
 * Layering: the monitor knows nothing about Campaign or SweepGrid —
 * the caller describes the sweep as a total trial count plus an
 * ordered list of (axis name, size) pairs, slowest-varying first, the
 * same enumeration contract SweepGrid::at() documents. That keeps
 * voltboot_telemetry below voltboot_campaign in the library graph, so
 * future runners (the daemon mode of ROADMAP.md) can reuse it.
 *
 * Determinism contract: everything here is wall-clock derived and
 * **non-canonical** — heartbeats, /metrics and /progress never feed
 * back into trace files or campaign JSON/CSV. Heartbeat lines keep the
 * deterministic campaign identity fields (seed, grid, totals from the
 * counter deltas) separate from the wall-clock block (`wall`), so a
 * consumer diffing two runs can ignore the latter wholesale. Schema:
 * docs/TELEMETRY.md.
 */

#ifndef VOLTBOOT_TELEMETRY_MONITOR_HH
#define VOLTBOOT_TELEMETRY_MONITOR_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/counters.hh"
#include "trace/metrics.hh"

namespace voltboot
{
namespace telemetry
{

/** One sweep axis as the monitor sees it: a name and its length, in
 * slowest-varying-first enumeration order. */
struct AxisDesc
{
    std::string name;
    uint64_t size = 1;
};

/** Monitor knobs. */
struct MonitorConfig
{
    /** Seconds between samples (heartbeat lines, snapshot refresh). */
    double interval_s = 1.0;
    /** Total trials of the sweep (0 = unknown; no ETA / axes). */
    uint64_t total_trials = 0;
    /** Campaign identity echoed into every heartbeat line. */
    uint64_t campaign_seed = 0;
    std::string grid_spec;
    /** Axes, slowest-varying first (SweepGrid enumeration order). */
    std::vector<AxisDesc> axes;
    /** Append one heartbeat JSONL line per sample; empty = off. */
    std::string heartbeat_path;
    /** EWMA smoothing factor for the trial rate (per sample). */
    double rate_alpha = 0.3;
};

/** One aggregated sample of the campaign's counters + rate model. */
struct TelemetrySnapshot
{
    uint64_t seq = 0;        ///< Sample number, starting at 1.
    bool final_sample = false; ///< Emitted by stop(), not the timer.
    double elapsed_s = 0.0;  ///< Wall seconds since start().
    CounterTotals totals;    ///< Relaxed sum over every worker block.
    double trials_per_sec = 0.0;      ///< Rate over the last interval.
    double trials_per_sec_ewma = 0.0; ///< Smoothed rate.
    double eta_s = 0.0; ///< Remaining / EWMA; 0 when unknowable.
};

/**
 * The sampler. start() launches the thread; stop() (or destruction)
 * takes one final sample — flushing the last heartbeat line with
 * `"final": true` — and joins. All accessors are safe from any
 * thread.
 */
class CampaignMonitor
{
  public:
    explicit CampaignMonitor(MonitorConfig config);
    ~CampaignMonitor();
    CampaignMonitor(const CampaignMonitor &) = delete;
    CampaignMonitor &operator=(const CampaignMonitor &) = delete;

    void start();
    /** Final sample + heartbeat, then join. Idempotent. */
    void stop();

    /** Copy of the most recent sample (or a fresh sample when none
     * has been taken yet). */
    TelemetrySnapshot latest() const;

    /**
     * The latest sample as a metrics registry snapshot — counters
     * named `telemetry.<counter>`, the rate model as gauges — which
     * report::toPrometheus renders directly; this is the /metrics
     * payload.
     */
    trace::MetricsSnapshot metricsSnapshot() const;

    /** The /progress JSON document: counts, rate model, ETA, and
     * per-axis grid position/completion. */
    std::string progressJson() const;

    /** One heartbeat line for @p snap (exposed for tests). */
    std::string heartbeatLine(const TelemetrySnapshot &snap) const;

    const MonitorConfig &config() const { return config_; }

  private:
    void sampleLoop();
    /** Take a sample, update the rate model, append the heartbeat. */
    void sample(bool final_sample);

    MonitorConfig config_;
    std::thread thread_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool started_ = false;
    std::chrono::steady_clock::time_point t0_;
    TelemetrySnapshot latest_;
};

} // namespace telemetry
} // namespace voltboot

#endif // VOLTBOOT_TELEMETRY_MONITOR_HH

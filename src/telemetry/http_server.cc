#include "telemetry/http_server.hh"

#include <atomic>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace voltboot
{
namespace telemetry
{

namespace
{

/** Requests larger than this are garbage, not GETs. */
constexpr size_t kMaxRequestBytes = 8192;

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      default: return "Internal Server Error";
    }
}

/** Write all of @p data; swallow errors (client went away). */
void
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a client that closed early must not SIGPIPE
        // the whole process.
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<size_t>(n);
    }
}

} // namespace

HttpServer::HttpServer(uint16_t port, HttpHandler handler)
    : handler_(std::move(handler))
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("telemetry: cannot create listen socket: ",
              std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal("telemetry: cannot bind port ", port, ": ",
              std::strerror(err));
    }
    if (::listen(listen_fd_, 8) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal("telemetry: cannot listen: ", std::strerror(err));
    }

    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    thread_ = std::thread([this] { serveLoop(); });
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::stop()
{
    if (listen_fd_ < 0)
        return;
    // shutdown() wakes the blocked accept(); the loop then sees the
    // error and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void
HttpServer::serveLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener shut down (or unrecoverable)
        }
        serveConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::serveConnection(int fd)
{
    // Read until the end of the request head; we ignore any body.
    std::string req;
    char buf[1024];
    while (req.size() < kMaxRequestBytes &&
           req.find("\r\n\r\n") == std::string::npos &&
           req.find("\n\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        req.append(buf, static_cast<size_t>(n));
    }

    // Request line: METHOD SP PATH SP VERSION.
    HttpResponse resp;
    const size_t eol = req.find_first_of("\r\n");
    const std::string line =
        eol == std::string::npos ? req : req.substr(0, eol);
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        resp.status = 400;
        resp.body = "malformed request\n";
    } else if (line.substr(0, sp1) != "GET") {
        resp.status = 405;
        resp.body = "only GET is supported\n";
    } else {
        std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        // Strip any query string; the endpoints take no parameters.
        if (const size_t q = path.find('?'); q != std::string::npos)
            path.resize(q);
        resp = handler_(path);
    }

    std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                      statusText(resp.status) + "\r\n";
    out += "Content-Type: " + resp.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) +
           "\r\n";
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    sendAll(fd, out);
}

} // namespace telemetry
} // namespace voltboot

#include "telemetry/monitor.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "trace/trace.hh"

namespace voltboot
{
namespace telemetry
{

namespace
{

uint64_t
unixMillis()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** Per-axis grid coordinates of completed-trial count @p done over
 * @p axes (slowest-varying first): the position the sweep's enumeration
 * cursor would be at had trials finished in index order. Chunked
 * scheduling makes this approximate mid-axis, exact at boundaries. */
std::vector<uint64_t>
axisPositions(const std::vector<AxisDesc> &axes, uint64_t done,
              uint64_t total)
{
    std::vector<uint64_t> pos(axes.size(), 0);
    if (axes.empty())
        return pos;
    if (total > 0 && done >= total) {
        for (size_t i = 0; i < axes.size(); ++i)
            pos[i] = axes[i].size;
        return pos;
    }
    uint64_t stride = 1;
    for (size_t i = axes.size(); i-- > 0;) {
        const uint64_t size = std::max<uint64_t>(1, axes[i].size);
        pos[i] = (done / stride) % size;
        stride *= size;
    }
    return pos;
}

} // namespace

CampaignMonitor::CampaignMonitor(MonitorConfig config)
    : config_(std::move(config))
{
    if (config_.interval_s <= 0.0)
        config_.interval_s = 1.0;
}

CampaignMonitor::~CampaignMonitor()
{
    stop();
}

void
CampaignMonitor::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return;
    started_ = true;
    stopping_ = false;
    t0_ = std::chrono::steady_clock::now();
    latest_ = {};
    thread_ = std::thread([this] { sampleLoop(); });
}

void
CampaignMonitor::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_ || stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    sample(/*final_sample=*/true);
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
}

void
CampaignMonitor::sampleLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        const auto interval = std::chrono::duration<double>(
            config_.interval_s);
        if (cv_.wait_for(lock, interval, [this] { return stopping_; }))
            break;
        lock.unlock();
        sample(/*final_sample=*/false);
        lock.lock();
    }
}

void
CampaignMonitor::sample(bool final_sample)
{
    const CounterTotals now = totals();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0_)
            .count();

    TelemetrySnapshot snap;
    std::string line;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const TelemetrySnapshot &prev = latest_;
        snap.seq = prev.seq + 1;
        snap.final_sample = final_sample;
        snap.elapsed_s = elapsed;
        snap.totals = now;

        const double dt = elapsed - prev.elapsed_s;
        const uint64_t done = now.get(Counter::TrialsCompleted);
        const uint64_t prev_done =
            prev.totals.get(Counter::TrialsCompleted);
        snap.trials_per_sec =
            dt > 0.0 ? static_cast<double>(done - prev_done) / dt : 0.0;
        snap.trials_per_sec_ewma =
            prev.seq == 0
                ? snap.trials_per_sec
                : config_.rate_alpha * snap.trials_per_sec +
                      (1.0 - config_.rate_alpha) *
                          prev.trials_per_sec_ewma;
        const uint64_t skipped = now.get(Counter::TrialsSkipped);
        if (config_.total_trials > done + skipped &&
            snap.trials_per_sec_ewma > 0.0)
            snap.eta_s = static_cast<double>(config_.total_trials -
                                             done - skipped) /
                         snap.trials_per_sec_ewma;
        latest_ = snap;
        if (!config_.heartbeat_path.empty())
            line = heartbeatLine(snap);
    }

    if (!line.empty()) {
        // Append + flush per line: a SIGKILLed sweep keeps every
        // completed sample. Opened per write so the path stays valid
        // even if the file is rotated away mid-campaign.
        if (std::FILE *f =
                std::fopen(config_.heartbeat_path.c_str(), "a")) {
            std::fwrite(line.data(), 1, line.size(), f);
            std::fclose(f);
        }
    }
}

TelemetrySnapshot
CampaignMonitor::latest() const
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (latest_.seq > 0)
            return latest_;
    }
    // No sample yet: serve live totals so early scrapes see zeroes
    // rather than stale garbage.
    TelemetrySnapshot snap;
    snap.totals = totals();
    return snap;
}

trace::MetricsSnapshot
CampaignMonitor::metricsSnapshot() const
{
    const TelemetrySnapshot snap = latest();
    trace::MetricsSnapshot out;
    for (unsigned i = 0; i < kCounterCount; ++i)
        out.counters[std::string("telemetry.") +
                     counterName(static_cast<Counter>(i))] =
            static_cast<double>(snap.totals.v[i]);
    out.counters["telemetry.heartbeats"] =
        static_cast<double>(snap.seq);
    out.gauges["telemetry.elapsed_seconds"] = snap.elapsed_s;
    out.gauges["telemetry.trials_total"] =
        static_cast<double>(config_.total_trials);
    out.gauges["telemetry.trials_per_second"] = snap.trials_per_sec;
    out.gauges["telemetry.trials_per_second_ewma"] =
        snap.trials_per_sec_ewma;
    out.gauges["telemetry.eta_seconds"] = snap.eta_s;
    return out;
}

std::string
CampaignMonitor::progressJson() const
{
    const TelemetrySnapshot snap = latest();
    const uint64_t done = snap.totals.get(Counter::TrialsCompleted);
    const uint64_t skipped = snap.totals.get(Counter::TrialsSkipped);
    const uint64_t total = config_.total_trials;

    std::string out = "{";
    out += "\"total\": " + std::to_string(total);
    out += ", \"done\": " + std::to_string(done);
    out += ", \"started\": " +
           std::to_string(snap.totals.get(Counter::TrialsStarted));
    out += ", \"won\": " +
           std::to_string(snap.totals.get(Counter::TrialsWon));
    out += ", \"failed\": " +
           std::to_string(snap.totals.get(Counter::TrialsFailed));
    out += ", \"skipped\": " + std::to_string(skipped);
    out += ", \"complete\": " +
           trace::jsonNumber(
               total > 0 ? static_cast<double>(done + skipped) /
                               static_cast<double>(total)
                         : 0.0);
    out += ", \"elapsed_s\": " + trace::jsonNumber(snap.elapsed_s);
    out += ", \"trials_per_sec\": " +
           trace::jsonNumber(snap.trials_per_sec);
    out += ", \"trials_per_sec_ewma\": " +
           trace::jsonNumber(snap.trials_per_sec_ewma);
    out += ", \"eta_s\": " + trace::jsonNumber(snap.eta_s);
    out += ", \"axes\": [";
    const std::vector<uint64_t> pos =
        axisPositions(config_.axes, done + skipped, total);
    for (size_t i = 0; i < config_.axes.size(); ++i) {
        const AxisDesc &axis = config_.axes[i];
        out += i ? ", {" : "{";
        out += "\"name\": " + trace::jsonQuote(axis.name);
        out += ", \"size\": " + std::to_string(axis.size);
        out += ", \"position\": " + std::to_string(pos[i]);
        out += ", \"complete\": " +
               trace::jsonNumber(
                   axis.size > 0 ? static_cast<double>(pos[i]) /
                                       static_cast<double>(axis.size)
                                 : 0.0);
        out += "}";
    }
    out += "]}\n";
    return out;
}

std::string
CampaignMonitor::heartbeatLine(const TelemetrySnapshot &snap) const
{
    // Field blocks are segregated by provenance: `campaign` is the
    // deterministic sweep identity, `progress`/`counters` depend on
    // scheduling but not on the clock, `wall` is wall-clock only.
    std::string out = "{\"schema\": \"voltboot-heartbeat-v1\"";
    out += ", \"seq\": " + std::to_string(snap.seq);
    out += std::string(", \"final\": ") +
           (snap.final_sample ? "true" : "false");
    out += ", \"campaign\": {\"seed\": " +
           std::to_string(config_.campaign_seed);
    out += ", \"grid\": " + trace::jsonQuote(config_.grid_spec);
    out += ", \"total_trials\": " +
           std::to_string(config_.total_trials) + "}";
    out += ", \"progress\": {\"started\": " +
           std::to_string(snap.totals.get(Counter::TrialsStarted));
    out += ", \"completed\": " +
           std::to_string(snap.totals.get(Counter::TrialsCompleted));
    out += ", \"won\": " +
           std::to_string(snap.totals.get(Counter::TrialsWon));
    out += ", \"failed\": " +
           std::to_string(snap.totals.get(Counter::TrialsFailed));
    out += ", \"skipped\": " +
           std::to_string(snap.totals.get(Counter::TrialsSkipped)) +
           "}";
    out += ", \"counters\": {";
    for (unsigned i = 0; i < kCounterCount; ++i) {
        if (i)
            out += ", ";
        out += std::string("\"") +
               counterName(static_cast<Counter>(i)) +
               "\": " + std::to_string(snap.totals.v[i]);
    }
    out += "}";
    out += ", \"wall\": {\"unix_ms\": " + std::to_string(unixMillis());
    out += ", \"elapsed_s\": " + trace::jsonNumber(snap.elapsed_s);
    out += ", \"trials_per_sec\": " +
           trace::jsonNumber(snap.trials_per_sec);
    out += ", \"trials_per_sec_ewma\": " +
           trace::jsonNumber(snap.trials_per_sec_ewma);
    out += ", \"eta_s\": " + trace::jsonNumber(snap.eta_s) + "}}\n";
    return out;
}

} // namespace telemetry
} // namespace voltboot

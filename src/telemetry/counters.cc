#include "telemetry/counters.hh"

#include <memory>
#include <mutex>
#include <vector>

namespace voltboot
{
namespace telemetry
{

namespace
{

/**
 * Process-wide block pool. Blocks are handed to WorkerScopes and
 * returned (without zeroing) when the scope ends, so a block's counts
 * survive its worker and totals() stays monotonic across pool reuse.
 * Blocks are only ever freed at process exit.
 */
struct Pool
{
    std::mutex mutex;
    std::vector<std::unique_ptr<CounterBlock>> blocks;
    std::vector<CounterBlock *> free_list;
};

Pool &
pool()
{
    static Pool p;
    return p;
}

CounterBlock *
acquireBlock()
{
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    if (!p.free_list.empty()) {
        CounterBlock *b = p.free_list.back();
        p.free_list.pop_back();
        return b;
    }
    p.blocks.push_back(std::make_unique<CounterBlock>());
    CounterBlock *b = p.blocks.back().get();
    for (auto &slot : b->slots)
        slot.store(0, std::memory_order_relaxed);
    return b;
}

void
releaseBlock(CounterBlock *b)
{
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    p.free_list.push_back(b);
}

} // namespace

const char *
counterName(Counter c)
{
    switch (c) {
      case Counter::TrialsStarted: return "trials_started";
      case Counter::TrialsCompleted: return "trials_completed";
      case Counter::TrialsFailed: return "trials_failed";
      case Counter::TrialsWon: return "trials_won";
      case Counter::TrialsSkipped: return "trials_skipped";
      case Counter::CellsProcessed: return "cells_processed";
      case Counter::KernelAvx512: return "kernel_invocations_avx512";
      case Counter::KernelScalar: return "kernel_invocations_scalar";
      case Counter::KernelReference:
        return "kernel_invocations_reference";
      case Counter::HashBatches: return "hash_batches";
      case Counter::HashLanes: return "hash_lanes";
      case Counter::FingerprintHits: return "fingerprint_cache_hits";
      case Counter::FingerprintMisses:
        return "fingerprint_cache_misses";
      case Counter::FingerprintEvictions:
        return "fingerprint_cache_evictions";
      case Counter::ArenaBytes: return "plane_arena_bytes";
      case Counter::KeyfindOffsets: return "keyfind_offsets_scanned";
      case Counter::KeyfindEarlyRejects:
        return "keyfind_early_rejects";
      case Counter::KeyfindCorrections: return "keyfind_corrections";
      case Counter::KeyfindCorrectionIters:
        return "keyfind_correction_iterations";
      case Counter::kCount: break;
    }
    return "?";
}

CounterTotals
totals()
{
    CounterTotals t;
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    for (const auto &block : p.blocks)
        for (unsigned i = 0; i < kCounterCount; ++i)
            t.v[i] += block->slots[i].load(std::memory_order_relaxed);
    return t;
}

void
resetCounters()
{
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    for (const auto &block : p.blocks)
        for (auto &slot : block->slots)
            slot.store(0, std::memory_order_relaxed);
}

WorkerScope::WorkerScope() : prev_(tl_block)
{
    tl_block = acquireBlock();
}

WorkerScope::~WorkerScope()
{
    // Pick up any hash tallies the last kernel left behind before the
    // block goes back to the pool.
    drainHashStats();
    releaseBlock(tl_block);
    tl_block = prev_;
}

} // namespace telemetry
} // namespace voltboot

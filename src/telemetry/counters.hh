/**
 * @file
 * Lock-free hot-path campaign counters.
 *
 * A running campaign is a black box without live numbers, but the
 * retention kernels advance hundreds of millions of cells per second —
 * any instrumentation that takes a lock, touches a shared cache line
 * per event, or allocates is out of the question. The scheme here:
 *
 *  - Each worker thread owns one cache-line-aligned CounterBlock of
 *    relaxed std::atomic<uint64_t> slots for the lifetime of a
 *    telemetry::WorkerScope. The thread is the *only writer* of its
 *    block; the sampler thread only does relaxed loads. A counter
 *    bump is therefore a single uncontended `lock add` on a line no
 *    other writer ever dirties.
 *  - Instrumented sites count at *kernel-invocation* granularity
 *    (one add of size_bits per decay pass, not one per cell), so the
 *    hot loops themselves are untouched. bench/retention_microbench
 *    --overhead asserts the end-to-end cost stays under 2%.
 *  - Per-batch events inside sim/cell_hash_batch are too frequent even
 *    for an uncontended atomic; those bump plain (non-atomic)
 *    thread-local tallies (~two instructions) which the owning kernel
 *    drains into the atomic block once per invocation.
 *
 * The hot-path API (add / noteHashBatch / drainHashStats) is
 * header-only and depends on nothing, so the layers below trace —
 * sim, sram — can include it without a new library edge. When no
 * WorkerScope is installed on the thread every add() is one
 * thread-local load and a predictable branch. Registration and
 * aggregation (WorkerScope, totals(), the sampler) live in
 * counters.cc / monitor.cc in voltboot_telemetry.
 *
 * Counter values are wall-schedule facts (how much work this process
 * did, on which code path) and are explicitly **non-canonical**: they
 * never appear in trace files or campaign JSON/CSV records, only in
 * the live /metrics + heartbeat surfaces. See docs/TELEMETRY.md.
 */

#ifndef VOLTBOOT_TELEMETRY_COUNTERS_HH
#define VOLTBOOT_TELEMETRY_COUNTERS_HH

#include <atomic>
#include <cstdint>

namespace voltboot
{
namespace telemetry
{

/** Every live counter the telemetry layer tracks. Append-only: the
 * slot order is the wire order of heartbeats and /metrics. */
enum class Counter : unsigned
{
    TrialsStarted,   ///< Trials a worker began executing.
    TrialsCompleted, ///< Trials that finished (any non-skipped status).
    TrialsFailed,    ///< Completed with status error / attack_failed.
    TrialsWon,       ///< Completed with status ok.
    TrialsSkipped,   ///< Marked skipped after an abort.
    CellsProcessed,  ///< Cells advanced by retention-kernel passes.
    KernelAvx512,    ///< Fast-kernel passes on the AVX-512 batch path.
    KernelScalar,    ///< Fast-kernel passes on the scalar batch path.
    KernelReference, ///< Reference (per-cell) kernel passes.
    HashBatches,     ///< sim/cell_hash_batch entry-point calls.
    HashLanes,       ///< Total lanes those calls produced.
    FingerprintHits, ///< Fingerprint-plane cache hits.
    FingerprintMisses,    ///< ... misses (plane derivations).
    FingerprintEvictions, ///< ... LRU evictions.
    ArenaBytes,      ///< Bytes of PlaneArena blocks allocated.
    KeyfindOffsets,  ///< Candidate schedule offsets the keyfind scan scored.
    KeyfindEarlyRejects, ///< Offsets the residual pre-filter rejected.
    KeyfindCorrections,  ///< Key-correction attempts entered.
    KeyfindCorrectionIters, ///< Local-search iterations across attempts.
    kCount
};

constexpr unsigned kCounterCount = static_cast<unsigned>(Counter::kCount);

/** Stable snake_case name of @p c (the /metrics + heartbeat key). */
const char *counterName(Counter c);

/**
 * One worker's counter slots. alignas(64) keeps blocks on their own
 * cache lines so one worker's adds never bounce another's line
 * (single-writer per block; the sampler only loads).
 */
struct alignas(64) CounterBlock
{
    std::atomic<uint64_t> slots[kCounterCount];
};

/** The current thread's block, or nullptr outside any WorkerScope. */
inline thread_local CounterBlock *tl_block = nullptr;

/** Add @p n to counter @p c on this thread's block; no-op (one
 * thread-local load + branch) when telemetry is not installed. */
inline void
add(Counter c, uint64_t n = 1)
{
    if (CounterBlock *b = tl_block)
        b->slots[static_cast<unsigned>(c)].fetch_add(
            n, std::memory_order_relaxed);
}

/** Plain (non-atomic) tallies for events too frequent even for an
 * uncontended atomic add. Bumped unconditionally — two instructions —
 * and drained into the atomic block by the owning kernel. */
struct HashStats
{
    uint64_t batches = 0;
    uint64_t lanes = 0;
};

inline thread_local HashStats tl_hash_stats;

/** One hash-batch entry point produced @p lanes values. */
inline void
noteHashBatch(unsigned lanes)
{
    ++tl_hash_stats.batches;
    tl_hash_stats.lanes += lanes;
}

/** Move the thread's accumulated hash-batch tallies into its counter
 * block (no-op without a WorkerScope; tallies then keep accruing
 * harmlessly until one is installed). */
inline void
drainHashStats()
{
    if (tl_block == nullptr)
        return;
    HashStats &h = tl_hash_stats;
    if (h.batches) {
        add(Counter::HashBatches, h.batches);
        add(Counter::HashLanes, h.lanes);
        h = {};
    }
}

/** Plain-value sum over every block ever handed out (live + retired
 * workers). Values are monotonically non-decreasing between resets. */
struct CounterTotals
{
    uint64_t v[kCounterCount] = {};

    uint64_t
    get(Counter c) const
    {
        return v[static_cast<unsigned>(c)];
    }
};

/** Relaxed-sum every registered block. Callable from any thread. */
CounterTotals totals();

/** Zero every block and the retired totals (tests / between
 * campaigns in one process). Not safe concurrently with workers. */
void resetCounters();

/**
 * RAII: install a counter block on the current thread. Blocks come
 * from a process-wide pool and survive the scope (their counts stay
 * visible in totals() after the worker exits); a later scope reuses a
 * pooled block and keeps adding to it, so totals stay monotonic.
 * Scopes nest — the previous block is restored on exit.
 */
class WorkerScope
{
  public:
    WorkerScope();
    ~WorkerScope();
    WorkerScope(const WorkerScope &) = delete;
    WorkerScope &operator=(const WorkerScope &) = delete;

  private:
    CounterBlock *prev_;
};

} // namespace telemetry
} // namespace voltboot

#endif // VOLTBOOT_TELEMETRY_COUNTERS_HH

#include "power/board.hh"

#include <cmath>

#include "sim/logging.hh"

namespace voltboot
{

PowerDomain *
Pmic::addDomain(std::string name, Volt nominal, RegulatorKind kind,
                DomainLoadProfile profile)
{
    if (domain(name) != nullptr)
        fatal("Pmic ", name_, ": duplicate domain ", name);
    domains_.push_back(std::make_unique<PowerDomain>(std::move(name),
                                                     nominal, kind,
                                                     profile));
    return domains_.back().get();
}

PowerDomain *
Pmic::domain(const std::string &name)
{
    for (auto &d : domains_)
        if (d->name() == name)
            return d.get();
    return nullptr;
}

const PowerDomain *
Pmic::domain(const std::string &name) const
{
    for (const auto &d : domains_)
        if (d->name() == name)
            return d.get();
    return nullptr;
}

void
Pmic::connectMainSupply(Seconds now, Temperature temp)
{
    if (main_on_)
        return;
    main_on_ = true;
    for (auto &d : domains_)
        d->powerUp(now, temp);
}

void
Pmic::disconnectMainSupply(Seconds now)
{
    if (!main_on_)
        return;
    main_on_ = false;
    for (auto &d : domains_)
        d->powerDown(now);
}

void
Board::addTestPad(const std::string &label, const std::string &domain_name)
{
    const PowerDomain *d = pmic_.domain(domain_name);
    if (d == nullptr)
        fatal("Board ", name_, ": test pad ", label,
              " references unknown domain ", domain_name);
    pads_.push_back(TestPad{label, domain_name, d->nominalVoltage()});
}

const TestPad *
Board::findPad(const std::string &label) const
{
    for (const auto &p : pads_)
        if (p.label == label)
            return &p;
    return nullptr;
}

PowerDomain *
Board::attachProbeAtPad(const std::string &label, const VoltageProbe &probe,
                        Volt tolerance)
{
    const TestPad *pad = findPad(label);
    if (pad == nullptr)
        fatal("Board ", name_, ": no test pad labelled ", label);
    const double dv =
        std::abs(probe.voltage.volts() - pad->nominal.volts());
    if (dv > tolerance.volts())
        fatal("Board ", name_, ": probe at ", label, " set to ",
              probe.voltage.volts(), " V but the pad sits at ",
              pad->nominal.volts(), " V; match the rail before attaching");
    PowerDomain *d = pmic_.domain(pad->domain_name);
    d->attachProbe(probe);
    return d;
}

} // namespace voltboot

#include "power/transient.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace voltboot
{

ProbeTransient
TransientSolver::solve(const VoltageProbe &probe, Amp surge_current,
                       Amp retention_current, Farad decap,
                       Seconds surge_duration)
{
    if (probe.source_impedance.ohms() < 0.0)
        fatal("TransientSolver: negative source impedance");
    if (decap.farads() <= 0.0)
        fatal("TransientSolver: decoupling capacitance must be positive");

    ProbeTransient out;
    out.current_limited = surge_current > probe.max_current;

    const double r = std::max(probe.source_impedance.ohms(), 1e-6);
    const double c = decap.farads();
    const double tau = r * c;

    if (!out.current_limited) {
        // Ohmic droop with RC smoothing; worst case at end of surge.
        const double ir = surge_current.amps() * r;
        const double droop =
            ir * (1.0 - std::exp(-surge_duration.seconds() / tau));
        out.v_min = Volt(std::max(0.0, probe.voltage.volts() - droop));
    } else {
        // Probe saturates at its current limit. The decap only delays
        // the collapse: the starved domain keeps demanding the surge
        // current until it fully resets, so the rail falls to the
        // voltage at which the (roughly resistive) load's draw matches
        // what the probe can source.
        const double collapse = probe.voltage.volts() *
                                probe.max_current.amps() /
                                surge_current.amps();
        const double ohmic = probe.max_current.amps() * r;
        out.v_min = Volt(std::max(0.0, collapse - ohmic));
    }

    out.v_settled = Volt(std::max(
        0.0, probe.voltage.volts() - retention_current.amps() * r));
    return out;
}

Seconds
TransientSolver::dischargeTime(Volt v_start, Volt v_floor, Farad decap,
                               Amp leakage_current)
{
    if (leakage_current.amps() <= 0.0)
        fatal("TransientSolver: leakage current must be positive");
    if (v_floor >= v_start)
        return Seconds(0.0);
    // Constant-current discharge of the rail capacitance: dV/dt = -I/C.
    const double dv = v_start.volts() - v_floor.volts();
    return Seconds(dv * decap.farads() / leakage_current.amps());
}

} // namespace voltboot

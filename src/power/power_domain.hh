/**
 * @file
 * Power domains: the architectural feature Volt Boot weaponises.
 *
 * A PowerDomain models one independently gated supply island of an SoC
 * (core, memory, I/O, ...). Memory arrays register as loads; the domain
 * drives their power-state transitions. A domain exposes a supply pin that
 * the board wires to a PMIC regulator and to board-level test pads — the
 * attack surface.
 */

#ifndef VOLTBOOT_POWER_POWER_DOMAIN_HH
#define VOLTBOOT_POWER_POWER_DOMAIN_HH

#include <optional>
#include <string>
#include <vector>

#include "power/transient.hh"
#include "sim/units.hh"
#include "sram/memory_array.hh"

namespace voltboot
{

/** Kind of regulator feeding a domain (see the paper's Figure 4). */
enum class RegulatorKind
{
    Buck, ///< Switching regulator; high-fluctuation loads (cores, DVFS).
    Ldo,  ///< Linear regulator; quiet loads (I/O, PLLs).
};

const char *toString(RegulatorKind kind);

/** Electrical characteristics of a domain's load during a power cycle. */
struct DomainLoadProfile
{
    /** Peak current drawn at main-supply disconnect. */
    Amp surge_current{0.5};
    /** Steady current once the domain idles in retention. */
    Amp retention_current{0.008};
    /** Length of the disconnect surge window. */
    Seconds surge_duration = Seconds::microseconds(5.0);
    /** Total decoupling capacitance on the rail. */
    Farad decap = Farad::microfarads(100.0);
    /** Leakage the decap discharges into once fully unpowered. */
    Amp leakage_current{0.05};
};

/**
 * One independently powered island of an SoC.
 *
 * The domain does not own its memory arrays (the SoC does); it holds
 * non-owning pointers and drives their power-state transitions.
 */
class PowerDomain
{
  public:
    /**
     * @param name     e.g. "VDD_CORE".
     * @param nominal  Nominal operating voltage.
     * @param kind     Regulator type feeding it.
     * @param profile  Electrical load characteristics.
     */
    PowerDomain(std::string name, Volt nominal, RegulatorKind kind,
                DomainLoadProfile profile = {});

    const std::string &name() const { return name_; }
    Volt nominalVoltage() const { return nominal_; }
    RegulatorKind regulatorKind() const { return kind_; }
    const DomainLoadProfile &loadProfile() const { return profile_; }
    DomainLoadProfile &loadProfile() { return profile_; }

    /** Register a memory array powered by this domain (non-owning). */
    void attachLoad(MemoryArray *array);
    const std::vector<MemoryArray *> &loads() const { return loads_; }

    bool isPowered() const { return powered_; }
    bool isProbed() const { return probe_.has_value(); }
    const std::optional<VoltageProbe> &probe() const { return probe_; }

    /**
     * Attach an external voltage probe to this domain's test pad. Only
     * meaningful before the power cycle; the probe then carries the
     * domain through it.
     */
    void attachProbe(const VoltageProbe &probe);

    /** Remove the external probe. */
    void detachProbe();

    /**
     * Apply regulator power at the nominal voltage at simulation time
     * @p now, after the domain has been off since its powerDown (ambient
     * temperature @p temp governs how much array state survived).
     */
    void powerUp(Seconds now, Temperature temp);

    /**
     * Runtime DVFS: scale the domain's supply to @p v while it stays
     * powered (the Section 2.1 leakage-saving mode). Cells whose DRV
     * exceeds @p v lose state — the reason standby voltages are chosen
     * against the DRV distribution's tail (Qin et al.). Scaling back up
     * does not restore lost bits.
     */
    void scaleVoltage(Volt v);

    /** The domain's current supply level (nominal unless scaled). */
    Volt currentVoltage() const { return current_; }

    /**
     * Cut regulator power at time @p now.
     *
     * Without a probe, the rail discharges and all loads go Off (their
     * decay clock starts at the moment the rail crosses the retention
     * floor — effectively immediately on the attack's timescale).
     *
     * With a probe attached, the domain rides through: the surge droop is
     * solved analytically, each load sees the droop minimum (losing cells
     * whose DRV is above it) and then holds in Retained state at the
     * settled probe voltage. This is the heart of Volt Boot.
     */
    void powerDown(Seconds now);

    /** The droop transient solved during the last probed power-down. */
    const std::optional<ProbeTransient> &lastTransient() const
    { return last_transient_; }

  private:
    std::string name_;
    Volt nominal_;
    RegulatorKind kind_;
    DomainLoadProfile profile_;
    std::vector<MemoryArray *> loads_;
    std::optional<VoltageProbe> probe_;
    std::optional<ProbeTransient> last_transient_;
    Volt current_{0.0};
    bool powered_ = false;
    Seconds powered_down_at_{0.0};
    bool ever_powered_ = false;
};

} // namespace voltboot

#endif // VOLTBOOT_POWER_POWER_DOMAIN_HH

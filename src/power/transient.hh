/**
 * @file
 * First-order analytic transients for the power-delivery network.
 *
 * When the PMIC's main input is cut while a Volt Boot probe holds a
 * domain, the compute elements in that domain momentarily draw a current
 * surge from the probe (the paper measures 400-600 mA spikes settling to
 * 8 mA on a Raspberry Pi 4). The probe's source impedance and the domain
 * decoupling capacitance determine how far the rail droops during that
 * surge; any cell whose DRV sits above the droop minimum loses its bit.
 * This is why the paper requires a bench supply with ">3 A current driving
 * capability".
 */

#ifndef VOLTBOOT_POWER_TRANSIENT_HH
#define VOLTBOOT_POWER_TRANSIENT_HH

#include "sim/units.hh"

namespace voltboot
{

/** An external voltage source attached to a board test pad. */
struct VoltageProbe
{
    /** Regulated output voltage. */
    Volt voltage{0.8};
    /** Current limit of the supply. */
    Amp max_current{3.0};
    /** Source impedance including probe leads and pad contact. */
    Ohm source_impedance{0.05};
};

/** Result of solving the supply-disconnect surge transient. */
struct ProbeTransient
{
    /** Minimum rail voltage reached during the surge window. */
    Volt v_min;
    /** Steady rail voltage once the domain settles to retention current. */
    Volt v_settled;
    /** True if the probe hit its current limit during the surge. */
    bool current_limited;
};

/**
 * Analytic solver for the probe-held rail during a power cycle.
 *
 * Within the probe's current limit the rail follows the classic RC droop
 *   V(t) = V_p - I_surge * R * (1 - exp(-t / (R * C)))
 * and the minimum lands at the end of the surge window. Beyond the limit
 * the probe degenerates to a constant-current source and the deficit
 * discharges the decoupling capacitance linearly.
 */
class TransientSolver
{
  public:
    /**
     * @param probe              External supply parameters.
     * @param surge_current      Peak current the domain draws at disconnect.
     * @param retention_current  Steady current once the domain is idle.
     * @param decap              Total decoupling capacitance on the rail.
     * @param surge_duration     Length of the surge window.
     */
    static ProbeTransient solve(const VoltageProbe &probe, Amp surge_current,
                                Amp retention_current, Farad decap,
                                Seconds surge_duration);

    /**
     * Unpowered rail decay: with no source, the decap discharges into the
     * leakage load; returns the time for the rail to fall below
     * @p v_floor starting from @p v_start. Used to model how quickly an
     * unprobed domain actually reaches 0 V after disconnect.
     */
    static Seconds dischargeTime(Volt v_start, Volt v_floor, Farad decap,
                                 Amp leakage_current);
};

} // namespace voltboot

#endif // VOLTBOOT_POWER_TRANSIENT_HH

#include "power/power_domain.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace voltboot
{

const char *
toString(RegulatorKind kind)
{
    switch (kind) {
      case RegulatorKind::Buck:
        return "BUCK";
      case RegulatorKind::Ldo:
        return "LDO";
    }
    return "?";
}

PowerDomain::PowerDomain(std::string name, Volt nominal, RegulatorKind kind,
                         DomainLoadProfile profile)
    : name_(std::move(name)), nominal_(nominal), kind_(kind),
      profile_(profile)
{
    if (nominal_.volts() <= 0.0)
        fatal("PowerDomain ", name_, ": nominal voltage must be positive");
}

void
PowerDomain::attachLoad(MemoryArray *array)
{
    if (array == nullptr)
        panic("PowerDomain ", name_, ": null load");
    loads_.push_back(array);
}

void
PowerDomain::attachProbe(const VoltageProbe &probe)
{
    if (probe.voltage.volts() <= 0.0)
        fatal("PowerDomain ", name_, ": probe voltage must be positive");
    probe_ = probe;
    if (trace::enabled()) {
        trace::instant("power", "probe_attach",
                       {{"domain", name_},
                        {"voltage_v", probe.voltage.volts()},
                        {"max_current_a", probe.max_current.amps()},
                        {"impedance_ohm",
                         probe.source_impedance.ohms()}});
    }
}

void
PowerDomain::detachProbe()
{
    probe_.reset();
    if (trace::enabled()) {
        trace::instant("power", "probe_detach",
                       {{"domain", name_},
                        {"drops_retention", !powered_}});
    }
    if (!powered_) {
        // Removing the probe from an unpowered domain cuts the only
        // thing keeping the cells alive: retention ends on the spot.
        for (MemoryArray *a : loads_)
            if (a->powerState() == PowerState::Retained)
                a->powerDown();
        current_ = Volt(0.0);
        trace::counter("power", "voltage." + name_, 0.0);
    }
}

void
PowerDomain::powerUp(Seconds now, Temperature temp)
{
    if (powered_)
        return;

    const bool held = std::any_of(
        loads_.begin(), loads_.end(), [](const MemoryArray *a) {
            return a->powerState() == PowerState::Retained;
        });

    Seconds off_time = ever_powered_ && !held
                           ? now - powered_down_at_
                           : Seconds(1e9);
    if (off_time.seconds() < 0.0)
        panic("PowerDomain ", name_, ": time ran backwards");

    trace::setSimTime(now);
    if (trace::enabled()) {
        trace::instant("power", "domain_power_up",
                       {{"domain", name_},
                        {"voltage_v", nominal_.volts()},
                        {"off_s", off_time.seconds()},
                        {"held_by_probe", held}});
    }

    for (MemoryArray *a : loads_) {
        if (a->powerState() == PowerState::Retained)
            a->resumePowered(nominal_);
        else
            a->powerUp(nominal_, off_time, temp);
    }
    powered_ = true;
    current_ = nominal_;
    ever_powered_ = true;
    trace::counter("power", "voltage." + name_, nominal_.volts());
}

void
PowerDomain::scaleVoltage(Volt v)
{
    if (!powered_)
        fatal("PowerDomain ", name_, ": cannot scale an unpowered domain");
    if (v.volts() <= 0.0)
        fatal("PowerDomain ", name_,
              ": use powerDown() to remove power, not scaleVoltage(0)");
    if (trace::enabled()) {
        trace::instant("power", "domain_scale",
                       {{"domain", name_},
                        {"from_v", current_.volts()},
                        {"to_v", v.volts()}});
    }
    // Scaling down kills cells whose DRV sits above the new level;
    // scaling up never resurrects them.
    if (v < current_)
        for (MemoryArray *a : loads_)
            a->droopTo(v);
    current_ = v;
    trace::counter("power", "voltage." + name_, v.volts());
}

void
PowerDomain::powerDown(Seconds now)
{
    if (!powered_)
        return;
    powered_ = false;
    powered_down_at_ = now;
    last_transient_.reset();

    trace::setSimTime(now);
    if (trace::enabled()) {
        trace::instant("power", "domain_power_down",
                       {{"domain", name_},
                        {"probed", probe_.has_value()}});
    }

    if (!probe_) {
        for (MemoryArray *a : loads_)
            a->powerDown();
        current_ = Volt(0.0);
        trace::counter("power", "voltage." + name_, 0.0);
        return;
    }

    // The probe carries the domain across the power cycle. The surge at
    // disconnect droops the rail; marginal cells flip at the minimum.
    const ProbeTransient tr = TransientSolver::solve(
        *probe_, profile_.surge_current, profile_.retention_current,
        profile_.decap, profile_.surge_duration);
    last_transient_ = tr;
    if (trace::enabled()) {
        trace::instant("power", "probe_transient",
                       {{"domain", name_},
                        {"v_min", tr.v_min.volts()},
                        {"v_settled", tr.v_settled.volts()},
                        {"current_limited", tr.current_limited}});
    }
    // Sample the rail at the droop minimum and after it settles — the
    // two points of the paper's oscilloscope shot that matter for
    // retention. The probe_hold invariant keys off these samples.
    trace::counter("power", "voltage." + name_, tr.v_min.volts());
    trace::counter("power", "voltage." + name_, tr.v_settled.volts());
    for (MemoryArray *a : loads_) {
        a->droopTo(tr.v_min);
        a->retainAt(tr.v_settled);
    }
    current_ = tr.v_settled;
}

} // namespace voltboot

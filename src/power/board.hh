/**
 * @file
 * PMIC and board-level power wiring.
 *
 * The Pmic owns the power domains and sequences them from a single main
 * input (USB-C / barrel jack). The Board adds the attack-relevant
 * board-level artefacts: test pads and exposed passive-component leads
 * wired to each domain's supply pin, which is where a Volt Boot probe
 * lands (TP15 on a Raspberry Pi 4, PP58 on a Pi 3, SH13 on an i.MX53 QSB).
 */

#ifndef VOLTBOOT_POWER_BOARD_HH
#define VOLTBOOT_POWER_BOARD_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "power/power_domain.hh"
#include "sim/units.hh"

namespace voltboot
{

/** Power-management IC: owns domains and sequences them. */
class Pmic
{
  public:
    explicit Pmic(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Create and own a new domain; returns a stable pointer. */
    PowerDomain *addDomain(std::string name, Volt nominal,
                           RegulatorKind kind,
                           DomainLoadProfile profile = {});

    /** Look up a domain by name; nullptr if absent. */
    PowerDomain *domain(const std::string &name);
    const PowerDomain *domain(const std::string &name) const;

    const std::vector<std::unique_ptr<PowerDomain>> &domains() const
    { return domains_; }

    bool mainSupplyOn() const { return main_on_; }

    /**
     * Apply main input power at time @p now: every domain powers up in
     * registration order (the bring-up sequence).
     */
    void connectMainSupply(Seconds now, Temperature temp);

    /**
     * Cut main input power at time @p now: every domain powers down.
     * Probed domains ride through in retention.
     */
    void disconnectMainSupply(Seconds now);

  private:
    std::string name_;
    std::vector<std::unique_ptr<PowerDomain>> domains_;
    bool main_on_ = false;
};

/** A labelled probe point on the PCB wired to one power domain. */
struct TestPad
{
    std::string label;       ///< Silkscreen / schematic name, e.g. "TP15".
    std::string domain_name; ///< Domain whose supply pin it reaches.
    Volt nominal;            ///< Voltage an attacker measures there.
};

/**
 * The circuit board: a PMIC plus the test pads an attacker can reach.
 */
class Board
{
  public:
    Board(std::string name, std::string pmic_name)
        : name_(std::move(name)), pmic_(std::move(pmic_name))
    {}

    const std::string &name() const { return name_; }
    Pmic &pmic() { return pmic_; }
    const Pmic &pmic() const { return pmic_; }

    /** Expose a test pad for @p domain_name. */
    void addTestPad(const std::string &label,
                    const std::string &domain_name);

    const std::vector<TestPad> &testPads() const { return pads_; }

    /** Find the pad with silkscreen label @p label; nullptr if absent. */
    const TestPad *findPad(const std::string &label) const;

    /**
     * Attach an external probe at pad @p label. The probe's voltage must
     * match the pad's nominal voltage within @p tolerance, mirroring the
     * attack procedure of measuring the pad first and matching it —
     * overdriving a rail resets or damages the part.
     */
    PowerDomain *attachProbeAtPad(const std::string &label,
                                  const VoltageProbe &probe,
                                  Volt tolerance = Volt::millivolts(50));

  private:
    std::string name_;
    Pmic pmic_;
    std::vector<TestPad> pads_;
};

} // namespace voltboot

#endif // VOLTBOOT_POWER_BOARD_HH

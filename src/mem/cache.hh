/**
 * @file
 * Set-associative write-back cache backed by simulated SRAM arrays.
 *
 * Both the data RAM and the tag RAM are MemoryArray instances, so they
 * obey retention physics: a power cycle without a probe scrambles them; a
 * probe-held power cycle preserves them bit-for-bit. Architectural
 * properties the paper leans on are modelled faithfully:
 *
 *  - Clean/invalidate operations only clear valid bits in the tag RAM;
 *    the data RAM keeps its contents (Section 5.2.4). The only way to
 *    erase L1 data RAM from software is DC ZVA line zeroing.
 *  - After power-on the tag RAM holds garbage, so boot software must
 *    invalidate before enabling the cache — and an attacker simply never
 *    enables it, preserving the previous owner's data for RAMINDEX reads.
 *  - Lines can be locked (CaSE-style) so neither the kernel nor other
 *    processes can evict secret-holding lines.
 *  - Each line carries a TrustZone NS bit checked by the debug interface
 *    when TZ enforcement is enabled (a Section 8 countermeasure).
 */

#ifndef VOLTBOOT_MEM_CACHE_HH
#define VOLTBOOT_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sram/memory_array.hh"
#include "sram/memory_image.hh"

namespace voltboot
{

/** Next-level interface a cache fills from and writes back to. */
class LineBacking
{
  public:
    virtual ~LineBacking() = default;
    virtual void readLine(uint64_t line_addr, std::span<uint8_t> out) = 0;
    virtual void writeLine(uint64_t line_addr,
                           std::span<const uint8_t> data) = 0;
};

/**
 * Victim-selection policy. Real parts differ: the Cortex-A72 L1D is
 * (pseudo-)LRU while the A53 and A8 use pseudo-random replacement — which
 * changes how kernel noise displaces victim lines in Table 4-style
 * experiments.
 */
enum class ReplacementPolicy
{
    Lru,        ///< Least-recently-used (Cortex-A72 style).
    RoundRobin, ///< Cyclic per-set pointer.
    Random,     ///< LFSR-driven pseudo-random (Cortex-A53/A8 style).
};

const char *toString(ReplacementPolicy policy);

/** Geometry of one cache. */
struct CacheGeometry
{
    size_t size_bytes = 32 * 1024;
    size_t ways = 2;
    size_t line_bytes = 64;
    ReplacementPolicy policy = ReplacementPolicy::Lru;

    size_t
    sets() const
    {
        // Degenerate shapes yield 0 so construction can report the error
        // instead of dividing by zero in a member initializer.
        const size_t denom = ways * line_bytes;
        return denom ? size_bytes / denom : 0;
    }
};

/** Access statistics. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
};

/**
 * One level of cache. The SoC owns the backing SRAM arrays and attaches
 * them to a power domain; the cache only manipulates their contents.
 */
class Cache
{
  public:
    /** Tag-entry flag bits (byte 6 of each 8-byte tag entry). */
    static constexpr uint64_t kFlagValid = 1ull << 48;
    static constexpr uint64_t kFlagDirty = 1ull << 49;
    static constexpr uint64_t kFlagLocked = 1ull << 50;
    static constexpr uint64_t kFlagNonSecure = 1ull << 51;

    /**
     * @param name      e.g. "core0.L1D".
     * @param geometry  Size/ways/line.
     * @param data_ram  Backing SRAM for cached data (size_bytes big).
     * @param tag_ram   Backing SRAM for tags (8 bytes per line).
     * @param backing   Next level (L2 or memory); may be null for caches
     *                  only exercised via debug ports.
     */
    Cache(std::string name, CacheGeometry geometry, MemoryArray &data_ram,
          MemoryArray &tag_ram, LineBacking *backing);

    const std::string &name() const { return name_; }
    const CacheGeometry &geometry() const { return geom_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }

    /** Required tag-RAM bytes for @p geometry. */
    static size_t tagRamBytes(const CacheGeometry &geometry);

    bool enabled() const { return enabled_; }
    /** Software cache enable (SCTLR C/I bit). Disabled caches pass
     * accesses straight to the backing store and keep their RAM state. */
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * Model an undocumented physical bit order in the debug view (the
     * paper's footnote 4: the Cortex-A53 i-cache interleaves instruction
     * and ECC bits in an order the TRM does not document). When set,
     * debug reads return the data under a fixed per-chip bit permutation
     * derived from @p seed: content greps fail, but before/after dump
     * comparison — the paper's workaround — still measures retention
     * exactly. 0 disables.
     */
    void setDebugScramble(uint64_t seed);
    bool debugScrambled() const { return !scramble_.empty(); }

    /** @name CPU-side access path */
    ///@{
    uint64_t read64(uint64_t addr, bool secure);
    void write64(uint64_t addr, uint64_t value, bool secure);
    uint8_t read8(uint64_t addr, bool secure);
    void write8(uint64_t addr, uint8_t value, bool secure);
    ///@}

    /** @name Maintenance operations (Section 5.2.4 semantics) */
    ///@{
    /** Invalidate every line: clears valid bits only. Data RAM intact. */
    void invalidateAll();
    /** Clean (write back if dirty) then invalidate the line at @p addr. */
    void cleanInvalidate(uint64_t addr);
    /** Invalidate the line at @p addr WITHOUT write-back (discard) — the
     * DMA-coherence op a loader issues after writing memory directly. */
    void invalidateLine(uint64_t addr);
    /** Clean every dirty line (no invalidate). */
    void cleanAll();
    /** DC ZVA: allocate and zero the line containing @p addr — the only
     * software path that actually erases L1 data RAM. */
    void zeroLine(uint64_t addr);
    ///@}

    /** @name Locking (CaSE) */
    ///@{
    /** Lock the line currently holding @p addr; it can't be evicted. */
    void lockLine(uint64_t addr);
    void unlockAll();
    ///@}

    /** @name Debug / attack-side interface (RAMINDEX) */
    ///@{
    /** Raw 64-bit word from the data RAM at (way, set, word). Valid bits
     * are irrelevant — this is the co-processor debug path. When
     * @p tz_enforced, words in lines whose tag marks them secure read as
     * zero and @p violation (if non-null) is set. */
    uint64_t debugReadDataWord(size_t way, size_t set, size_t word,
                               bool tz_enforced = false,
                               bool *violation = nullptr) const;
    /** Raw tag entry for (way, set). */
    uint64_t debugReadTagEntry(size_t way, size_t set) const;
    /** Full data-RAM image of one way (the paper's figures). */
    MemoryImage dumpWay(size_t way, bool tz_enforced = false) const;
    /** Full data-RAM image (all ways, way-major). */
    MemoryImage dumpAll(bool tz_enforced = false) const;
    ///@}

    /** True if @p addr currently hits (diagnostics). */
    bool probeHit(uint64_t addr) const;

  private:
    struct Lookup
    {
        uint64_t tag;
        size_t set;
        size_t offset;
    };

    Lookup split(uint64_t addr) const;
    uint64_t tagEntry(size_t way, size_t set) const;
    void setTagEntry(size_t way, size_t set, uint64_t entry);
    size_t dataOffset(size_t way, size_t set) const;
    /** Find the way holding @p tag in @p set; SIZE_MAX if none. */
    size_t findWay(const Lookup &l) const;
    /** Pick a victim way in @p set (invalid first, then LRU-unlocked). */
    size_t victimWay(size_t set);
    /** Ensure the line for @p addr is resident; returns its way. */
    size_t fill(const Lookup &l, uint64_t addr, bool secure);
    void touchLru(size_t way, size_t set);
    void writebackLine(size_t way, size_t set);

    std::string name_;
    CacheGeometry geom_;
    MemoryArray &data_;
    MemoryArray &tags_;
    LineBacking *backing_;
    CacheStats stats_;
    bool enabled_ = false;
    /** LRU age per (set, way); volatile controller state, reset at boot. */
    std::vector<uint32_t> lru_;
    uint32_t lru_clock_ = 0;
    /** Round-robin pointers / LFSR state for the non-LRU policies. */
    std::vector<uint32_t> rr_;
    uint32_t lfsr_ = 0xACE1u;
    /** Debug-view bit permutation (empty = documented order). */
    std::vector<uint8_t> scramble_;
    uint64_t scrambleWord(uint64_t word) const;
};

} // namespace voltboot

#endif // VOLTBOOT_MEM_CACHE_HH

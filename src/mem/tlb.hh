/**
 * @file
 * TLB and page-table models.
 *
 * The paper notes (Section 2.1) that a Cortex-A72 exposes *fifteen*
 * internal RAMs through the CP15 RAMINDEX interface — not just the cache
 * data/tag RAMs but TLBs and branch predictors too. Those structures are
 * SRAM in the core power domain, so Volt Boot retains them across power
 * cycles like everything else; dumping a TLB leaks the victim's
 * address-space layout (which virtual pages were hot, and where they
 * mapped) even when the cached *data* has been evicted.
 *
 * The model: a set-associative TLB whose entry storage is a MemoryArray
 * (attach it to the core domain and it rides through probed power
 * cycles), filled by walks of a two-level page table that lives in
 * simulated DRAM.
 */

#ifndef VOLTBOOT_MEM_TLB_HH
#define VOLTBOOT_MEM_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory_system.hh"
#include "sram/memory_array.hh"
#include "sram/memory_image.hh"

namespace voltboot
{

/** Architectural contents of one TLB entry. */
struct TlbEntry
{
    uint64_t vpn = 0;  ///< Virtual page number.
    uint64_t ppn = 0;  ///< Physical page number.
    uint16_t asid = 0; ///< Address-space id.
    bool writable = false;
    bool valid = false;
};

/**
 * A two-level page table in simulated memory (4 KB pages, 512-entry
 * levels — a simplified aarch64 stage-1 with a 30-bit VA space).
 *
 * Entry format (8 bytes): [0] valid, [1] writable, [63:12] target page
 * base address.
 */
class PageTable
{
  public:
    static constexpr uint64_t kPageBytes = 4096;
    static constexpr uint64_t kEntries = 512;

    /**
     * @param memory Region the tables live in.
     * @param root   Physical address of the root (L1) table; one page.
     * @param alloc_base Physical bump-allocator start for L2 tables.
     */
    PageTable(MemoryRegion &memory, uint64_t root, uint64_t alloc_base);

    uint64_t root() const { return root_; }

    /** Map virtual page @p vaddr's page to physical @p paddr's page. */
    void map(uint64_t vaddr, uint64_t paddr, bool writable);

    /**
     * Walk the table for @p vaddr. Returns the entry (without asid) or
     * nullopt on a translation fault. Each walk costs two memory reads,
     * like hardware.
     */
    std::optional<TlbEntry> walk(uint64_t vaddr) const;

    /** Number of L2 tables allocated so far (diagnostics). */
    size_t tablesAllocated() const { return next_table_; }

  private:
    uint64_t l1EntryAddr(uint64_t vaddr) const;

    MemoryRegion &memory_;
    uint64_t root_;
    uint64_t alloc_base_;
    size_t next_table_ = 0;
};

/**
 * Set-associative TLB with SRAM-backed entry storage.
 *
 * Entry layout in the backing array (16 bytes):
 *   word0: [0] valid, [1] writable, [17:2] asid, [63:18] vpn
 *   word1: ppn
 *
 * Like the caches, invalidation only clears valid bits; the debug
 * interface reads raw entry RAM regardless.
 */
class Tlb
{
  public:
    /**
     * @param name    e.g. "core0.DTLB".
     * @param entries Total entry count.
     * @param ways    Associativity.
     * @param storage Backing SRAM (>= entries * 16 bytes).
     */
    Tlb(std::string name, size_t entries, size_t ways,
        MemoryArray &storage);

    const std::string &name() const { return name_; }
    size_t entryCount() const { return entries_; }
    size_t ways() const { return ways_; }
    size_t sets() const { return entries_ / ways_; }

    /** Look up @p vaddr for @p asid; nullopt on miss. */
    std::optional<TlbEntry> lookup(uint64_t vaddr, uint16_t asid);

    /** Install a translation (evicting round-robin within the set). */
    void insert(uint64_t vaddr, const TlbEntry &entry);

    /** Invalidate everything (valid bits only — entry RAM untouched). */
    void invalidateAll();

    /** Hits/misses since construction. */
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** @name Debug / attack interface */
    ///@{
    /** Raw 64-bit word of entry RAM: (way, set, word 0|1). */
    uint64_t debugReadWord(size_t way, size_t set, size_t word) const;
    /** Decode a raw entry pair into architectural form. */
    static TlbEntry decodeEntry(uint64_t word0, uint64_t word1);
    /** Dump the whole entry RAM (way-major). */
    MemoryImage dumpAll() const;
    /** Parse every (valid-looking) entry out of a raw dump. */
    static std::vector<TlbEntry> parseDump(const MemoryImage &dump);
    ///@}

  private:
    size_t entryOffset(size_t way, size_t set) const;

    std::string name_;
    size_t entries_;
    size_t ways_;
    MemoryArray &storage_;
    std::vector<uint32_t> fill_rr_; ///< Round-robin pointer per set.
    uint64_t hits_ = 0, misses_ = 0;
};

/**
 * Per-core MMU: translation through the TLB with page-table walks on
 * miss. Disabled by default (bare-metal identity addressing).
 */
class Mmu
{
  public:
    Mmu(Tlb &tlb, PageTable &table) : tlb_(tlb), table_(table) {}

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }
    uint16_t asid() const { return asid_; }
    void setAsid(uint16_t asid) { asid_ = asid; }

    /**
     * Translate @p vaddr; identity when disabled. Returns nullopt on a
     * translation fault.
     */
    std::optional<uint64_t> translate(uint64_t vaddr);

  private:
    Tlb &tlb_;
    PageTable &table_;
    bool enabled_ = false;
    uint16_t asid_ = 0;
};

} // namespace voltboot

#endif // VOLTBOOT_MEM_TLB_HH

#include "mem/cache.hh"

#include <bit>
#include <cstring>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace voltboot
{

namespace
{

bool
isPow2(size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

const char *
toString(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru:
        return "LRU";
      case ReplacementPolicy::RoundRobin:
        return "round-robin";
      case ReplacementPolicy::Random:
        return "pseudo-random";
    }
    return "?";
}

Cache::Cache(std::string name, CacheGeometry geometry, MemoryArray &data_ram,
             MemoryArray &tag_ram, LineBacking *backing)
    : name_(std::move(name)), geom_(geometry), data_(data_ram),
      tags_(tag_ram), backing_(backing),
      lru_(geometry.sets() * geometry.ways, 0),
      rr_(geometry.sets(), 0)
{
    if (!isPow2(geom_.line_bytes) || geom_.line_bytes < 8)
        fatal("Cache ", name_, ": line size must be a power of two >= 8");
    if (geom_.ways == 0 || geom_.size_bytes % (geom_.ways * geom_.line_bytes))
        fatal("Cache ", name_, ": size not divisible into ways*lines");
    if (!isPow2(geom_.sets()))
        fatal("Cache ", name_, ": set count must be a power of two");
    if (data_.sizeBytes() < geom_.size_bytes)
        fatal("Cache ", name_, ": data RAM too small");
    if (tags_.sizeBytes() < tagRamBytes(geom_))
        fatal("Cache ", name_, ": tag RAM too small");
}

size_t
Cache::tagRamBytes(const CacheGeometry &geometry)
{
    return geometry.sets() * geometry.ways * 8;
}

Cache::Lookup
Cache::split(uint64_t addr) const
{
    Lookup l;
    const size_t off_bits = std::countr_zero(geom_.line_bytes);
    const size_t set_bits = std::countr_zero(geom_.sets());
    l.offset = addr & (geom_.line_bytes - 1);
    l.set = (addr >> off_bits) & (geom_.sets() - 1);
    l.tag = addr >> (off_bits + set_bits);
    if (l.tag > 0xffffffffffffull)
        panic("Cache ", name_, ": tag exceeds 48 bits: addr ", addr);
    return l;
}

uint64_t
Cache::tagEntry(size_t way, size_t set) const
{
    return tags_.readWord64((set * geom_.ways + way) * 8);
}

void
Cache::setTagEntry(size_t way, size_t set, uint64_t entry)
{
    tags_.writeWord64((set * geom_.ways + way) * 8, entry);
}

size_t
Cache::dataOffset(size_t way, size_t set) const
{
    // Way-major layout: way 0's sets first, then way 1, ... This makes
    // dumpWay() contiguous, matching the paper's "WAY0 = 256 x 512 =
    // 16KB" framing.
    return (way * geom_.sets() + set) * geom_.line_bytes;
}

size_t
Cache::findWay(const Lookup &l) const
{
    for (size_t w = 0; w < geom_.ways; ++w) {
        const uint64_t e = tagEntry(w, l.set);
        if ((e & kFlagValid) && (e & 0xffffffffffffull) == l.tag)
            return w;
    }
    return SIZE_MAX;
}

size_t
Cache::victimWay(size_t set)
{
    // Invalid ways first, regardless of policy.
    for (size_t w = 0; w < geom_.ways; ++w)
        if (!(tagEntry(w, set) & kFlagValid))
            return w;

    auto locked = [&](size_t w) {
        return (tagEntry(w, set) & kFlagLocked) != 0;
    };
    size_t victim = SIZE_MAX;
    switch (geom_.policy) {
      case ReplacementPolicy::Lru: {
        uint32_t oldest = UINT32_MAX;
        for (size_t w = 0; w < geom_.ways; ++w) {
            if (locked(w))
                continue;
            const uint32_t age = lru_[set * geom_.ways + w];
            if (age <= oldest) {
                oldest = age;
                victim = w;
            }
        }
        break;
      }
      case ReplacementPolicy::RoundRobin: {
        for (size_t tries = 0; tries < geom_.ways; ++tries) {
            const size_t w = rr_[set] % geom_.ways;
            rr_[set] = static_cast<uint32_t>(w + 1);
            if (!locked(w)) {
                victim = w;
                break;
            }
        }
        break;
      }
      case ReplacementPolicy::Random: {
        // 16-bit Fibonacci LFSR, like the pseudo-random replacement
        // found in A53/A8-class L1s. Deterministic per cache instance.
        for (size_t tries = 0; tries < 4 * geom_.ways; ++tries) {
            const uint32_t bit = ((lfsr_ >> 0) ^ (lfsr_ >> 2) ^
                                  (lfsr_ >> 3) ^ (lfsr_ >> 5)) &
                                 1u;
            lfsr_ = (lfsr_ >> 1) | (bit << 15);
            const size_t w = lfsr_ % geom_.ways;
            if (!locked(w)) {
                victim = w;
                break;
            }
        }
        // Fall back to any unlocked way if the LFSR was unlucky.
        for (size_t w = 0; w < geom_.ways && victim == SIZE_MAX; ++w)
            if (!locked(w))
                victim = w;
        break;
      }
    }
    if (victim == SIZE_MAX)
        fatal("Cache ", name_, ": set ", set,
              " fully locked; cannot allocate");
    return victim;
}

void
Cache::touchLru(size_t way, size_t set)
{
    lru_[set * geom_.ways + way] = ++lru_clock_;
}

void
Cache::writebackLine(size_t way, size_t set)
{
    const uint64_t e = tagEntry(way, set);
    if (!(e & kFlagValid) || !(e & kFlagDirty) || backing_ == nullptr)
        return;
    const uint64_t tag = e & 0xffffffffffffull;
    const size_t off_bits = std::countr_zero(geom_.line_bytes);
    const size_t set_bits = std::countr_zero(geom_.sets());
    const uint64_t line_addr =
        (tag << (off_bits + set_bits)) | (set << off_bits);
    std::vector<uint8_t> buf(geom_.line_bytes);
    data_.read(dataOffset(way, set), buf);
    backing_->writeLine(line_addr, buf);
    ++stats_.writebacks;
}

size_t
Cache::fill(const Lookup &l, uint64_t addr, bool secure)
{
    size_t way = findWay(l);
    if (way != SIZE_MAX) {
        ++stats_.hits;
        touchLru(way, l.set);
        return way;
    }

    ++stats_.misses;
    way = victimWay(l.set);
    if (tagEntry(way, l.set) & kFlagValid)
        ++stats_.evictions;
    writebackLine(way, l.set);

    const uint64_t line_addr = addr & ~(geom_.line_bytes - 1);
    std::vector<uint8_t> buf(geom_.line_bytes, 0);
    if (backing_)
        backing_->readLine(line_addr, buf);
    data_.write(dataOffset(way, l.set), buf);

    uint64_t entry = l.tag | kFlagValid;
    if (!secure)
        entry |= kFlagNonSecure;
    setTagEntry(way, l.set, entry);
    touchLru(way, l.set);
    return way;
}

uint64_t
Cache::read64(uint64_t addr, bool secure)
{
    if (addr % 8)
        panic("Cache ", name_, ": unaligned read64 at ", addr);
    if (!enabled_) {
        std::vector<uint8_t> buf(geom_.line_bytes);
        if (!backing_)
            panic("Cache ", name_, ": disabled with no backing");
        backing_->readLine(addr & ~(geom_.line_bytes - 1), buf);
        uint64_t v;
        std::memcpy(&v, buf.data() + (addr & (geom_.line_bytes - 1)), 8);
        return v;
    }
    const Lookup l = split(addr);
    const size_t way = fill(l, addr, secure);
    return data_.readWord64(dataOffset(way, l.set) + l.offset);
}

void
Cache::write64(uint64_t addr, uint64_t value, bool secure)
{
    if (addr % 8)
        panic("Cache ", name_, ": unaligned write64 at ", addr);
    if (!enabled_) {
        if (!backing_)
            panic("Cache ", name_, ": disabled with no backing");
        // Read-modify-write the backing line.
        const uint64_t line_addr = addr & ~(geom_.line_bytes - 1);
        std::vector<uint8_t> buf(geom_.line_bytes);
        backing_->readLine(line_addr, buf);
        std::memcpy(buf.data() + (addr & (geom_.line_bytes - 1)), &value, 8);
        backing_->writeLine(line_addr, buf);
        return;
    }
    const Lookup l = split(addr);
    const size_t way = fill(l, addr, secure);
    data_.writeWord64(dataOffset(way, l.set) + l.offset, value);
    setTagEntry(way, l.set, tagEntry(way, l.set) | kFlagDirty);
}

uint8_t
Cache::read8(uint64_t addr, bool secure)
{
    const uint64_t aligned = addr & ~7ull;
    const uint64_t word = read64(aligned, secure);
    return static_cast<uint8_t>(word >> (8 * (addr & 7)));
}

void
Cache::write8(uint64_t addr, uint8_t value, bool secure)
{
    const uint64_t aligned = addr & ~7ull;
    uint64_t word = read64(aligned, secure);
    const unsigned shift = 8 * (addr & 7);
    word &= ~(0xffull << shift);
    word |= static_cast<uint64_t>(value) << shift;
    write64(aligned, word, secure);
}

void
Cache::invalidateAll()
{
    // Clears valid bits only: "cleaning and invalidating a cache at the
    // boot phase does not erase the contents".
    for (size_t s = 0; s < geom_.sets(); ++s)
        for (size_t w = 0; w < geom_.ways; ++w)
            setTagEntry(w, s, tagEntry(w, s) &
                                  ~(kFlagValid | kFlagDirty | kFlagLocked));
}

void
Cache::cleanInvalidate(uint64_t addr)
{
    const Lookup l = split(addr);
    const size_t way = findWay(l);
    if (way == SIZE_MAX)
        return;
    writebackLine(way, l.set);
    setTagEntry(way, l.set,
                tagEntry(way, l.set) & ~(kFlagValid | kFlagDirty));
}

void
Cache::invalidateLine(uint64_t addr)
{
    const Lookup l = split(addr);
    const size_t way = findWay(l);
    if (way == SIZE_MAX)
        return;
    setTagEntry(way, l.set,
                tagEntry(way, l.set) & ~(kFlagValid | kFlagDirty));
}

void
Cache::cleanAll()
{
    for (size_t s = 0; s < geom_.sets(); ++s) {
        for (size_t w = 0; w < geom_.ways; ++w) {
            writebackLine(w, s);
            setTagEntry(w, s, tagEntry(w, s) & ~kFlagDirty);
        }
    }
}

void
Cache::zeroLine(uint64_t addr)
{
    if (!enabled_)
        return;
    const Lookup l = split(addr);
    const size_t way = fill(l, addr, /*secure=*/false);
    std::vector<uint8_t> zeros(geom_.line_bytes, 0);
    data_.write(dataOffset(way, l.set), zeros);
    setTagEntry(way, l.set, tagEntry(way, l.set) | kFlagDirty);
}

void
Cache::lockLine(uint64_t addr)
{
    const Lookup l = split(addr);
    const size_t way = findWay(l);
    if (way == SIZE_MAX)
        fatal("Cache ", name_, ": lockLine on a non-resident address");
    setTagEntry(way, l.set, tagEntry(way, l.set) | kFlagLocked);
}

void
Cache::unlockAll()
{
    for (size_t s = 0; s < geom_.sets(); ++s)
        for (size_t w = 0; w < geom_.ways; ++w)
            setTagEntry(w, s, tagEntry(w, s) & ~kFlagLocked);
}

void
Cache::setDebugScramble(uint64_t seed)
{
    scramble_.clear();
    if (seed == 0)
        return;
    // Fisher-Yates over the 64 bit positions, seeded per chip.
    scramble_.resize(64);
    for (uint8_t i = 0; i < 64; ++i)
        scramble_[i] = i;
    Rng rng(seed);
    for (size_t i = 63; i > 0; --i)
        std::swap(scramble_[i], scramble_[rng.below(i + 1)]);
}

uint64_t
Cache::scrambleWord(uint64_t word) const
{
    if (scramble_.empty())
        return word;
    uint64_t out = 0;
    for (size_t i = 0; i < 64; ++i)
        out |= ((word >> i) & 1) << scramble_[i];
    return out;
}

uint64_t
Cache::debugReadDataWord(size_t way, size_t set, size_t word,
                         bool tz_enforced, bool *violation) const
{
    if (way >= geom_.ways || set >= geom_.sets() ||
        word >= geom_.line_bytes / 8)
        panic("Cache ", name_, ": debug read out of range (way ", way,
              ", set ", set, ", word ", word, ")");
    if (tz_enforced) {
        const uint64_t e = tagEntry(way, set);
        const bool line_secure = !(e & kFlagNonSecure);
        if (line_secure) {
            // Hardware blocks non-secure debug access to secure lines;
            // reading requires flipping the security attribute, which
            // erases the line (Section 8).
            if (violation)
                *violation = true;
            return 0;
        }
    }
    return scrambleWord(data_.readWord64(dataOffset(way, set) + word * 8));
}

uint64_t
Cache::debugReadTagEntry(size_t way, size_t set) const
{
    if (way >= geom_.ways || set >= geom_.sets())
        panic("Cache ", name_, ": tag debug read out of range");
    return tagEntry(way, set);
}

MemoryImage
Cache::dumpWay(size_t way, bool tz_enforced) const
{
    const size_t words_per_line = geom_.line_bytes / 8;
    std::vector<uint8_t> out;
    out.reserve(geom_.sets() * geom_.line_bytes);
    for (size_t s = 0; s < geom_.sets(); ++s) {
        for (size_t w = 0; w < words_per_line; ++w) {
            const uint64_t v = debugReadDataWord(way, s, w, tz_enforced);
            for (int b = 0; b < 8; ++b)
                out.push_back(static_cast<uint8_t>(v >> (8 * b)));
        }
    }
    return MemoryImage(std::move(out));
}

MemoryImage
Cache::dumpAll(bool tz_enforced) const
{
    std::vector<uint8_t> out;
    out.reserve(geom_.size_bytes);
    for (size_t way = 0; way < geom_.ways; ++way) {
        MemoryImage img = dumpWay(way, tz_enforced);
        out.insert(out.end(), img.bytes().begin(), img.bytes().end());
    }
    return MemoryImage(std::move(out));
}

bool
Cache::probeHit(uint64_t addr) const
{
    return findWay(split(addr)) != SIZE_MAX;
}

} // namespace voltboot

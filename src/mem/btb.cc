#include "mem/btb.hh"

#include "sim/logging.hh"

namespace voltboot
{

namespace
{

constexpr uint64_t kValid = 1ull << 0;

} // namespace

Btb::Btb(std::string name, size_t entries, MemoryArray &storage)
    : name_(std::move(name)), entries_(entries), storage_(storage)
{
    if (entries_ == 0 || (entries_ & (entries_ - 1)))
        fatal("Btb ", name_, ": entry count must be a power of two");
    if (storage_.sizeBytes() < entries_ * 16)
        fatal("Btb ", name_, ": backing store too small");
}

void
Btb::recordBranch(uint64_t pc, uint64_t target)
{
    const size_t i = index(pc);
    // Tag word keeps the full PC (shifted, low bit reused as valid).
    storage_.writeWord64(i * 16, (pc << 1) | kValid);
    storage_.writeWord64(i * 16 + 8, target);
}

uint64_t
Btb::predict(uint64_t pc) const
{
    const size_t i = index(pc);
    const uint64_t w0 = storage_.readWord64(i * 16);
    if (!(w0 & kValid) || (w0 >> 1) != pc)
        return 0;
    return storage_.readWord64(i * 16 + 8);
}

void
Btb::invalidateAll()
{
    for (size_t i = 0; i < entries_; ++i)
        storage_.writeWord64(i * 16,
                             storage_.readWord64(i * 16) & ~kValid);
}

uint64_t
Btb::debugReadWord(size_t index, size_t word) const
{
    if (index >= entries_ || word > 1)
        panic("Btb ", name_, ": debug read out of range");
    return storage_.readWord64(index * 16 + word * 8);
}

MemoryImage
Btb::dumpAll() const
{
    std::vector<uint8_t> out;
    out.reserve(entries_ * 16);
    for (size_t i = 0; i < entries_; ++i) {
        for (size_t word = 0; word < 2; ++word) {
            const uint64_t v = debugReadWord(i, word);
            for (int b = 0; b < 8; ++b)
                out.push_back(static_cast<uint8_t>(v >> (8 * b)));
        }
    }
    return MemoryImage(std::move(out));
}

std::vector<BtbEntry>
Btb::parseDump(const MemoryImage &dump)
{
    std::vector<BtbEntry> out;
    const auto &bytes = dump.bytes();
    for (size_t off = 0; off + 16 <= bytes.size(); off += 16) {
        uint64_t w0 = 0, w1 = 0;
        for (int b = 0; b < 8; ++b) {
            w0 |= static_cast<uint64_t>(bytes[off + b]) << (8 * b);
            w1 |= static_cast<uint64_t>(bytes[off + 8 + b]) << (8 * b);
        }
        if (w0 & kValid)
            out.push_back(BtbEntry{w0 >> 1, w1, true});
    }
    return out;
}

} // namespace voltboot

#include "mem/tlb.hh"

#include <bit>

#include "sim/logging.hh"

namespace voltboot
{

namespace
{

constexpr uint64_t kEntryValid = 1ull << 0;
constexpr uint64_t kEntryWritable = 1ull << 1;

bool
isPow2(size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

PageTable::PageTable(MemoryRegion &memory, uint64_t root,
                     uint64_t alloc_base)
    : memory_(memory), root_(root), alloc_base_(alloc_base)
{
    if (root % kPageBytes || alloc_base % kPageBytes)
        fatal("PageTable: root and allocator base must be page-aligned");
    // Zero the root table so unmapped slots read invalid.
    for (uint64_t off = 0; off < kEntries * 8; off += 8)
        memory_.write64(root_ + off, 0);
}

uint64_t
PageTable::l1EntryAddr(uint64_t vaddr) const
{
    const uint64_t vpn = vaddr / kPageBytes;
    const uint64_t l1_index = (vpn >> 9) & (kEntries - 1);
    return root_ + l1_index * 8;
}

void
PageTable::map(uint64_t vaddr, uint64_t paddr, bool writable)
{
    const uint64_t l1_addr = l1EntryAddr(vaddr);
    uint64_t l1_entry = memory_.read64(l1_addr);
    uint64_t l2_base;
    if (!(l1_entry & kEntryValid)) {
        // Allocate and zero a fresh L2 table.
        l2_base = alloc_base_ + next_table_ * kPageBytes;
        ++next_table_;
        for (uint64_t off = 0; off < kEntries * 8; off += 8)
            memory_.write64(l2_base + off, 0);
        memory_.write64(l1_addr, l2_base | kEntryValid);
    } else {
        l2_base = l1_entry & ~(kPageBytes - 1);
    }

    const uint64_t vpn = vaddr / kPageBytes;
    const uint64_t l2_index = vpn & (kEntries - 1);
    uint64_t entry = (paddr & ~(kPageBytes - 1)) | kEntryValid;
    if (writable)
        entry |= kEntryWritable;
    memory_.write64(l2_base + l2_index * 8, entry);
}

std::optional<TlbEntry>
PageTable::walk(uint64_t vaddr) const
{
    const uint64_t l1_entry = memory_.read64(l1EntryAddr(vaddr));
    if (!(l1_entry & kEntryValid))
        return std::nullopt;
    const uint64_t l2_base = l1_entry & ~(kPageBytes - 1);
    const uint64_t vpn = vaddr / kPageBytes;
    const uint64_t l2_index = vpn & (kEntries - 1);
    const uint64_t entry = memory_.read64(l2_base + l2_index * 8);
    if (!(entry & kEntryValid))
        return std::nullopt;
    TlbEntry out;
    out.vpn = vpn;
    out.ppn = (entry & ~(kPageBytes - 1)) / kPageBytes;
    out.writable = entry & kEntryWritable;
    out.valid = true;
    return out;
}

Tlb::Tlb(std::string name, size_t entries, size_t ways,
         MemoryArray &storage)
    : name_(std::move(name)), entries_(entries), ways_(ways),
      storage_(storage), fill_rr_(entries / std::max<size_t>(ways, 1), 0)
{
    if (ways_ == 0 || entries_ % ways_ || !isPow2(entries_ / ways_))
        fatal("Tlb ", name_, ": entries/ways must give power-of-two sets");
    if (storage_.sizeBytes() < entries_ * 16)
        fatal("Tlb ", name_, ": backing store too small");
}

size_t
Tlb::entryOffset(size_t way, size_t set) const
{
    // Way-major, like the cache data RAM layout.
    return (way * sets() + set) * 16;
}

std::optional<TlbEntry>
Tlb::lookup(uint64_t vaddr, uint16_t asid)
{
    const uint64_t vpn = vaddr / PageTable::kPageBytes;
    const size_t set = vpn & (sets() - 1);
    for (size_t way = 0; way < ways_; ++way) {
        const size_t off = entryOffset(way, set);
        const uint64_t w0 = storage_.readWord64(off);
        if (!(w0 & kEntryValid))
            continue;
        const TlbEntry e = decodeEntry(w0, storage_.readWord64(off + 8));
        if (e.vpn == vpn && e.asid == asid) {
            ++hits_;
            return e;
        }
    }
    ++misses_;
    return std::nullopt;
}

void
Tlb::insert(uint64_t vaddr, const TlbEntry &entry)
{
    const uint64_t vpn = vaddr / PageTable::kPageBytes;
    const size_t set = vpn & (sets() - 1);
    // Prefer an invalid way, else round-robin.
    size_t victim = fill_rr_[set] % ways_;
    for (size_t way = 0; way < ways_; ++way) {
        if (!(storage_.readWord64(entryOffset(way, set)) & kEntryValid)) {
            victim = way;
            break;
        }
    }
    fill_rr_[set] = static_cast<uint32_t>(victim + 1);

    uint64_t w0 = kEntryValid;
    if (entry.writable)
        w0 |= kEntryWritable;
    w0 |= static_cast<uint64_t>(entry.asid) << 2;
    w0 |= vpn << 18;
    const size_t off = entryOffset(victim, set);
    storage_.writeWord64(off, w0);
    storage_.writeWord64(off + 8, entry.ppn);
}

void
Tlb::invalidateAll()
{
    for (size_t way = 0; way < ways_; ++way) {
        for (size_t set = 0; set < sets(); ++set) {
            const size_t off = entryOffset(way, set);
            storage_.writeWord64(off,
                                 storage_.readWord64(off) & ~kEntryValid);
        }
    }
}

uint64_t
Tlb::debugReadWord(size_t way, size_t set, size_t word) const
{
    if (way >= ways_ || set >= sets() || word > 1)
        panic("Tlb ", name_, ": debug read out of range");
    return storage_.readWord64(entryOffset(way, set) + word * 8);
}

TlbEntry
Tlb::decodeEntry(uint64_t word0, uint64_t word1)
{
    TlbEntry e;
    e.valid = word0 & kEntryValid;
    e.writable = word0 & kEntryWritable;
    e.asid = static_cast<uint16_t>((word0 >> 2) & 0xffff);
    e.vpn = word0 >> 18;
    e.ppn = word1;
    return e;
}

MemoryImage
Tlb::dumpAll() const
{
    std::vector<uint8_t> out;
    out.reserve(entries_ * 16);
    for (size_t way = 0; way < ways_; ++way) {
        for (size_t set = 0; set < sets(); ++set) {
            for (size_t word = 0; word < 2; ++word) {
                const uint64_t v = debugReadWord(way, set, word);
                for (int b = 0; b < 8; ++b)
                    out.push_back(static_cast<uint8_t>(v >> (8 * b)));
            }
        }
    }
    return MemoryImage(std::move(out));
}

std::vector<TlbEntry>
Tlb::parseDump(const MemoryImage &dump)
{
    std::vector<TlbEntry> out;
    const auto &bytes = dump.bytes();
    for (size_t off = 0; off + 16 <= bytes.size(); off += 16) {
        uint64_t w0 = 0, w1 = 0;
        for (int b = 0; b < 8; ++b) {
            w0 |= static_cast<uint64_t>(bytes[off + b]) << (8 * b);
            w1 |= static_cast<uint64_t>(bytes[off + 8 + b]) << (8 * b);
        }
        const TlbEntry e = decodeEntry(w0, w1);
        if (e.valid)
            out.push_back(e);
    }
    return out;
}

std::optional<uint64_t>
Mmu::translate(uint64_t vaddr)
{
    if (!enabled_)
        return vaddr;
    const uint64_t offset = vaddr % PageTable::kPageBytes;
    if (auto hit = tlb_.lookup(vaddr, asid_))
        return hit->ppn * PageTable::kPageBytes + offset;
    auto walked = table_.walk(vaddr);
    if (!walked)
        return std::nullopt;
    walked->asid = asid_;
    tlb_.insert(vaddr, *walked);
    return walked->ppn * PageTable::kPageBytes + offset;
}

} // namespace voltboot

/**
 * @file
 * Branch target buffer model.
 *
 * Another of the RAMINDEX-reachable internal SRAMs (Section 2.1): the
 * BTB caches (branch PC -> target) pairs. Its contents survive a
 * probe-held power cycle like every other core-domain SRAM, so a dump
 * reveals the victim's control-flow graph — where its hot branches lived
 * and where they went — even after the code itself is gone from the
 * i-cache.
 */

#ifndef VOLTBOOT_MEM_BTB_HH
#define VOLTBOOT_MEM_BTB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sram/memory_array.hh"
#include "sram/memory_image.hh"

namespace voltboot
{

/** One decoded BTB entry. */
struct BtbEntry
{
    uint64_t branch_pc = 0;
    uint64_t target = 0;
    bool valid = false;
};

/**
 * Direct-mapped branch target buffer with SRAM-backed storage (16 bytes
 * per entry: tagged PC word + target word).
 */
class Btb
{
  public:
    Btb(std::string name, size_t entries, MemoryArray &storage);

    const std::string &name() const { return name_; }
    size_t entryCount() const { return entries_; }

    /** Record a taken branch. */
    void recordBranch(uint64_t pc, uint64_t target);

    /** Predicted target for @p pc; 0 if absent. */
    uint64_t predict(uint64_t pc) const;

    /** Drop all valid bits (entry RAM untouched, as with the caches). */
    void invalidateAll();

    /** @name Debug / attack interface */
    ///@{
    uint64_t debugReadWord(size_t index, size_t word) const;
    MemoryImage dumpAll() const;
    static std::vector<BtbEntry> parseDump(const MemoryImage &dump);
    ///@}

  private:
    size_t index(uint64_t pc) const { return (pc >> 2) & (entries_ - 1); }

    std::string name_;
    size_t entries_;
    MemoryArray &storage_;
};

} // namespace voltboot

#endif // VOLTBOOT_MEM_BTB_HH

#include "mem/btb.hh"
#include "mem/memory_system.hh"
#include "mem/tlb.hh"

#include <cstring>

#include "sim/logging.hh"

namespace voltboot
{

void
MemoryRegion::readLine(uint64_t line_addr, std::span<uint8_t> out)
{
    if (!contains(line_addr) || !contains(line_addr + out.size() - 1))
        panic("MemoryRegion: line read outside region at ", line_addr);
    array_.read(line_addr - base_, out);
}

void
MemoryRegion::writeLine(uint64_t line_addr, std::span<const uint8_t> data)
{
    if (!contains(line_addr) || !contains(line_addr + data.size() - 1))
        panic("MemoryRegion: line write outside region at ", line_addr);
    array_.write(line_addr - base_, data);
}

uint64_t
MemoryRegion::read64(uint64_t addr) const
{
    if (!contains(addr) || !contains(addr + 7))
        panic("MemoryRegion: read64 outside region at ", addr);
    return array_.readWord64(addr - base_);
}

void
MemoryRegion::write64(uint64_t addr, uint64_t value)
{
    if (!contains(addr) || !contains(addr + 7))
        panic("MemoryRegion: write64 outside region at ", addr);
    array_.writeWord64(addr - base_, value);
}

uint8_t
MemoryRegion::read8(uint64_t addr) const
{
    if (!contains(addr))
        panic("MemoryRegion: read8 outside region at ", addr);
    return array_.readByte(addr - base_);
}

void
MemoryRegion::write8(uint64_t addr, uint8_t value)
{
    if (!contains(addr))
        panic("MemoryRegion: write8 outside region at ", addr);
    array_.writeByte(addr - base_, value);
}

void
CacheBacking::readLine(uint64_t line_addr, std::span<uint8_t> out)
{
    for (size_t i = 0; i < out.size(); i += 8) {
        const uint64_t v = cache_.read64(line_addr + i, /*secure=*/true);
        std::memcpy(out.data() + i, &v, 8);
    }
}

void
CacheBacking::writeLine(uint64_t line_addr, std::span<const uint8_t> data)
{
    for (size_t i = 0; i < data.size(); i += 8) {
        uint64_t v;
        std::memcpy(&v, data.data() + i, 8);
        cache_.write64(line_addr + i, v, /*secure=*/true);
    }
}

RamIndexDescriptor
RamIndexDescriptor::decode(uint64_t value)
{
    RamIndexDescriptor d;
    d.ram_id = (value >> 56) & 0xf;
    d.way = (value >> 48) & 0xff;
    d.set = (value >> 8) & 0xffffff;
    d.word = value & 0xff;
    return d;
}

uint64_t
RamIndexDescriptor::encode() const
{
    return (static_cast<uint64_t>(ram_id & 0xf) << 56) |
           (static_cast<uint64_t>(way & 0xff) << 48) |
           (static_cast<uint64_t>(set & 0xffffff) << 8) |
           static_cast<uint64_t>(word & 0xff);
}

void
MemorySystem::setMainMemory(MemoryArray &dram, uint64_t base)
{
    dram_.emplace(dram, base);
}

void
MemorySystem::setIram(MemoryArray &iram, uint64_t base)
{
    iram_.emplace(iram, base);
}

void
MemorySystem::setL2(std::unique_ptr<Cache> l2)
{
    l2_ = std::move(l2);
    l2_backing_ = std::make_unique<CacheBacking>(*l2_);
}

size_t
MemorySystem::addCore(std::unique_ptr<Cache> l1i, std::unique_ptr<Cache> l1d)
{
    cores_.push_back(CoreCaches{std::move(l1i), std::move(l1d)});
    return cores_.size() - 1;
}

LineBacking *
MemorySystem::l1Backing()
{
    if (l2_backing_)
        return l2_backing_.get();
    if (dram_)
        return &*dram_;
    return nullptr;
}

uint32_t
CorePort::fetch32(uint64_t addr)
{
    if (addr % 4)
        panic("CorePort: misaligned fetch at ", addr);
    if (sys_.isIramAddr(addr)) {
        // iRAM fetches bypass the cache hierarchy.
        const uint64_t word = sys_.iram()->read64(addr & ~7ull);
        return static_cast<uint32_t>(word >> (8 * (addr & 4)));
    }
    Cache &icache = sys_.l1i(core_);
    const uint64_t word = icache.read64(addr & ~7ull, secure_);
    return static_cast<uint32_t>(word >> (8 * (addr & 4)));
}

uint64_t
CorePort::read64(uint64_t addr)
{
    if (sys_.isIramAddr(addr))
        return sys_.iram()->read64(addr);
    return sys_.l1d(core_).read64(addr, secure_);
}

void
CorePort::write64(uint64_t addr, uint64_t value)
{
    if (sys_.isIramAddr(addr)) {
        sys_.iram()->write64(addr, value);
        return;
    }
    sys_.l1d(core_).write64(addr, value, secure_);
}

uint8_t
CorePort::read8(uint64_t addr)
{
    if (sys_.isIramAddr(addr))
        return sys_.iram()->read8(addr);
    return sys_.l1d(core_).read8(addr, secure_);
}

void
CorePort::write8(uint64_t addr, uint8_t value)
{
    if (sys_.isIramAddr(addr)) {
        sys_.iram()->write8(addr, value);
        return;
    }
    sys_.l1d(core_).write8(addr, value, secure_);
}

void
CorePort::zeroCacheLine(uint64_t addr)
{
    sys_.l1d(core_).zeroLine(addr);
}

void
CorePort::cleanInvalidateLine(uint64_t addr)
{
    sys_.l1d(core_).cleanInvalidate(addr);
}

void
CorePort::invalidateAllICache()
{
    sys_.l1i(core_).invalidateAll();
}

uint64_t
CorePort::ramIndexRead(uint64_t descriptor)
{
    const RamIndexDescriptor d = RamIndexDescriptor::decode(descriptor);
    const bool tz = sys_.tzEnforced() && !secure_;
    switch (d.ram_id) {
      case RamIndexDescriptor::kL1DData:
        return sys_.l1d(core_).debugReadDataWord(d.way, d.set, d.word, tz);
      case RamIndexDescriptor::kL1DTag:
        return sys_.l1d(core_).debugReadTagEntry(d.way, d.set);
      case RamIndexDescriptor::kL1IData:
        return sys_.l1i(core_).debugReadDataWord(d.way, d.set, d.word, tz);
      case RamIndexDescriptor::kL1ITag:
        return sys_.l1i(core_).debugReadTagEntry(d.way, d.set);
      case RamIndexDescriptor::kDTlb: {
        Tlb *tlb = sys_.dtlb(core_);
        if (!tlb)
            panic("CorePort: RAMINDEX TLB read on a core without a TLB");
        return tlb->debugReadWord(d.way, d.set, d.word);
      }
      case RamIndexDescriptor::kBtb: {
        Btb *btb = sys_.btb(core_);
        if (!btb)
            panic("CorePort: RAMINDEX BTB read on a core without a BTB");
        return btb->debugReadWord(d.set, d.word);
      }
      default:
        panic("CorePort: RAMINDEX with unknown RAM id ", d.ram_id);
    }
}

void
CorePort::branchTaken(uint64_t pc, uint64_t target)
{
    if (Btb *btb = sys_.btb(core_))
        btb->recordBranch(pc, target);
}

void
MemorySystem::setCoreDebugRams(size_t core, Tlb *dtlb, Btb *btb)
{
    cores_.at(core).dtlb = dtlb;
    cores_.at(core).btb = btb;
}

void
CorePort::setCacheEnables(bool dcache_on, bool icache_on)
{
    sys_.l1d(core_).setEnabled(dcache_on);
    sys_.l1i(core_).setEnabled(icache_on);
}

} // namespace voltboot

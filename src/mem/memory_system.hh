/**
 * @file
 * The memory hierarchy of a simulated SoC: per-core split L1s, an
 * optional shared L2, DRAM main memory and an optional iRAM region.
 *
 * A CorePort adapts one core's view of this hierarchy to the Cpu's
 * MemoryPort interface, including the RAMINDEX debug-descriptor decoding
 * that mirrors the CP15 co-processor interface of Cortex-A parts.
 */

#ifndef VOLTBOOT_MEM_MEMORY_SYSTEM_HH
#define VOLTBOOT_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/cpu.hh"
#include "mem/cache.hh"
#include "sram/memory_array.hh"
#include "sram/memory_image.hh"

namespace voltboot
{

/** A flat region of memory directly backed by a MemoryArray. */
class MemoryRegion : public LineBacking
{
  public:
    MemoryRegion(MemoryArray &array, uint64_t base)
        : array_(array), base_(base)
    {}

    MemoryArray &array() { return array_; }
    const MemoryArray &array() const { return array_; }
    uint64_t base() const { return base_; }
    uint64_t size() const { return array_.sizeBytes(); }
    bool contains(uint64_t addr) const
    { return addr >= base_ && addr - base_ < size(); }

    void readLine(uint64_t line_addr, std::span<uint8_t> out) override;
    void writeLine(uint64_t line_addr,
                   std::span<const uint8_t> data) override;

    uint64_t read64(uint64_t addr) const;
    void write64(uint64_t addr, uint64_t value);
    uint8_t read8(uint64_t addr) const;
    void write8(uint64_t addr, uint8_t value);

  private:
    MemoryArray &array_;
    uint64_t base_;
};

/** Adapter: a Cache viewed as the next level's LineBacking. */
class CacheBacking : public LineBacking
{
  public:
    explicit CacheBacking(Cache &cache) : cache_(cache) {}
    void readLine(uint64_t line_addr, std::span<uint8_t> out) override;
    void writeLine(uint64_t line_addr,
                   std::span<const uint8_t> data) override;

  private:
    Cache &cache_;
};

/**
 * RAMINDEX descriptor encoding (our CP15 data-register interface):
 *   [59:56] RAM id   (0 = L1D data, 1 = L1D tag, 2 = L1I data, 3 = L1I tag,
 *                     4 = DTLB entry RAM, 5 = BTB entry RAM)
 *   [55:48] way      (TLB: way; BTB: ignored)
 *   [31:8]  set index (BTB: entry index)
 *   [7:0]   64-bit word offset within the line/entry
 */
struct RamIndexDescriptor
{
    unsigned ram_id;
    size_t way;
    size_t set;
    size_t word;

    static RamIndexDescriptor decode(uint64_t value);
    uint64_t encode() const;

    static constexpr unsigned kL1DData = 0;
    static constexpr unsigned kL1DTag = 1;
    static constexpr unsigned kL1IData = 2;
    static constexpr unsigned kL1ITag = 3;
    static constexpr unsigned kDTlb = 4;
    static constexpr unsigned kBtb = 5;
};

class Tlb;
class Btb;

/** Per-core cache pair plus the non-owning debug-visible RAM pointers. */
struct CoreCaches
{
    std::unique_ptr<Cache> l1i;
    std::unique_ptr<Cache> l1d;
    Tlb *dtlb = nullptr;
    Btb *btb = nullptr;
};

/**
 * The full hierarchy. The SoC constructs it with externally owned
 * MemoryArray backing stores (so power domains control them); this class
 * wires them into caches and regions.
 */
class MemorySystem
{
  public:
    MemorySystem() = default;

    /** Install main memory (DRAM). */
    void setMainMemory(MemoryArray &dram, uint64_t base);
    /** Install an iRAM region (uncached, directly addressed). */
    void setIram(MemoryArray &iram, uint64_t base);
    /** Install a shared L2 between the L1s and DRAM. */
    void setL2(std::unique_ptr<Cache> l2);

    /** Add one core's L1 pair; returns the core index. */
    size_t addCore(std::unique_ptr<Cache> l1i, std::unique_ptr<Cache> l1d);

    /** Wire the core's TLB/BTB (owned elsewhere) into the debug fabric. */
    void setCoreDebugRams(size_t core, Tlb *dtlb, Btb *btb);
    Tlb *dtlb(size_t core) { return cores_.at(core).dtlb; }
    Btb *btb(size_t core) { return cores_.at(core).btb; }

    size_t coreCount() const { return cores_.size(); }
    Cache &l1i(size_t core) { return *cores_.at(core).l1i; }
    Cache &l1d(size_t core) { return *cores_.at(core).l1d; }
    const Cache &l1i(size_t core) const { return *cores_.at(core).l1i; }
    const Cache &l1d(size_t core) const { return *cores_.at(core).l1d; }
    Cache *l2() { return l2_.get(); }
    MemoryRegion *mainMemory() { return dram_ ? &*dram_ : nullptr; }
    MemoryRegion *iram() { return iram_ ? &*iram_ : nullptr; }

    /** The backing the L1s fill from (L2 if present, else DRAM). */
    LineBacking *l1Backing();

    /** TrustZone enforcement for debug reads (Section 8 countermeasure). */
    bool tzEnforced() const { return tz_enforced_; }
    void setTzEnforced(bool on) { tz_enforced_ = on; }

    /** Is @p addr in the iRAM (uncached) window? */
    bool isIramAddr(uint64_t addr) const
    { return iram_ && iram_->contains(addr); }

  private:
    friend class CorePort;
    std::vector<CoreCaches> cores_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<CacheBacking> l2_backing_;
    std::optional<MemoryRegion> dram_;
    std::optional<MemoryRegion> iram_;
    bool tz_enforced_ = false;
};

/**
 * One core's window onto the MemorySystem, implementing the Cpu's
 * MemoryPort. Carries the core's secure-world state for TrustZone
 * tagging of the lines it allocates.
 */
class CorePort : public MemoryPort
{
  public:
    CorePort(MemorySystem &system, size_t core)
        : sys_(system), core_(core)
    {}

    /** Secure/non-secure world of subsequent accesses. */
    void setSecureWorld(bool secure) { secure_ = secure; }
    bool secureWorld() const { return secure_; }

    uint32_t fetch32(uint64_t addr) override;
    uint64_t read64(uint64_t addr) override;
    void write64(uint64_t addr, uint64_t value) override;
    uint8_t read8(uint64_t addr) override;
    void write8(uint64_t addr, uint8_t value) override;
    void zeroCacheLine(uint64_t addr) override;
    void cleanInvalidateLine(uint64_t addr) override;
    void invalidateAllICache() override;
    uint64_t ramIndexRead(uint64_t descriptor) override;
    void setCacheEnables(bool dcache_on, bool icache_on) override;
    void branchTaken(uint64_t pc, uint64_t target) override;

  private:
    MemorySystem &sys_;
    size_t core_;
    bool secure_ = true;
};

} // namespace voltboot

#endif // VOLTBOOT_MEM_MEMORY_SYSTEM_HH

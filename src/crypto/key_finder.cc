#include "crypto/key_finder.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace voltboot
{

size_t
KeyFinder::scheduleBitErrors(std::span<const uint8_t> window,
                             size_t key_bytes)
{
    const std::vector<uint8_t> ideal =
        Aes::expandKey(window.subspan(0, key_bytes));
    if (window.size() < ideal.size())
        panic("KeyFinder: window smaller than a full schedule");
    size_t errors = 0;
    // The first key_bytes match by construction; score the derived part.
    for (size_t i = key_bytes; i < ideal.size(); ++i)
        errors += std::popcount(static_cast<uint8_t>(window[i] ^ ideal[i]));
    return errors;
}

std::vector<KeyCandidate>
KeyFinder::scan(const MemoryImage &image) const
{
    std::vector<KeyCandidate> hits;
    const auto &bytes = image.bytes();

    struct Variant
    {
        size_t key_bytes;
        size_t schedule_bytes;
        bool enabled;
    };
    const Variant variants[] = {
        {16, 176, config_.aes128},
        {32, 240, config_.aes256},
    };

    for (const Variant &v : variants) {
        if (!v.enabled || bytes.size() < v.schedule_bytes)
            continue;
        // Bits being scored: the derived (redundant) part of the schedule.
        const double derived_bits =
            static_cast<double>((v.schedule_bytes - v.key_bytes) * 8);
        for (size_t off = 0; off + v.schedule_bytes <= bytes.size();
             off += config_.stride) {
            std::span<const uint8_t> window(bytes.data() + off,
                                            v.schedule_bytes);
            // Cheap pre-filter: an all-zero or all-equal window is never
            // a schedule (Rcon injection forbids it) and zero pages
            // dominate real dumps.
            if (std::all_of(window.begin(), window.begin() + 16,
                            [&](uint8_t b) { return b == window[0]; }))
                continue;
            const size_t errors = scheduleBitErrors(window, v.key_bytes);
            const double frac = static_cast<double>(errors) / derived_bits;
            if (frac <= config_.max_error_fraction) {
                KeyCandidate cand;
                cand.offset = off;
                cand.key_bytes = v.key_bytes;
                cand.key.assign(window.begin(),
                                window.begin() + v.key_bytes);
                cand.bit_errors = errors;
                cand.error_fraction = frac;
                hits.push_back(std::move(cand));
            }
        }
    }

    std::sort(hits.begin(), hits.end(),
              [](const KeyCandidate &a, const KeyCandidate &b) {
                  return a.bit_errors < b.bit_errors;
              });
    return hits;
}

std::optional<KeyCandidate>
KeyFinder::best(const MemoryImage &image) const
{
    auto hits = scan(image);
    if (hits.empty())
        return std::nullopt;
    return hits.front();
}

} // namespace voltboot

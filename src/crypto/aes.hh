/**
 * @file
 * AES-128/192/256 (FIPS-197) — block cipher and key expansion.
 *
 * Used as the victim workload for the on-chip-cryptography attacks: the
 * expanded key schedule is exactly what TRESOR-style systems park in
 * registers and CaSE-style systems park in locked cache lines, and the
 * schedule's algebraic structure is what the KeyFinder scanner exploits
 * to locate keys in memory dumps (as in the original cold boot attack).
 *
 * This implementation favours clarity and auditability over speed; it is
 * a victim model, not a production cipher.
 */

#ifndef VOLTBOOT_CRYPTO_AES_HH
#define VOLTBOOT_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace voltboot
{

/** AES with a 128/192/256-bit key. */
class Aes
{
  public:
    /** Construct from a raw key of 16, 24 or 32 bytes. */
    explicit Aes(std::span<const uint8_t> key);

    /** Key length in bytes. */
    size_t keyBytes() const { return key_bytes_; }
    /** Number of rounds (10/12/14). */
    size_t rounds() const { return rounds_; }

    /**
     * The expanded key schedule: 4*(rounds+1) words, serialised as
     * bytes in the order they'd sit in memory. This is the secret an
     * attacker hunts for.
     */
    const std::vector<uint8_t> &schedule() const { return schedule_; }

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(std::span<uint8_t, 16> block) const;
    /** Decrypt one 16-byte block in place. */
    void decryptBlock(std::span<uint8_t, 16> block) const;

    /** ECB convenience over whole buffers (length % 16 == 0). */
    std::vector<uint8_t> encryptEcb(std::span<const uint8_t> data) const;
    std::vector<uint8_t> decryptEcb(std::span<const uint8_t> data) const;

    /**
     * Expand @p key into a schedule without building an Aes object
     * (shared with KeyFinder's candidate verification).
     */
    static std::vector<uint8_t> expandKey(std::span<const uint8_t> key);

    /** The AES S-box (exposed for KeyFinder's schedule checks). */
    static const std::array<uint8_t, 256> &sbox();

  private:
    size_t key_bytes_;
    size_t rounds_;
    std::vector<uint8_t> schedule_;
};

} // namespace voltboot

#endif // VOLTBOOT_CRYPTO_AES_HH

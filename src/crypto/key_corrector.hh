/**
 * @file
 * Error-correcting AES key reconstruction from decayed key schedules.
 *
 * The original cold boot work recovers keys from partially decayed DRAM
 * by exploiting the key schedule's ~11x redundancy: even when bits of
 * the master key itself have flipped, the surviving derived round-key
 * bits over-constrain it. This module implements a local-search
 * corrector: starting from the observed (possibly corrupted) master-key
 * bytes, greedily flip key bits while the regenerated schedule's
 * disagreement with the observed window shrinks.
 *
 * Two asymmetries matter for the paper's argument:
 *  - DRAM decays toward a known ground state, so low error rates are
 *    correctable and classic cold boot succeeds on DRAM;
 *  - SRAM is bistable (errors in both polarities, toward a per-cell
 *    random fingerprint), and a realistic SRAM cold boot leaves ~50%
 *    error — far beyond any corrector. Volt Boot sidesteps the question
 *    by producing error-free dumps.
 */

#ifndef VOLTBOOT_CRYPTO_KEY_CORRECTOR_HH
#define VOLTBOOT_CRYPTO_KEY_CORRECTOR_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sram/memory_image.hh"

namespace voltboot
{

/** Result of a correction attempt. */
struct CorrectedKey
{
    std::vector<uint8_t> key;  ///< Reconstructed master key.
    size_t residual_bit_errors; ///< Schedule disagreement after repair.
    size_t key_bits_flipped;    ///< Corrections applied to the key bytes.
    size_t iterations;          ///< Local-search steps taken.
};

/** Tunables for the local search. */
struct KeyCorrectorConfig
{
    /** Give up when the residual disagreement exceeds this fraction of
     * the derived-schedule bits (the window is then not a schedule). */
    double accept_threshold = 0.05;
    /** Hard cap on local-search iterations. */
    size_t max_iterations = 512;
};

/**
 * Reconstructs AES master keys from corrupted schedule windows.
 */
class KeyCorrector
{
  public:
    explicit KeyCorrector(KeyCorrectorConfig config = {})
        : config_(config)
    {}

    /**
     * Attempt to reconstruct the AES key whose schedule (of
     * @p key_bytes-byte keys) best explains @p window. Returns nullopt
     * when the residual stays above the acceptance threshold.
     */
    std::optional<CorrectedKey> correct(std::span<const uint8_t> window,
                                        size_t key_bytes) const;

  private:
    KeyCorrectorConfig config_;
};

/** A correction-scan hit. */
struct RobustScanHit
{
    size_t offset;
    CorrectedKey corrected;
};

/**
 * Slide over a memory image looking for *decayed* key schedules: windows
 * are pre-filtered by their first-round consistency (cheap; one key-bit
 * error perturbs only a few first-round bits, while random data
 * disagrees on ~50%), then handed to the KeyCorrector. This is what
 * recovers disk keys from a chilled, transplanted DRAM image — the
 * attack the paper's on-chip crypto schemes were designed to stop.
 */
class RobustKeyScanner
{
  public:
    RobustKeyScanner(KeyCorrector corrector, size_t stride = 4,
                     double prefilter_threshold = 0.375)
        : corrector_(corrector), stride_(stride),
          prefilter_(prefilter_threshold)
    {}

    /** All correctable schedules in @p image, best first. */
    std::vector<RobustScanHit> scan(const MemoryImage &image,
                                    size_t key_bytes) const;

    /** The single best hit, if any. */
    std::optional<RobustScanHit> best(const MemoryImage &image,
                                      size_t key_bytes) const;

    /** Fraction of first-round bits disagreeing for @p window. */
    static double firstRoundMismatch(std::span<const uint8_t> window,
                                     size_t key_bytes);

  private:
    KeyCorrector corrector_;
    size_t stride_;
    double prefilter_;
};

} // namespace voltboot

#endif // VOLTBOOT_CRYPTO_KEY_CORRECTOR_HH

/**
 * @file
 * Error-correcting AES key reconstruction from decayed key schedules.
 *
 * The original cold boot work recovers keys from partially decayed DRAM
 * by exploiting the key schedule's ~11x redundancy: even when bits of
 * the master key itself have flipped, the surviving derived round-key
 * bits over-constrain it. This module implements a local-search
 * corrector: starting from the observed (possibly corrupted) master-key
 * bytes, greedily flip key bits while the regenerated schedule's
 * disagreement with the observed window shrinks.
 *
 * Two asymmetries matter for the paper's argument:
 *  - DRAM decays toward a known ground state, so low error rates are
 *    correctable and classic cold boot succeeds on DRAM;
 *  - SRAM is bistable (errors in both polarities, toward a per-cell
 *    random fingerprint), and a realistic SRAM cold boot leaves ~50%
 *    error — far beyond any corrector. Volt Boot sidesteps the question
 *    by producing error-free dumps.
 *
 * The ~50% regime is recognised *before* any local search runs: most of
 * the schedule satisfies XOR-only word relations (w[i] = w[i-Nk] ^
 * w[i-1] whenever no S-box is applied), so the fraction of violated
 * relation bits estimates the channel noise without knowing the key. A
 * window whose residual fraction exceeds give_up_residual is abandoned
 * deterministically with a structured gave-up reason instead of
 * burning max_iterations of schedule expansions on garbage.
 *
 * attempt() additionally accepts per-key-bit flip priors (the keyfind
 * engine derives them from the SRAM model's per-cell DRV/retention
 * parameters): candidate flips are then tried in descending prior
 * order with first-improvement acceptance, which reaches the same
 * corrected keys while evaluating far fewer candidate schedules than
 * the uniform steepest-descent sweep.
 */

#ifndef VOLTBOOT_CRYPTO_KEY_CORRECTOR_HH
#define VOLTBOOT_CRYPTO_KEY_CORRECTOR_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sram/memory_image.hh"

namespace voltboot
{

/** Result of a correction attempt. */
struct CorrectedKey
{
    std::vector<uint8_t> key;  ///< Reconstructed master key.
    size_t residual_bit_errors; ///< Schedule disagreement after repair.
    size_t key_bits_flipped;    ///< Corrections applied to the key bytes.
    size_t iterations;          ///< Local-search steps taken.
};

/** Why a correction attempt stopped without an accepted key. */
enum class GiveUpReason
{
    None,          ///< An accepted key was produced.
    Residual,      ///< Search stalled just above the acceptance bar.
    ErrorFloor,    ///< Noise estimate / stall far beyond correctability
                   ///< (the ~50% bistable-SRAM cold-boot regime).
    MaxIterations, ///< Hit the iteration cap before converging.
};

const char *toString(GiveUpReason reason);

/**
 * Schedule word indices i for which w[i] = w[i-Nk] ^ w[i-1] holds
 * exactly in an ideal schedule (no S-box / Rcon on that row), chosen so
 * no schedule word appears in more than one relation. Shared by the
 * corrector's noise gate and the keyfind scan's early-reject filter:
 * because the supports are disjoint and key-word terms cancel, the
 * summed violated-bit count of these relations never exceeds the
 * window's derived-bit error count — rejecting on it is conservative.
 */
std::span<const unsigned> scheduleResidualWords(size_t key_bytes);

/** Full outcome of one correction attempt: the accepted key when the
 * search converged, and a structured reason plus search-cost counters
 * when it did not. */
struct CorrectionAttempt
{
    /** The accepted key; nullopt when the attempt gave up. */
    std::optional<CorrectedKey> key;
    GiveUpReason gave_up = GiveUpReason::None;
    /** Local-search iterations actually taken. */
    size_t iterations = 0;
    /** Candidate schedules expanded and scored (the search cost). */
    size_t distance_evals = 0;
    /** Best whole-window bit disagreement reached. */
    size_t residual_bit_errors = 0;
};

/** Tunables for the local search. */
struct KeyCorrectorConfig
{
    /** Give up when the residual disagreement exceeds this fraction of
     * the derived-schedule bits (the window is then not a schedule). */
    double accept_threshold = 0.05;
    /** Hard cap on local-search iterations. */
    size_t max_iterations = 512;
    /**
     * Bail out *before* searching when the key-independent linear
     * residual fraction (see linearResidualFraction) exceeds this. A
     * true schedule at bit-error rate p violates ~3p of its relation
     * bits, so 0.30 corresponds to p ~ 0.10 — already beyond what the
     * local search can repair — while the ~50% SRAM cold-boot regime
     * sits at ~0.5 and is rejected deterministically in one pass.
     */
    double give_up_residual = 0.30;
    /**
     * Pairwise (two-bit) lookahead is only attempted while the best
     * distance fraction is at or below this; stalling above it ends
     * the attempt with GiveUpReason::ErrorFloor instead of an O(bits^2)
     * sweep over a window that is already hopeless.
     */
    double lookahead_threshold = 0.35;
};

/**
 * Reconstructs AES master keys from corrupted schedule windows.
 */
class KeyCorrector
{
  public:
    explicit KeyCorrector(KeyCorrectorConfig config = {})
        : config_(config)
    {}

    /**
     * Attempt to reconstruct the AES key whose schedule (of
     * @p key_bytes-byte keys) best explains @p window. Returns nullopt
     * when the residual stays above the acceptance threshold.
     */
    std::optional<CorrectedKey> correct(std::span<const uint8_t> window,
                                        size_t key_bytes) const;

    /**
     * Full-outcome variant of correct(). When @p bit_priors is
     * non-empty it must hold one flip likelihood per key bit
     * (key_bytes * 8 entries, bit b of key byte i at index i * 8 + b);
     * candidate flips are then tried in descending-prior order with
     * first-improvement acceptance instead of the uniform
     * steepest-descent sweep. Both orders are deterministic.
     */
    CorrectionAttempt attempt(std::span<const uint8_t> window,
                              size_t key_bytes,
                              std::span<const float> bit_priors = {}) const;

    /**
     * Key-independent channel-noise estimate for @p window: the
     * fraction of violated bits over a fixed set of XOR-only schedule
     * word relations (w[i] ^ w[i-Nk] ^ w[i-1] for non-S-box rows,
     * chosen with disjoint word supports). ~0 for a clean schedule,
     * ~3p at bit-error rate p, ~0.5 for random data.
     */
    static double linearResidualFraction(std::span<const uint8_t> window,
                                         size_t key_bytes);

    const KeyCorrectorConfig &config() const { return config_; }

  private:
    KeyCorrectorConfig config_;
};

/** A correction-scan hit. */
struct RobustScanHit
{
    size_t offset;
    CorrectedKey corrected;
};

/**
 * Slide over a memory image looking for *decayed* key schedules: windows
 * are pre-filtered by their first-round consistency (cheap; one key-bit
 * error perturbs only a few first-round bits, while random data
 * disagrees on ~50%), then handed to the KeyCorrector. This is what
 * recovers disk keys from a chilled, transplanted DRAM image — the
 * attack the paper's on-chip crypto schemes were designed to stop.
 */
class RobustKeyScanner
{
  public:
    RobustKeyScanner(KeyCorrector corrector, size_t stride = 4,
                     double prefilter_threshold = 0.375)
        : corrector_(corrector), stride_(stride),
          prefilter_(prefilter_threshold)
    {}

    /** All correctable schedules in @p image, best first. */
    std::vector<RobustScanHit> scan(const MemoryImage &image,
                                    size_t key_bytes) const;

    /** The single best hit, if any. */
    std::optional<RobustScanHit> best(const MemoryImage &image,
                                      size_t key_bytes) const;

    /** Fraction of first-round bits disagreeing for @p window. */
    static double firstRoundMismatch(std::span<const uint8_t> window,
                                     size_t key_bytes);

  private:
    KeyCorrector corrector_;
    size_t stride_;
    double prefilter_;
};

} // namespace voltboot

#endif // VOLTBOOT_CRYPTO_KEY_CORRECTOR_HH

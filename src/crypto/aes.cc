#include "crypto/aes.hh"

#include <cstring>

#include "sim/logging.hh"

namespace voltboot
{

namespace
{

/** Multiply in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1. */
uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        const bool hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

/** Build the S-box from the field inverse + affine map (no magic table). */
std::array<uint8_t, 256>
buildSbox()
{
    // Inverses via brute force; 256x256 is trivial at startup.
    std::array<uint8_t, 256> inv{};
    for (int a = 1; a < 256; ++a) {
        for (int b = 1; b < 256; ++b) {
            if (gmul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)) ==
                1) {
                inv[a] = static_cast<uint8_t>(b);
                break;
            }
        }
    }
    std::array<uint8_t, 256> sbox{};
    for (int x = 0; x < 256; ++x) {
        const uint8_t b = inv[x];
        uint8_t r = 0;
        for (int i = 0; i < 8; ++i) {
            const int bit = ((b >> i) & 1) ^ ((b >> ((i + 4) % 8)) & 1) ^
                            ((b >> ((i + 5) % 8)) & 1) ^
                            ((b >> ((i + 6) % 8)) & 1) ^
                            ((b >> ((i + 7) % 8)) & 1) ^
                            ((0x63 >> i) & 1);
            r |= static_cast<uint8_t>(bit) << i;
        }
        sbox[x] = r;
    }
    return sbox;
}

std::array<uint8_t, 256>
buildInvSbox(const std::array<uint8_t, 256> &sbox)
{
    std::array<uint8_t, 256> inv{};
    for (int i = 0; i < 256; ++i)
        inv[sbox[i]] = static_cast<uint8_t>(i);
    return inv;
}

const std::array<uint8_t, 256> &
invSbox()
{
    static const std::array<uint8_t, 256> table = buildInvSbox(Aes::sbox());
    return table;
}

void
subBytes(uint8_t *s)
{
    for (int i = 0; i < 16; ++i)
        s[i] = Aes::sbox()[s[i]];
}

void
invSubBytes(uint8_t *s)
{
    for (int i = 0; i < 16; ++i)
        s[i] = invSbox()[s[i]];
}

// State layout: s[r + 4*c] — column-major, as in FIPS-197.
void
shiftRows(uint8_t *s)
{
    uint8_t t[16];
    std::memcpy(t, s, 16);
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            s[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
}

void
invShiftRows(uint8_t *s)
{
    uint8_t t[16];
    std::memcpy(t, s, 16);
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            s[r + 4 * ((c + r) % 4)] = t[r + 4 * c];
}

void
mixColumns(uint8_t *s)
{
    for (int c = 0; c < 4; ++c) {
        uint8_t *col = s + 4 * c;
        const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3;
        col[1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3;
        col[2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3);
        col[3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2);
    }
}

void
invMixColumns(uint8_t *s)
{
    for (int c = 0; c < 4; ++c) {
        uint8_t *col = s + 4 * c;
        const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
    }
}

void
addRoundKey(uint8_t *s, const uint8_t *rk)
{
    for (int i = 0; i < 16; ++i)
        s[i] ^= rk[i];
}

} // namespace

const std::array<uint8_t, 256> &
Aes::sbox()
{
    static const std::array<uint8_t, 256> table = buildSbox();
    return table;
}

std::vector<uint8_t>
Aes::expandKey(std::span<const uint8_t> key)
{
    const size_t nk = key.size() / 4; // key words
    size_t nr;
    switch (key.size()) {
      case 16:
        nr = 10;
        break;
      case 24:
        nr = 12;
        break;
      case 32:
        nr = 14;
        break;
      default:
        fatal("Aes: key must be 16, 24 or 32 bytes, got ", key.size());
    }

    const size_t total_words = 4 * (nr + 1);
    std::vector<uint8_t> w(total_words * 4);
    std::memcpy(w.data(), key.data(), key.size());

    uint8_t rcon = 1;
    for (size_t i = nk; i < total_words; ++i) {
        uint8_t temp[4];
        std::memcpy(temp, w.data() + (i - 1) * 4, 4);
        if (i % nk == 0) {
            // RotWord + SubWord + Rcon
            const uint8_t t0 = temp[0];
            temp[0] = sbox()[temp[1]] ^ rcon;
            temp[1] = sbox()[temp[2]];
            temp[2] = sbox()[temp[3]];
            temp[3] = sbox()[t0];
            rcon = gmul(rcon, 2);
        } else if (nk > 6 && i % nk == 4) {
            for (int b = 0; b < 4; ++b)
                temp[b] = sbox()[temp[b]];
        }
        for (int b = 0; b < 4; ++b)
            w[i * 4 + b] = w[(i - nk) * 4 + b] ^ temp[b];
    }
    return w;
}

Aes::Aes(std::span<const uint8_t> key)
    : key_bytes_(key.size()),
      rounds_(key.size() == 16 ? 10 : key.size() == 24 ? 12 : 14),
      schedule_(expandKey(key))
{
}

void
Aes::encryptBlock(std::span<uint8_t, 16> block) const
{
    uint8_t *s = block.data();
    addRoundKey(s, schedule_.data());
    for (size_t round = 1; round < rounds_; ++round) {
        subBytes(s);
        shiftRows(s);
        mixColumns(s);
        addRoundKey(s, schedule_.data() + 16 * round);
    }
    subBytes(s);
    shiftRows(s);
    addRoundKey(s, schedule_.data() + 16 * rounds_);
}

void
Aes::decryptBlock(std::span<uint8_t, 16> block) const
{
    uint8_t *s = block.data();
    addRoundKey(s, schedule_.data() + 16 * rounds_);
    for (size_t round = rounds_ - 1; round >= 1; --round) {
        invShiftRows(s);
        invSubBytes(s);
        addRoundKey(s, schedule_.data() + 16 * round);
        invMixColumns(s);
    }
    invShiftRows(s);
    invSubBytes(s);
    addRoundKey(s, schedule_.data());
}

std::vector<uint8_t>
Aes::encryptEcb(std::span<const uint8_t> data) const
{
    if (data.size() % 16)
        fatal("Aes: ECB length must be a multiple of 16");
    std::vector<uint8_t> out(data.begin(), data.end());
    for (size_t i = 0; i < out.size(); i += 16)
        encryptBlock(std::span<uint8_t, 16>(out.data() + i, 16));
    return out;
}

std::vector<uint8_t>
Aes::decryptEcb(std::span<const uint8_t> data) const
{
    if (data.size() % 16)
        fatal("Aes: ECB length must be a multiple of 16");
    std::vector<uint8_t> out(data.begin(), data.end());
    for (size_t i = 0; i < out.size(); i += 16)
        decryptBlock(std::span<uint8_t, 16>(out.data() + i, 16));
    return out;
}

} // namespace voltboot

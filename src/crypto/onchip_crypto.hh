/**
 * @file
 * Models of the fully-on-chip cryptography schemes the paper attacks.
 *
 * TresorCipher: TRESOR/PRIME-style register-resident AES — the expanded
 * key schedule lives exclusively in a core's vector registers (v0..v31
 * hold 512 bytes; an AES-128 schedule needs 176, AES-256 needs 240) and
 * never touches RAM. Encryption reads the round keys out of the register
 * file on each use.
 *
 * CaseExecution: CaSE-style locked-cache execution — a plaintext crypto
 * binary and its round keys are staged into L1 d-cache lines that are
 * then locked so no other process can evict them, and are never written
 * back to DRAM. DRAM holds only the encrypted image.
 *
 * Both schemes are secure against classic cold boot (nothing secret in
 * DRAM) and both fall to Volt Boot because the registers and cache data
 * RAM sit in the probe-held core power domain.
 */

#ifndef VOLTBOOT_CRYPTO_ONCHIP_CRYPTO_HH
#define VOLTBOOT_CRYPTO_ONCHIP_CRYPTO_HH

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.hh"
#include "isa/cpu.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"

namespace voltboot
{

/** TRESOR-style AES with the key schedule resident in vector registers. */
class TresorCipher
{
  public:
    /**
     * Install the schedule for @p key into @p cpu's vector registers,
     * starting at v0. The key bytes themselves are not kept anywhere
     * else. Throws if the schedule exceeds the register file.
     */
    TresorCipher(Cpu &cpu, std::span<const uint8_t> key);

    /** Bytes of register file occupied by the schedule. */
    size_t scheduleBytes() const { return schedule_bytes_; }
    size_t keyBytes() const { return key_bytes_; }

    /**
     * Encrypt a block using round keys fetched from the register file on
     * every round — the defining property of register-resident crypto.
     */
    void encryptBlock(std::span<uint8_t, 16> block) const;

    /** Read the schedule back out of the registers (attack-side view). */
    std::vector<uint8_t> scheduleFromRegisters() const;

  private:
    Cpu &cpu_;
    size_t key_bytes_;
    size_t schedule_bytes_;
};

/**
 * Sentry-style OCRAM-assisted protection (Colp et al., cited by the
 * paper alongside CaSE/TRESOR): sensitive pages live AES-encrypted in
 * DRAM while the device is locked; on unlock they are decrypted into
 * on-chip iRAM, and the AES state itself also stays in iRAM. Cold boot
 * against the DRAM finds only ciphertext — but the iRAM sits in exactly
 * the power domain a Volt Boot probe holds (Section 7.3).
 */
class SentryExecution
{
  public:
    /**
     * @param dram        Region holding the encrypted pages.
     * @param iram        On-chip array used as the cleartext workspace.
     * @param iram_offset Where in the iRAM the workspace begins.
     * @param key         Master key (its schedule is kept in the iRAM
     *                    workspace header, never in DRAM).
     */
    SentryExecution(MemoryRegion &dram, MemoryArray &iram,
                    size_t iram_offset, std::span<const uint8_t> key);

    /** Bytes of iRAM used by the schedule header. */
    size_t headerBytes() const { return schedule_bytes_; }

    /** Encrypt @p plaintext (multiple of 16) into DRAM at @p addr. */
    void protectPage(uint64_t addr, std::span<const uint8_t> plaintext);

    /**
     * Unlock: decrypt the page at @p addr (of @p length bytes) into the
     * iRAM workspace right after the header; returns the iRAM offset of
     * the cleartext.
     */
    size_t unlockPage(uint64_t addr, size_t length);

    /** Re-lock: wipe the cleartext region of the workspace. */
    void lockWorkspace();

  private:
    std::vector<uint8_t> readSchedule() const;

    MemoryRegion &dram_;
    MemoryArray &iram_;
    size_t iram_offset_;
    size_t schedule_bytes_;
    size_t key_bytes_;
    size_t cleartext_bytes_ = 0;
};

/** CaSE-style locked-cache AES execution environment. */
class CaseExecution
{
  public:
    /**
     * Stage @p plaintext_binary and the schedule of @p key into @p cache
     * at @p base_addr (must currently miss), then lock those lines.
     * The cache must be enabled. Lines are marked secure when
     * @p secure_world.
     */
    CaseExecution(Cache &cache, uint64_t base_addr,
                  std::span<const uint8_t> plaintext_binary,
                  std::span<const uint8_t> key, bool secure_world = true);

    uint64_t binaryAddress() const { return base_addr_; }
    uint64_t scheduleAddress() const { return schedule_addr_; }
    size_t binaryBytes() const { return binary_bytes_; }
    size_t scheduleBytes() const { return schedule_bytes_; }

    /** Encrypt using round keys read from the locked cache lines. */
    void encryptBlock(std::span<uint8_t, 16> block) const;

  private:
    std::vector<uint8_t> readSchedule() const;

    Cache &cache_;
    uint64_t base_addr_;
    uint64_t schedule_addr_;
    size_t binary_bytes_;
    size_t schedule_bytes_;
    bool secure_;
};

} // namespace voltboot

#endif // VOLTBOOT_CRYPTO_ONCHIP_CRYPTO_HH

#include "crypto/onchip_crypto.hh"

#include <cstring>

#include "sim/logging.hh"

namespace voltboot
{

TresorCipher::TresorCipher(Cpu &cpu, std::span<const uint8_t> key)
    : cpu_(cpu), key_bytes_(key.size())
{
    const std::vector<uint8_t> schedule = Aes::expandKey(key);
    schedule_bytes_ = schedule.size();
    if (schedule_bytes_ > 32 * 16)
        fatal("TresorCipher: schedule does not fit the vector file");

    // Pack the schedule into v0.. lane by lane; pad the tail with zeros.
    for (size_t off = 0; off < schedule_bytes_; off += 8) {
        uint64_t lane = 0;
        const size_t n = std::min<size_t>(8, schedule_bytes_ - off);
        std::memcpy(&lane, schedule.data() + off, n);
        cpu_.setV(static_cast<unsigned>(off / 16),
                  static_cast<unsigned>((off / 8) % 2), lane);
    }
}

std::vector<uint8_t>
TresorCipher::scheduleFromRegisters() const
{
    std::vector<uint8_t> out(schedule_bytes_);
    for (size_t off = 0; off < schedule_bytes_; off += 8) {
        const uint64_t lane = cpu_.v(static_cast<unsigned>(off / 16),
                                     static_cast<unsigned>((off / 8) % 2));
        const size_t n = std::min<size_t>(8, schedule_bytes_ - off);
        std::memcpy(out.data() + off, &lane, n);
    }
    return out;
}

void
TresorCipher::encryptBlock(std::span<uint8_t, 16> block) const
{
    // Rebuild a transient cipher context from the register-resident
    // schedule; in the real system this is a sequence of NEON ops that
    // never spills to memory. The Aes object here is a host-side stand-in
    // living only for the duration of the call.
    const std::vector<uint8_t> schedule = scheduleFromRegisters();
    // Reconstruct the master key (first bytes of the schedule) and
    // encrypt with it — equivalent and keeps Aes's invariants.
    Aes aes(std::span<const uint8_t>(schedule.data(), key_bytes_));
    aes.encryptBlock(block);
}

SentryExecution::SentryExecution(MemoryRegion &dram, MemoryArray &iram,
                                 size_t iram_offset,
                                 std::span<const uint8_t> key)
    : dram_(dram), iram_(iram), iram_offset_(iram_offset),
      key_bytes_(key.size())
{
    const std::vector<uint8_t> schedule = Aes::expandKey(key);
    schedule_bytes_ = schedule.size();
    if (iram_offset_ + schedule_bytes_ > iram_.sizeBytes())
        fatal("SentryExecution: workspace does not fit the iRAM");
    // The schedule header lives on-chip, never in DRAM.
    iram_.write(iram_offset_, schedule);
}

std::vector<uint8_t>
SentryExecution::readSchedule() const
{
    std::vector<uint8_t> out(schedule_bytes_);
    iram_.read(iram_offset_, out);
    return out;
}

void
SentryExecution::protectPage(uint64_t addr,
                             std::span<const uint8_t> plaintext)
{
    if (plaintext.size() % 16)
        fatal("SentryExecution: page length must be a multiple of 16");
    const std::vector<uint8_t> schedule = readSchedule();
    Aes aes(std::span<const uint8_t>(schedule.data(), key_bytes_));
    const std::vector<uint8_t> ciphertext = aes.encryptEcb(plaintext);
    for (size_t i = 0; i < ciphertext.size(); ++i)
        dram_.write8(addr + i, ciphertext[i]);
}

size_t
SentryExecution::unlockPage(uint64_t addr, size_t length)
{
    if (length % 16)
        fatal("SentryExecution: page length must be a multiple of 16");
    const size_t clear_off = iram_offset_ + schedule_bytes_;
    if (clear_off + length > iram_.sizeBytes())
        fatal("SentryExecution: page does not fit the workspace");

    std::vector<uint8_t> ciphertext(length);
    for (size_t i = 0; i < length; ++i)
        ciphertext[i] = dram_.read8(addr + i);
    const std::vector<uint8_t> schedule = readSchedule();
    Aes aes(std::span<const uint8_t>(schedule.data(), key_bytes_));
    const std::vector<uint8_t> plaintext = aes.decryptEcb(ciphertext);
    iram_.write(clear_off, plaintext);
    cleartext_bytes_ = std::max(cleartext_bytes_, length);
    return clear_off;
}

void
SentryExecution::lockWorkspace()
{
    // Sentry wipes the cleartext on screen-lock; the schedule header
    // stays for the next unlock. (An abrupt power cut skips this, which
    // is exactly how the attack catches the device.)
    const size_t clear_off = iram_offset_ + schedule_bytes_;
    for (size_t i = 0; i < cleartext_bytes_; ++i)
        iram_.writeByte(clear_off + i, 0);
    cleartext_bytes_ = 0;
}

CaseExecution::CaseExecution(Cache &cache, uint64_t base_addr,
                             std::span<const uint8_t> plaintext_binary,
                             std::span<const uint8_t> key, bool secure_world)
    : cache_(cache), base_addr_(base_addr),
      binary_bytes_(plaintext_binary.size()), secure_(secure_world)
{
    if (!cache_.enabled())
        fatal("CaseExecution: cache must be enabled before staging");
    if (base_addr_ % 8)
        fatal("CaseExecution: base address must be 8-byte aligned");

    const std::vector<uint8_t> schedule = Aes::expandKey(key);
    schedule_bytes_ = schedule.size();
    schedule_addr_ = base_addr_ + ((binary_bytes_ + 63) & ~63ull);

    auto stage = [&](uint64_t addr, std::span<const uint8_t> data) {
        for (size_t i = 0; i < data.size(); i += 8) {
            uint64_t word = 0;
            const size_t n = std::min<size_t>(8, data.size() - i);
            std::memcpy(&word, data.data() + i, n);
            cache_.write64(addr + i, word, secure_);
        }
        // Lock every line we touched so the kernel cannot evict it.
        const uint64_t line = 64;
        for (uint64_t a = addr & ~(line - 1); a < addr + data.size();
             a += line)
            cache_.lockLine(a);
    };

    stage(base_addr_, plaintext_binary);
    stage(schedule_addr_, schedule);
}

std::vector<uint8_t>
CaseExecution::readSchedule() const
{
    std::vector<uint8_t> out(schedule_bytes_);
    for (size_t i = 0; i < schedule_bytes_; i += 8) {
        // Const-cast is safe: reads of resident locked lines never
        // allocate or evict.
        const uint64_t word =
            const_cast<Cache &>(cache_).read64(schedule_addr_ + i, secure_);
        const size_t n = std::min<size_t>(8, schedule_bytes_ - i);
        std::memcpy(out.data() + i, &word, n);
    }
    return out;
}

void
CaseExecution::encryptBlock(std::span<uint8_t, 16> block) const
{
    const std::vector<uint8_t> schedule = readSchedule();
    const size_t key_bytes = schedule.size() == 176 ? 16 : 32;
    Aes aes(std::span<const uint8_t>(schedule.data(), key_bytes));
    aes.encryptBlock(block);
}

} // namespace voltboot

/**
 * @file
 * AES key-schedule scanner for memory dumps.
 *
 * Works like the key-recovery tooling from the original cold boot attack:
 * slide a window over the dump, treat the bytes as the start of an AES
 * key schedule, recompute the schedule from the would-be master key and
 * score how many bits of the observed window disagree. A perfect dump
 * (Volt Boot) scores 0; a decayed dump (cold boot) scores according to
 * its bit-error rate. Because the schedule is ~11x redundant, small error
 * rates are correctable by taking the master key bytes directly and
 * regenerating; the paper's point is that SRAM's bistable errors make
 * this search explode for cold boot while Volt Boot needs no correction
 * at all.
 */

#ifndef VOLTBOOT_CRYPTO_KEY_FINDER_HH
#define VOLTBOOT_CRYPTO_KEY_FINDER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/aes.hh"
#include "sram/memory_image.hh"

namespace voltboot
{

/** One key-schedule hit in a dump. */
struct KeyCandidate
{
    size_t offset;             ///< Byte offset of the schedule in the dump.
    size_t key_bytes;          ///< 16 or 32.
    std::vector<uint8_t> key;  ///< Recovered master key.
    size_t bit_errors;         ///< Schedule bits disagreeing with ideal.
    double error_fraction;     ///< bit_errors / schedule bits.
};

/** Scanner configuration. */
struct KeyFinderConfig
{
    /** Scan stride in bytes (key schedules are word-aligned in practice). */
    size_t stride = 4;
    /**
     * Maximum fraction of schedule bits allowed to disagree before a
     * window is rejected. 0 demands an exact schedule.
     */
    double max_error_fraction = 0.10;
    /** Look for AES-128 schedules. */
    bool aes128 = true;
    /** Look for AES-256 schedules. */
    bool aes256 = false;
};

/** Scans MemoryImages for embedded AES key schedules. */
class KeyFinder
{
  public:
    explicit KeyFinder(KeyFinderConfig config = {}) : config_(config) {}

    /** All candidate schedules in @p image, best (fewest errors) first. */
    std::vector<KeyCandidate> scan(const MemoryImage &image) const;

    /** Convenience: the single best candidate, if any. */
    std::optional<KeyCandidate> best(const MemoryImage &image) const;

    /**
     * Score one window: bit errors between @p window (a schedule-sized
     * byte span) and the ideal schedule regenerated from its first
     * key_bytes bytes.
     */
    static size_t scheduleBitErrors(std::span<const uint8_t> window,
                                    size_t key_bytes);

  private:
    KeyFinderConfig config_;
};

} // namespace voltboot

#endif // VOLTBOOT_CRYPTO_KEY_FINDER_HH

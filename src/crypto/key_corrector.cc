#include "crypto/key_corrector.hh"

#include <algorithm>
#include <bit>

#include "crypto/aes.hh"
#include "sim/logging.hh"

namespace voltboot
{

namespace
{

/** Bit disagreement between the schedule of @p key and @p window,
 * counted over the WHOLE window (key bytes included, since the observed
 * key bytes may themselves be corrupted). */
size_t
scheduleDistance(std::span<const uint8_t> key,
                 std::span<const uint8_t> window)
{
    const std::vector<uint8_t> ideal = Aes::expandKey(key);
    size_t errors = 0;
    for (size_t i = 0; i < ideal.size(); ++i)
        errors += std::popcount(static_cast<uint8_t>(window[i] ^ ideal[i]));
    return errors;
}

} // namespace

std::optional<CorrectedKey>
KeyCorrector::correct(std::span<const uint8_t> window,
                      size_t key_bytes) const
{
    if (key_bytes != 16 && key_bytes != 24 && key_bytes != 32)
        fatal("KeyCorrector: unsupported key size ", key_bytes);
    const size_t schedule_bytes = Aes::expandKey(
        std::vector<uint8_t>(key_bytes, 0)).size();
    if (window.size() < schedule_bytes)
        fatal("KeyCorrector: window smaller than a schedule");

    std::vector<uint8_t> key(window.begin(), window.begin() + key_bytes);
    size_t best = scheduleDistance(key, window);
    size_t flips = 0;
    size_t iterations = 0;

    // Greedy steepest-descent over single key-bit flips. The schedule's
    // avalanche makes wrong bits highly visible: flipping an incorrect
    // key bit removes its entire error cascade at once. When single
    // flips stall (interacting errors within one word), escalate to a
    // two-bit lookahead before giving up.
    const double derived_bits_d =
        static_cast<double>(schedule_bytes * 8);
    bool improved = true;
    while (improved && iterations < config_.max_iterations && best > 0) {
        improved = false;
        size_t best_bit = SIZE_MAX;
        size_t best_after = best;
        for (size_t bit = 0; bit < key_bytes * 8; ++bit) {
            key[bit / 8] ^= 1u << (bit % 8);
            const size_t d = scheduleDistance(key, window);
            key[bit / 8] ^= 1u << (bit % 8);
            if (d < best_after) {
                best_after = d;
                best_bit = bit;
            }
        }
        ++iterations;
        if (best_bit != SIZE_MAX) {
            key[best_bit / 8] ^= 1u << (best_bit % 8);
            best = best_after;
            ++flips;
            improved = true;
            continue;
        }
        // Stalled above the acceptance bar: pairwise lookahead.
        if (static_cast<double>(best) / derived_bits_d <=
            config_.accept_threshold)
            break;
        size_t best_i = SIZE_MAX, best_j = SIZE_MAX;
        for (size_t i = 0; i + 1 < key_bytes * 8; ++i) {
            key[i / 8] ^= 1u << (i % 8);
            for (size_t j = i + 1; j < key_bytes * 8; ++j) {
                key[j / 8] ^= 1u << (j % 8);
                const size_t d = scheduleDistance(key, window);
                key[j / 8] ^= 1u << (j % 8);
                if (d < best_after) {
                    best_after = d;
                    best_i = i;
                    best_j = j;
                }
            }
            key[i / 8] ^= 1u << (i % 8);
        }
        if (best_i != SIZE_MAX) {
            key[best_i / 8] ^= 1u << (best_i % 8);
            key[best_j / 8] ^= 1u << (best_j % 8);
            best = best_after;
            flips += 2;
            improved = true;
        }
    }

    const double derived_bits =
        static_cast<double>(schedule_bytes * 8);
    if (static_cast<double>(best) / derived_bits >
        config_.accept_threshold)
        return std::nullopt;

    CorrectedKey out;
    out.key = std::move(key);
    out.residual_bit_errors = best;
    out.key_bits_flipped = flips;
    out.iterations = iterations;
    return out;
}

double
RobustKeyScanner::firstRoundMismatch(std::span<const uint8_t> window,
                                     size_t key_bytes)
{
    // Regenerate only as far as the first derived round (16 bytes past
    // the key) and compare. Key-bit errors perturb a handful of these
    // bits; random data disagrees on about half.
    const std::vector<uint8_t> ideal =
        Aes::expandKey(window.subspan(0, key_bytes));
    size_t errors = 0;
    const size_t begin = key_bytes;
    const size_t end = key_bytes + 16;
    for (size_t i = begin; i < end; ++i)
        errors += std::popcount(
            static_cast<uint8_t>(window[i] ^ ideal[i]));
    return static_cast<double>(errors) / (16.0 * 8.0);
}

std::vector<RobustScanHit>
RobustKeyScanner::scan(const MemoryImage &image, size_t key_bytes) const
{
    std::vector<RobustScanHit> hits;
    const size_t schedule_bytes =
        Aes::expandKey(std::vector<uint8_t>(key_bytes, 0)).size();
    const auto &bytes = image.bytes();
    if (bytes.size() < schedule_bytes)
        return hits;
    for (size_t off = 0; off + schedule_bytes <= bytes.size();
         off += stride_) {
        std::span<const uint8_t> window(bytes.data() + off,
                                        schedule_bytes);
        // Constant windows are never schedules (Rcon forbids them).
        bool all_same = true;
        for (size_t i = 1; i < key_bytes && all_same; ++i)
            all_same = window[i] == window[0];
        if (all_same)
            continue;
        if (firstRoundMismatch(window, key_bytes) > prefilter_)
            continue;
        if (auto fixed = corrector_.correct(window, key_bytes))
            hits.push_back(RobustScanHit{off, std::move(*fixed)});
    }
    std::sort(hits.begin(), hits.end(),
              [](const RobustScanHit &a, const RobustScanHit &b) {
                  return a.corrected.residual_bit_errors <
                         b.corrected.residual_bit_errors;
              });
    return hits;
}

std::optional<RobustScanHit>
RobustKeyScanner::best(const MemoryImage &image, size_t key_bytes) const
{
    auto hits = scan(image, key_bytes);
    if (hits.empty())
        return std::nullopt;
    return std::move(hits.front());
}

} // namespace voltboot

#include "crypto/key_corrector.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>

#include "crypto/aes.hh"
#include "sim/logging.hh"

namespace voltboot
{

namespace
{

/** Bit disagreement between the schedule of @p key and @p window,
 * counted over the WHOLE window (key bytes included, since the observed
 * key bytes may themselves be corrupted). */
size_t
scheduleDistance(std::span<const uint8_t> key,
                 std::span<const uint8_t> window)
{
    const std::vector<uint8_t> ideal = Aes::expandKey(key);
    size_t errors = 0;
    for (size_t i = 0; i < ideal.size(); ++i)
        errors += std::popcount(static_cast<uint8_t>(window[i] ^ ideal[i]));
    return errors;
}

inline uint32_t
load32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

} // namespace

std::span<const unsigned>
scheduleResidualWords(size_t key_bytes)
{
    // Violated-bit counts over disjoint-support relations are
    // independent, so their sum is an unbiased noise estimate: each
    // relation bit is the XOR of three independently-corrupted schedule
    // bits and flips with probability 3p(1-p)^2 + p^3 (~3p for small p,
    // 1/2 for random data). Indices avoid the S-box rows (i % Nk == 0,
    // plus i % 8 == 4 for AES-256's extra SubWord).
    static constexpr unsigned k128[] = {5, 7, 13, 15, 21, 23, 29, 31,
                                        37, 39};
    static constexpr unsigned k192[] = {7, 9, 11, 19, 21, 23, 31, 33,
                                        35, 43, 45, 47};
    static constexpr unsigned k256[] = {9, 11, 13, 15, 25, 27, 29, 31,
                                        41, 43, 45, 47, 57, 59};
    switch (key_bytes) {
      case 16: return k128;
      case 24: return k192;
      default: return k256;
    }
}

const char *
toString(GiveUpReason reason)
{
    switch (reason) {
      case GiveUpReason::None: return "none";
      case GiveUpReason::Residual: return "residual";
      case GiveUpReason::ErrorFloor: return "error_floor";
      case GiveUpReason::MaxIterations: return "max_iterations";
    }
    return "?";
}

double
KeyCorrector::linearResidualFraction(std::span<const uint8_t> window,
                                     size_t key_bytes)
{
    if (key_bytes != 16 && key_bytes != 24 && key_bytes != 32)
        fatal("KeyCorrector: unsupported key size ", key_bytes);
    const unsigned nk = static_cast<unsigned>(key_bytes / 4);
    const auto words = scheduleResidualWords(key_bytes);
    size_t violated = 0;
    for (unsigned i : words)
        violated += std::popcount(
            load32(window.data() + size_t{i} * 4) ^
            load32(window.data() + size_t{i - 1} * 4) ^
            load32(window.data() + size_t{i - nk} * 4));
    return static_cast<double>(violated) /
           static_cast<double>(words.size() * 32);
}

CorrectionAttempt
KeyCorrector::attempt(std::span<const uint8_t> window, size_t key_bytes,
                      std::span<const float> bit_priors) const
{
    if (key_bytes != 16 && key_bytes != 24 && key_bytes != 32)
        fatal("KeyCorrector: unsupported key size ", key_bytes);
    const size_t schedule_bytes = Aes::expandKey(
        std::vector<uint8_t>(key_bytes, 0)).size();
    if (window.size() < schedule_bytes)
        fatal("KeyCorrector: window smaller than a schedule");
    if (!bit_priors.empty() && bit_priors.size() != key_bytes * 8)
        fatal("KeyCorrector: bit_priors must hold one entry per key "
              "bit, got ", bit_priors.size());

    CorrectionAttempt out;
    const size_t key_bits = key_bytes * 8;
    const double schedule_bits = static_cast<double>(schedule_bytes * 8);

    std::vector<uint8_t> key(window.begin(), window.begin() + key_bytes);

    // Key-independent noise gate: a window whose linear residual says
    // the channel is far beyond correctable — the bistable-SRAM ~50%
    // cold-boot regime, or plain non-schedule data — is abandoned
    // before any schedule search starts. One distance eval for the
    // report, then out.
    if (linearResidualFraction(window, key_bytes) >
        config_.give_up_residual) {
        out.gave_up = GiveUpReason::ErrorFloor;
        out.residual_bit_errors = scheduleDistance(key, window);
        out.distance_evals = 1;
        return out;
    }

    size_t best = scheduleDistance(key, window);
    size_t evals = 1;
    size_t flips = 0;
    size_t iterations = 0;
    GiveUpReason stalled = GiveUpReason::None;

    // Candidate order: uniform sweep by default; when per-bit flip
    // priors are supplied, descending likelihood (stable, so equal
    // priors fall back to bit order and the search stays deterministic).
    std::vector<size_t> order;
    if (!bit_priors.empty()) {
        order.resize(key_bits);
        std::iota(order.begin(), order.end(), size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return bit_priors[a] > bit_priors[b];
                         });
    }

    // Greedy descent over single key-bit flips. The schedule's
    // avalanche makes wrong bits highly visible: flipping an incorrect
    // key bit removes its entire error cascade at once. Without priors
    // this is steepest-descent (score every bit, take the best); with
    // priors it is first-improvement in likelihood order, which usually
    // finds the flip within the first few candidates. When single flips
    // stall (interacting errors within one word), escalate to a two-bit
    // lookahead before giving up — but only while the best distance is
    // close enough that the O(bits^2) sweep can plausibly pay off.
    bool improved = true;
    while (improved && iterations < config_.max_iterations && best > 0) {
        improved = false;
        size_t best_after = best;
        if (order.empty()) {
            size_t best_bit = SIZE_MAX;
            for (size_t bit = 0; bit < key_bits; ++bit) {
                key[bit / 8] ^= 1u << (bit % 8);
                const size_t d = scheduleDistance(key, window);
                key[bit / 8] ^= 1u << (bit % 8);
                ++evals;
                if (d < best_after) {
                    best_after = d;
                    best_bit = bit;
                }
            }
            ++iterations;
            if (best_bit != SIZE_MAX) {
                key[best_bit / 8] ^= 1u << (best_bit % 8);
                best = best_after;
                ++flips;
                improved = true;
                continue;
            }
        } else {
            size_t hit = SIZE_MAX;
            for (size_t bit : order) {
                key[bit / 8] ^= 1u << (bit % 8);
                const size_t d = scheduleDistance(key, window);
                ++evals;
                if (d < best) {
                    best = d;
                    hit = bit;
                    break; // keep the flip applied
                }
                key[bit / 8] ^= 1u << (bit % 8);
            }
            ++iterations;
            if (hit != SIZE_MAX) {
                ++flips;
                improved = true;
                continue;
            }
            best_after = best;
        }
        // Stalled. Below the acceptance bar we are done; far above the
        // lookahead bar the window is hopeless and the pairwise sweep
        // would only burn schedule expansions.
        if (static_cast<double>(best) / schedule_bits <=
            config_.accept_threshold)
            break;
        if (static_cast<double>(best) / schedule_bits >
            config_.lookahead_threshold) {
            stalled = GiveUpReason::ErrorFloor;
            break;
        }
        size_t best_i = SIZE_MAX, best_j = SIZE_MAX;
        for (size_t i = 0; i + 1 < key_bits; ++i) {
            key[i / 8] ^= 1u << (i % 8);
            for (size_t j = i + 1; j < key_bits; ++j) {
                key[j / 8] ^= 1u << (j % 8);
                const size_t d = scheduleDistance(key, window);
                key[j / 8] ^= 1u << (j % 8);
                ++evals;
                if (d < best_after) {
                    best_after = d;
                    best_i = i;
                    best_j = j;
                }
            }
            key[i / 8] ^= 1u << (i % 8);
        }
        if (best_i != SIZE_MAX) {
            key[best_i / 8] ^= 1u << (best_i % 8);
            key[best_j / 8] ^= 1u << (best_j % 8);
            best = best_after;
            flips += 2;
            improved = true;
        }
    }

    out.iterations = iterations;
    out.distance_evals = evals;
    out.residual_bit_errors = best;
    if (static_cast<double>(best) / schedule_bits <=
        config_.accept_threshold) {
        CorrectedKey fixed;
        fixed.key = std::move(key);
        fixed.residual_bit_errors = best;
        fixed.key_bits_flipped = flips;
        fixed.iterations = iterations;
        out.key = std::move(fixed);
    } else if (stalled != GiveUpReason::None) {
        out.gave_up = stalled;
    } else if (iterations >= config_.max_iterations) {
        out.gave_up = GiveUpReason::MaxIterations;
    } else {
        out.gave_up = GiveUpReason::Residual;
    }
    return out;
}

std::optional<CorrectedKey>
KeyCorrector::correct(std::span<const uint8_t> window,
                      size_t key_bytes) const
{
    return attempt(window, key_bytes).key;
}

double
RobustKeyScanner::firstRoundMismatch(std::span<const uint8_t> window,
                                     size_t key_bytes)
{
    // Regenerate only as far as the first derived round (16 bytes past
    // the key) and compare. Key-bit errors perturb a handful of these
    // bits; random data disagrees on about half.
    const std::vector<uint8_t> ideal =
        Aes::expandKey(window.subspan(0, key_bytes));
    size_t errors = 0;
    const size_t begin = key_bytes;
    const size_t end = key_bytes + 16;
    for (size_t i = begin; i < end; ++i)
        errors += std::popcount(
            static_cast<uint8_t>(window[i] ^ ideal[i]));
    return static_cast<double>(errors) / (16.0 * 8.0);
}

std::vector<RobustScanHit>
RobustKeyScanner::scan(const MemoryImage &image, size_t key_bytes) const
{
    std::vector<RobustScanHit> hits;
    const size_t schedule_bytes =
        Aes::expandKey(std::vector<uint8_t>(key_bytes, 0)).size();
    const auto &bytes = image.bytes();
    if (bytes.size() < schedule_bytes)
        return hits;
    for (size_t off = 0; off + schedule_bytes <= bytes.size();
         off += stride_) {
        std::span<const uint8_t> window(bytes.data() + off,
                                        schedule_bytes);
        // Constant windows are never schedules (Rcon forbids them).
        bool all_same = true;
        for (size_t i = 1; i < key_bytes && all_same; ++i)
            all_same = window[i] == window[0];
        if (all_same)
            continue;
        if (firstRoundMismatch(window, key_bytes) > prefilter_)
            continue;
        if (auto fixed = corrector_.correct(window, key_bytes))
            hits.push_back(RobustScanHit{off, std::move(*fixed)});
    }
    std::sort(hits.begin(), hits.end(),
              [](const RobustScanHit &a, const RobustScanHit &b) {
                  return a.corrected.residual_bit_errors <
                         b.corrected.residual_bit_errors;
              });
    return hits;
}

std::optional<RobustScanHit>
RobustKeyScanner::best(const MemoryImage &image, size_t key_bytes) const
{
    auto hits = scan(image, key_bytes);
    if (hits.empty())
        return std::nullopt;
    return std::move(hits.front());
}

} // namespace voltboot

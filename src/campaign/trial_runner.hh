/**
 * @file
 * Execution of one campaign trial.
 *
 * A trial is hermetic: it builds its own Soc from the TrialSpec, stages
 * the standard victim for the chosen target memory, captures the
 * ground-truth image, mounts the chosen attack, extracts, and scores
 * the dump. Nothing is shared between trials, which is what makes the
 * campaign engine embarrassingly parallel.
 *
 * Determinism contract (see docs/CAMPAIGN.md):
 *  - the simulated silicon of a trial is a pure function of
 *    (campaign seed, chip-seed index) — the same die is reused across
 *    the temperature/off-time/probe axes, as it would be on a real
 *    bench;
 *  - any trial-local randomness (e.g. the planted AES key) derives from
 *    (campaign seed, trial index) via the counter-based hash in
 *    sim/rng.hh, independent of thread count and schedule.
 */

#ifndef VOLTBOOT_CAMPAIGN_TRIAL_RUNNER_HH
#define VOLTBOOT_CAMPAIGN_TRIAL_RUNNER_HH

#include <cstdint>

#include "campaign/campaign_result.hh"
#include "campaign/sweep_grid.hh"
#include "soc/soc_config.hh"

namespace voltboot
{

/** Board name to platform config ("pi3"|"pi4"|"imx53"); fatal() else. */
SocConfig socConfigFor(const std::string &board);

/** The silicon seed used by every trial with this chip-seed index. */
uint64_t deriveChipSeed(uint64_t campaign_seed, uint64_t seed_index);

/** The per-trial random stream seed. */
uint64_t deriveTrialSeed(uint64_t campaign_seed, uint64_t trial_index);

/**
 * Run one trial to completion and score it. Throws (FatalError etc.) on
 * invalid parameter combinations — the campaign engine records a throw
 * as TrialStatus::Error without stopping the sweep.
 */
TrialRecord runTrial(const TrialSpec &spec, uint64_t campaign_seed);

} // namespace voltboot

#endif // VOLTBOOT_CAMPAIGN_TRIAL_RUNNER_HH

#include "campaign/sweep_grid.hh"

#include <charconv>
#include <sstream>

#include "sim/logging.hh"

namespace voltboot
{

const char *
toString(AttackKind kind)
{
    switch (kind) {
      case AttackKind::VoltBoot: return "voltboot";
      case AttackKind::ColdBoot: return "coldboot";
      case AttackKind::Glitch: return "glitch";
      case AttackKind::StaticExtract: return "static-extract";
      case AttackKind::VoltageCoupling: return "voltage-coupling";
      case AttackKind::KeyRecovery: return "key-recovery";
    }
    panic("bad AttackKind");
}

const char *
toString(TargetRam target)
{
    switch (target) {
      case TargetRam::DCache: return "dcache";
      case TargetRam::ICache: return "icache";
      case TargetRam::Regs: return "regs";
      case TargetRam::Iram: return "iram";
      case TargetRam::Tlb: return "tlb";
      case TargetRam::Btb: return "btb";
    }
    panic("bad TargetRam");
}

AttackKind
attackFromString(const std::string &name)
{
    if (name == "voltboot")
        return AttackKind::VoltBoot;
    if (name == "coldboot")
        return AttackKind::ColdBoot;
    if (name == "glitch")
        return AttackKind::Glitch;
    if (name == "static-extract")
        return AttackKind::StaticExtract;
    if (name == "voltage-coupling")
        return AttackKind::VoltageCoupling;
    if (name == "key-recovery")
        return AttackKind::KeyRecovery;
    fatal("unknown attack '", name,
          "' (voltboot|coldboot|glitch|static-extract|voltage-coupling|"
          "key-recovery)");
}

TargetRam
targetFromString(const std::string &name)
{
    if (name == "dcache")
        return TargetRam::DCache;
    if (name == "icache")
        return TargetRam::ICache;
    if (name == "regs")
        return TargetRam::Regs;
    if (name == "iram")
        return TargetRam::Iram;
    if (name == "tlb")
        return TargetRam::Tlb;
    if (name == "btb")
        return TargetRam::Btb;
    fatal("unknown target '", name,
          "' (dcache|icache|regs|iram|tlb|btb)");
}

uint64_t
SweepGrid::size() const
{
    return static_cast<uint64_t>(boards.size()) * targets.size() *
           attacks.size() * temps_c.size() * offs_ms.size() *
           currents_a.size() * impedances_mohm.size() *
           glitch_offs_ns.size() * glitch_widths_ns.size() *
           glitch_depths_v.size() * undervolt_depths_v.size() *
           holds_ns.size() * readout_rates.size() *
           cpa_windows_ns.size() * dump_counts.size() *
           use_priors.size() * plant_key.size() * seed_count;
}

TrialSpec
SweepGrid::at(uint64_t index) const
{
    if (index >= size())
        panic("SweepGrid::at: index ", index, " out of range (size ",
              size(), ")");
    TrialSpec spec;
    spec.index = index;
    uint64_t rem = index;
    auto take = [&rem](size_t n) {
        const uint64_t v = rem % n;
        rem /= n;
        return static_cast<size_t>(v);
    };
    // Fastest-varying axis first (seed innermost, board outermost).
    spec.seed_index = take(static_cast<size_t>(seed_count));
    spec.plant_key = plant_key[take(plant_key.size())];
    spec.use_priors = use_priors[take(use_priors.size())];
    spec.dump_count = dump_counts[take(dump_counts.size())];
    spec.cpa_window_ns = cpa_windows_ns[take(cpa_windows_ns.size())];
    spec.readout_rate = readout_rates[take(readout_rates.size())];
    spec.hold_ns = holds_ns[take(holds_ns.size())];
    spec.undervolt_depth_v =
        undervolt_depths_v[take(undervolt_depths_v.size())];
    spec.glitch_depth_v = glitch_depths_v[take(glitch_depths_v.size())];
    spec.glitch_width_ns =
        glitch_widths_ns[take(glitch_widths_ns.size())];
    spec.glitch_off_ns = glitch_offs_ns[take(glitch_offs_ns.size())];
    spec.impedance_mohm = impedances_mohm[take(impedances_mohm.size())];
    spec.current_a = currents_a[take(currents_a.size())];
    spec.off_ms = offs_ms[take(offs_ms.size())];
    spec.temp_c = temps_c[take(temps_c.size())];
    spec.attack = attacks[take(attacks.size())];
    spec.target = targets[take(targets.size())];
    spec.board = boards[take(boards.size())];
    return spec;
}

namespace
{

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(s);
    while (std::getline(in, item, sep))
        out.push_back(item);
    return out;
}

double
parseDoubleStrict(const std::string &text, const char *what)
{
    const std::string t = trim(text);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc() || ptr != t.data() + t.size())
        fatal("malformed ", what, " value '", text, "'");
    return value;
}

uint64_t
parseUintStrict(const std::string &text, const char *what)
{
    const std::string t = trim(text);
    uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc() || ptr != t.data() + t.size())
        fatal("malformed ", what, " value '", text, "'");
    return value;
}

std::vector<double>
parseDoubleList(const std::string &text, const char *what)
{
    std::vector<double> out;
    for (const std::string &item : split(text, ','))
        out.push_back(parseDoubleStrict(item, what));
    if (out.empty())
        fatal("empty value list for ", what);
    return out;
}

/** Shortest round-trip decimal rendering of a double. */
std::string
formatDouble(double value)
{
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    if (ec != std::errc())
        panic("formatDouble: to_chars failed");
    return {buf, ptr};
}

std::string
joinDoubles(const std::vector<double> &values)
{
    std::string out;
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ',';
        out += formatDouble(values[i]);
    }
    return out;
}

} // namespace

SweepGrid
SweepGrid::parse(const std::string &spec)
{
    SweepGrid grid;
    // Normalise newlines to ';' and strip '#' comments per line.
    std::string flat;
    for (const std::string &line : split(spec, '\n')) {
        const auto hash = line.find('#');
        flat += line.substr(0, hash);
        flat += ';';
    }
    for (const std::string &raw : split(flat, ';')) {
        const std::string entry = trim(raw);
        if (entry.empty())
            continue;
        const auto eq = entry.find('=');
        if (eq == std::string::npos)
            fatal("grid entry '", entry, "' is not key=value");
        const std::string key = trim(entry.substr(0, eq));
        const std::string value = entry.substr(eq + 1);
        if (trim(value).empty())
            fatal("empty value list for grid key '", key, "'");
        if (key == "board") {
            grid.boards.clear();
            for (const std::string &b : split(value, ','))
                grid.boards.push_back(trim(b));
        } else if (key == "target") {
            grid.targets.clear();
            for (const std::string &t : split(value, ','))
                grid.targets.push_back(targetFromString(trim(t)));
        } else if (key == "attack") {
            grid.attacks.clear();
            for (const std::string &a : split(value, ','))
                grid.attacks.push_back(attackFromString(trim(a)));
        } else if (key == "temp") {
            grid.temps_c = parseDoubleList(value, "temp");
        } else if (key == "off-ms") {
            grid.offs_ms = parseDoubleList(value, "off-ms");
        } else if (key == "current") {
            grid.currents_a = parseDoubleList(value, "current");
        } else if (key == "impedance-mohm") {
            grid.impedances_mohm =
                parseDoubleList(value, "impedance-mohm");
        } else if (key == "glitch-off-ns") {
            grid.glitch_offs_ns = parseDoubleList(value, "glitch-off-ns");
        } else if (key == "glitch-width-ns") {
            grid.glitch_widths_ns =
                parseDoubleList(value, "glitch-width-ns");
        } else if (key == "glitch-depth") {
            grid.glitch_depths_v = parseDoubleList(value, "glitch-depth");
        } else if (key == "undervolt-depth") {
            grid.undervolt_depths_v =
                parseDoubleList(value, "undervolt-depth");
        } else if (key == "hold-ns") {
            grid.holds_ns = parseDoubleList(value, "hold-ns");
        } else if (key == "readout-rate") {
            grid.readout_rates = parseDoubleList(value, "readout-rate");
        } else if (key == "cpa-window-ns") {
            grid.cpa_windows_ns = parseDoubleList(value, "cpa-window-ns");
        } else if (key == "dumps") {
            grid.dump_counts.clear();
            for (const std::string &d : split(value, ',')) {
                const uint64_t v = parseUintStrict(d, "dumps");
                if (v == 0)
                    fatal("grid key 'dumps' values must be >= 1");
                grid.dump_counts.push_back(v);
            }
        } else if (key == "prior") {
            grid.use_priors.clear();
            for (const std::string &p : split(value, ',')) {
                const uint64_t v = parseUintStrict(p, "prior");
                if (v > 1)
                    fatal("grid key 'prior' takes 0 or 1, got '", p,
                          "'");
                grid.use_priors.push_back(v != 0);
            }
        } else if (key == "key") {
            grid.plant_key.clear();
            for (const std::string &k : split(value, ',')) {
                const uint64_t v = parseUintStrict(k, "key");
                if (v > 1)
                    fatal("grid key 'key' takes 0 or 1, got '", k, "'");
                grid.plant_key.push_back(v != 0);
            }
        } else if (key == "seeds") {
            grid.seed_count = parseUintStrict(value, "seeds");
            if (grid.seed_count == 0)
                fatal("grid key 'seeds' must be >= 1");
        } else {
            fatal("unknown grid key '", key,
                  "' (board|target|attack|temp|off-ms|current|"
                  "impedance-mohm|glitch-off-ns|glitch-width-ns|"
                  "glitch-depth|undervolt-depth|hold-ns|readout-rate|"
                  "cpa-window-ns|dumps|prior|key|seeds)");
        }
    }
    if (grid.size() == 0)
        fatal("grid describes zero trials");
    return grid;
}

std::string
SweepGrid::describe() const
{
    std::string out = "board=";
    for (size_t i = 0; i < boards.size(); ++i)
        out += (i ? "," : "") + boards[i];
    out += ";target=";
    for (size_t i = 0; i < targets.size(); ++i)
        out += std::string(i ? "," : "") + toString(targets[i]);
    out += ";attack=";
    for (size_t i = 0; i < attacks.size(); ++i)
        out += std::string(i ? "," : "") + toString(attacks[i]);
    out += ";temp=" + joinDoubles(temps_c);
    out += ";off-ms=" + joinDoubles(offs_ms);
    out += ";current=" + joinDoubles(currents_a);
    out += ";impedance-mohm=" + joinDoubles(impedances_mohm);
    out += ";glitch-off-ns=" + joinDoubles(glitch_offs_ns);
    out += ";glitch-width-ns=" + joinDoubles(glitch_widths_ns);
    out += ";glitch-depth=" + joinDoubles(glitch_depths_v);
    out += ";undervolt-depth=" + joinDoubles(undervolt_depths_v);
    out += ";hold-ns=" + joinDoubles(holds_ns);
    out += ";readout-rate=" + joinDoubles(readout_rates);
    out += ";cpa-window-ns=" + joinDoubles(cpa_windows_ns);
    out += ";dumps=";
    for (size_t i = 0; i < dump_counts.size(); ++i)
        out += std::string(i ? "," : "") + std::to_string(dump_counts[i]);
    out += ";prior=";
    for (size_t i = 0; i < use_priors.size(); ++i)
        out += std::string(i ? "," : "") + (use_priors[i] ? "1" : "0");
    out += ";key=";
    for (size_t i = 0; i < plant_key.size(); ++i)
        out += std::string(i ? "," : "") + (plant_key[i] ? "1" : "0");
    out += ";seeds=" + std::to_string(seed_count);
    return out;
}

std::string
SweepGrid::axesHelp()
{
    struct AxisDoc
    {
        const char *key;
        const char *unit;
        const char *def;
        const char *values;
    };
    static const AxisDoc axes[] = {
        {"board", "-", "pi4", "pi3|pi4|imx53"},
        {"target", "-", "dcache", "dcache|icache|regs|iram|tlb|btb"},
        {"attack", "-", "voltboot",
         "voltboot|coldboot|glitch|static-extract|voltage-coupling"},
        {"temp", "degC", "25", "ambient temperature list"},
        {"off-ms", "ms", "500", "power-off time list"},
        {"current", "A", "3", "probe current-limit list"},
        {"impedance-mohm", "mohm", "50", "probe source impedance list"},
        {"glitch-off-ns", "ns", "0", "pulse offset from victim entry"},
        {"glitch-width-ns", "ns", "0", "pulse width (0 = no pulse)"},
        {"glitch-depth", "V", "0", "droop below nominal (0 = no pulse)"},
        {"undervolt-depth", "V", "0", "static sag below nominal (0 = no ramp)"},
        {"hold-ns", "ns", "0", "undervolt hold time at the floor"},
        {"readout-rate", "B/us", "0", "frozen readout bandwidth (0 = unlimited)"},
        {"cpa-window-ns", "ns", "0", "CPA correlation window (0 = full block)"},
        {"dumps", "count", "1", "power-cycle dumps fused per key-recovery trial"},
        {"prior", "0|1", "0", "guide key correction by DRV decay priors"},
        {"key", "0|1", "0", "plant + scan an AES-128 schedule"},
        {"seeds", "count", "1", "chip-seed replication axis"},
    };
    std::string out =
        "axis              unit   default  values\n"
        "----              ----   -------  ------\n";
    for (const AxisDoc &a : axes) {
        std::string line = a.key;
        line.resize(18, ' ');
        std::string unit = a.unit;
        unit.resize(7, ' ');
        std::string def = a.def;
        def.resize(9, ' ');
        out += line + unit + def + a.values + "\n";
    }
    out += "\nEnumeration order: the board axis varies slowest, the "
           "chip-seed index\nfastest; axes in between follow the order "
           "above from bottom to top.\nGlitch axes apply to "
           "attack=glitch trials only; undervolt-depth, hold-ns\nand "
           "readout-rate to attack=static-extract; cpa-window-ns to\n"
           "attack=voltage-coupling; dumps and prior to "
           "attack=key-recovery.\n";
    return out;
}

} // namespace voltboot

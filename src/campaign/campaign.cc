#include "campaign/campaign.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace voltboot
{

Campaign::Campaign(SweepGrid grid, CampaignConfig config)
    : grid_(std::move(grid)), config_(std::move(config))
{
    if (!config_.runner)
        config_.runner = [](const TrialSpec &spec, uint64_t seed) {
            return runTrial(spec, seed);
        };
}

CampaignResult
Campaign::run()
{
    using clock = std::chrono::steady_clock;

    const uint64_t total = grid_.size();
    unsigned jobs = config_.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = static_cast<unsigned>(
        std::min<uint64_t>(jobs, std::max<uint64_t>(total, 1)));

    CampaignResult result;
    result.campaign_seed = config_.seed;
    result.grid_spec = grid_.describe();
    result.jobs = jobs;
    result.records.resize(total);

    // Small chunks keep the pool balanced when per-trial cost varies
    // wildly across the grid (e.g. imx53 iRAM vs pi4 register trials);
    // the atomic grab is nanoseconds against millisecond trials.
    uint64_t chunk = config_.chunk;
    if (chunk == 0)
        chunk = std::max<uint64_t>(
            1, total / (static_cast<uint64_t>(jobs) * 8));

    std::atomic<uint64_t> cursor{0};
    std::atomic<uint64_t> done{0};
    std::mutex progress_mutex;
    const auto t0 = clock::now();

    auto elapsedSince = [](clock::time_point start) {
        return std::chrono::duration<double>(clock::now() - start)
            .count();
    };

    auto worker = [&]() {
        for (;;) {
            const uint64_t begin = cursor.fetch_add(chunk);
            if (begin >= total)
                break;
            const uint64_t end = std::min(begin + chunk, total);
            for (uint64_t i = begin; i < end; ++i) {
                TrialRecord rec;
                if (aborted()) {
                    rec.spec = grid_.at(i);
                    rec.status = TrialStatus::Skipped;
                    rec.detail = "campaign aborted";
                } else {
                    const auto start = clock::now();
                    try {
                        rec = config_.runner(grid_.at(i), config_.seed);
                    } catch (const std::exception &e) {
                        rec = TrialRecord{};
                        rec.spec = grid_.at(i);
                        rec.status = TrialStatus::Error;
                        rec.detail = e.what();
                    } catch (...) {
                        rec = TrialRecord{};
                        rec.spec = grid_.at(i);
                        rec.status = TrialStatus::Error;
                        rec.detail = "unknown exception";
                    }
                    rec.duration_s = elapsedSince(start);
                    if (config_.trial_timeout.seconds() > 0.0 &&
                        rec.duration_s >
                            config_.trial_timeout.seconds()) {
                        rec.timed_out = true;
                        if (config_.abort_on_timeout)
                            requestAbort();
                    }
                }
                result.records[i] = std::move(rec);

                const uint64_t d =
                    done.fetch_add(1, std::memory_order_relaxed) + 1;
                if (config_.progress &&
                    (d % std::max<uint64_t>(1, config_.progress_every) ==
                         0 ||
                     d == total)) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    CampaignProgress p;
                    p.done = d;
                    p.total = total;
                    p.elapsed_s = elapsedSince(t0);
                    p.trials_per_sec =
                        p.elapsed_s > 0.0
                            ? static_cast<double>(d) / p.elapsed_s
                            : 0.0;
                    p.eta_s = p.trials_per_sec > 0.0
                                  ? static_cast<double>(total - d) /
                                        p.trials_per_sec
                                  : 0.0;
                    config_.progress(p);
                }
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    result.wall_seconds = elapsedSince(t0);
    return result;
}

} // namespace voltboot

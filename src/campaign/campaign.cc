#include "campaign/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "telemetry/counters.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace voltboot
{

namespace
{

/** `<trace_dir>/trial_NNNNNN.jsonl` for trial @p index. */
std::string
tracePath(const std::string &dir, uint64_t index)
{
    char name[32];
    std::snprintf(name, sizeof(name), "trial_%06llu.jsonl",
                  static_cast<unsigned long long>(index));
    return (std::filesystem::path(dir) / name).string();
}

} // namespace

Campaign::Campaign(SweepGrid grid, CampaignConfig config)
    : grid_(std::move(grid)), config_(std::move(config))
{
    if (!config_.runner)
        config_.runner = [](const TrialSpec &spec, uint64_t seed) {
            return runTrial(spec, seed);
        };
}

CampaignResult
Campaign::run()
{
    using clock = std::chrono::steady_clock;

    const uint64_t total = grid_.size();
    unsigned jobs = config_.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = static_cast<unsigned>(
        std::min<uint64_t>(jobs, std::max<uint64_t>(total, 1)));

    CampaignResult result;
    result.campaign_seed = config_.seed;
    result.grid_spec = grid_.describe();
    result.jobs = jobs;
    result.records.resize(total);

    // Small chunks keep the pool balanced when per-trial cost varies
    // wildly across the grid (e.g. imx53 iRAM vs pi4 register trials);
    // the atomic grab is nanoseconds against millisecond trials.
    uint64_t chunk = config_.chunk;
    if (chunk == 0)
        chunk = std::max<uint64_t>(
            1, total / (static_cast<uint64_t>(jobs) * 8));

    const bool tracing = !config_.trace_dir.empty();
    if (tracing)
        std::filesystem::create_directories(config_.trace_dir);

    // Engine metrics (queue behaviour, per-trial wall-clock). All
    // wall-clock derived, so they end up in CampaignResult::metrics and
    // only ever render inside the opt-in timing section.
    trace::Metrics metrics;
    metrics.set("campaign.jobs", static_cast<double>(jobs));
    metrics.set("campaign.chunk", static_cast<double>(chunk));

    std::atomic<uint64_t> cursor{0};
    std::atomic<uint64_t> done{0};
    std::mutex progress_mutex;
    // Wall time of the last progress report. The relaxed pre-check
    // keeps the common no-report path mutex-free; the real decision is
    // re-taken under progress_mutex.
    std::atomic<double> last_progress_s{0.0};
    const auto t0 = clock::now();

    auto elapsedSince = [](clock::time_point start) {
        return std::chrono::duration<double>(clock::now() - start)
            .count();
    };

    auto worker = [&]() {
        // Metrics is thread-safe; the registry is shared by all
        // workers. The trace sink below is per-trial, never shared.
        trace::MetricsScope metrics_scope(&metrics);
        // Every hot-path counter this worker touches lands in its own
        // cache-line-padded block; the telemetry monitor sums them.
        telemetry::WorkerScope telemetry_scope;
        for (;;) {
            const uint64_t begin = cursor.fetch_add(chunk);
            if (begin >= total)
                break;
            metrics.add("campaign.queue_grabs");
            const uint64_t end = std::min(begin + chunk, total);
            for (uint64_t i = begin; i < end; ++i) {
                TrialRecord rec;
                if (aborted()) {
                    rec.spec = grid_.at(i);
                    rec.status = TrialStatus::Skipped;
                    rec.detail = "campaign aborted";
                    telemetry::add(telemetry::Counter::TrialsSkipped);
                } else {
                    telemetry::add(telemetry::Counter::TrialsStarted);
                    const auto start = clock::now();
                    trace::MemoryTraceSink sink;
                    {
                        // The Scope resets this thread's sim clock, so
                        // each trial's trace starts its own timeline;
                        // the Span's Complete event closes (and lands
                        // in the sink) before the Scope uninstalls it.
                        std::optional<trace::Scope> scope;
                        std::optional<trace::Span> span;
                        if (tracing) {
                            scope.emplace(sink);
                            span.emplace("campaign", "trial");
                        }
                        try {
                            rec = config_.runner(grid_.at(i),
                                                 config_.seed);
                        } catch (const std::exception &e) {
                            rec = TrialRecord{};
                            rec.spec = grid_.at(i);
                            rec.status = TrialStatus::Error;
                            rec.detail = e.what();
                        } catch (...) {
                            rec = TrialRecord{};
                            rec.spec = grid_.at(i);
                            rec.status = TrialStatus::Error;
                            rec.detail = "unknown exception";
                        }
                        if (span) {
                            span->arg({"index", i});
                            span->arg({"board", rec.spec.board});
                            span->arg({"target",
                                       toString(rec.spec.target)});
                            span->arg({"attack",
                                       toString(rec.spec.attack)});
                            span->arg({"status",
                                       toString(rec.status)});
                        }
                    }
                    rec.duration_s = elapsedSince(start);
                    metrics.observe("campaign.trial_wall_s",
                                    rec.duration_s);
                    if (tracing)
                        CampaignResult::writeFile(
                            tracePath(config_.trace_dir, i),
                            trace::toJsonl(sink.events()));
                    if (config_.trial_timeout.seconds() > 0.0 &&
                        rec.duration_s >
                            config_.trial_timeout.seconds()) {
                        rec.timed_out = true;
                        if (config_.abort_on_timeout)
                            requestAbort();
                    }
                    telemetry::add(telemetry::Counter::TrialsCompleted);
                    if (rec.status == TrialStatus::Ok)
                        telemetry::add(telemetry::Counter::TrialsWon);
                    else if (rec.status == TrialStatus::Error ||
                             rec.status == TrialStatus::AttackFailed)
                        telemetry::add(telemetry::Counter::TrialsFailed);
                }
                result.records[i] = std::move(rec);

                const uint64_t d =
                    done.fetch_add(1, std::memory_order_relaxed) + 1;
                if (config_.progress) {
                    const double interval =
                        config_.progress_interval.seconds();
                    const bool count_due =
                        d % std::max<uint64_t>(
                                1, config_.progress_every) == 0 ||
                        d == total;
                    const bool maybe_time_due =
                        interval > 0.0 &&
                        elapsedSince(t0) -
                                last_progress_s.load(
                                    std::memory_order_relaxed) >=
                            interval;
                    if (count_due || maybe_time_due) {
                        std::lock_guard<std::mutex> lock(progress_mutex);
                        const double now_s = elapsedSince(t0);
                        const bool time_due =
                            interval > 0.0 &&
                            now_s - last_progress_s.load(
                                        std::memory_order_relaxed) >=
                                interval;
                        if (count_due || time_due) {
                            last_progress_s.store(
                                now_s, std::memory_order_relaxed);
                            CampaignProgress p;
                            p.done = d;
                            p.total = total;
                            p.elapsed_s = now_s;
                            p.trials_per_sec =
                                p.elapsed_s > 0.0
                                    ? static_cast<double>(d) /
                                          p.elapsed_s
                                    : 0.0;
                            p.eta_s =
                                p.trials_per_sec > 0.0
                                    ? static_cast<double>(total - d) /
                                          p.trials_per_sec
                                    : 0.0;
                            config_.progress(p);
                        }
                    }
                }
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    result.wall_seconds = elapsedSince(t0);
    result.metrics = metrics.snapshot();
    return result;
}

} // namespace voltboot

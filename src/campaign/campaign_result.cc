#include "campaign/campaign_result.hh"

#include <fstream>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace voltboot
{

const char *
toString(TrialStatus status)
{
    switch (status) {
      case TrialStatus::Ok: return "ok";
      case TrialStatus::AttackFailed: return "attack_failed";
      case TrialStatus::Error: return "error";
      case TrialStatus::Skipped: return "skipped";
    }
    panic("bad TrialStatus");
}

CampaignSummary
CampaignResult::summary() const
{
    CampaignSummary s;
    s.trials = records.size();
    for (const TrialRecord &r : records) {
        switch (r.status) {
          case TrialStatus::Ok:
            ++s.ok;
            s.accuracy.add(r.accuracy);
            s.bit_error_rate.add(r.bit_error_rate);
            break;
          case TrialStatus::AttackFailed:
            ++s.attack_failed;
            break;
          case TrialStatus::Error:
            ++s.errors;
            break;
          case TrialStatus::Skipped:
            ++s.skipped;
            break;
        }
        s.booted += r.booted;
        s.keys_planted += r.key_planted;
        s.keys_found += r.key_found;
        s.keys_exact += r.key_exact;
    }
    return s;
}

namespace
{

/** Shortest round-trip decimal rendering (stable, locale-free). */
std::string
jsonNumber(double value)
{
    return trace::jsonNumber(value);
}

std::string
jsonString(const std::string &s)
{
    return trace::jsonQuote(s);
}

const char *
jsonBool(bool b)
{
    return b ? "true" : "false";
}

} // namespace

std::string
CampaignResult::toJson(bool include_timing) const
{
    const CampaignSummary s = summary();
    std::string out;
    out.reserve(256 + records.size() * 320);
    out += "{\n";
    out += "  \"schema\": \"voltboot-campaign-v1\",\n";
    out += "  \"campaign_seed\": " + std::to_string(campaign_seed) + ",\n";
    out += "  \"grid\": " + jsonString(grid_spec) + ",\n";
    out += "  \"trials\": " + std::to_string(s.trials) + ",\n";
    out += "  \"summary\": {\n";
    out += "    \"ok\": " + std::to_string(s.ok) + ",\n";
    out += "    \"attack_failed\": " + std::to_string(s.attack_failed) +
           ",\n";
    out += "    \"errors\": " + std::to_string(s.errors) + ",\n";
    out += "    \"skipped\": " + std::to_string(s.skipped) + ",\n";
    out += "    \"booted\": " + std::to_string(s.booted) + ",\n";
    out += "    \"mean_accuracy\": " + jsonNumber(s.accuracy.mean()) +
           ",\n";
    out += "    \"mean_bit_error_rate\": " +
           jsonNumber(s.bit_error_rate.mean()) + ",\n";
    out += "    \"keys_planted\": " + std::to_string(s.keys_planted) +
           ",\n";
    out += "    \"keys_found\": " + std::to_string(s.keys_found) + ",\n";
    out += "    \"keys_exact\": " + std::to_string(s.keys_exact) + "\n";
    out += "  },\n";
    out += "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const TrialRecord &r = records[i];
        out += "    {\"index\": " + std::to_string(r.spec.index);
        out += ", \"board\": " + jsonString(r.spec.board);
        out += ", \"target\": " + jsonString(toString(r.spec.target));
        out += ", \"attack\": " + jsonString(toString(r.spec.attack));
        out += ", \"temp_c\": " + jsonNumber(r.spec.temp_c);
        out += ", \"off_ms\": " + jsonNumber(r.spec.off_ms);
        out += ", \"current_a\": " + jsonNumber(r.spec.current_a);
        out += ", \"impedance_mohm\": " +
               jsonNumber(r.spec.impedance_mohm);
        out += ", \"seed_index\": " + std::to_string(r.spec.seed_index);
        out += ", \"chip_seed\": " + std::to_string(r.chip_seed);
        out += ", \"status\": " + jsonString(toString(r.status));
        out += ", \"detail\": " + jsonString(r.detail);
        out += ", \"probe_attached\": ";
        out += jsonBool(r.probe_attached);
        out += ", \"booted\": ";
        out += jsonBool(r.booted);
        out += ", \"dump_bytes\": " + std::to_string(r.dump_bytes);
        out += ", \"accuracy\": " + jsonNumber(r.accuracy);
        out += ", \"bit_error_rate\": " + jsonNumber(r.bit_error_rate);
        out += ", \"key_planted\": ";
        out += jsonBool(r.key_planted);
        out += ", \"key_found\": ";
        out += jsonBool(r.key_found);
        out += ", \"key_exact\": ";
        out += jsonBool(r.key_exact);
        out += "}";
        out += (i + 1 < records.size()) ? ",\n" : "\n";
    }
    out += "  ]";
    if (include_timing) {
        out += ",\n  \"timing\": {\n";
        out += "    \"wall_seconds\": " + jsonNumber(wall_seconds) + ",\n";
        out += "    \"jobs\": " + std::to_string(jobs) + ",\n";
        out += "    \"trials_per_second\": " +
               jsonNumber(trialsPerSecond()) + ",\n";
        uint64_t timed_out = 0;
        for (const TrialRecord &r : records)
            timed_out += r.timed_out;
        out += "    \"trials_timed_out\": " + std::to_string(timed_out);
        if (!metrics.empty())
            out += ",\n    \"metrics\": " + metrics.toJson(4);
        out += "\n  }";
    }
    out += "\n}\n";
    return out;
}

std::string
CampaignResult::toCsv() const
{
    std::string out =
        "index,board,target,attack,temp_c,off_ms,current_a,"
        "impedance_mohm,seed_index,chip_seed,status,probe_attached,"
        "booted,dump_bytes,accuracy,bit_error_rate,key_planted,"
        "key_found,key_exact,detail\n";
    for (const TrialRecord &r : records) {
        out += std::to_string(r.spec.index) + ',';
        out += r.spec.board + ',';
        out += std::string(toString(r.spec.target)) + ',';
        out += std::string(toString(r.spec.attack)) + ',';
        out += jsonNumber(r.spec.temp_c) + ',';
        out += jsonNumber(r.spec.off_ms) + ',';
        out += jsonNumber(r.spec.current_a) + ',';
        out += jsonNumber(r.spec.impedance_mohm) + ',';
        out += std::to_string(r.spec.seed_index) + ',';
        out += std::to_string(r.chip_seed) + ',';
        out += std::string(toString(r.status)) + ',';
        out += std::to_string(r.probe_attached) + ',';
        out += std::to_string(r.booted) + ',';
        out += std::to_string(r.dump_bytes) + ',';
        out += jsonNumber(r.accuracy) + ',';
        out += jsonNumber(r.bit_error_rate) + ',';
        out += std::to_string(r.key_planted) + ',';
        out += std::to_string(r.key_found) + ',';
        out += std::to_string(r.key_exact) + ',';
        // Keep CSV single-line: squash separators out of free text.
        std::string detail = r.detail;
        for (char &c : detail)
            if (c == ',' || c == '\n' || c == '\r')
                c = ';';
        out += detail + '\n';
    }
    return out;
}

void
CampaignResult::writeFile(const std::string &path,
                          const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    out << content;
    if (!out)
        fatal("write to '", path, "' failed");
}

} // namespace voltboot

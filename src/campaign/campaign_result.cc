#include "campaign/campaign_result.hh"

#include <fstream>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace voltboot
{

const char *
toString(TrialStatus status)
{
    switch (status) {
      case TrialStatus::Ok: return "ok";
      case TrialStatus::AttackFailed: return "attack_failed";
      case TrialStatus::Error: return "error";
      case TrialStatus::Skipped: return "skipped";
    }
    panic("bad TrialStatus");
}

CampaignSummary
CampaignResult::summary() const
{
    CampaignSummary s;
    s.trials = records.size();
    for (const TrialRecord &r : records) {
        switch (r.status) {
          case TrialStatus::Ok:
            ++s.ok;
            s.accuracy.add(r.accuracy);
            s.bit_error_rate.add(r.bit_error_rate);
            break;
          case TrialStatus::AttackFailed:
            ++s.attack_failed;
            break;
          case TrialStatus::Error:
            ++s.errors;
            break;
          case TrialStatus::Skipped:
            ++s.skipped;
            break;
        }
        s.booted += r.booted;
        s.keys_planted += r.key_planted;
        s.keys_found += r.key_found;
        s.keys_exact += r.key_exact;
        if (r.spec.attack == AttackKind::Glitch) {
            ++s.glitch_trials;
            s.glitch_bypassed += r.glitch_bypassed;
        }
        if (r.spec.attack == AttackKind::StaticExtract) {
            ++s.static_trials;
            s.static_frozen += r.se_frozen;
        }
        if (r.spec.attack == AttackKind::VoltageCoupling) {
            ++s.coupling_trials;
            s.cpa_key_bytes += r.cpa_recovered;
        }
        if (r.spec.attack == AttackKind::KeyRecovery) {
            ++s.keyrecovery_trials;
            s.keyrecovery_exact += r.key_exact;
        }
    }
    return s;
}

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<std::string>
splitCsvRow(const std::string &line)
{
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cur += c;
            }
        } else if (c == '"' && cur.empty()) {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    fields.push_back(std::move(cur));
    return fields;
}

namespace
{

/** Shortest round-trip decimal rendering (stable, locale-free). */
std::string
jsonNumber(double value)
{
    return trace::jsonNumber(value);
}

std::string
jsonString(const std::string &s)
{
    return trace::jsonQuote(s);
}

const char *
jsonBool(bool b)
{
    return b ? "true" : "false";
}

} // namespace

std::string
CampaignResult::toJson(bool include_timing) const
{
    const CampaignSummary s = summary();
    std::string out;
    out.reserve(256 + records.size() * 320);
    out += "{\n";
    out += "  \"schema\": \"voltboot-campaign-v1\",\n";
    out += "  \"campaign_seed\": " + std::to_string(campaign_seed) + ",\n";
    out += "  \"grid\": " + jsonString(grid_spec) + ",\n";
    out += "  \"trials\": " + std::to_string(s.trials) + ",\n";
    out += "  \"summary\": {\n";
    out += "    \"ok\": " + std::to_string(s.ok) + ",\n";
    out += "    \"attack_failed\": " + std::to_string(s.attack_failed) +
           ",\n";
    out += "    \"errors\": " + std::to_string(s.errors) + ",\n";
    out += "    \"skipped\": " + std::to_string(s.skipped) + ",\n";
    out += "    \"booted\": " + std::to_string(s.booted) + ",\n";
    out += "    \"mean_accuracy\": " + jsonNumber(s.accuracy.mean()) +
           ",\n";
    out += "    \"mean_bit_error_rate\": " +
           jsonNumber(s.bit_error_rate.mean()) + ",\n";
    out += "    \"keys_planted\": " + std::to_string(s.keys_planted) +
           ",\n";
    out += "    \"keys_found\": " + std::to_string(s.keys_found) + ",\n";
    out += "    \"keys_exact\": " + std::to_string(s.keys_exact) + ",\n";
    out += "    \"glitch_trials\": " + std::to_string(s.glitch_trials) +
           ",\n";
    out += "    \"glitch_bypassed\": " +
           std::to_string(s.glitch_bypassed) + ",\n";
    out += "    \"static_trials\": " + std::to_string(s.static_trials) +
           ",\n";
    out += "    \"static_frozen\": " + std::to_string(s.static_frozen) +
           ",\n";
    out += "    \"coupling_trials\": " +
           std::to_string(s.coupling_trials) + ",\n";
    out += "    \"cpa_key_bytes\": " + std::to_string(s.cpa_key_bytes) +
           ",\n";
    out += "    \"keyrecovery_trials\": " +
           std::to_string(s.keyrecovery_trials) + ",\n";
    out += "    \"keyrecovery_exact\": " +
           std::to_string(s.keyrecovery_exact) + "\n";
    out += "  },\n";
    out += "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const TrialRecord &r = records[i];
        out += "    {\"index\": " + std::to_string(r.spec.index);
        out += ", \"board\": " + jsonString(r.spec.board);
        out += ", \"target\": " + jsonString(toString(r.spec.target));
        out += ", \"attack\": " + jsonString(toString(r.spec.attack));
        out += ", \"temp_c\": " + jsonNumber(r.spec.temp_c);
        out += ", \"off_ms\": " + jsonNumber(r.spec.off_ms);
        out += ", \"current_a\": " + jsonNumber(r.spec.current_a);
        out += ", \"impedance_mohm\": " +
               jsonNumber(r.spec.impedance_mohm);
        out += ", \"seed_index\": " + std::to_string(r.spec.seed_index);
        out += ", \"glitch_off_ns\": " + jsonNumber(r.spec.glitch_off_ns);
        out += ", \"glitch_width_ns\": " +
               jsonNumber(r.spec.glitch_width_ns);
        out += ", \"glitch_depth_v\": " +
               jsonNumber(r.spec.glitch_depth_v);
        out += ", \"undervolt_depth_v\": " +
               jsonNumber(r.spec.undervolt_depth_v);
        out += ", \"hold_ns\": " + jsonNumber(r.spec.hold_ns);
        out += ", \"readout_rate\": " + jsonNumber(r.spec.readout_rate);
        out += ", \"cpa_window_ns\": " + jsonNumber(r.spec.cpa_window_ns);
        out += ", \"dump_count\": " + std::to_string(r.spec.dump_count);
        out += ", \"use_priors\": ";
        out += jsonBool(r.spec.use_priors);
        out += ", \"chip_seed\": " + std::to_string(r.chip_seed);
        out += ", \"status\": " + jsonString(toString(r.status));
        out += ", \"detail\": " + jsonString(r.detail);
        out += ", \"probe_attached\": ";
        out += jsonBool(r.probe_attached);
        out += ", \"booted\": ";
        out += jsonBool(r.booted);
        out += ", \"dump_bytes\": " + std::to_string(r.dump_bytes);
        out += ", \"accuracy\": " + jsonNumber(r.accuracy);
        out += ", \"bit_error_rate\": " + jsonNumber(r.bit_error_rate);
        out += ", \"key_planted\": ";
        out += jsonBool(r.key_planted);
        out += ", \"key_found\": ";
        out += jsonBool(r.key_found);
        out += ", \"key_exact\": ";
        out += jsonBool(r.key_exact);
        out += ", \"glitch_faults\": " + std::to_string(r.glitch_faults);
        out += ", \"glitch_effect\": " + jsonString(r.glitch_effect);
        out += ", \"glitch_bypassed\": ";
        out += jsonBool(r.glitch_bypassed);
        out += ", \"se_frozen\": ";
        out += jsonBool(r.se_frozen);
        out += ", \"se_zeroized\": ";
        out += jsonBool(r.se_zeroized);
        out += ", \"se_read_fraction\": " + jsonNumber(r.se_read_fraction);
        out += ", \"cpa_recovered\": " + std::to_string(r.cpa_recovered);
        out += ", \"kr_scan_hits\": " + std::to_string(r.kr_scan_hits);
        out += ", \"kr_corrected_hits\": " +
               std::to_string(r.kr_corrected_hits);
        out += ", \"kr_bit_errors\": " + std::to_string(r.kr_bit_errors);
        out += ", \"kr_key_bits_flipped\": " +
               std::to_string(r.kr_key_bits_flipped);
        out += ", \"kr_correction_iterations\": " +
               std::to_string(r.kr_correction_iterations);
        out += ", \"kr_disagreeing_bits\": " +
               std::to_string(r.kr_disagreeing_bits);
        out += "}";
        out += (i + 1 < records.size()) ? ",\n" : "\n";
    }
    out += "  ]";
    if (include_timing) {
        out += ",\n  \"timing\": {\n";
        out += "    \"wall_seconds\": " + jsonNumber(wall_seconds) + ",\n";
        out += "    \"jobs\": " + std::to_string(jobs) + ",\n";
        out += "    \"trials_per_second\": " +
               jsonNumber(trialsPerSecond()) + ",\n";
        uint64_t timed_out = 0;
        for (const TrialRecord &r : records)
            timed_out += r.timed_out;
        out += "    \"trials_timed_out\": " + std::to_string(timed_out);
        if (!metrics.empty())
            out += ",\n    \"metrics\": " + metrics.toJson(4);
        out += "\n  }";
    }
    out += "\n}\n";
    return out;
}

std::string
CampaignResult::toCsv() const
{
    std::string out =
        "index,board,target,attack,temp_c,off_ms,current_a,"
        "impedance_mohm,seed_index,glitch_off_ns,glitch_width_ns,"
        "glitch_depth_v,undervolt_depth_v,hold_ns,readout_rate,"
        "cpa_window_ns,dump_count,use_priors,chip_seed,status,"
        "probe_attached,booted,dump_bytes,accuracy,bit_error_rate,"
        "key_planted,key_found,key_exact,glitch_faults,glitch_effect,"
        "glitch_bypassed,se_frozen,se_zeroized,se_read_fraction,"
        "cpa_recovered,kr_scan_hits,kr_corrected_hits,kr_bit_errors,"
        "kr_key_bits_flipped,kr_correction_iterations,"
        "kr_disagreeing_bits,detail\n";
    for (const TrialRecord &r : records) {
        out += std::to_string(r.spec.index) + ',';
        out += csvEscape(r.spec.board) + ',';
        out += std::string(toString(r.spec.target)) + ',';
        out += std::string(toString(r.spec.attack)) + ',';
        out += jsonNumber(r.spec.temp_c) + ',';
        out += jsonNumber(r.spec.off_ms) + ',';
        out += jsonNumber(r.spec.current_a) + ',';
        out += jsonNumber(r.spec.impedance_mohm) + ',';
        out += std::to_string(r.spec.seed_index) + ',';
        out += jsonNumber(r.spec.glitch_off_ns) + ',';
        out += jsonNumber(r.spec.glitch_width_ns) + ',';
        out += jsonNumber(r.spec.glitch_depth_v) + ',';
        out += jsonNumber(r.spec.undervolt_depth_v) + ',';
        out += jsonNumber(r.spec.hold_ns) + ',';
        out += jsonNumber(r.spec.readout_rate) + ',';
        out += jsonNumber(r.spec.cpa_window_ns) + ',';
        out += std::to_string(r.spec.dump_count) + ',';
        out += std::to_string(r.spec.use_priors) + ',';
        out += std::to_string(r.chip_seed) + ',';
        out += std::string(toString(r.status)) + ',';
        out += std::to_string(r.probe_attached) + ',';
        out += std::to_string(r.booted) + ',';
        out += std::to_string(r.dump_bytes) + ',';
        out += jsonNumber(r.accuracy) + ',';
        out += jsonNumber(r.bit_error_rate) + ',';
        out += std::to_string(r.key_planted) + ',';
        out += std::to_string(r.key_found) + ',';
        out += std::to_string(r.key_exact) + ',';
        out += std::to_string(r.glitch_faults) + ',';
        // Free-text fields (effect lists join with commas, failure
        // details may say anything): RFC 4180 quoting keeps one row
        // per trial and round-trips through splitCsvRow().
        out += csvEscape(r.glitch_effect) + ',';
        out += std::to_string(r.glitch_bypassed) + ',';
        out += std::to_string(r.se_frozen) + ',';
        out += std::to_string(r.se_zeroized) + ',';
        out += jsonNumber(r.se_read_fraction) + ',';
        out += std::to_string(r.cpa_recovered) + ',';
        out += std::to_string(r.kr_scan_hits) + ',';
        out += std::to_string(r.kr_corrected_hits) + ',';
        out += std::to_string(r.kr_bit_errors) + ',';
        out += std::to_string(r.kr_key_bits_flipped) + ',';
        out += std::to_string(r.kr_correction_iterations) + ',';
        out += std::to_string(r.kr_disagreeing_bits) + ',';
        out += csvEscape(r.detail) + '\n';
    }
    return out;
}

void
CampaignResult::writeFile(const std::string &path,
                          const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    out << content;
    if (!out)
        fatal("write to '", path, "' failed");
}

} // namespace voltboot

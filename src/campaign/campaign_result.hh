/**
 * @file
 * Structured campaign results.
 *
 * Every trial produces one TrialRecord — parameters echoed back, a
 * status, and the extraction metrics the paper reports (retention
 * accuracy / bit-error rate, key-recovery outcome). A CampaignResult is
 * the ordered vector of records (indexed by trial index, so the layout
 * is schedule-independent) plus merged summaries, and renders to JSON
 * and CSV.
 *
 * The canonical JSON/CSV output is bit-identical for a given
 * (grid, campaign seed) regardless of worker count: wall-clock
 * measurements are segregated into an optional "timing" section that is
 * omitted by default.
 */

#ifndef VOLTBOOT_CAMPAIGN_CAMPAIGN_RESULT_HH
#define VOLTBOOT_CAMPAIGN_CAMPAIGN_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/sweep_grid.hh"
#include "sim/stats.hh"
#include "trace/metrics.hh"

namespace voltboot
{

/** How one trial ended. */
enum class TrialStatus
{
    Ok,           ///< Extraction ran; metrics are valid.
    AttackFailed, ///< The attack itself failed (probe/boot); no dump.
    Error,        ///< The trial threw; detail carries the message.
    Skipped,      ///< Campaign aborted before this trial started.
};

const char *toString(TrialStatus status);

/** Quote @p field per RFC 4180 when it contains a comma, quote, or
 * newline (embedded quotes doubled); otherwise returned unchanged. */
std::string csvEscape(const std::string &field);

/** Split one CSV row (without its trailing newline) into unescaped
 * fields — the inverse of the quoting csvEscape() applies. */
std::vector<std::string> splitCsvRow(const std::string &line);

/** Outcome and metrics of a single trial. */
struct TrialRecord
{
    TrialSpec spec;
    TrialStatus status = TrialStatus::Skipped;
    std::string detail;     ///< Failure reason / exception text.
    uint64_t chip_seed = 0; ///< The derived silicon seed actually used.

    bool probe_attached = false;
    bool booted = false;

    uint64_t dump_bytes = 0;
    /** Fraction of dump bits matching ground truth (1.0 = perfect,
     * ~0.5 = nothing retained). Valid only when status == Ok. */
    double accuracy = 0.0;
    double bit_error_rate = 0.0;

    bool key_planted = false;
    bool key_found = false;
    bool key_exact = false;

    /** Glitch trials: number of faults the pulse injected. */
    uint64_t glitch_faults = 0;
    /** Glitch trials: comma-joined effect names, in boundary order
     * (e.g. "skip,opcode_corrupt" — note the embedded commas). */
    std::string glitch_effect;
    /** Glitch trials: the signature check passed without a valid tag. */
    bool glitch_bypassed = false;

    /** StaticExtract trials: the clock froze below brown-out. */
    bool se_frozen = false;
    /** StaticExtract trials: the victim finished its zeroize wipe. */
    bool se_zeroized = false;
    /** StaticExtract trials: fraction of the dump the slow readout
     * path observed inside the hold window. */
    double se_read_fraction = 0.0;
    /** VoltageCoupling trials: key bytes whose winning CPA guess
     * cleared the confidence threshold. */
    uint64_t cpa_recovered = 0;

    /** KeyRecovery trials: keyfind engine outcome (deterministic). */
    uint64_t kr_scan_hits = 0;      ///< Exact-scan schedule hits.
    uint64_t kr_corrected_hits = 0; ///< Correction-scan hits.
    /** Residual schedule bit errors of the best hit (0 when none). */
    uint64_t kr_bit_errors = 0;
    /** Key bits the corrector flipped for the best corrected hit. */
    uint64_t kr_key_bits_flipped = 0;
    /** Local-search iterations the correction stage spent in total. */
    uint64_t kr_correction_iterations = 0;
    /** Bits that disagreed across the trial's fused dumps. */
    uint64_t kr_disagreeing_bits = 0;

    /** Wall-clock cost; timing only, never in canonical output. */
    double duration_s = 0.0;
    /** The trial overran CampaignConfig::trial_timeout (timing only). */
    bool timed_out = false;
};

/** Merged per-campaign statistics. */
struct CampaignSummary
{
    uint64_t trials = 0;
    uint64_t ok = 0;
    uint64_t attack_failed = 0;
    uint64_t errors = 0;
    uint64_t skipped = 0;

    RunningStats accuracy;       ///< Over Ok trials.
    RunningStats bit_error_rate; ///< Over Ok trials.
    uint64_t keys_planted = 0;
    uint64_t keys_found = 0;
    uint64_t keys_exact = 0;

    /** Attack success = Ok trials that booted attacker code. */
    uint64_t booted = 0;

    /** Glitch trials run / signature checks bypassed. */
    uint64_t glitch_trials = 0;
    uint64_t glitch_bypassed = 0;

    /** Static-extract trials run / clock-freezes achieved. */
    uint64_t static_trials = 0;
    uint64_t static_frozen = 0;

    /** Voltage-coupling trials run / confident CPA key bytes summed. */
    uint64_t coupling_trials = 0;
    uint64_t cpa_key_bytes = 0;

    /** Key-recovery trials run / exact keys recovered among them. */
    uint64_t keyrecovery_trials = 0;
    uint64_t keyrecovery_exact = 0;
};

/** Everything a campaign produced. */
struct CampaignResult
{
    uint64_t campaign_seed = 0;
    std::string grid_spec; ///< Canonical SweepGrid::describe().
    /** One record per trial, at its trial index. */
    std::vector<TrialRecord> records;

    /** Wall-clock of the whole run (timing only). */
    double wall_seconds = 0.0;
    unsigned jobs = 1;

    /** Engine metrics captured at the end of the run: worker-queue
     * counters and the per-trial wall-clock histogram (count, mean,
     * p50/p90/p99). Wall-clock derived, so rendered only inside the
     * opt-in timing section of toJson(). */
    trace::MetricsSnapshot metrics;

    CampaignSummary summary() const;

    /** Trials per second over the whole campaign. */
    double
    trialsPerSecond() const
    {
        return wall_seconds > 0.0
                   ? static_cast<double>(records.size()) / wall_seconds
                   : 0.0;
    }

    /**
     * Render to JSON. With @p include_timing false (the default) the
     * output is a pure function of (grid, campaign seed) — byte-equal
     * across job counts and machines.
     */
    std::string toJson(bool include_timing = false) const;

    /** Render to CSV (one record per row; canonical, no timing). */
    std::string toCsv() const;

    /** Write @p content to @p path; fatal() on I/O failure. */
    static void writeFile(const std::string &path,
                          const std::string &content);
};

} // namespace voltboot

#endif // VOLTBOOT_CAMPAIGN_CAMPAIGN_RESULT_HH

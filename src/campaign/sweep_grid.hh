/**
 * @file
 * Sweep grids: the cartesian parameter space of an attack campaign.
 *
 * A SweepGrid names one value list per experimental axis — board, target
 * memory, attack kind, ambient temperature, power-off time, probe
 * current, probe impedance, key planting, chip-seed index — and
 * enumerates the cartesian product lazily: trial @c i is decoded from
 * its index with div/mod arithmetic, so a billion-trial grid costs the
 * same memory as a one-trial grid. Grids parse from a compact
 * `key=v1,v2;key=...` spec string (see docs/CAMPAIGN.md) and re-render
 * canonically so a campaign's results always carry an exact description
 * of the space they cover.
 */

#ifndef VOLTBOOT_CAMPAIGN_SWEEP_GRID_HH
#define VOLTBOOT_CAMPAIGN_SWEEP_GRID_HH

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

namespace voltboot
{

/** Which attack an individual trial mounts. */
enum class AttackKind
{
    VoltBoot,        ///< Probe the SRAM domain, power-cycle, extract.
    ColdBoot,        ///< No probe: chill, power-cycle, extract (Section 3).
    Glitch,          ///< Crowbar the core rail mid-signature-check.
    StaticExtract,   ///< Undervolt below brown-out, freeze, read out.
    VoltageCoupling, ///< CPA on rail dips coupled from AES activity.
    KeyRecovery,     ///< Cold-boot dumps through the keyfind engine.
};

/** Which memory the trial extracts and scores. */
enum class TargetRam
{
    DCache, ///< L1 data RAM of core 0.
    ICache, ///< L1 instruction RAM of core 0.
    Regs,   ///< Vector register file of core 0.
    Iram,   ///< On-chip iRAM (i.MX535 only, dumped over JTAG).
    Tlb,    ///< DTLB entry RAM of core 0.
    Btb,    ///< BTB entry RAM of core 0.
};

const char *toString(AttackKind kind);
const char *toString(TargetRam target);
AttackKind attackFromString(const std::string &name);
TargetRam targetFromString(const std::string &name);

/** One fully-specified trial: a point of the sweep grid. */
struct TrialSpec
{
    uint64_t index = 0; ///< Position in the grid's enumeration order.
    std::string board = "pi4";
    TargetRam target = TargetRam::DCache;
    AttackKind attack = AttackKind::VoltBoot;
    double temp_c = 25.0;
    double off_ms = 500.0;
    double current_a = 3.0;        ///< Probe current limit (Volt Boot).
    double impedance_mohm = 50.0;  ///< Probe source impedance.
    bool plant_key = false;        ///< Plant + scan an AES-128 schedule.
    uint64_t seed_index = 0;       ///< Chip-seed axis value.

    /** Glitch pulse knobs (Glitch trials only; 0 = no pulse). */
    double glitch_off_ns = 0.0;   ///< Offset from victim entry.
    double glitch_width_ns = 0.0; ///< Pulse duration.
    double glitch_depth_v = 0.0;  ///< Excursion below nominal.

    /** Static-undervolt knobs (StaticExtract trials; 0 = no ramp). */
    double undervolt_depth_v = 0.0; ///< Static sag below nominal.
    double hold_ns = 0.0;           ///< Hold time at the floor.
    double readout_rate = 0.0;      ///< Frozen readout B/us (0 = inf).

    /** CPA knob (VoltageCoupling trials; 0 = full block window). */
    double cpa_window_ns = 0.0;

    /** Key-recovery knobs (KeyRecovery trials only). */
    uint64_t dump_count = 1; ///< Power-cycle dumps fused per trial.
    bool use_priors = false; ///< Guide correction by DRV decay priors.
};

/**
 * The cartesian product of per-axis value lists.
 *
 * Enumeration order is fixed and documented: the board axis varies
 * slowest and the chip-seed index fastest, with the axes in between in
 * declaration order below. Trial indices are therefore stable
 * identifiers for a given grid spec, independent of job count or
 * scheduling.
 */
class SweepGrid
{
  public:
    std::vector<std::string> boards{"pi4"};
    std::vector<TargetRam> targets{TargetRam::DCache};
    std::vector<AttackKind> attacks{AttackKind::VoltBoot};
    std::vector<double> temps_c{25.0};
    std::vector<double> offs_ms{500.0};
    std::vector<double> currents_a{3.0};
    std::vector<double> impedances_mohm{50.0};
    std::vector<bool> plant_key{false};
    /** Chip-seed indices 0..seed_count-1 (the replication axis). */
    uint64_t seed_count = 1;

    /** Glitch pulse axes; a single 0 keeps glitch-free grids'
     * enumeration (and trial indices) untouched. Vary faster than
     * impedance-mohm and slower than the key axis. */
    std::vector<double> glitch_offs_ns{0.0};
    std::vector<double> glitch_widths_ns{0.0};
    std::vector<double> glitch_depths_v{0.0};

    /** Static-undervolt and CPA axes; single-element defaults keep
     * existing grids' trial indices untouched. Vary faster than the
     * glitch axes and slower than the key axis. */
    std::vector<double> undervolt_depths_v{0.0};
    std::vector<double> holds_ns{0.0};
    std::vector<double> readout_rates{0.0};
    std::vector<double> cpa_windows_ns{0.0};

    /** Key-recovery axes; single-element defaults keep existing grids'
     * trial indices untouched. Vary faster than cpa-window-ns and
     * slower than the key axis. */
    std::vector<uint64_t> dump_counts{1};
    std::vector<bool> use_priors{false};

    /** Number of trials in the grid (product of axis sizes). */
    uint64_t size() const;

    /** Decode trial @p index into its parameter point. */
    TrialSpec at(uint64_t index) const;

    /**
     * Parse a `key=v1,v2;...` spec (';' or newline separated, '#'
     * comments allowed). Unknown keys, empty value lists and malformed
     * numbers are fatal(). Keys: board, target, attack, temp, off-ms,
     * current, impedance-mohm, glitch-off-ns, glitch-width-ns,
     * glitch-depth, undervolt-depth, hold-ns, readout-rate,
     * cpa-window-ns, dumps, prior, key, seeds.
     */
    static SweepGrid parse(const std::string &spec);

    /** Canonical re-rendering of the spec (stable across parses). */
    std::string describe() const;

    /** Human-readable table of every axis: spec key, unit, default and
     * accepted values (the `sweep --list-axes` text). */
    static std::string axesHelp();

    /** Lazy forward iterator over TrialSpecs. */
    class const_iterator
    {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = TrialSpec;
        using difference_type = std::ptrdiff_t;

        const_iterator(const SweepGrid *grid, uint64_t index)
            : grid_(grid), index_(index)
        {}

        TrialSpec operator*() const { return grid_->at(index_); }
        const_iterator &operator++() { ++index_; return *this; }
        const_iterator operator++(int)
        { const_iterator old = *this; ++index_; return old; }
        bool operator==(const const_iterator &o) const
        { return index_ == o.index_; }
        bool operator!=(const const_iterator &o) const
        { return index_ != o.index_; }

      private:
        const SweepGrid *grid_;
        uint64_t index_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size()}; }
};

} // namespace voltboot

#endif // VOLTBOOT_CAMPAIGN_SWEEP_GRID_HH

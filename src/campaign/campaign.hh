/**
 * @file
 * The parallel campaign engine.
 *
 * Campaign::run() executes every trial of a SweepGrid on a fixed-size
 * pool of std::threads. The work queue is an atomic cursor handing out
 * contiguous index chunks; each worker writes its finished TrialRecords
 * into a pre-sized result vector at the trial index, so the output
 * layout — and, because every trial's randomness derives from
 * (campaign seed, trial index), the output *bytes* — are identical
 * whether the campaign ran on one thread or sixteen.
 *
 * Robustness: a trial that throws is captured as TrialStatus::Error and
 * the sweep continues; requestAbort() (or a trial overrunning
 * trial_timeout with abort_on_timeout set) marks all not-yet-started
 * trials Skipped and lets in-flight trials finish. Trials are
 * cooperative — a running trial cannot be preempted — so the timeout is
 * detected at trial completion, not mid-trial.
 *
 * Observability: with CampaignConfig::trace_dir set, every trial runs
 * under its own thread-local trace scope and its events are written to
 * `<trace_dir>/trial_NNNNNN.jsonl`. Because trace timestamps are
 * simulation time and each trial is hermetic, those files are
 * byte-identical for any worker count — the determinism contract
 * extends to traces. The engine also maintains a trace::Metrics
 * registry (queue grabs, chunk size, per-trial wall-clock histogram)
 * whose snapshot lands in CampaignResult::metrics; that snapshot is
 * wall-clock derived and therefore only ever rendered in the opt-in
 * timing section of the JSON output. See docs/TRACING.md.
 */

#ifndef VOLTBOOT_CAMPAIGN_CAMPAIGN_HH
#define VOLTBOOT_CAMPAIGN_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <functional>

#include "campaign/campaign_result.hh"
#include "campaign/sweep_grid.hh"
#include "campaign/trial_runner.hh"
#include "sim/units.hh"

namespace voltboot
{

/** Periodic progress report (delivered from worker threads, one at a
 * time under an internal mutex). */
struct CampaignProgress
{
    uint64_t done = 0;
    uint64_t total = 0;
    double elapsed_s = 0.0;
    double trials_per_sec = 0.0;
    double eta_s = 0.0;
};

/** Engine knobs. */
struct CampaignConfig
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Campaign seed: with the grid, fully determines every result. */
    uint64_t seed = 0x5eed;
    /** Trials handed to a worker per queue grab; 0 = auto. */
    uint64_t chunk = 0;
    /** Per-trial wall-clock budget; 0 = unlimited. Overruns are flagged
     * in the record's timing fields (never in canonical output). */
    Seconds trial_timeout{0.0};
    /** Abort the campaign when a trial overruns trial_timeout. */
    bool abort_on_timeout = false;
    /** Progress callback; invoked about every progress_every trials,
     * and additionally whenever progress_interval wall-clock time has
     * passed since the last report (0 disables the periodic path).
     * Long sweeps of slow trials thus still report regularly even when
     * far fewer than progress_every trials finish per interval. */
    std::function<void(const CampaignProgress &)> progress;
    uint64_t progress_every = 32;
    Seconds progress_interval{0.0};
    /**
     * Trial function; defaults to runTrial(). Replaceable for tests
     * (e.g. fault injection) and future remote/sharded executors. May
     * throw: the engine records the throw as TrialStatus::Error.
     */
    std::function<TrialRecord(const TrialSpec &, uint64_t seed)> runner;
    /**
     * When non-empty, write one deterministic JSONL trace per trial
     * into this directory (created if absent) as trial_NNNNNN.jsonl,
     * NNNNNN being the zero-padded trial index.
     */
    std::string trace_dir;
};

/** A runnable sweep: grid + engine configuration. */
class Campaign
{
  public:
    explicit Campaign(SweepGrid grid, CampaignConfig config = {});

    /** Execute every trial; blocks until the sweep completes. */
    CampaignResult run();

    /** Ask the engine to stop handing out new trials (thread-safe;
     * callable from a progress callback or another thread). */
    void requestAbort() { abort_.store(true, std::memory_order_relaxed); }
    bool aborted() const
    { return abort_.load(std::memory_order_relaxed); }

    const SweepGrid &grid() const { return grid_; }
    const CampaignConfig &config() const { return config_; }

  private:
    SweepGrid grid_;
    CampaignConfig config_;
    std::atomic<bool> abort_{false};
};

} // namespace voltboot

#endif // VOLTBOOT_CAMPAIGN_CAMPAIGN_HH

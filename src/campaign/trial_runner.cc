#include "campaign/trial_runner.hh"

#include <vector>

#include "core/attack.hh"
#include "crypto/key_finder.hh"
#include "crypto/onchip_crypto.hh"
#include "keyfind/engine.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "report/trace_reader.hh"
#include "sidechannel/coupling.hh"
#include "sidechannel/static_extract.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"
#include "sram/memory_image.hh"
#include "trace/trace.hh"

namespace voltboot
{

SocConfig
socConfigFor(const std::string &board)
{
    if (board == "pi3")
        return SocConfig::bcm2837();
    if (board == "pi4")
        return SocConfig::bcm2711();
    if (board == "imx53")
        return SocConfig::imx535();
    fatal("unknown board '", board, "' (pi3|pi4|imx53)");
}

uint64_t
deriveChipSeed(uint64_t campaign_seed, uint64_t seed_index)
{
    // Domain-separated from the trial streams so that adding axes never
    // changes which die a given (campaign seed, seed index) names.
    return hashCombine(hashCombine(campaign_seed, 0xc41bULL), seed_index);
}

uint64_t
deriveTrialSeed(uint64_t campaign_seed, uint64_t trial_index)
{
    return hashCombine(campaign_seed, trial_index);
}

namespace
{

/** Victim staging result: what the attacker should recover. */
struct Victim
{
    MemoryImage truth;
    std::vector<uint8_t> planted_key; ///< Empty unless a key was staged.
};

/** Stage the standard victim for @p spec and capture ground truth. */
Victim
stageVictim(Soc &soc, const TrialSpec &spec, Rng &rng)
{
    Victim v;
    BareMetalRunner runner(soc);
    switch (spec.target) {
      case TargetRam::DCache:
        if (spec.plant_key) {
            // CaSE-style victim: an AES-128 schedule locked into L1D.
            Cache &l1d = soc.memory().l1d(0);
            l1d.invalidateAll();
            l1d.setEnabled(true);
            v.planted_key.resize(16);
            for (auto &b : v.planted_key)
                b = static_cast<uint8_t>(rng.next());
            const std::vector<uint8_t> binary(256, 0x90);
            CaseExecution cas(l1d, soc.config().dram_base + 0x40000,
                              binary, v.planted_key);
            v.truth = l1d.dumpAll();
        } else {
            // Fill the whole data RAM so every bit of the dump scores
            // against victim data (untouched lines would trivially
            // match their own power-up fingerprint and mask decay).
            runner.runOn(0, workloads::patternStore(
                                soc.config().dram_base + 0x40000,
                                soc.config().l1d.size_bytes, 0xAA));
            v.truth = soc.memory().l1d(0).dumpAll();
        }
        break;
      case TargetRam::ICache:
        runner.runOn(0, workloads::nopFiller(
                            soc.config().l1i.size_bytes / 4));
        v.truth = soc.memory().l1i(0).dumpAll();
        break;
      case TargetRam::Regs: {
        runner.runOn(0, workloads::vectorFill(0xFF, 0xAA));
        // v0..v31, 16 bytes each: even registers 0xFF, odd 0xAA.
        std::vector<uint8_t> truth(512);
        for (size_t reg = 0; reg < 32; ++reg)
            for (size_t b = 0; b < 16; ++b)
                truth[reg * 16 + b] = (reg % 2 == 0) ? 0xFF : 0xAA;
        v.truth = MemoryImage(std::move(truth));
        break;
      }
      case TargetRam::Iram: {
        if (!soc.iramArray())
            fatal("board '", spec.board, "' has no iRAM (use imx53)");
        std::vector<uint8_t> img(soc.config().iram_bytes);
        for (size_t i = 0; i < img.size(); ++i)
            img[i] = static_cast<uint8_t>(i * 7 + 3);
        soc.jtag().writeIram(soc.config().iram_base, img);
        v.truth = MemoryImage(std::move(img));
        break;
      }
      case TargetRam::Tlb:
        runner.runOn(0, workloads::patternStore(
                            soc.config().dram_base + 0x40000, 8192,
                            0xAA));
        v.truth = soc.dtlb(0).dumpAll();
        break;
      case TargetRam::Btb:
        runner.runOn(0, workloads::patternStore(
                            soc.config().dram_base + 0x40000, 8192,
                            0xAA));
        v.truth = soc.btb(0).dumpAll();
        break;
    }
    return v;
}

MemoryImage
dumpTarget(VoltBootAttack &attack, TargetRam target)
{
    switch (target) {
      case TargetRam::DCache: return attack.dumpL1(0, L1Ram::DData);
      case TargetRam::ICache: return attack.dumpL1(0, L1Ram::IData);
      case TargetRam::Regs: return attack.dumpVectorRegisters(0);
      case TargetRam::Iram: return attack.dumpIram();
      case TargetRam::Tlb: return attack.dumpDtlb(0);
      case TargetRam::Btb: return attack.dumpBtb(0);
    }
    panic("bad TargetRam");
}

void
score(TrialRecord &rec, const MemoryImage &dump, const Victim &victim)
{
    rec.dump_bytes = dump.sizeBytes();
    rec.bit_error_rate =
        MemoryImage::fractionalHamming(dump, victim.truth);
    rec.accuracy = 1.0 - rec.bit_error_rate;
    if (!victim.planted_key.empty()) {
        rec.key_planted = true;
        const KeyFinder finder;
        if (const auto hit = finder.best(dump)) {
            rec.key_found = true;
            rec.key_exact = hit->key == victim.planted_key;
        }
    }
    rec.status = TrialStatus::Ok;
}

} // namespace

TrialRecord
runTrial(const TrialSpec &spec, uint64_t campaign_seed)
{
    TrialRecord rec;
    rec.spec = spec;
    rec.chip_seed = deriveChipSeed(campaign_seed, spec.seed_index);
    Rng rng(deriveTrialSeed(campaign_seed, spec.index));

    if (spec.attack == AttackKind::VoltageCoupling) {
        // Pure trace analysis: the victim's rail capture and the CPA
        // ranking never need a Soc, only the board's core-rail spec.
        const SocConfig ccfg = socConfigFor(spec.board);
        sidechannel::CouplingVictimConfig vcfg;
        vcfg.domain = ccfg.core_domain.name;
        vcfg.nominal = ccfg.core_domain.nominal;
        // Domain-separated streams: the key is chip identity (stable
        // across trial indices for one seed_index), the noise is
        // per-trial.
        vcfg.seed = hashCombine(deriveTrialSeed(campaign_seed,
                                                spec.index),
                                0xc0abULL);
        const uint64_t kseed = hashCombine(rec.chip_seed, 0x5ecaULL);
        for (size_t i = 0; i < 16; ++i)
            vcfg.key[i] = static_cast<uint8_t>(hashCombine(kseed, i));

        trace::MemoryTraceSink sink;
        {
            trace::Scope capture(sink);
            sidechannel::runCoupledAesVictim(vcfg);
        }
        // The attacker only ever sees the wire format: round-trip the
        // capture through JSONL and the report reader before analysis.
        const std::vector<trace::TraceEvent> events = report::readTrace(
            trace::toJsonl(sink.events()), "coupling-capture");
        sidechannel::CpaOptions opts;
        opts.domain = vcfg.domain;
        opts.window_ns = spec.cpa_window_ns;
        const sidechannel::CpaResult cpa =
            sidechannel::analyzeCoupling(events, opts);

        const unsigned correct =
            sidechannel::countCorrectBytes(cpa, vcfg.key);
        rec.cpa_recovered = cpa.recovered;
        rec.accuracy = static_cast<double>(correct) / 16.0;
        rec.bit_error_rate = 1.0 - rec.accuracy;
        rec.key_planted = true;
        rec.key_found = cpa.recovered > 0;
        rec.key_exact = correct == 16;
        rec.status = TrialStatus::Ok;

        // Replay the capture into the per-trial trace, if one is on.
        if (trace::enabled()) {
            Seconds last = trace::simTime();
            for (const trace::TraceEvent &ev : sink.events()) {
                if (ev.ts.seconds() > last.seconds())
                    last = ev.ts;
                trace::emit(ev);
            }
            trace::setSimTime(last);
        }
        return rec;
    }

    SocConfig cfg = socConfigFor(spec.board);
    cfg.chip_seed = rec.chip_seed;
    Soc soc(cfg);
    soc.setAmbient(Temperature::celsius(spec.temp_c));
    soc.powerOn();

    if (spec.attack == AttackKind::Glitch) {
        // No probe, no power cycle: GlitchAttack stages its own
        // signature-check victim, so the retention victim is skipped.
        GlitchConfig gcfg;
        gcfg.pulse.offset = Seconds::nanoseconds(spec.glitch_off_ns);
        gcfg.pulse.width = Seconds::nanoseconds(spec.glitch_width_ns);
        gcfg.pulse.depth = Volt(spec.glitch_depth_v);
        // Domain-separated from the victim-staging rng stream.
        gcfg.seed = hashCombine(deriveTrialSeed(campaign_seed,
                                                spec.index),
                                0x617cULL);
        GlitchAttack attack(soc, gcfg);
        const GlitchOutcome out = attack.execute();
        rec.glitch_faults = out.faults_injected;
        for (size_t i = 0; i < out.effects.size(); ++i) {
            if (i)
                rec.glitch_effect += ',';
            rec.glitch_effect += out.effects[i];
        }
        rec.glitch_bypassed = out.bypassed;
        rec.accuracy = out.bypassed ? 1.0 : 0.0;
        rec.bit_error_rate = 1.0 - rec.accuracy;
        if (out.crashed)
            rec.detail = out.crash_reason;
        rec.status = TrialStatus::Ok;
        return rec;
    }

    if (spec.attack == AttackKind::KeyRecovery) {
        // Multi-dump cold-boot recovery through the keyfind engine:
        // the same CaSE key schedule is restaged before every power
        // cycle (the device's storage key is fixed across boots), so
        // each dump is an independent decay observation of one secret
        // and fusion has real evidence to vote over.
        if (spec.target != TargetRam::DCache)
            fatal("key-recovery supports dcache only, not ",
                  toString(spec.target));
        std::vector<uint8_t> key(16);
        for (auto &b : key)
            b = static_cast<uint8_t>(rng.next());
        const std::vector<uint8_t> binary(256, 0x90);
        const auto stage = [&] {
            Cache &l1d = soc.memory().l1d(0);
            l1d.invalidateAll();
            l1d.setEnabled(true);
            CaseExecution cas(l1d, soc.config().dram_base + 0x40000,
                              binary, key);
            return l1d.dumpAll();
        };
        const MemoryImage truth = stage();
        std::vector<MemoryImage> dumps;
        dumps.reserve(spec.dump_count);
        for (uint64_t d = 0; d < spec.dump_count; ++d) {
            if (d > 0)
                stage();
            ColdBootAttack attack(soc,
                                  Temperature::celsius(spec.temp_c),
                                  Seconds::milliseconds(spec.off_ms));
            if (!attack.powerCycleAndBoot()) {
                rec.status = TrialStatus::AttackFailed;
                rec.detail = "boot failed (authenticated boot?)";
                return rec;
            }
            dumps.push_back(attack.dumpL1(0, L1Ram::DData));
        }
        rec.booted = true;

        std::vector<float> priors;
        if (spec.use_priors)
            priors = keyfind::decayFlipPriors(
                soc.l1dData(0).model(), dumps.front().sizeBits(),
                Seconds::milliseconds(spec.off_ms),
                Temperature::celsius(spec.temp_c));

        const keyfind::FusedDump fused =
            keyfind::fuseDumps(dumps, priors);
        rec.dump_bytes = fused.image.sizeBytes();
        rec.bit_error_rate =
            MemoryImage::fractionalHamming(fused.image, truth);
        rec.accuracy = 1.0 - rec.bit_error_rate;
        rec.kr_disagreeing_bits = fused.disagreeing_bits;

        keyfind::KeyRecoveryConfig kcfg;
        kcfg.jobs = 1; // Campaign workers parallelise over trials.
        kcfg.use_priors = spec.use_priors;
        const keyfind::KeyRecoveryEngine engine(kcfg);
        const keyfind::RecoveryReport report =
            engine.recover(dumps, priors);
        rec.kr_scan_hits = report.scan_hits.size();
        rec.kr_corrected_hits = report.corrected_hits.size();
        rec.kr_correction_iterations = report.correction.iterations;
        if (!report.scan_hits.empty())
            rec.kr_bit_errors = report.scan_hits.front().bit_errors;
        else if (!report.corrected_hits.empty())
            rec.kr_bit_errors = report.corrected_hits.front()
                                    .corrected.residual_bit_errors;
        if (!report.corrected_hits.empty())
            rec.kr_key_bits_flipped =
                report.corrected_hits.front().corrected.key_bits_flipped;
        rec.key_planted = true;
        if (const auto best = report.bestKey()) {
            rec.key_found = true;
            rec.key_exact = *best == key;
        }
        rec.status = TrialStatus::Ok;
        return rec;
    }

    const Victim victim = stageVictim(soc, spec, rng);

    if (spec.attack == AttackKind::StaticExtract) {
        // No probe, no power cycle: the rail sags in place, the clock
        // freezes, and the frozen arrays are read out slowly.
        sidechannel::StaticExtractConfig secfg;
        switch (spec.target) {
          case TargetRam::DCache:
            secfg.target = sidechannel::ExtractTarget::DCache;
            break;
          case TargetRam::Regs:
            secfg.target = sidechannel::ExtractTarget::Regs;
            break;
          case TargetRam::Iram:
            secfg.target = sidechannel::ExtractTarget::Iram;
            break;
          default:
            fatal("static-extract supports dcache|regs|iram, not ",
                  toString(spec.target));
        }
        secfg.depth = Volt(spec.undervolt_depth_v);
        secfg.hold = Seconds::nanoseconds(spec.hold_ns);
        secfg.readout_rate = spec.readout_rate;
        secfg.seed = hashCombine(deriveTrialSeed(campaign_seed,
                                                 spec.index),
                                 0x5eecULL);
        sidechannel::StaticExtractAttack attack(soc, secfg);
        const sidechannel::StaticExtractOutcome out = attack.execute();
        rec.se_frozen = out.frozen;
        rec.se_zeroized = out.zeroized;
        rec.se_read_fraction = out.read_fraction;
        score(rec, out.dump, victim);
        return rec;
    }

    if (spec.attack == AttackKind::VoltBoot) {
        AttackConfig acfg;
        acfg.probe_max_current = Amp(spec.current_a);
        acfg.probe_impedance = Ohm::milliohms(spec.impedance_mohm);
        acfg.off_time = Seconds::milliseconds(spec.off_ms);
        VoltBootAttack attack(soc, acfg);
        const AttackOutcome out = attack.execute();
        rec.probe_attached = out.probe_attached;
        rec.booted = out.rebooted_into_attacker_code;
        if (!rec.booted) {
            rec.status = TrialStatus::AttackFailed;
            rec.detail = out.failure_reason;
            return rec;
        }
        score(rec, dumpTarget(attack, spec.target), victim);
    } else {
        if (spec.target != TargetRam::DCache &&
            spec.target != TargetRam::ICache)
            fatal("coldboot extraction supports dcache|icache, not ",
                  toString(spec.target));
        ColdBootAttack attack(soc, Temperature::celsius(spec.temp_c),
                              Seconds::milliseconds(spec.off_ms));
        if (!attack.powerCycleAndBoot()) {
            rec.status = TrialStatus::AttackFailed;
            rec.detail = "boot failed (authenticated boot?)";
            return rec;
        }
        rec.booted = true;
        const L1Ram ram = spec.target == TargetRam::DCache
                              ? L1Ram::DData
                              : L1Ram::IData;
        score(rec, attack.dumpL1(0, ram), victim);
    }
    return rec;
}

} // namespace voltboot

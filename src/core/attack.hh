/**
 * @file
 * The Volt Boot attack and its cold-boot baseline.
 *
 * VoltBootAttack walks the four steps of Section 6.1:
 *   1. identify the target power domain and its board test pad,
 *   2. attach a matched external voltage probe there,
 *   3. power-cycle the board and boot attacker software (USB media on
 *      the Raspberry Pis; the i.MX535 boots from internal ROM and is
 *      dumped over JTAG),
 *   4. extract and analyse the retained SRAM.
 *
 * Cache extraction runs a real vb64 extraction program on the victim
 * cores: it leaves the caches disabled, loops RAMINDEX reads with the
 * required dsb sy; isb barrier pairs, and stores the words to DRAM,
 * exactly mirroring the paper's CP15 procedure.
 *
 * ColdBootAttack is the control experiment (Section 3): same steps but
 * no probe — only low ambient temperature and the cells' intrinsic
 * retention stand between the data and oblivion.
 *
 * Observability: when this thread has a trace sink installed
 * (trace::Scope), every step runs under a "core"-category span —
 * attack.steps12_probe, attack.step3_power_cycle, attack.step4_extract,
 * coldboot.power_cycle — stamped in simulation time with the step's
 * parameters and outcome as args, interleaved with the power/sram/soc
 * events the step provokes. Each step's *wall-clock* cost is observed
 * into the thread's trace::Metrics registry (core.wall_s.<step>), never
 * into the deterministic trace. Schema: docs/TRACING.md.
 */

#ifndef VOLTBOOT_CORE_ATTACK_HH
#define VOLTBOOT_CORE_ATTACK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.hh"
#include "fault/fault_model.hh"
#include "fault/glitch.hh"
#include "power/transient.hh"
#include "soc/soc.hh"
#include "sram/memory_image.hh"

namespace voltboot
{

/** Attacker equipment and timing. */
struct AttackConfig
{
    /** Bench supply parameters; voltage is matched to the pad at attach
     * time, so only current capability and impedance matter here. */
    Amp probe_max_current{3.0};
    Ohm probe_impedance{0.05};
    /** How long the board stays disconnected from main power. */
    Seconds off_time = Seconds::milliseconds(500);
    /** DRAM address the extraction program dumps into. */
    uint64_t dump_base_offset = 0x80000;
    /** Extraction program load address (DRAM offset). */
    uint64_t extractor_offset = 0x1000;
};

/** Which L1 RAM to extract. */
enum class L1Ram
{
    DData,
    IData,
    DTag,
    ITag,
};

/** Outcome of an attack run. */
struct AttackOutcome
{
    bool probe_attached = false;
    bool rebooted_into_attacker_code = false;
    std::optional<ProbeTransient> transient;
    std::string failure_reason;
};

/** Orchestrates Volt Boot against a Soc. */
class VoltBootAttack
{
  public:
    VoltBootAttack(Soc &soc, AttackConfig config = {});

    /** Steps 1-2: find the pad (from the platform database, as an
     * attacker would from PCB inspection) and attach a matched probe. */
    AttackOutcome attachProbe();

    /** Attach at an explicit pad (to demonstrate wrong-domain failures). */
    AttackOutcome attachProbeAt(const std::string &pad_label);

    /** Step 3: cut main power, wait, reboot. For pad-booted platforms
     * this boots attacker media; ROM-boot platforms (i.MX) come up by
     * themselves. Returns false if authenticated boot blocks us. */
    AttackOutcome powerCycleAndBoot();

    /** Convenience: attachProbe + powerCycleAndBoot. */
    AttackOutcome execute();

    /** @name Step 4: extraction */
    ///@{
    /** Dump one way of an L1 RAM on @p core by running the extraction
     * program there (RAMINDEX + barriers, caches disabled). */
    MemoryImage dumpL1Way(size_t core, L1Ram ram, size_t way);
    /** All ways, way-major (matches Cache::dumpAll layout). */
    MemoryImage dumpL1(size_t core, L1Ram ram);
    /** Dump the vector register file of @p core via a vread/str program. */
    MemoryImage dumpVectorRegisters(size_t core);
    /** Dump the iRAM over JTAG (i.MX path). */
    MemoryImage dumpIram();
    /** Dump @p core's DTLB entry RAM via RAMINDEX (Section 2.1's wider
     * internal-RAM surface). */
    MemoryImage dumpDtlb(size_t core);
    /** Dump @p core's BTB entry RAM via RAMINDEX. */
    MemoryImage dumpBtb(size_t core);
    ///@}

    /** Human-readable narration of the steps taken (Figure 5 bench). */
    const std::vector<std::string> &trace() const { return trace_; }

    /** Mark the system as already rebooted into attacker-controlled
     * execution; for reuse of the extraction machinery when the power
     * cycle happened outside this object (e.g. the cold boot control). */
    void assumeBooted() { booted_ = true; }

    const AttackConfig &config() const { return config_; }

  private:
    MemoryImage readDumpFromDram(size_t core, size_t bytes);
    void note(std::string line);

    Soc &soc_;
    AttackConfig config_;
    std::vector<std::string> trace_;
    bool booted_ = false;
};

/**
 * The Section 3 control: classic cold boot against on-chip SRAM. The
 * board is chilled to @p temperature, power is cut for @p off_time with
 * no probe anywhere, and the same extraction pipeline runs afterwards.
 */
class ColdBootAttack
{
  public:
    ColdBootAttack(Soc &soc, Temperature temperature,
                   Seconds off_time = Seconds::milliseconds(500),
                   AttackConfig config = {});

    /** Cut power, wait, reboot attacker code. */
    bool powerCycleAndBoot();

    /** Extraction identical to the Volt Boot path. */
    MemoryImage dumpL1(size_t core, L1Ram ram);
    MemoryImage dumpL1Way(size_t core, L1Ram ram, size_t way);

  private:
    Soc &soc_;
    Temperature temperature_;
    Seconds off_time_;
    VoltBootAttack extractor_; ///< Reuses the extraction machinery.
};

/** The attacker's RAMINDEX extraction program for one L1 way. */
Program buildWayExtractor(const Soc &soc, L1Ram ram, size_t way,
                          uint64_t load_address, uint64_t dump_base);

/**
 * Glitcher bench settings: the crowbar pulse plus the fault-model
 * calibration and the victim layout. A default-constructed config has
 * a degenerate (absent) pulse: running it is byte-identical to running
 * the victim with no glitch hardware attached at all.
 */
struct GlitchConfig
{
    /** The pulse: offset/width in victim sim time, depth in volts. */
    fault::GlitchParams pulse;
    /** Core clock period: one instruction boundary per cycle. */
    Seconds cycle = Seconds::nanoseconds(1.0);
    /** Crowbar MOSFET on-impedance (sets the pulse edge slew). */
    Ohm crowbar_impedance = Ohm::milliohms(20.0);
    /** Timing margin: boundaries can fault below this × nominal. */
    double margin_fraction = 0.9;
    /** Crash point: every boundary faults at this × nominal. */
    double crash_fraction = 0.5;
    /** Fault-stream seed (counter-hashed; no shared RNG state). */
    uint64_t seed = 1;
    /** Step budget for the victim run (hang cutoff). */
    uint64_t max_steps = 100000;

    /** Victim layout, as DRAM-base offsets. */
    uint64_t load_offset = 0x1000;     ///< Signature-check program.
    uint64_t firmware_offset = 0x8000; ///< The image being verified.
    uint64_t result_offset = 0x400;    ///< The verdict word.
    size_t fw_words = 16;              ///< Firmware length in words.
};

/** Outcome of one glitched signature-check run. */
struct GlitchOutcome
{
    /** The win condition: the victim reached the `pass` path and
     * recorded a valid verdict for an image that never verifies. */
    bool bypassed = false;
    /** The victim halted cleanly (pass or fail verdict recorded). */
    bool completed = false;
    /** The core faulted, ran wild, or hung past max_steps. */
    bool crashed = false;
    std::string crash_reason; ///< Fault name / "wild_execution" / "hang".
    uint64_t steps = 0;
    uint64_t faults_injected = 0;
    /** Effect names of each injected fault, in boundary order. */
    std::vector<std::string> effects;
};

/**
 * Voltage-glitch fault injection against a secure-boot signature
 * check, the third attack family: no probe and no power cycle — the
 * board stays up — but a crowbar pulse on the core rail while the
 * victim verifies a (deliberately tampered) firmware image. Success is
 * reaching the `pass` label without a valid signature.
 *
 * Observability mirrors VoltBootAttack: the run executes under a
 * "core" span `attack.glitch` carrying the pulse parameters and
 * outcome; the pulse itself lands in the trace as a "power" span
 * `glitch.pulse` over `voltage.<domain>` Counter samples, which is
 * what the report layer's `glitch_bounds` invariant checks.
 */
class GlitchAttack
{
  public:
    GlitchAttack(Soc &soc, GlitchConfig config = {});

    /** Stage the victim, arm the glitcher, run, read the verdict. */
    GlitchOutcome execute();

    /** The exact victim source of the last execute() (ground truth). */
    const std::string &victimSource() const { return victim_source_; }

    const GlitchConfig &config() const { return config_; }

  private:
    Soc &soc_;
    GlitchConfig config_;
    std::string victim_source_;
};

} // namespace voltboot

#endif // VOLTBOOT_CORE_ATTACK_HH

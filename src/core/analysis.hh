/**
 * @file
 * Post-attack analysis: the metrics the paper reports, plus a small text
 * table formatter used by the bench harness to print paper-style tables.
 */

#ifndef VOLTBOOT_CORE_ANALYSIS_HH
#define VOLTBOOT_CORE_ANALYSIS_HH

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "sram/memory_image.hh"

namespace voltboot
{

/** Comparison of a post-attack dump against ground truth. */
struct RetentionReport
{
    size_t total_bits = 0;
    size_t error_bits = 0;

    /** Fraction of bits that flipped (the paper's "error"). */
    double errorFraction() const
    {
        return total_bits ? static_cast<double>(error_bits) / total_bits
                          : 0.0;
    }
    /** Retention accuracy = 1 - error. */
    double accuracy() const { return 1.0 - errorFraction(); }
};

/** Bit-exact comparison of @p dump against @p truth. */
RetentionReport compareImages(const MemoryImage &dump,
                              const MemoryImage &truth);

/**
 * Table 4 accounting: how many ground-truth 8-byte elements appear in
 * each way dump and in their union.
 */
struct ElementRecovery
{
    size_t total = 0;
    std::vector<size_t> per_way; ///< Found in way i.
    size_t in_union = 0;         ///< Found in at least one way.

    double
    fractionRecovered() const
    {
        return total ? static_cast<double>(in_union) / total : 0.0;
    }
};

/** Count recovered elements across a set of per-way dumps. */
ElementRecovery recoverElements(std::span<const MemoryImage> way_dumps,
                                std::span<const uint64_t> elements);

/**
 * One cache line reconstructed from a RAMINDEX tag-RAM dump — the
 * forensic step after extraction: the tag RAM tells the attacker WHICH
 * physical addresses the victim had cached (and which lines were dirty,
 * locked, or secure), so the data-RAM dump can be mapped back onto the
 * victim's address space.
 */
struct CachedLineInfo
{
    size_t way = 0;
    size_t set = 0;
    uint64_t phys_addr = 0; ///< Base address of the cached line.
    bool valid = false;
    bool dirty = false;
    bool locked = false;
    bool secure = false;
};

/**
 * Decode a tag-RAM dump (way-major, 8 bytes per entry, as produced by
 * VoltBootAttack::dumpL1 with L1Ram::DTag/ITag) against @p geometry.
 * Only entries with the valid flag set are returned; post-power-cycle
 * tag RAM that was invalidated still decodes (the attack's point), so
 * pass @p include_invalid to see everything.
 */
std::vector<CachedLineInfo> reconstructTagRam(const MemoryImage &tag_dump,
                                              const CacheGeometry &geometry,
                                              bool include_invalid = false);

/**
 * Join a tag dump with the matching data dump: returns the line content
 * for @p line (as located by reconstructTagRam) out of @p data_dump
 * (way-major layout from dumpL1).
 */
MemoryImage lineContent(const CachedLineInfo &line,
                        const MemoryImage &data_dump,
                        const CacheGeometry &geometry);

/**
 * Minimal fixed-width text table for paper-style bench output.
 * Columns auto-size; markdown-ish separators.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

    /** Format helpers. */
    static std::string pct(double fraction, int decimals = 2);
    static std::string num(double value, int decimals = 1);
    static std::string hex(uint64_t value);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace voltboot

#endif // VOLTBOOT_CORE_ANALYSIS_HH

#include "core/countermeasures.hh"

#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "sim/logging.hh"

namespace voltboot
{

const char *
toString(Countermeasure c)
{
    switch (c) {
      case Countermeasure::None:
        return "none";
      case Countermeasure::PurgeOnShutdown:
        return "purge-on-shutdown";
      case Countermeasure::BootSramReset:
        return "boot-SRAM-reset";
      case Countermeasure::TrustZone:
        return "TrustZone-enforced";
      case Countermeasure::AuthenticatedBoot:
        return "authenticated-boot";
      case Countermeasure::EliminateDomainSeparation:
        return "merged-power-domains";
    }
    return "?";
}

SocConfig
applyCountermeasure(const SocConfig &base, Countermeasure defence)
{
    SocConfig c = base;
    switch (defence) {
      case Countermeasure::None:
      case Countermeasure::PurgeOnShutdown:
        break; // a software policy, not a hardware config change
      case Countermeasure::BootSramReset:
        c.boot_sram_reset = true;
        break;
      case Countermeasure::TrustZone:
        c.trustzone_enforced = true;
        break;
      case Countermeasure::AuthenticatedBoot:
        c.authenticated_boot = true;
        break;
      case Countermeasure::EliminateDomainSeparation:
        // One merged domain: the board no longer exposes a pad that
        // reaches only the SRAM rail — every pad is the whole system.
        c.pads.clear();
        c.pads.push_back({"TP1", c.core_domain.name});
        c.attack_pad = ""; // nothing separately holdable
        break;
    }
    return c;
}

CountermeasureResult
evaluateCountermeasure(const SocConfig &base, Countermeasure defence,
                       bool orderly_shutdown)
{
    CountermeasureResult result;
    result.defence = defence;
    result.attack_succeeded = false;
    result.recovered_fraction = 0.0;

    const SocConfig cfg = applyCountermeasure(base, defence);
    Soc soc(cfg);
    soc.powerOn();

    // Victim: bare-metal pattern fill of the d-cache, with the victim's
    // secret being the 0xA5 pattern block (stands in for key material;
    // the victim runs from cache, dirty lines never reach DRAM).
    BareMetalRunner runner(soc);
    const uint64_t victim_base = cfg.dram_base + 0x40000;
    const size_t secret_bytes = 4096;
    runner.runOn(0, workloads::patternStore(victim_base, secret_bytes,
                                            0xA5));
    const MemoryImage truth(
        workloads::patternStoreGroundTruth(secret_bytes, 0xA5));

    if (orderly_shutdown && defence == Countermeasure::PurgeOnShutdown) {
        // The OS gets to run its shutdown hook: DC ZVA over the secret.
        Cache &l1d = soc.memory().l1d(0);
        for (uint64_t a = victim_base; a < victim_base + secret_bytes;
             a += 64)
            l1d.zeroLine(a);
    }
    // With an abrupt disconnect the purge hook never executes: cutting
    // power stops all software instantly, which is the attack procedure.

    if (defence == Countermeasure::EliminateDomainSeparation) {
        result.notes = "no SRAM-only rail exposed; nothing to probe";
        return result;
    }

    VoltBootAttack attack(soc);
    AttackOutcome attach = attack.attachProbe();
    if (!attach.probe_attached) {
        result.notes = attach.failure_reason;
        return result;
    }
    AttackOutcome boot = attack.powerCycleAndBoot();
    if (!boot.rebooted_into_attacker_code) {
        result.notes = boot.failure_reason;
        return result;
    }

    // Extraction: dump the whole d-cache and scan for the secret.
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    size_t best_match_bits = 0;
    const size_t window = secret_bytes;
    for (size_t off = 0; off + window <= dump.sizeBytes(); off += 64) {
        const MemoryImage slice = dump.slice(off, window);
        const size_t hd = MemoryImage::hammingDistance(slice, truth);
        const size_t match = truth.sizeBits() - hd;
        best_match_bits = std::max(best_match_bits, match);
    }
    result.recovered_fraction =
        static_cast<double>(best_match_bits) / truth.sizeBits();
    // "Success" = essentially perfect recovery of the secret block.
    result.attack_succeeded = result.recovered_fraction > 0.999;
    if (result.attack_succeeded)
        result.notes = "secret recovered bit-exact from L1D dump";
    else if (result.notes.empty())
        result.notes = "secret not present in the dump";
    return result;
}

std::vector<CountermeasureResult>
surveyCountermeasures(const SocConfig &base)
{
    std::vector<CountermeasureResult> rows;
    for (Countermeasure c : {
             Countermeasure::None,
             Countermeasure::PurgeOnShutdown,
             Countermeasure::BootSramReset,
             Countermeasure::TrustZone,
             Countermeasure::AuthenticatedBoot,
             Countermeasure::EliminateDomainSeparation,
         })
        rows.push_back(evaluateCountermeasure(base, c));
    return rows;
}

} // namespace voltboot

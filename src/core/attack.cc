#include "core/attack.hh"

#include <chrono>
#include <cmath>
#include <optional>
#include <sstream>

#include "isa/assembler.hh"
#include "sim/rng.hh"
#include "mem/memory_system.hh"
#include "os/workloads.hh"
#include "sim/logging.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace voltboot
{

namespace
{

/**
 * Per-attack-step observability: one simulation-time Complete event in
 * category "core" (deterministic, lands in the trace) plus a wall-clock
 * duration observed into the thread's Metrics registry (non-canonical,
 * lands only in metrics snapshots). Construction and destruction sync
 * the trace clock with the Soc's event queue so the span brackets any
 * simulated time the step consumed.
 */
class StepScope
{
  public:
    StepScope(Soc &soc, std::string name)
        : sync_(soc), soc_(soc), span_("core", name),
          metric_("core.wall_s." + name),
          t0_(std::chrono::steady_clock::now())
    {
    }

    ~StepScope()
    {
        trace::setSimTime(soc_.eventQueue().now());
        span_.end();
        if (trace::Metrics *m = trace::metricsRegistry()) {
            m->observe(metric_,
                       std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0_)
                           .count());
        }
    }

    void arg(trace::Arg a) { span_.arg(std::move(a)); }

  private:
    struct ClockSync
    {
        explicit ClockSync(Soc &soc)
        {
            trace::setSimTime(soc.eventQueue().now());
        }
    };

    ClockSync sync_; ///< Must precede span_: syncs the clock it reads.
    Soc &soc_;
    trace::Span span_;
    std::string metric_;
    std::chrono::steady_clock::time_point t0_;
};

/** Map an L1Ram selector onto (descriptor ram id, geometry). */
void
ramInfo(const Soc &soc, L1Ram ram, unsigned *ram_id, CacheGeometry *geom,
        bool *is_tag)
{
    switch (ram) {
      case L1Ram::DData:
        *ram_id = RamIndexDescriptor::kL1DData;
        *geom = soc.config().l1d;
        *is_tag = false;
        break;
      case L1Ram::DTag:
        *ram_id = RamIndexDescriptor::kL1DTag;
        *geom = soc.config().l1d;
        *is_tag = true;
        break;
      case L1Ram::IData:
        *ram_id = RamIndexDescriptor::kL1IData;
        *geom = soc.config().l1i;
        *is_tag = false;
        break;
      case L1Ram::ITag:
        *ram_id = RamIndexDescriptor::kL1ITag;
        *geom = soc.config().l1i;
        *is_tag = true;
        break;
    }
}

/** One-way RAMINDEX dump program source. */
std::string
wayExtractorSource(unsigned ram_id, size_t way, size_t sets,
                   size_t words_per_line, uint64_t dump_base)
{
    std::ostringstream os;
    os << "// extraction: RAM " << ram_id << " way " << way << "\n";
    os << workloads::loadImm64("x10", dump_base);
    os << workloads::loadImm64("x2", way);
    os << workloads::loadImm64("x3", sets);
    os << "    movz x4, #0\n"; // set
    os << "set_loop:\n";
    os << workloads::loadImm64("x5", words_per_line);
    os << "    movz x6, #0\n"; // word
    os << "word_loop:\n";
    os << "    movz x7, #" << (ram_id & 0xf) << "\n";
    os << "    lsl x7, x7, #8\n";
    os << "    orr x7, x7, x2\n";
    os << "    lsl x7, x7, #48\n";
    os << "    lsl x8, x4, #8\n";
    os << "    orr x7, x7, x8\n";
    os << "    orr x7, x7, x6\n";
    os << "    dsb sy\n";
    os << "    isb\n";
    os << "    ramindex x9, x7\n";
    os << "    str x9, [x10]\n";
    os << "    add x10, x10, #8\n";
    os << "    add x6, x6, #1\n";
    os << "    cmp x6, x5\n";
    os << "    b.lt word_loop\n";
    os << "    add x4, x4, #1\n";
    os << "    cmp x4, x3\n";
    os << "    b.lt set_loop\n";
    os << "    hlt\n";
    return os.str();
}

/**
 * Branch-free (fully unrolled) RAMINDEX dump — required when the RAM
 * being dumped is the branch predictor itself: a looping extractor would
 * train the BTB it is reading (the Section 6.1 contamination requirement
 * applied to microarchitectural RAMs).
 */
std::string
unrolledExtractorSource(unsigned ram_id, size_t sets, size_t words,
                        uint64_t dump_base)
{
    std::ostringstream os;
    os << "// branch-free extraction: RAM " << ram_id << "\n";
    os << workloads::loadImm64("x10", dump_base);
    for (size_t set = 0; set < sets; ++set) {
        for (size_t word = 0; word < words; ++word) {
            const uint64_t desc =
                (static_cast<uint64_t>(ram_id & 0xf) << 56) |
                (static_cast<uint64_t>(set & 0xffffff) << 8) |
                static_cast<uint64_t>(word & 0xff);
            os << workloads::loadImm64("x7", desc);
            os << "    dsb sy\n";
            os << "    isb\n";
            os << "    ramindex x9, x7\n";
            os << "    str x9, [x10]\n";
            os << "    add x10, x10, #8\n";
        }
    }
    os << "    hlt\n";
    return os.str();
}

/** vread/str program dumping v0..v31 (512 bytes) to @p dump_base. */
std::string
vectorExtractorSource(uint64_t dump_base)
{
    std::ostringstream os;
    os << "// extraction: vector register file\n";
    os << workloads::loadImm64("x10", dump_base);
    for (unsigned v = 0; v < 32; ++v) {
        for (unsigned h = 0; h < 2; ++h) {
            os << "    vread x9, v" << v << "[" << h << "]\n";
            os << "    str x9, [x10]\n";
            os << "    add x10, x10, #8\n";
        }
    }
    os << "    hlt\n";
    return os.str();
}

} // namespace

Program
buildWayExtractor(const Soc &soc, L1Ram ram, size_t way,
                  uint64_t load_address, uint64_t dump_base)
{
    unsigned ram_id;
    CacheGeometry geom;
    bool is_tag;
    ramInfo(soc, ram, &ram_id, &geom, &is_tag);
    const size_t words = is_tag ? 1 : geom.line_bytes / 8;
    Program p = Assembler::assemble(
        wayExtractorSource(ram_id, way, geom.sets(), words, dump_base));
    p.load_address = load_address;
    return p;
}

VoltBootAttack::VoltBootAttack(Soc &soc, AttackConfig config)
    : soc_(soc), config_(config)
{
}

void
VoltBootAttack::note(std::string line)
{
    trace_.push_back(std::move(line));
}

AttackOutcome
VoltBootAttack::attachProbe()
{
    return attachProbeAt(soc_.config().attack_pad);
}

AttackOutcome
VoltBootAttack::attachProbeAt(const std::string &pad_label)
{
    StepScope step(soc_, "attack.steps12_probe");
    step.arg({"pad", pad_label});

    AttackOutcome out;
    const TestPad *pad = soc_.board().findPad(pad_label);
    if (!pad) {
        out.failure_reason = "no such test pad: " + pad_label;
        step.arg({"attached", false});
        return out;
    }
    note("step 1: target domain " + pad->domain_name + " reachable at pad " +
         pad_label + " (nominal " +
         TextTable::num(pad->nominal.volts(), 2) + " V)");

    // Step 2: measure the rail, set the supply to match, attach.
    VoltageProbe probe;
    probe.voltage = pad->nominal;
    probe.max_current = config_.probe_max_current;
    probe.source_impedance = config_.probe_impedance;
    soc_.attachProbe(pad_label, probe);
    out.probe_attached = true;
    note("step 2: probe attached at " + pad_label + " (" +
         TextTable::num(probe.voltage.volts(), 2) + " V, limit " +
         TextTable::num(probe.max_current.amps(), 1) + " A)");
    step.arg({"attached", true});
    step.arg({"domain", pad->domain_name});
    return out;
}

AttackOutcome
VoltBootAttack::powerCycleAndBoot()
{
    StepScope step(soc_, "attack.step3_power_cycle");
    step.arg({"off_ms", config_.off_time.milliseconds()});

    AttackOutcome out;
    out.probe_attached = true;

    // Step 3a: abrupt main-supply disconnect.
    soc_.powerOff();
    const TestPad *pad = soc_.board().findPad(soc_.config().attack_pad);
    if (pad) {
        const PowerDomain *dom =
            soc_.board().pmic().domain(pad->domain_name);
        out.transient = dom->lastTransient();
        if (out.transient) {
            note("step 3: main supply cut; surge droop to " +
                 TextTable::num(out.transient->v_min.volts(), 3) +
                 " V, settled retention at " +
                 TextTable::num(out.transient->v_settled.volts(), 3) +
                 " V" +
                 (out.transient->current_limited ? " (CURRENT LIMITED)"
                                                 : ""));
        }
    }
    soc_.advanceTime(config_.off_time);
    soc_.powerOn();
    note("step 3: board repowered after " +
         TextTable::num(config_.off_time.milliseconds(), 1) + " ms");

    // Step 3b: get our code running. ROM-boot platforms with JTAG need
    // no media at all; otherwise boot attacker media (USB MSD).
    if (soc_.config().jtag_enabled) {
        booted_ = true;
        out.rebooted_into_attacker_code = true;
        note("step 3: internal ROM boot; JTAG session opened");
        step.arg({"booted", true});
        step.arg({"path", "jtag"});
        return out;
    }

    // A trivial placeholder image: the real extraction programs are
    // loaded per dump request. Booting proves the signature gate.
    Program stub = Assembler::assemble("    hlt\n");
    stub.load_address = soc_.config().dram_base + config_.extractor_offset;
    if (!soc_.bootFromExternalMedia(stub)) {
        out.failure_reason =
            "authenticated boot rejected the attacker image";
        note("step 3: FAILED - " + out.failure_reason);
        step.arg({"booted", false});
        return out;
    }
    booted_ = true;
    out.rebooted_into_attacker_code = true;
    note("step 3: booted attacker image from USB mass storage");
    step.arg({"booted", true});
    step.arg({"path", "usb"});
    return out;
}

AttackOutcome
VoltBootAttack::execute()
{
    AttackOutcome attach = attachProbe();
    if (!attach.probe_attached)
        return attach;
    return powerCycleAndBoot();
}

MemoryImage
VoltBootAttack::readDumpFromDram(size_t core, size_t bytes)
{
    std::vector<uint8_t> out(bytes);
    const uint64_t base = soc_.config().dram_base + config_.dump_base_offset;
    CorePort &port = soc_.port(core);
    for (size_t i = 0; i < bytes; i += 8) {
        const uint64_t v = port.read64(base + i);
        for (size_t b = 0; b < 8 && i + b < bytes; ++b)
            out[i + b] = static_cast<uint8_t>(v >> (8 * b));
    }
    return MemoryImage(std::move(out));
}

MemoryImage
VoltBootAttack::dumpL1Way(size_t core, L1Ram ram, size_t way)
{
    if (!booted_)
        fatal("VoltBootAttack: execute() the power cycle before dumping");
    StepScope step(soc_, "attack.step4_extract");
    unsigned ram_id;
    CacheGeometry geom;
    bool is_tag;
    ramInfo(soc_, ram, &ram_id, &geom, &is_tag);
    step.arg({"what", "l1_way"});
    step.arg({"core", static_cast<uint64_t>(core)});
    step.arg({"ram_id", static_cast<uint64_t>(ram_id)});
    step.arg({"way", static_cast<uint64_t>(way)});

    const uint64_t load =
        soc_.config().dram_base + config_.extractor_offset;
    const uint64_t dump =
        soc_.config().dram_base + config_.dump_base_offset;
    const Program extractor = buildWayExtractor(soc_, ram, way, load, dump);
    soc_.loadProgram(extractor);
    soc_.runCore(core, load, 50'000'000);
    if (soc_.cpu(core).fault() != CpuFault::None)
        fatal("VoltBootAttack: extraction faulted: ",
              toString(soc_.cpu(core).fault()));

    const size_t bytes_per_way =
        is_tag ? geom.sets() * 8 : geom.sets() * geom.line_bytes;
    note("step 4: dumped core " + std::to_string(core) + " RAM " +
         std::to_string(ram_id) + " way " + std::to_string(way) + " (" +
         std::to_string(bytes_per_way) + " bytes)");
    step.arg({"bytes", static_cast<uint64_t>(bytes_per_way)});
    return readDumpFromDram(core, bytes_per_way);
}

MemoryImage
VoltBootAttack::dumpL1(size_t core, L1Ram ram)
{
    unsigned ram_id;
    CacheGeometry geom;
    bool is_tag;
    ramInfo(soc_, ram, &ram_id, &geom, &is_tag);
    std::vector<uint8_t> all;
    for (size_t way = 0; way < geom.ways; ++way) {
        MemoryImage img = dumpL1Way(core, ram, way);
        all.insert(all.end(), img.bytes().begin(), img.bytes().end());
    }
    return MemoryImage(std::move(all));
}

MemoryImage
VoltBootAttack::dumpVectorRegisters(size_t core)
{
    if (!booted_)
        fatal("VoltBootAttack: execute() the power cycle before dumping");
    StepScope step(soc_, "attack.step4_extract");
    step.arg({"what", "vector_registers"});
    step.arg({"core", static_cast<uint64_t>(core)});
    step.arg({"bytes", static_cast<uint64_t>(32 * 16)});
    const uint64_t load =
        soc_.config().dram_base + config_.extractor_offset;
    const uint64_t dump =
        soc_.config().dram_base + config_.dump_base_offset;
    Program p = Assembler::assemble(vectorExtractorSource(dump));
    p.load_address = load;
    soc_.loadProgram(p);
    soc_.runCore(core, load, 1'000'000);
    note("step 4: dumped core " + std::to_string(core) +
         " vector registers (512 bytes)");
    return readDumpFromDram(core, 32 * 16);
}

MemoryImage
VoltBootAttack::dumpDtlb(size_t core)
{
    if (!booted_)
        fatal("VoltBootAttack: execute() the power cycle before dumping");
    StepScope step(soc_, "attack.step4_extract");
    step.arg({"what", "dtlb"});
    step.arg({"core", static_cast<uint64_t>(core)});
    const uint64_t load =
        soc_.config().dram_base + config_.extractor_offset;
    const uint64_t dump =
        soc_.config().dram_base + config_.dump_base_offset;
    const Tlb &tlb = soc_.dtlb(core);
    std::vector<uint8_t> all;
    for (size_t way = 0; way < tlb.ways(); ++way) {
        Program p = Assembler::assemble(wayExtractorSource(
            RamIndexDescriptor::kDTlb, way, tlb.sets(), 2, dump));
        p.load_address = load;
        soc_.loadProgram(p);
        soc_.runCore(core, load, 5'000'000);
        const MemoryImage img =
            readDumpFromDram(core, tlb.sets() * 16);
        all.insert(all.end(), img.bytes().begin(), img.bytes().end());
    }
    note("step 4: dumped core " + std::to_string(core) + " DTLB (" +
         std::to_string(all.size()) + " bytes)");
    return MemoryImage(std::move(all));
}

MemoryImage
VoltBootAttack::dumpBtb(size_t core)
{
    if (!booted_)
        fatal("VoltBootAttack: execute() the power cycle before dumping");
    StepScope step(soc_, "attack.step4_extract");
    step.arg({"what", "btb"});
    step.arg({"core", static_cast<uint64_t>(core)});
    const uint64_t load =
        soc_.config().dram_base + config_.extractor_offset;
    const uint64_t dump =
        soc_.config().dram_base + config_.dump_base_offset;
    const Btb &btb = soc_.btb(core);
    Program p = Assembler::assemble(unrolledExtractorSource(
        RamIndexDescriptor::kBtb, btb.entryCount(), 2, dump));
    p.load_address = load;
    soc_.loadProgram(p);
    soc_.runCore(core, load, 10'000'000);
    note("step 4: dumped core " + std::to_string(core) + " BTB (" +
         std::to_string(btb.entryCount() * 16) + " bytes)");
    return readDumpFromDram(core, btb.entryCount() * 16);
}

MemoryImage
VoltBootAttack::dumpIram()
{
    if (!booted_)
        fatal("VoltBootAttack: execute() the power cycle before dumping");
    if (!soc_.jtag().available())
        fatal("VoltBootAttack: platform has no JTAG; use the cache path");
    StepScope step(soc_, "attack.step4_extract");
    step.arg({"what", "iram"});
    step.arg({"bytes",
              static_cast<uint64_t>(soc_.config().iram_bytes)});
    note("step 4: dumped iRAM over JTAG (" +
         std::to_string(soc_.config().iram_bytes) + " bytes)");
    return soc_.jtag().readIram(soc_.config().iram_base,
                                soc_.config().iram_bytes);
}

ColdBootAttack::ColdBootAttack(Soc &soc, Temperature temperature,
                               Seconds off_time, AttackConfig config)
    : soc_(soc), temperature_(temperature), off_time_(off_time),
      extractor_(soc, config)
{
}

bool
ColdBootAttack::powerCycleAndBoot()
{
    StepScope step(soc_, "coldboot.power_cycle");
    step.arg({"temp_c", temperature_.celsiusDegrees()});
    step.arg({"off_ms", off_time_.milliseconds()});
    // Chill the board in the thermal chamber, no probe anywhere.
    soc_.setAmbient(temperature_);
    soc_.powerOff();
    soc_.advanceTime(off_time_);
    soc_.powerOn();

    if (soc_.config().jtag_enabled) {
        extractor_.assumeBooted();
        return true;
    }
    Program stub = Assembler::assemble("    hlt\n");
    stub.load_address =
        soc_.config().dram_base + extractor_.config().extractor_offset;
    if (!soc_.bootFromExternalMedia(stub))
        return false;
    extractor_.assumeBooted();
    return true;
}

MemoryImage
ColdBootAttack::dumpL1(size_t core, L1Ram ram)
{
    return extractor_.dumpL1(core, ram);
}

MemoryImage
ColdBootAttack::dumpL1Way(size_t core, L1Ram ram, size_t way)
{
    return extractor_.dumpL1Way(core, ram, way);
}

namespace
{

/** Clears the core's injector on every exit path (the Cpu outlives the
 * attack object; a dangling injector would be read on the next run). */
class InjectorGuard
{
  public:
    InjectorGuard(Cpu &cpu, FaultInjector *injector) : cpu_(cpu)
    {
        cpu_.setFaultInjector(injector);
    }
    ~InjectorGuard() { cpu_.setFaultInjector(nullptr); }

  private:
    Cpu &cpu_;
};

/**
 * Emit the whole pulse into the trace in one batch: one
 * voltage.<domain> Counter sample per instruction boundary inside the
 * pulse, a guaranteed return-to-nominal sample at pulse end, then the
 * "power" Complete span glitch.pulse bracketing them (children before
 * parents, as the span aggregator expects). Timestamps are assigned
 * manually, so the batch may be emitted at any sim time at or after
 * the pulse end.
 */
void
emitPulseTrace(const fault::GlitchWaveform &wave,
               const std::string &domain, Seconds anchor, Seconds cycle)
{
    if (!trace::enabled())
        return;
    const std::string counter_name = "voltage." + domain;
    auto sample = [&](double t_rel, double v) {
        trace::TraceEvent ev;
        ev.phase = trace::Phase::Counter;
        ev.category = "power";
        ev.name = counter_name;
        ev.ts = Seconds(anchor.seconds() + t_rel);
        ev.args.push_back({"v", v});
        trace::emit(std::move(ev));
    };
    const double t0 = wave.start().seconds();
    const double t3 = wave.end().seconds();
    const double cyc = cycle.seconds();
    double last_v = wave.nominal().volts();
    for (double t = (std::floor(t0 / cyc) + 1.0) * cyc; t < t3;
         t += cyc) {
        const double v = wave.at(Seconds(t)).volts();
        if (v != last_v) {
            sample(t, v);
            last_v = v;
        }
    }
    sample(t3, wave.nominal().volts());

    trace::TraceEvent span;
    span.phase = trace::Phase::Complete;
    span.category = "power";
    span.name = "glitch.pulse";
    span.ts = Seconds(anchor.seconds() + t0);
    span.dur = wave.params().width;
    span.args.push_back({"domain", domain});
    span.args.push_back({"nominal_v", wave.nominal().volts()});
    span.args.push_back({"depth_v", wave.params().depth.volts()});
    span.args.push_back({"offset_s", t0});
    span.args.push_back({"width_s", wave.params().width.seconds()});
    trace::emit(std::move(span));
}

} // namespace

GlitchAttack::GlitchAttack(Soc &soc, GlitchConfig config)
    : soc_(soc), config_(config)
{
}

GlitchOutcome
GlitchAttack::execute()
{
    if (!soc_.poweredOn())
        fatal("GlitchAttack: the board must be powered on");

    StepScope scope(soc_, "attack.glitch");
    scope.arg({"offset_s", config_.pulse.offset.seconds()});
    scope.arg({"width_s", config_.pulse.width.seconds()});
    scope.arg({"depth_v", config_.pulse.depth.volts()});

    const uint64_t dram = soc_.config().dram_base;
    const uint64_t load = dram + config_.load_offset;
    const uint64_t fw_base = dram + config_.firmware_offset;
    const uint64_t result_addr = dram + config_.result_offset;

    // Stage the attacker's (tampered) firmware: arbitrary bytes whose
    // MAC can never match the tag the vendor signed.
    std::vector<uint64_t> fw(config_.fw_words);
    std::vector<uint8_t> fw_bytes(fw.size() * 8);
    for (size_t i = 0; i < fw.size(); ++i) {
        fw[i] = hashCombine(0xf1a5ULL, i);
        for (size_t b = 0; b < 8; ++b)
            fw_bytes[i * 8 + b] = static_cast<uint8_t>(fw[i] >> (8 * b));
    }
    soc_.loadBytes(fw_base, fw_bytes);
    const uint64_t signed_tag = workloads::signatureCheckTag(fw) ^ 1;

    victim_source_ = workloads::signatureCheck(fw_base, config_.fw_words,
                                               signed_tag, result_addr);
    Program victim = Assembler::assemble(victim_source_);
    victim.load_address = load;
    soc_.loadProgram(victim);
    soc_.memory().l1i(0).invalidateAll();
    soc_.memory().l1d(0).invalidateAll();

    const DomainSpec &domain = soc_.config().core_domain;
    const fault::GlitchWaveform wave(domain.nominal, config_.pulse,
                                     config_.crowbar_impedance,
                                     domain.decap);
    const bool live = !config_.pulse.degenerate();

    std::optional<fault::TimingFaultModel> model;
    if (live) {
        fault::TimingFaultConfig fcfg;
        fcfg.margin_fraction = config_.margin_fraction;
        fcfg.crash_fraction = config_.crash_fraction;
        fcfg.seed = config_.seed;
        model.emplace(fcfg, wave, config_.cycle);
    }

    Cpu &cpu = soc_.cpu(0);
    InjectorGuard guard(cpu, live ? &*model : nullptr);
    cpu.reset(load);

    const Seconds anchor = soc_.eventQueue().now();
    const double cyc = config_.cycle.seconds();
    const double pulse_end = wave.end().seconds();

    GlitchOutcome out;
    bool wild = false;
    bool pulse_traced = false;
    uint64_t steps = 0;
    while (steps < config_.max_steps) {
        // The boundary about to execute sits at anchor + steps*cycle;
        // once the clock passes the pulse, its trace can be emitted
        // (all batch timestamps are then in the past).
        if (live && !pulse_traced && steps * cyc >= pulse_end) {
            emitPulseTrace(wave, domain.name, anchor, config_.cycle);
            pulse_traced = true;
        }
        bool more;
        if (live) {
            try {
                more = cpu.step();
            } catch (const std::exception &) {
                // The fault sent execution somewhere unmapped or
                // misaligned: architecturally a crash, not a
                // simulator error.
                wild = true;
                more = false;
            }
        } else {
            more = cpu.step();
        }
        ++steps;
        soc_.advanceTime(config_.cycle);
        if (!more)
            break;
    }

    if (live && !pulse_traced) {
        // The victim stopped inside (or before) the pulse; the rail
        // still completes its excursion. Let the clock catch up, then
        // record it.
        const Seconds now = soc_.eventQueue().now();
        const double past_end =
            anchor.seconds() + pulse_end + cyc - now.seconds();
        if (past_end > 0.0)
            soc_.advanceTime(Seconds(past_end));
        emitPulseTrace(wave, domain.name, anchor, config_.cycle);
    }

    out.steps = steps;
    if (live) {
        out.faults_injected = model->faultsInjected();
        for (const fault::FaultEvent &ev : model->events())
            out.effects.push_back(toString(ev.effect));
    }
    out.completed = !wild && cpu.halted() && cpu.fault() == CpuFault::None;
    if (wild) {
        out.crashed = true;
        out.crash_reason = "wild_execution";
    } else if (cpu.fault() != CpuFault::None) {
        out.crashed = true;
        out.crash_reason = toString(cpu.fault());
    } else if (!cpu.halted()) {
        out.crashed = true;
        out.crash_reason = "hang";
    }
    if (out.completed)
        out.bypassed = soc_.port(0).read64(result_addr) == 1;

    scope.arg({"bypassed", out.bypassed});
    scope.arg({"crashed", out.crashed});
    scope.arg({"faults", out.faults_injected});
    return out;
}

} // namespace voltboot

/**
 * @file
 * The Section 8 countermeasure survey, runnable.
 *
 * Each countermeasure maps onto a platform-configuration change or an
 * attack-procedure change; evaluate() runs the full Volt Boot pipeline
 * against a fresh device with the defence active and reports whether the
 * secret survived into the attacker's hands.
 */

#ifndef VOLTBOOT_CORE_COUNTERMEASURES_HH
#define VOLTBOOT_CORE_COUNTERMEASURES_HH

#include <string>
#include <vector>

#include "soc/soc_config.hh"

namespace voltboot
{

/** Defences surveyed by the paper. */
enum class Countermeasure
{
    None,
    /** OS purges SRAM in the power-down path — defeated by an abrupt
     * disconnect, which is why attackers pull the plug. */
    PurgeOnShutdown,
    /** Hardware zeroises all on-chip SRAM at reset (MBIST-style). */
    BootSramReset,
    /** TrustZone NS-bit enforcement blocks debug reads of secure lines. */
    TrustZone,
    /** OEM-signed boot: attacker media refuses to load. */
    AuthenticatedBoot,
    /** Single merged power domain: no separately holdable SRAM rail. */
    EliminateDomainSeparation,
};

const char *toString(Countermeasure c);

/** One row of the survey. */
struct CountermeasureResult
{
    Countermeasure defence;
    bool attack_succeeded;     ///< Did the attacker recover the pattern?
    double recovered_fraction; ///< Bits of the secret recovered correctly.
    std::string notes;
};

/** Apply @p defence to a platform configuration. */
SocConfig applyCountermeasure(const SocConfig &base, Countermeasure defence);

/**
 * Run the full pipeline (bare-metal pattern victim in the d-cache,
 * Volt Boot, extraction, comparison) against @p base with @p defence
 * active. @p orderly_shutdown runs the OS purge hook before the cut,
 * demonstrating why PurgeOnShutdown only helps against polite attackers.
 */
CountermeasureResult evaluateCountermeasure(const SocConfig &base,
                                            Countermeasure defence,
                                            bool orderly_shutdown = false);

/** The whole survey, one row per defence. */
std::vector<CountermeasureResult> surveyCountermeasures(
    const SocConfig &base);

} // namespace voltboot

#endif // VOLTBOOT_CORE_COUNTERMEASURES_HH

#include "core/analysis.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace voltboot
{

RetentionReport
compareImages(const MemoryImage &dump, const MemoryImage &truth)
{
    RetentionReport r;
    r.total_bits = truth.sizeBits();
    r.error_bits = MemoryImage::hammingDistance(dump, truth);
    return r;
}

ElementRecovery
recoverElements(std::span<const MemoryImage> way_dumps,
                std::span<const uint64_t> elements)
{
    ElementRecovery out;
    out.total = elements.size();
    out.per_way.assign(way_dumps.size(), 0);

    for (uint64_t element : elements) {
        uint8_t needle[8];
        std::memcpy(needle, &element, 8);
        bool anywhere = false;
        for (size_t w = 0; w < way_dumps.size(); ++w) {
            const auto &bytes = way_dumps[w].bytes();
            bool found = false;
            for (size_t off = 0; off + 8 <= bytes.size() && !found;
                 off += 8)
                found = std::memcmp(bytes.data() + off, needle, 8) == 0;
            if (found) {
                ++out.per_way[w];
                anywhere = true;
            }
        }
        if (anywhere)
            ++out.in_union;
    }
    return out;
}

std::vector<CachedLineInfo>
reconstructTagRam(const MemoryImage &tag_dump,
                  const CacheGeometry &geometry, bool include_invalid)
{
    const size_t sets = geometry.sets();
    if (tag_dump.sizeBytes() < geometry.ways * sets * 8)
        fatal("reconstructTagRam: dump smaller than the tag RAM");

    const size_t off_bits = std::countr_zero(geometry.line_bytes);
    const size_t set_bits = std::countr_zero(sets);

    std::vector<CachedLineInfo> out;
    for (size_t way = 0; way < geometry.ways; ++way) {
        for (size_t set = 0; set < sets; ++set) {
            const size_t byte_off = (way * sets + set) * 8;
            uint64_t entry = 0;
            for (int b = 0; b < 8; ++b)
                entry |= static_cast<uint64_t>(
                             tag_dump.byteAt(byte_off + b))
                         << (8 * b);
            CachedLineInfo info;
            info.way = way;
            info.set = set;
            info.valid = entry & Cache::kFlagValid;
            info.dirty = entry & Cache::kFlagDirty;
            info.locked = entry & Cache::kFlagLocked;
            info.secure = !(entry & Cache::kFlagNonSecure);
            const uint64_t tag = entry & 0xffffffffffffull;
            info.phys_addr =
                (tag << (off_bits + set_bits)) | (set << off_bits);
            if (info.valid || include_invalid)
                out.push_back(info);
        }
    }
    return out;
}

MemoryImage
lineContent(const CachedLineInfo &line, const MemoryImage &data_dump,
            const CacheGeometry &geometry)
{
    const size_t offset =
        (line.way * geometry.sets() + line.set) * geometry.line_bytes;
    return data_dump.slice(offset, geometry.line_bytes);
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable: need at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("TextTable: row has ", cells.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (size_t c = 0; c < cells.size(); ++c)
            os << " " << std::setw(static_cast<int>(widths[c]))
               << std::left << cells[c] << " |";
        os << "\n";
    };
    emit(headers_);
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::pct(double fraction, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << fraction * 100.0
       << "%";
    return os.str();
}

std::string
TextTable::num(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
TextTable::hex(uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::uppercase << value;
    return os.str();
}

} // namespace voltboot

/**
 * @file
 * Umbrella header: the full public API of the voltboot library.
 *
 * Include this to get everything; fine-grained headers remain available
 * for faster builds:
 *
 *   sim/     units, RNG, stats, event queue, logging
 *   sram/    retention physics, memory arrays, images, PUF/TRNG
 *   power/   domains, PMIC, board, probes, transients
 *   isa/     vb64 assembler, disassembler, CPU
 *   mem/     caches, TLB, BTB, memory system
 *   soc/     platform database and the integrated SoC
 *   os/      bare-metal runner, Linux contention model, workloads
 *   crypto/  AES, on-chip crypto victims, key scanners/correctors
 *   core/    the Volt Boot / cold boot attacks, analysis, defences
 *   campaign/ parallel attack-sweep orchestration with structured results
 */

#ifndef VOLTBOOT_VOLTBOOT_HH
#define VOLTBOOT_VOLTBOOT_HH

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/units.hh"

#include "sram/memory_array.hh"
#include "sram/memory_image.hh"
#include "sram/puf.hh"
#include "sram/retention_model.hh"

#include "power/board.hh"
#include "power/power_domain.hh"
#include "power/transient.hh"

#include "isa/assembler.hh"
#include "isa/cpu.hh"
#include "isa/insn.hh"

#include "mem/btb.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/tlb.hh"

#include "soc/soc.hh"
#include "soc/soc_config.hh"

#include "os/baremetal.hh"
#include "os/linux_model.hh"
#include "os/workloads.hh"

#include "crypto/aes.hh"
#include "crypto/key_corrector.hh"
#include "crypto/key_finder.hh"
#include "crypto/onchip_crypto.hh"

#include "core/analysis.hh"
#include "core/attack.hh"
#include "core/countermeasures.hh"

#include "campaign/campaign.hh"
#include "campaign/campaign_result.hh"
#include "campaign/sweep_grid.hh"
#include "campaign/trial_runner.hh"

#endif // VOLTBOOT_VOLTBOOT_HH

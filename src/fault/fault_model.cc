#include "fault/fault_model.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace voltboot
{
namespace fault
{

namespace
{

// Channel numbers of the per-boundary draws (domain separation).
constexpr uint64_t kChanFire = 0;
constexpr uint64_t kChanEffect = 1;
constexpr uint64_t kChanPayload = 2;

} // namespace

TimingFaultModel::TimingFaultModel(TimingFaultConfig cfg,
                                   const GlitchWaveform &wave,
                                   Seconds cycle)
    : cfg_(cfg), wave_(wave), cycle_(cycle)
{
    if (cycle.seconds() <= 0.0)
        fatal("TimingFaultModel: core clock period must be positive");
    if (cfg.margin_fraction <= cfg.crash_fraction)
        fatal("TimingFaultModel: margin_fraction must exceed "
              "crash_fraction");
}

Volt
TimingFaultModel::marginVoltage() const
{
    return Volt(wave_.nominal().volts() * cfg_.margin_fraction);
}

Volt
TimingFaultModel::crashVoltage() const
{
    return Volt(wave_.nominal().volts() * cfg_.crash_fraction);
}

double
TimingFaultModel::faultProbability(Volt v) const
{
    const double margin = marginVoltage().volts();
    const double crash = crashVoltage().volts();
    if (v.volts() >= margin)
        return 0.0;
    return std::min((margin - v.volts()) / (margin - crash), 1.0);
}

double
TimingFaultModel::draw(uint64_t retired, uint64_t channel) const
{
    const uint64_t h = splitmix64(
        hashCombine(hashCombine(cfg_.seed, retired), channel));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultAction
TimingFaultModel::chooseEffect(uint64_t pc, uint32_t insn,
                               uint64_t retired, double severity) const
{
    // Severity-weighted effect mix: shallow droops favour clean skips
    // and single bit-flips, deep droops shift towards corrupted
    // decodes and wild control flow.
    const double w_skip = 0.40;
    const double w_corrupt = 0.15 + 0.25 * severity;
    const double w_branch = 0.10 + 0.20 * severity;
    const double w_flip = 0.35 - 0.10 * severity;
    const double total = w_skip + w_corrupt + w_branch + w_flip;

    const uint64_t h = splitmix64(
        hashCombine(hashCombine(cfg_.seed, retired), kChanPayload));
    double u = draw(retired, kChanEffect) * total;

    FaultAction a;
    if ((u -= w_skip) < 0.0) {
        a.effect = FaultEffect::Skip;
        return a;
    }
    if ((u -= w_corrupt) < 0.0) {
        a.effect = FaultEffect::OpcodeCorrupt;
        // A mistimed decode latch: flip one bit of the opcode field
        // (top byte), which usually lands on a different — often
        // undefined — instruction.
        a.insn_override = insn ^ (1u << (24 + (h % 8)));
        return a;
    }
    if ((u -= w_branch) < 0.0) {
        a.effect = FaultEffect::WrongBranch;
        // A corrupted branch adder: transfer to a nearby but wrong
        // word-aligned target, up to 7 instructions either way.
        int64_t delta = static_cast<int64_t>(h % 15) - 7;
        if (delta == 0 || delta == 1)
            delta = 2; // 0 re-executes, 1 is the correct fall-through
        a.branch_target =
            pc + static_cast<uint64_t>(delta * 4);
        return a;
    }
    a.effect = FaultEffect::RegisterBitFlip;
    a.reg = h % 31;             // x0..x30
    a.bit = (h >> 8) % 64;
    return a;
}

FaultAction
TimingFaultModel::onInstruction(uint64_t pc, uint32_t insn,
                                uint64_t retired)
{
    const Seconds t(static_cast<double>(retired) * cycle_.seconds());
    const Volt v = wave_.at(t);
    const double p = faultProbability(v);
    if (p <= 0.0 || draw(retired, kChanFire) >= p)
        return {};
    const FaultAction a = chooseEffect(pc, insn, retired, p);
    events_.push_back({retired, a.effect});
    return a;
}

} // namespace fault
} // namespace voltboot

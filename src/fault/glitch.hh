/**
 * @file
 * Glitch waveform generation: the attacker's crowbar pulse.
 *
 * A voltage glitch briefly shorts a supply rail towards ground through
 * a low-impedance MOSFET ("crowbar" glitching), then releases it so the
 * regulator recovers. On the bench the interesting knobs are exactly
 * three: *offset* (when the pulse fires, relative to a trigger),
 * *width* (how long the crowbar conducts) and *depth* (how far the rail
 * is dragged below nominal). This module turns those knobs into a
 * deterministic voltage-vs-time waveform the timing-fault model and the
 * trace layer can both sample.
 *
 * The edge rate is not free: the rail's decoupling capacitance has to
 * be discharged through the crowbar and recharged through the supply
 * path, so both edges slew with the RC product of the crowbar
 * impedance and the domain decap — the same physics
 * `power/transient.hh` uses for probe droop, applied to an
 * intentionally hostile load. The pulse is therefore a trapezoid:
 * linear fall over one edge time, a flat floor at (nominal - depth),
 * and a linear recovery that reaches nominal exactly at
 * offset + width. The floor clamps at 0 V (the crowbar cannot drive
 * the rail below ground).
 *
 * A zero-width or zero-depth pulse is *degenerate*: the waveform is
 * identically nominal and callers are expected to treat the glitch as
 * absent (no fault model, no trace events) — see
 * GlitchParams::degenerate().
 */

#ifndef VOLTBOOT_FAULT_GLITCH_HH
#define VOLTBOOT_FAULT_GLITCH_HH

#include "sim/units.hh"

namespace voltboot
{
namespace fault
{

/** The three bench knobs of a crowbar glitch. */
struct GlitchParams
{
    /** Pulse start, relative to the waveform's trigger (victim entry). */
    Seconds offset{0.0};
    /** Total pulse duration (fall + floor + recovery). */
    Seconds width{0.0};
    /** Maximum excursion below nominal. */
    Volt depth{0.0};

    /** A degenerate pulse never leaves nominal: a no-op by contract. */
    bool
    degenerate() const
    {
        return width.seconds() <= 0.0 || depth.volts() <= 0.0;
    }
};

/** Deterministic voltage-vs-time shape of one glitch pulse. */
class GlitchWaveform
{
  public:
    /**
     * @param nominal   The rail's nominal voltage.
     * @param params    Offset/width/depth of the pulse.
     * @param crowbar   Crowbar MOSFET on-impedance (sets edge slew).
     * @param decap     Domain decoupling capacitance (sets edge slew).
     */
    GlitchWaveform(Volt nominal, GlitchParams params, Ohm crowbar,
                   Farad decap);

    /** Rail voltage at time @p t (relative to the trigger). Nominal
     * outside [start, end]; never below max(nominal - depth, 0). */
    Volt at(Seconds t) const;

    Volt nominal() const { return nominal_; }
    const GlitchParams &params() const { return params_; }

    /** Pulse start / end times (end is where nominal is restored). */
    Seconds start() const { return params_.offset; }
    Seconds end() const { return params_.offset + params_.width; }

    /** Edge slew time actually used (RC product, clamped into the
     * pulse so fall + recovery always fit inside width). */
    Seconds edge() const { return edge_; }

    /** Deepest point of the pulse, floor-clamped at 0 V. */
    Volt floor() const { return floor_; }

  private:
    Volt nominal_;
    GlitchParams params_;
    Seconds edge_{0.0};
    Volt floor_{0.0};
};

} // namespace fault
} // namespace voltboot

#endif // VOLTBOOT_FAULT_GLITCH_HH

/**
 * @file
 * The timing-fault model: how a supply droop becomes a wrong
 * instruction.
 *
 * Digital logic is timed against a guard-banded supply: below roughly
 * 90% of nominal, the longest paths through fetch/decode/execute no
 * longer close in one cycle and an instruction boundary can latch
 * garbage. The model derives that *timing-margin threshold* from the
 * rail's nominal voltage, samples the glitch waveform at each
 * instruction boundary (one boundary per core clock cycle), and when
 * the instantaneous voltage sits below the threshold, fires a fault
 * with probability rising linearly from 0 at the margin to 1 at the
 * crash voltage — the point where essentially every path mistimes.
 *
 * Which *effect* a fired fault takes — instruction skip, opcode
 * corruption, wrong-target branch, register bit-flip — is drawn from a
 * severity-weighted distribution: shallow droops mostly produce clean
 * skips and single bit-flips (one marginal path), deep droops shift
 * weight towards opcode corruption and wild control flow (many paths
 * failing together). This matches the empirical spread reported for
 * crowbar glitching of application cores.
 *
 * Determinism contract (PR-1 style): every draw is a counter-based
 * hash of (seed, retired-instruction index, channel) — no mutable RNG
 * state — so a trial's fault stream is a pure function of its seed and
 * the waveform, byte-identical at any campaign `--jobs` count.
 */

#ifndef VOLTBOOT_FAULT_FAULT_MODEL_HH
#define VOLTBOOT_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <vector>

#include "fault/glitch.hh"
#include "isa/cpu.hh"
#include "sim/units.hh"

namespace voltboot
{
namespace fault
{

/** Calibration of the voltage-to-fault transfer function. */
struct TimingFaultConfig
{
    /** Below margin_fraction * nominal, boundaries can fault. */
    double margin_fraction = 0.9;
    /** At crash_fraction * nominal, every boundary faults. */
    double crash_fraction = 0.5;
    /** Counter-hash seed of the fault stream. */
    uint64_t seed = 1;
};

/** One fired fault, for the attack log. */
struct FaultEvent
{
    uint64_t retired; ///< Instruction boundary index.
    FaultEffect effect;
};

/** FaultInjector sampling a GlitchWaveform on a fixed core clock. */
class TimingFaultModel : public FaultInjector
{
  public:
    /**
     * @param cfg   Transfer-function calibration and seed.
     * @param wave  The pulse, in time relative to victim entry.
     * @param cycle Core clock period (one instruction boundary each).
     */
    TimingFaultModel(TimingFaultConfig cfg, const GlitchWaveform &wave,
                     Seconds cycle);

    FaultAction onInstruction(uint64_t pc, uint32_t insn,
                              uint64_t retired) override;

    /** Fired faults, in boundary order. */
    const std::vector<FaultEvent> &events() const { return events_; }
    uint64_t faultsInjected() const { return events_.size(); }

    /** The derived timing-margin threshold voltage. */
    Volt marginVoltage() const;
    /** The derived always-faults crash voltage. */
    Volt crashVoltage() const;

    /** P(fault at a boundary | rail at @p v): 0 above the margin,
     * linear to 1 at the crash voltage. */
    double faultProbability(Volt v) const;

  private:
    double draw(uint64_t retired, uint64_t channel) const;
    FaultAction chooseEffect(uint64_t pc, uint32_t insn,
                             uint64_t retired, double severity) const;

    TimingFaultConfig cfg_;
    const GlitchWaveform &wave_;
    Seconds cycle_;
    std::vector<FaultEvent> events_;
};

} // namespace fault
} // namespace voltboot

#endif // VOLTBOOT_FAULT_FAULT_MODEL_HH

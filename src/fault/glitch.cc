#include "fault/glitch.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace voltboot
{
namespace fault
{

GlitchWaveform::GlitchWaveform(Volt nominal, GlitchParams params,
                               Ohm crowbar, Farad decap)
    : nominal_(nominal), params_(params)
{
    if (nominal.volts() < 0.0)
        fatal("GlitchWaveform: negative nominal voltage");
    if (params.offset.seconds() < 0.0)
        fatal("GlitchWaveform: negative glitch offset");
    if (params.degenerate())
        return; // identically nominal; edge_/floor_ unused

    // Both edges slew with the crowbar-RC product; clamp so that the
    // fall and the recovery always fit inside the pulse (a very wide
    // pulse gets the full RC edge, a very narrow one degrades towards
    // a triangle).
    const double tau = crowbar.ohms() * decap.farads();
    edge_ = Seconds(std::min(tau, params.width.seconds() / 2.0));
    floor_ = Volt(std::max(nominal.volts() - params.depth.volts(), 0.0));
}

Volt
GlitchWaveform::at(Seconds t) const
{
    if (params_.degenerate())
        return nominal_;
    const double rel = t.seconds() - params_.offset.seconds();
    const double width = params_.width.seconds();
    if (rel <= 0.0 || rel >= width)
        return nominal_;
    const double edge = edge_.seconds();
    const double drop = nominal_.volts() - floor_.volts();
    if (edge > 0.0 && rel < edge) // falling edge
        return Volt(nominal_.volts() - drop * rel / edge);
    if (edge > 0.0 && rel > width - edge) // recovery edge
        return Volt(nominal_.volts() - drop * (width - rel) / edge);
    return floor_;
}

} // namespace fault
} // namespace voltboot

#include "trace/trace.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "sim/logging.hh"

namespace voltboot
{
namespace trace
{

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    if (ec != std::errc())
        panic("trace::jsonNumber: to_chars failed");
    return {buf, ptr};
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

const char *
phaseLetter(Phase phase)
{
    switch (phase) {
      case Phase::Instant: return "i";
      case Phase::Complete: return "X";
      case Phase::Counter: return "C";
    }
    panic("bad trace::Phase");
}

namespace
{

/**
 * Microsecond timestamps as JSON. Whole microseconds render as plain
 * integers (shortest-round-trip would pick "5e+05" over "500000");
 * fractional values fall back to jsonNumber.
 */
std::string
jsonMicros(double us)
{
    constexpr double exact = 9007199254740992.0; // 2^53
    if (std::isfinite(us) && us == std::floor(us) && std::fabs(us) < exact)
        return std::to_string(static_cast<long long>(us));
    return jsonNumber(us);
}

void
appendArgsObject(std::string &out, const std::vector<Arg> &args)
{
    out += "{";
    for (size_t i = 0; i < args.size(); ++i) {
        if (i)
            out += ", ";
        out += jsonQuote(args[i].key) + ": " + args[i].json;
    }
    out += "}";
}

} // namespace

std::string
toJsonlLine(const TraceEvent &ev)
{
    std::string out = "{\"ts_us\": " + jsonMicros(ev.ts.microseconds());
    out += ", \"cat\": " + jsonQuote(ev.category);
    out += ", \"ph\": \"";
    out += phaseLetter(ev.phase);
    out += "\", \"name\": " + jsonQuote(ev.name);
    if (ev.phase == Phase::Complete)
        out += ", \"dur_us\": " + jsonMicros(ev.dur.microseconds());
    out += ", \"args\": ";
    appendArgsObject(out, ev.args);
    out += "}";
    return out;
}

std::string
toJsonl(std::span<const TraceEvent> events)
{
    std::string out;
    out.reserve(events.size() * 160);
    for (const TraceEvent &ev : events) {
        out += toJsonlLine(ev);
        out += '\n';
    }
    return out;
}

std::string
toChromeTrace(std::span<const TraceEvent> events)
{
    std::string out = "{\"traceEvents\": [\n";
    for (size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &ev = events[i];
        out += "  {\"name\": " + jsonQuote(ev.name);
        out += ", \"cat\": " + jsonQuote(ev.category);
        out += ", \"ph\": \"";
        out += phaseLetter(ev.phase);
        out += "\", \"ts\": " + jsonMicros(ev.ts.microseconds());
        if (ev.phase == Phase::Complete)
            out += ", \"dur\": " + jsonMicros(ev.dur.microseconds());
        // Process-scoped instants render as full-height vertical lines.
        if (ev.phase == Phase::Instant)
            out += ", \"s\": \"p\"";
        out += ", \"pid\": 0, \"tid\": 0, \"args\": ";
        appendArgsObject(out, ev.args);
        out += "}";
        out += (i + 1 < events.size()) ? ",\n" : "\n";
    }
    out += "], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

struct JsonlFileSink::Impl
{
    std::ofstream stream;
};

JsonlFileSink::JsonlFileSink(const std::string &path)
    : impl_(new Impl{std::ofstream(path, std::ios::binary)})
{
    if (!impl_->stream)
        fatal("JsonlFileSink: cannot open '", path, "' for writing");
}

JsonlFileSink::~JsonlFileSink()
{
    delete impl_;
}

void
JsonlFileSink::record(const TraceEvent &event)
{
    impl_->stream << toJsonlLine(event) << '\n';
}

void
JsonlFileSink::flush()
{
    impl_->stream.flush();
}

namespace
{

struct ThreadTracer
{
    TraceSink *sink = nullptr;
    Seconds sim_now{0.0};
    Metrics *metrics = nullptr;
};

ThreadTracer &
tracer()
{
    thread_local ThreadTracer t;
    return t;
}

} // namespace

bool
enabled()
{
    return tracer().sink != nullptr;
}

void
emit(TraceEvent event)
{
    if (TraceSink *sink = tracer().sink)
        sink->record(event);
}

Seconds
simTime()
{
    return tracer().sim_now;
}

void
setSimTime(Seconds now)
{
    tracer().sim_now = now;
}

Metrics *
metricsRegistry()
{
    return tracer().metrics;
}

void
setMetricsRegistry(Metrics *metrics)
{
    tracer().metrics = metrics;
}

Scope::Scope(TraceSink &sink)
    : prev_sink_(tracer().sink), prev_time_(tracer().sim_now)
{
    tracer().sink = &sink;
    tracer().sim_now = Seconds(0.0);
}

Scope::~Scope()
{
    if (tracer().sink)
        tracer().sink->flush();
    tracer().sink = prev_sink_;
    tracer().sim_now = prev_time_;
}

MetricsScope::MetricsScope(Metrics *metrics) : prev_(tracer().metrics)
{
    tracer().metrics = metrics;
}

MetricsScope::~MetricsScope()
{
    tracer().metrics = prev_;
}

void
instant(const char *category, std::string name, std::vector<Arg> args)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.phase = Phase::Instant;
    ev.category = category;
    ev.name = std::move(name);
    ev.ts = simTime();
    ev.args = std::move(args);
    emit(std::move(ev));
}

void
counter(const char *category, std::string name, double value)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.phase = Phase::Counter;
    ev.category = category;
    ev.name = std::move(name);
    ev.ts = simTime();
    ev.args.emplace_back("v", value);
    emit(std::move(ev));
}

Span::Span(const char *category, std::string name) : live_(enabled())
{
    if (!live_)
        return;
    event_.phase = Phase::Complete;
    event_.category = category;
    event_.name = std::move(name);
    event_.ts = simTime();
}

Span::~Span()
{
    end();
}

void
Span::arg(Arg a)
{
    if (live_)
        event_.args.push_back(std::move(a));
}

void
Span::end()
{
    if (!live_)
        return;
    live_ = false;
    event_.dur = simTime() - event_.ts;
    emit(std::move(event_));
}

} // namespace trace
} // namespace voltboot

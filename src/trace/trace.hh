/**
 * @file
 * Structured tracing for the attack stack.
 *
 * The simulator's interesting behaviour is *temporal* — probe attach,
 * domain collapse, per-cell decay past DRV, reboot, RAMINDEX dump — so
 * every layer can emit typed TraceEvents onto a per-thread TraceSink.
 * The paper's evaluation (and the undervolting literature it sits in)
 * explains outcomes with precisely-timestamped voltage/state traces;
 * this module is the simulated equivalent of that bench oscilloscope.
 *
 * Design rules:
 *
 *  - **Off by default, near-zero when off.** No sink is installed until
 *    a trace::Scope is entered; every emission site guards on
 *    trace::enabled() (one thread-local pointer test) before building
 *    an event, so the untraced hot path stays untouched.
 *  - **Deterministic.** Event timestamps are *simulation* time (the
 *    Soc's EventQueue clock), never wall clock, and sinks are
 *    thread-local, so a trial's trace is a pure function of its inputs:
 *    a campaign traced at `--jobs 1` and `--jobs 4` produces
 *    byte-identical per-trial trace files. Wall-clock cost lives in the
 *    separate Metrics registry (trace/metrics.hh), which is explicitly
 *    non-canonical.
 *  - **Two wire formats.** JSONL (one self-describing object per line,
 *    greppable, streamable) and the Chrome trace-event format
 *    (`chrome://tracing` / Perfetto "legacy JSON"), both rendered from
 *    the same TraceEvent values. See docs/TRACING.md for the full event
 *    schema and a worked example.
 *
 * Event categories map to the emitting layers: "power" (domain voltage
 * transitions, probe attach/detach, droop/surge transients), "sram"
 * (array state-machine transitions and decay-sweep summaries), "soc"
 * (boot-ROM phases), "core" (the four Volt Boot attack steps) and
 * "campaign" (per-trial spans).
 */

#ifndef VOLTBOOT_TRACE_TRACE_HH
#define VOLTBOOT_TRACE_TRACE_HH

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/units.hh"

namespace voltboot
{
namespace trace
{

/** Render @p value as a shortest-round-trip JSON number (locale-free,
 * byte-stable across platforms; nan/inf render as null). */
std::string jsonNumber(double value);

/** Quote and escape @p s as a JSON string literal. */
std::string jsonQuote(const std::string &s);

/**
 * One named event argument, pre-rendered to JSON.
 *
 * Rendering at construction keeps TraceEvent a plain value type: sinks
 * and serializers never need type dispatch, and the JSONL/Chrome
 * writers stay trivially byte-deterministic.
 */
struct Arg
{
    std::string key;
    std::string json; ///< Rendered JSON value (number/string/bool).

    Arg(std::string k, const char *v) : key(std::move(k)), json(jsonQuote(v))
    {}
    Arg(std::string k, const std::string &v)
        : key(std::move(k)), json(jsonQuote(v))
    {}
    template <typename T,
              std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
    Arg(std::string k, T v) : key(std::move(k))
    {
        if constexpr (std::is_same_v<T, bool>)
            json = v ? "true" : "false";
        else if constexpr (std::is_floating_point_v<T>)
            json = jsonNumber(static_cast<double>(v));
        else
            json = std::to_string(v);
    }
};

/** Trace-event phase, mirroring the Chrome trace-event format. */
enum class Phase
{
    Instant,  ///< A point in time ("i").
    Complete, ///< A span with a duration ("X").
    Counter,  ///< A sampled counter value ("C").
};

/** Chrome phase letter for @p phase. */
const char *phaseLetter(Phase phase);

/** One structured event. Timestamps are simulation time. */
struct TraceEvent
{
    Phase phase = Phase::Instant;
    /** Emitting layer: "power" | "sram" | "soc" | "core" | "campaign".
     * Must point at a string literal (events outlive call sites). */
    const char *category = "core";
    std::string name;
    Seconds ts{0.0};  ///< Simulation time of the event (span start).
    Seconds dur{0.0}; ///< Span length; meaningful for Complete only.
    std::vector<Arg> args;
};

/**
 * Destination for emitted events.
 *
 * Implementations must tolerate record() from exactly one thread at a
 * time (sinks are installed per-thread; the engine never shares one
 * sink across concurrently running threads).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /** Consume one event. */
    virtual void record(const TraceEvent &event) = 0;
    /** Push any buffered output to its final destination. */
    virtual void flush() {}
};

/** Collects events in memory, in emission order (tests, serializers,
 * per-trial campaign buffers). */
class MemoryTraceSink : public TraceSink
{
  public:
    void record(const TraceEvent &event) override
    { events_.push_back(event); }

    const std::vector<TraceEvent> &events() const { return events_; }
    void clear() { events_.clear(); }

  private:
    std::vector<TraceEvent> events_;
};

/** Streams events to a file as JSONL, one line per record() call. */
class JsonlFileSink : public TraceSink
{
  public:
    /** Opens @p path for writing; fatal() on failure. */
    explicit JsonlFileSink(const std::string &path);
    ~JsonlFileSink() override;

    void record(const TraceEvent &event) override;
    void flush() override;

  private:
    struct Impl;
    Impl *impl_;
};

/** @name Serializers (shared by the sinks and the CLI writers) */
///@{
/** One JSONL line (no trailing newline). */
std::string toJsonlLine(const TraceEvent &event);
/** Newline-terminated JSONL document for a whole event sequence. */
std::string toJsonl(std::span<const TraceEvent> events);
/** A `{"traceEvents":[...]}` document for chrome://tracing / Perfetto.
 * Timestamps are emitted in microseconds of simulation time. */
std::string toChromeTrace(std::span<const TraceEvent> events);
///@}

/** @name Per-thread tracer state
 *
 * The installed sink, the simulation clock mirror and the metrics
 * registry are all thread-local, which is what keeps campaign workers
 * (one hermetic trial per thread at a time) from interleaving events.
 */
///@{

/** True when a sink is installed on this thread. Emission sites guard
 * on this before building events. */
bool enabled();

/** Deliver @p event to this thread's sink; no-op when disabled. */
void emit(TraceEvent event);

/** This thread's view of simulation time. Updated by the Soc/power
 * layers as their event queue advances; emitters without their own
 * clock (e.g. MemoryArray) stamp events with it. */
Seconds simTime();
void setSimTime(Seconds now);

/** The thread's Metrics registry, or nullptr. See trace/metrics.hh. */
class Metrics *metricsRegistry();
void setMetricsRegistry(class Metrics *metrics);

/**
 * RAII installation of a sink on the current thread.
 *
 * Entering a Scope resets the thread's simulation clock to zero (each
 * traced unit of work — an attack run, a campaign trial — starts its
 * own timeline); leaving it flushes the sink and restores the previous
 * sink and clock, so scopes nest.
 */
class Scope
{
  public:
    explicit Scope(TraceSink &sink);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    TraceSink *prev_sink_;
    Seconds prev_time_;
};

/** RAII installation of a Metrics registry on the current thread. */
class MetricsScope
{
  public:
    explicit MetricsScope(class Metrics *metrics);
    ~MetricsScope();
    MetricsScope(const MetricsScope &) = delete;
    MetricsScope &operator=(const MetricsScope &) = delete;

  private:
    class Metrics *prev_;
};

/** Emit an Instant event at the current simulation time. */
void instant(const char *category, std::string name,
             std::vector<Arg> args = {});

/**
 * Emit a Counter event sampling @p value at the current simulation
 * time. The value travels as the single numeric argument `v`, which is
 * what Perfetto's counter-track rendering and the report layer's
 * waveform extraction both expect. The power layer samples each
 * domain's supply as `counter("power", "voltage.<domain>", volts)`.
 */
void counter(const char *category, std::string name, double value);

/**
 * A simulation-time span: captures simTime() at construction and emits
 * one Complete event covering [start, simTime()] at end() (or at
 * destruction). Args may be attached as results become known. Cheap
 * and inert when tracing is off.
 */
class Span
{
  public:
    Span(const char *category, std::string name);
    ~Span();
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach an argument to the eventual Complete event. */
    void arg(Arg a);

    /** Close the span and emit it. Idempotent. */
    void end();

  private:
    bool live_;
    TraceEvent event_;
};

///@}

} // namespace trace
} // namespace voltboot

#endif // VOLTBOOT_TRACE_TRACE_HH

#include "trace/metrics.hh"

#include <algorithm>

#include "trace/trace.hh"

namespace voltboot
{
namespace trace
{

void
Metrics::add(const std::string &name, double delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
Metrics::set(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
Metrics::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Reservoir &r = histograms_[name];
    if (r.total == 0) {
        r.min = value;
        r.max = value;
    } else {
        r.min = std::min(r.min, value);
        r.max = std::max(r.max, value);
    }
    ++r.total;
    r.sum += value;
    r.samples.push_back(value);
    if (r.samples.size() >= kHistogramSampleCap) {
        // Decimate deterministically: sort, keep every second sample.
        // Uniform in rank space, so the percentile estimates move by
        // at most one rank's worth of value.
        std::sort(r.samples.begin(), r.samples.end());
        size_t kept = 0;
        for (size_t i = 0; i < r.samples.size(); i += 2)
            r.samples[kept++] = r.samples[i];
        r.samples.resize(kept);
    }
}

namespace
{

/** Nearest-rank percentile of an already-sorted sample vector. */
double
percentile(const std::vector<double> &sorted, double q)
{
    const size_t n = sorted.size();
    const size_t rank = std::min(
        n - 1, static_cast<size_t>(q * static_cast<double>(n)));
    return sorted[rank];
}

} // namespace

MetricsSnapshot
Metrics::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters = counters_;
    snap.gauges = gauges_;
    for (const auto &[name, r] : histograms_) {
        if (r.total == 0)
            continue;
        std::vector<double> sorted = r.samples;
        std::sort(sorted.begin(), sorted.end());
        HistogramSummary h;
        // Count, mean, min and max come from the exact running
        // moments; only the percentiles read the (possibly decimated)
        // retained set.
        h.count = r.total;
        h.mean = r.sum / static_cast<double>(r.total);
        h.min = r.min;
        h.max = r.max;
        h.p50 = percentile(sorted, 0.50);
        h.p90 = percentile(sorted, 0.90);
        h.p99 = percentile(sorted, 0.99);
        snap.histograms[name] = h;
    }
    return snap;
}

std::string
Metrics::toJson() const
{
    return snapshot().toJson();
}

std::string
MetricsSnapshot::toJson(int indent) const
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    std::string out = "{\n";
    out += pad + "  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out += first ? "\n" : ",\n";
        out += pad + "    " + jsonQuote(name) + ": " + jsonNumber(value);
        first = false;
    }
    out += first ? "},\n" : "\n" + pad + "  },\n";
    out += pad + "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges) {
        out += first ? "\n" : ",\n";
        out += pad + "    " + jsonQuote(name) + ": " + jsonNumber(value);
        first = false;
    }
    out += first ? "},\n" : "\n" + pad + "  },\n";
    out += pad + "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        out += first ? "\n" : ",\n";
        out += pad + "    " + jsonQuote(name) + ": {\"count\": " +
               std::to_string(h.count) + ", \"mean\": " +
               jsonNumber(h.mean) + ", \"min\": " + jsonNumber(h.min) +
               ", \"max\": " + jsonNumber(h.max) + ", \"p50\": " +
               jsonNumber(h.p50) + ", \"p90\": " + jsonNumber(h.p90) +
               ", \"p99\": " + jsonNumber(h.p99) + "}";
        first = false;
    }
    out += first ? "}\n" : "\n" + pad + "  }\n";
    out += pad + "}";
    return out;
}

} // namespace trace
} // namespace voltboot

#include "trace/metrics.hh"

#include <algorithm>

#include "trace/trace.hh"

namespace voltboot
{
namespace trace
{

void
Metrics::add(const std::string &name, double delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
Metrics::set(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
Metrics::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    histograms_[name].push_back(value);
}

namespace
{

/** Nearest-rank percentile of an already-sorted sample vector. */
double
percentile(const std::vector<double> &sorted, double q)
{
    const size_t n = sorted.size();
    const size_t rank = std::min(
        n - 1, static_cast<size_t>(q * static_cast<double>(n)));
    return sorted[rank];
}

} // namespace

MetricsSnapshot
Metrics::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters = counters_;
    snap.gauges = gauges_;
    for (const auto &[name, samples] : histograms_) {
        if (samples.empty())
            continue;
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        HistogramSummary h;
        h.count = sorted.size();
        double sum = 0.0;
        for (double v : sorted)
            sum += v;
        h.mean = sum / static_cast<double>(sorted.size());
        h.min = sorted.front();
        h.max = sorted.back();
        h.p50 = percentile(sorted, 0.50);
        h.p90 = percentile(sorted, 0.90);
        h.p99 = percentile(sorted, 0.99);
        snap.histograms[name] = h;
    }
    return snap;
}

std::string
Metrics::toJson() const
{
    return snapshot().toJson();
}

std::string
MetricsSnapshot::toJson(int indent) const
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    std::string out = "{\n";
    out += pad + "  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out += first ? "\n" : ",\n";
        out += pad + "    " + jsonQuote(name) + ": " + jsonNumber(value);
        first = false;
    }
    out += first ? "},\n" : "\n" + pad + "  },\n";
    out += pad + "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges) {
        out += first ? "\n" : ",\n";
        out += pad + "    " + jsonQuote(name) + ": " + jsonNumber(value);
        first = false;
    }
    out += first ? "},\n" : "\n" + pad + "  },\n";
    out += pad + "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        out += first ? "\n" : ",\n";
        out += pad + "    " + jsonQuote(name) + ": {\"count\": " +
               std::to_string(h.count) + ", \"mean\": " +
               jsonNumber(h.mean) + ", \"min\": " + jsonNumber(h.min) +
               ", \"max\": " + jsonNumber(h.max) + ", \"p50\": " +
               jsonNumber(h.p50) + ", \"p90\": " + jsonNumber(h.p90) +
               ", \"p99\": " + jsonNumber(h.p99) + "}";
        first = false;
    }
    out += first ? "}\n" : "\n" + pad + "  }\n";
    out += pad + "}";
    return out;
}

} // namespace trace
} // namespace voltboot

/**
 * @file
 * A small metrics registry: counters, gauges and histograms.
 *
 * Metrics complement the event trace (trace/trace.hh): where the trace
 * answers "what happened, when, in simulation time", metrics aggregate
 * *cost* — wall-clock durations, queue grabs, trial counts — and are
 * therefore explicitly **non-canonical**: two runs of the same campaign
 * produce the same trace bytes but different metric values. Canonical
 * outputs (campaign JSON/CSV records, trace files) must never embed a
 * metrics snapshot; CampaignResult keeps its snapshot in the opt-in
 * timing section for exactly this reason.
 *
 * The registry is thread-safe (one mutex; registration and observation
 * are far off any per-cell hot path) so a campaign's worker pool can
 * share one registry. Snapshots are order-independent: counters sum,
 * gauges keep their last value, histogram summaries are computed from
 * the sorted sample set — so a snapshot of deterministic observations
 * is itself deterministic regardless of thread schedule.
 */

#ifndef VOLTBOOT_TRACE_METRICS_HH
#define VOLTBOOT_TRACE_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace voltboot
{
namespace trace
{

/** Order statistics of one histogram's samples. */
struct HistogramSummary
{
    uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/**
 * A plain-value copy of a registry's state at one instant.
 *
 * Copyable and comparable; CampaignResult embeds one so sweep outputs
 * can carry per-trial timing percentiles without holding a live
 * (mutex-owning) registry.
 */
struct MetricsSnapshot
{
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSummary> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }

    /**
     * Render as a JSON object with sorted keys. @p indent is the number
     * of leading spaces applied to every line after the first, so the
     * snapshot can be embedded in a larger document.
     */
    std::string toJson(int indent = 0) const;
};

/** Counters / gauges / histograms, keyed by dotted names
 * (e.g. "campaign.trial_wall_s"). */
class Metrics
{
  public:
    /**
     * Per-histogram retained-sample bound.
     *
     * observe() keeps raw samples so snapshots can report order
     * statistics, but an unbounded campaign must not grow memory
     * without bound. When a histogram reaches this many retained
     * samples it is decimated: the retained set is sorted and every
     * second sample kept — deterministic (no RNG), and uniform across
     * the distribution, so percentiles stay stable at the cap.
     * `count`, `mean`, `min` and `max` are tracked exactly regardless;
     * only the percentile estimates coarsen past the cap.
     */
    static constexpr size_t kHistogramSampleCap = 4096;

    /** Add @p delta to counter @p name (created at zero). */
    void add(const std::string &name, double delta = 1.0);

    /** Set gauge @p name to @p value. */
    void set(const std::string &name, double value);

    /** Record one sample into histogram @p name. At most
     * kHistogramSampleCap samples are retained per histogram (see
     * above); intended for per-trial/per-step cardinality, not
     * per-cell. */
    void observe(const std::string &name, double value);

    /** Copy out the current state. */
    MetricsSnapshot snapshot() const;

    /** snapshot().toJson() convenience. */
    std::string toJson() const;

  private:
    /** One histogram's retained samples plus exact running moments. */
    struct Reservoir
    {
        std::vector<double> samples; ///< Retained (possibly decimated).
        uint64_t total = 0;          ///< Exact observation count.
        double sum = 0.0;            ///< Exact sum of all observations.
        double min = 0.0;            ///< Exact; valid when total > 0.
        double max = 0.0;            ///< Exact; valid when total > 0.
    };

    mutable std::mutex mutex_;
    std::map<std::string, double> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Reservoir> histograms_;
};

} // namespace trace
} // namespace voltboot

#endif // VOLTBOOT_TRACE_METRICS_HH

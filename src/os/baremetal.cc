#include "os/baremetal.hh"

#include "sim/logging.hh"

namespace voltboot
{

BareMetalResult
BareMetalRunner::runOn(size_t core, const std::string &source,
                       uint64_t load_address, uint64_t max_steps)
{
    Program program = Assembler::assemble(source);
    program.load_address = load_address;
    last_program_ = program;

    soc_.loadProgram(program);
    // Boot code must invalidate before enabling caches: power-on tag RAM
    // holds garbage that would otherwise fake hits.
    soc_.memory().l1i(core).invalidateAll();
    soc_.memory().l1d(core).invalidateAll();

    BareMetalResult r;
    r.core = core;
    r.steps = soc_.runCore(core, load_address, max_steps);
    r.fault = soc_.cpu(core).fault();
    r.halted_cleanly =
        soc_.cpu(core).halted() && r.fault == CpuFault::None;
    return r;
}

std::vector<BareMetalResult>
BareMetalRunner::runOnAllCores(const std::string &source,
                               uint64_t load_address, uint64_t max_steps)
{
    std::vector<BareMetalResult> results;
    for (size_t core = 0; core < soc_.coreCount(); ++core)
        results.push_back(runOn(core, source, load_address, max_steps));
    return results;
}

} // namespace voltboot

/**
 * @file
 * Bare-metal execution harness: loads an assembled victim program onto a
 * powered Soc and runs it on one or all cores, the way the paper's
 * Section 7.1.1 experiments drive their Raspberry Pis.
 */

#ifndef VOLTBOOT_OS_BAREMETAL_HH
#define VOLTBOOT_OS_BAREMETAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "soc/soc.hh"

namespace voltboot
{

/** Result of one core's bare-metal run. */
struct BareMetalResult
{
    size_t core;
    uint64_t steps;
    bool halted_cleanly;
    CpuFault fault;
};

/** Loads and runs vb64 programs on a Soc without any OS. */
class BareMetalRunner
{
  public:
    explicit BareMetalRunner(Soc &soc) : soc_(soc) {}

    /**
     * Assemble @p source, load it at @p load_address (overrides any .org)
     * and run it to completion on core @p core. Invalidates that core's
     * L1 tags first, as real boot code must before enabling caches.
     */
    BareMetalResult runOn(size_t core, const std::string &source,
                          uint64_t load_address = 0x1000,
                          uint64_t max_steps = 20'000'000);

    /** Run @p source on every core (same image, per-core execution). */
    std::vector<BareMetalResult> runOnAllCores(
        const std::string &source, uint64_t load_address = 0x1000,
        uint64_t max_steps = 20'000'000);

    /** The last program loaded (ground-truth machine code). */
    const Program &lastProgram() const { return last_program_; }

  private:
    Soc &soc_;
    Program last_program_;
};

} // namespace voltboot

#endif // VOLTBOOT_OS_BAREMETAL_HH

#include "os/linux_model.hh"

#include "sim/logging.hh"

namespace voltboot
{

namespace
{

/** DRAM layout used by the model (offsets from dram_base). */
constexpr uint64_t kVictimBaseOffset = 0x40000;
constexpr uint64_t kVictimStride = 0x10000; // 64 KB per core
constexpr uint64_t kKernelRegionOffset = 0x100000;

} // namespace

LinuxModel::LinuxModel(Soc &soc, LinuxModelConfig config)
    : soc_(soc), config_(config), rng_(config.seed)
{
    const size_t need = kKernelRegionOffset + config_.kernel_region_bytes;
    if (soc_.config().dram_bytes < need)
        fatal("LinuxModel: DRAM too small for the benchmark layout (need ",
              need, " bytes)");
}

void
LinuxModel::boot()
{
    if (!soc_.poweredOn())
        fatal("LinuxModel: power on the SoC before booting the kernel");
    for (size_t core = 0; core < soc_.coreCount(); ++core) {
        soc_.memory().l1i(core).invalidateAll();
        soc_.memory().l1d(core).invalidateAll();
        soc_.port(core).setCacheEnables(true, true);
    }
}

void
LinuxModel::kernelNoise(size_t core, size_t count)
{
    Cache &l1d = soc_.memory().l1d(core);
    const uint64_t region =
        soc_.config().dram_base + kKernelRegionOffset;
    for (size_t i = 0; i < count; ++i) {
        uint64_t addr;
        if (rng_.chance(config_.kernel_hot_fraction)) {
            // Hot kernel structures: tight reuse, almost always hits.
            addr = region + (rng_.below(config_.kernel_hot_bytes / 8) * 8);
        } else {
            // Cold sweeps (page cache, slab churn): these allocate and
            // evict.
            addr = region +
                   (rng_.below(config_.kernel_region_bytes / 8) * 8);
        }
        // Mix of reads and writes.
        if (rng_.chance(0.3))
            l1d.write64(addr, rng_.next(), /*secure=*/false);
        else
            l1d.read64(addr, /*secure=*/false);
        ++noise_count_;
    }
}

std::vector<VictimArray>
LinuxModel::runArrayBenchmark(size_t array_bytes)
{
    if (array_bytes % 8)
        fatal("LinuxModel: array size must be 8-byte aligned");
    const size_t n = array_bytes / 8;
    std::vector<VictimArray> truth(soc_.coreCount());

    // Victim setup: each core's process fills its private array with
    // unique elements (an 8-byte element is "recovered" only if all its
    // bytes appear in the post-attack dump, Table 4's rule).
    for (size_t core = 0; core < soc_.coreCount(); ++core) {
        VictimArray &v = truth[core];
        v.base = soc_.config().dram_base + kVictimBaseOffset +
                 core * kVictimStride;
        if (array_bytes > kVictimStride)
            fatal("LinuxModel: array exceeds the per-core victim window");
        v.elements.resize(n);
        Cache &l1d = soc_.memory().l1d(core);
        for (size_t i = 0; i < n; ++i) {
            v.elements[i] = 0xA500000000000000ull |
                            (static_cast<uint64_t>(core) << 48) |
                            (i + 1);
            l1d.write64(v.base + i * 8, v.elements[i], /*secure=*/false);
        }
    }

    // Steady-state phase: victims loop over their arrays; the kernel's
    // background work interleaves. The noise is spread uniformly through
    // each pass rather than batched, like timer ticks and daemons.
    const double noise_per_access = config_.kernel_noise_per_victim_access;
    for (size_t pass = 0; pass < config_.victim_passes; ++pass) {
        const bool last = pass + 1 == config_.victim_passes;
        // The power cut lands mid-pass at a random element.
        const size_t cut = last ? rng_.below(n) : n;
        for (size_t core = 0; core < soc_.coreCount(); ++core) {
            Cache &l1d = soc_.memory().l1d(core);
            const VictimArray &v = truth[core];
            for (size_t i = 0; i < cut; ++i) {
                l1d.read64(v.base + i * 8, /*secure=*/false);
                if (rng_.uniform() < noise_per_access)
                    kernelNoise(core, 1);
            }
        }
    }
    return truth;
}

void
LinuxModel::runProgramOnCore(size_t core, const Program &program,
                             uint64_t max_steps)
{
    soc_.loadProgram(program);
    soc_.runCore(core, program.load_address, max_steps);
}

std::vector<LinuxModel::ProcessSpace>
LinuxModel::runMultiProcessWorkload(size_t processes, size_t pages_each,
                                    size_t timeslices)
{
    if (!soc_.poweredOn())
        fatal("LinuxModel: power on before running processes");
    if (processes == 0 || pages_each == 0)
        fatal("LinuxModel: need at least one process and one page");

    // Kernel-owned page tables live in a DRAM region past the victim
    // windows; each process gets a root page plus an allocator arena.
    const uint64_t table_base = soc_.config().dram_base + 0x180000;
    const uint64_t arena_step = 0x8000;
    soc_.dtlb(0).invalidateAll();

    std::vector<ProcessSpace> spaces;
    std::vector<PageTable> tables;
    tables.reserve(processes);
    for (size_t p = 0; p < processes; ++p) {
        const uint64_t root = table_base + p * arena_step;
        tables.emplace_back(*soc_.memory().mainMemory(), root,
                            root + 0x1000);
        ProcessSpace space;
        space.asid = static_cast<uint16_t>(p + 1);
        for (size_t page = 0; page < pages_each; ++page) {
            // Distinct VA layout per process (heap at 0x7fP00000) and
            // distinct physical frames.
            const uint64_t va =
                0x7f000000ull + (p << 20) + page * 4096;
            const uint64_t pa = soc_.config().dram_base + 0x40000 +
                                (p * pages_each + page) * 4096;
            tables[p].map(va, pa, /*writable=*/true);
            space.va_pa_pages.emplace_back(va, pa);
        }
        spaces.push_back(std::move(space));
    }

    // Round-robin scheduling: each timeslice switches the MMU to the
    // next process (ASID change, no TLB flush) and touches its pages.
    for (size_t slice = 0; slice < timeslices; ++slice) {
        const size_t p = slice % processes;
        Mmu proc_mmu(soc_.dtlb(0), tables[p]);
        proc_mmu.setEnabled(true);
        proc_mmu.setAsid(spaces[p].asid);
        for (const auto &[va, pa] : spaces[p].va_pa_pages) {
            const auto translated = proc_mmu.translate(va + 64);
            if (!translated || (*translated & ~0xfffull) != pa)
                fatal("LinuxModel: translation fault for asid ",
                      spaces[p].asid);
            // Touch the page through the d-cache as the process would.
            soc_.memory().l1d(0).read64(*translated & ~7ull,
                                        /*secure=*/false);
        }
    }
    return spaces;
}

} // namespace voltboot

#include "os/workloads.hh"

#include <sstream>

#include "sim/logging.hh"

namespace voltboot
{
namespace workloads
{

std::string
loadImm64(const std::string &reg, uint64_t value)
{
    std::ostringstream os;
    os << "    movz " << reg << ", #" << (value & 0xffff) << "\n";
    for (int part = 1; part < 4; ++part) {
        const uint64_t chunk = (value >> (16 * part)) & 0xffff;
        if (chunk)
            os << "    movk " << reg << ", #" << chunk << ", lsl #"
               << 16 * part << "\n";
    }
    return os.str();
}

std::string
nopFiller(size_t nop_words)
{
    std::ostringstream os;
    os << "// Section 7.1.1 victim: i-cache NOP filler\n";
    // Enable both caches: SCTLR.C | SCTLR.I = (1<<2)|(1<<12) = 0x1004.
    os << "    movz x0, #0x1004\n";
    os << "    msr sctlr_el1, x0\n";
    for (size_t i = 0; i < nop_words; ++i)
        os << "    nop\n";
    os << "    hlt\n";
    return os.str();
}

std::string
patternStore(uint64_t base, size_t bytes, uint8_t pattern)
{
    if (bytes % 8)
        fatal("patternStore: size must be 8-byte aligned");
    uint64_t word = 0;
    for (int i = 0; i < 8; ++i)
        word |= static_cast<uint64_t>(pattern) << (8 * i);

    std::ostringstream os;
    os << "// Section 7.1.2 victim: store pattern 0x" << std::hex
       << static_cast<int>(pattern) << std::dec << " over " << bytes
       << " bytes\n";
    os << "    movz x0, #0x1004\n";
    os << "    msr sctlr_el1, x0\n";
    os << loadImm64("x1", base);      // cursor
    os << loadImm64("x2", word);      // pattern word
    os << loadImm64("x3", bytes / 8); // remaining words
    os << "store_loop:\n";
    os << "    str x2, [x1]\n";
    os << "    add x1, x1, #8\n";
    os << "    sub x3, x3, #1\n";
    os << "    cbnz x3, store_loop\n";
    // Read everything back (keeps lines resident and exercised).
    os << loadImm64("x1", base);
    os << loadImm64("x3", bytes / 8);
    os << "read_loop:\n";
    os << "    ldr x4, [x1]\n";
    os << "    add x1, x1, #8\n";
    os << "    sub x3, x3, #1\n";
    os << "    cbnz x3, read_loop\n";
    os << "    hlt\n";
    return os.str();
}

std::string
vectorFill(uint8_t even_pattern, uint8_t odd_pattern)
{
    std::ostringstream os;
    os << "// Section 7.2 victim: fill v0..v31 with patterns\n";
    for (unsigned v = 0; v < 32; ++v) {
        const unsigned p = (v % 2 == 0) ? even_pattern : odd_pattern;
        os << "    vdup v" << v << ", #" << p << "\n";
    }
    os << "    hlt\n";
    return os.str();
}

std::string
ramIndexDump(unsigned ram_id, size_t ways, size_t sets,
             size_t words_per_line, uint64_t dump_base)
{
    std::ostringstream os;
    os << "// Attacker extraction program (Section 6.1): RAMINDEX dump\n";
    os << "// caches stay DISABLED so this program cannot pollute them\n";
    os << loadImm64("x10", dump_base); // output cursor
    os << loadImm64("x1", ways);
    os << "    movz x2, #0\n"; // way
    os << "way_loop:\n";
    os << loadImm64("x3", sets);
    os << "    movz x4, #0\n"; // set
    os << "set_loop:\n";
    os << loadImm64("x5", words_per_line);
    os << "    movz x6, #0\n"; // word
    os << "word_loop:\n";
    // descriptor = ram_id<<56 | way<<48 | set<<8 | word
    os << "    movz x7, #" << (ram_id & 0xf) << "\n";
    os << "    lsl x7, x7, #8\n";
    os << "    orr x7, x7, x2\n"; // ..ram_id<<8 | way
    os << "    lsl x7, x7, #48\n";
    os << "    lsl x8, x4, #8\n";
    os << "    orr x7, x7, x8\n";
    os << "    orr x7, x7, x6\n";
    // The TRM-mandated barrier pair, then the co-processor read.
    os << "    dsb sy\n";
    os << "    isb\n";
    os << "    ramindex x9, x7\n";
    os << "    str x9, [x10]\n";
    os << "    add x10, x10, #8\n";
    os << "    add x6, x6, #1\n";
    os << "    cmp x6, x5\n";
    os << "    b.lt word_loop\n";
    os << "    add x4, x4, #1\n";
    os << "    cmp x4, x3\n";
    os << "    b.lt set_loop\n";
    os << "    add x2, x2, #1\n";
    os << "    cmp x2, x1\n";
    os << "    b.lt way_loop\n";
    os << "    hlt\n";
    return os.str();
}

std::vector<uint8_t>
patternStoreGroundTruth(size_t bytes, uint8_t pattern)
{
    return std::vector<uint8_t>(bytes, pattern);
}

namespace
{
// The MAC's multiply constant (odd, so invertible mod 2^64).
constexpr uint64_t kSigCheckMultiplier = 0x9e3779b97f4a7c15ULL;
} // namespace

uint64_t
signatureCheckTag(const std::vector<uint64_t> &words)
{
    uint64_t acc = 0;
    for (const uint64_t w : words)
        acc = (acc ^ w) * kSigCheckMultiplier;
    return acc;
}

std::string
signatureCheck(uint64_t fw_base, size_t fw_words, uint64_t expected_tag,
               uint64_t result_addr)
{
    if (fw_words == 0)
        fatal("signatureCheck: firmware must be at least one word");
    std::ostringstream os;
    os << "// Glitch victim: secure-boot signature check over "
       << fw_words << " firmware words\n";
    os << "    movz x9, #0\n"; // verdict defaults to fail
    os << loadImm64("x10", result_addr);
    os << "    movz x0, #0\n"; // MAC accumulator
    os << loadImm64("x1", fw_base);
    os << loadImm64("x2", fw_words);
    os << loadImm64("x5", kSigCheckMultiplier);
    os << "mac_loop:\n";
    os << "    ldr x3, [x1]\n";
    os << "    eor x0, x0, x3\n";
    os << "    mul x0, x0, x5\n";
    os << "    add x1, x1, #8\n";
    os << "    sub x2, x2, #1\n";
    os << "    cbnz x2, mac_loop\n";
    os << loadImm64("x6", expected_tag);
    os << "    cmp x0, x6\n";
    os << "    b.ne reject\n";
    os << "pass:\n";
    os << "    movz x9, #1\n";
    os << "reject:\n";
    os << "    str x9, [x10]\n";
    os << "    hlt\n";
    return os.str();
}

} // namespace workloads
} // namespace voltboot

/**
 * @file
 * A lightweight model of a Linux system under test — enough OS dynamics
 * to reproduce the paper's Table 4 and Figure 8.
 *
 * The paper's observation is architectural, not about Linux internals:
 * when a victim's working set approaches the L1 size, kernel background
 * activity evicts victim lines, so the fraction of the victim's data an
 * attacker recovers from the d-cache falls from 100% to ~90%. We model
 * exactly that mechanism: per-core victim processes stream over their
 * arrays through the real simulated caches while "kernel" accesses with a
 * configurable rate touch random lines in a separate kernel region.
 */

#ifndef VOLTBOOT_OS_LINUX_MODEL_HH
#define VOLTBOOT_OS_LINUX_MODEL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.hh"
#include "soc/soc.hh"

namespace voltboot
{

/** Tunables of the OS contention model. */
struct LinuxModelConfig
{
    /**
     * Kernel/daemon accesses per victim access, per core. Expressing the
     * noise per victim access (rather than per pass) models wall-clock
     * fairly: a benchmark looping over a small array completes passes
     * proportionally faster, so each pass absorbs proportionally less
     * kernel interference. The default calibrates the Table 4 shape:
     * ~100% recovery below the cache size, ~10% loss at cache size.
     */
    double kernel_noise_per_victim_access = 0.025;
    /** Bytes of kernel working set the noise touches (per core). */
    size_t kernel_region_bytes = 256 * 1024;
    /**
     * Fraction of kernel accesses that land in a small hot set (timer
     * tick handlers, scheduler data): these mostly hit in the cache and
     * exert little eviction pressure. The cold remainder sweeps the full
     * kernel region and does the evicting. Real kernels are strongly
     * locality-dominated, which is why a 4 KB victim array survives at
     * 100% while a cache-sized one loses ~10% (Table 4).
     */
    double kernel_hot_fraction = 0.85;
    /** Size of the kernel's hot working set. */
    size_t kernel_hot_bytes = 8 * 1024;
    /** Victim passes over the array before the attack strikes. */
    size_t victim_passes = 12;
    /** RNG seed for scheduling noise. */
    uint64_t seed = 0x11eb;
};

/** Ground truth of one core's victim benchmark. */
struct VictimArray
{
    uint64_t base = 0;
    std::vector<uint64_t> elements; ///< 8-byte values written, in order.
};

/**
 * Drives victim + kernel memory traffic over a booted Soc.
 *
 * The caller powers the Soc on; boot() invalidates and enables the
 * caches the way a kernel would, then benchmark runs issue traffic.
 */
class LinuxModel
{
  public:
    LinuxModel(Soc &soc, LinuxModelConfig config = {});

    /** Kernel boot: invalidate stale tags, enable L1s on every core. */
    void boot();

    /**
     * Run the Section 7.1.2 microbenchmark on every core: each core's
     * process fills a private array of @p array_bytes with distinct
     * 8-byte elements and then loops over it while kernel noise runs.
     * Execution stops mid-pass at a pseudo-random point, which is when
     * the attacker pulls the plug. Returns per-core ground truth.
     */
    std::vector<VictimArray> runArrayBenchmark(size_t array_bytes);

    /**
     * Run a short real program (assembled vb64) on core @p core with the
     * caches enabled, so its instructions become i-cache-resident — used
     * for the Figure 8 "grep the i-cache for the app's code" check.
     */
    void runProgramOnCore(size_t core, const Program &program,
                          uint64_t max_steps = 2'000'000);

    /**
     * Ground truth of one simulated process in the multi-process
     * workload: its ASID and the VA->PA mappings of its private pages.
     */
    struct ProcessSpace
    {
        uint16_t asid;
        std::vector<std::pair<uint64_t, uint64_t>> va_pa_pages;
    };

    /**
     * Run a multi-process workload on core 0: @p processes processes,
     * each with its own ASID and @p pages_each private pages, scheduled
     * round-robin with the core's DTLB shared between them (no flush on
     * context switch — ASIDs disambiguate, as on real ARM kernels).
     * Returns the per-process ground truth so a post-attack TLB dump can
     * be checked for cross-process address-space leakage.
     */
    std::vector<ProcessSpace> runMultiProcessWorkload(
        size_t processes = 4, size_t pages_each = 4,
        size_t timeslices = 6);

    /** Number of kernel noise accesses issued so far (diagnostics). */
    uint64_t noiseAccesses() const { return noise_count_; }

  private:
    void kernelNoise(size_t core, size_t count);

    Soc &soc_;
    LinuxModelConfig config_;
    Rng rng_;
    uint64_t noise_count_ = 0;
};

} // namespace voltboot

#endif // VOLTBOOT_OS_LINUX_MODEL_HH

/**
 * @file
 * Victim-program generators: the bare-metal software the paper loads onto
 * its targets, written in vb64 assembly.
 *
 * Each generator returns assembly text so tests and examples can show the
 * exact victim source; assemble with Assembler::assemble.
 */

#ifndef VOLTBOOT_OS_WORKLOADS_HH
#define VOLTBOOT_OS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hh"

namespace voltboot
{
namespace workloads
{

/**
 * Section 7.1.1's victim: enable the caches, then execute a long NOP
 * slide so the i-cache fills with known machine code. @p nop_words NOPs
 * after the prologue, then hlt.
 */
std::string nopFiller(size_t nop_words);

/**
 * Section 7.1.2-style victim: enable the d-cache and store @p pattern to
 * every 8-byte word of [@p base, @p base + @p bytes), then read it all
 * back, then hlt. The stores land in the d-cache (write-back, dirty).
 */
std::string patternStore(uint64_t base, size_t bytes, uint8_t pattern);

/**
 * Section 7.2's victim: fill the vector registers v0..v31 with
 * distinguishable patterns (0xFF in even registers, 0xAA in odd ones by
 * default), then hlt. Register contents never touch memory.
 */
std::string vectorFill(uint8_t even_pattern = 0xff,
                       uint8_t odd_pattern = 0xaa);

/**
 * The attacker's post-reboot extraction program (Section 6.1): with
 * caches left disabled, loop RAMINDEX over every (way, set, word) of one
 * L1 RAM and store the words to DRAM at @p dump_base. Follows each
 * RAMINDEX with the required dsb sy; isb pair.
 *
 * @param ram_id  RamIndexDescriptor RAM id (L1D/L1I data or tag).
 * @param ways    Cache way count.
 * @param sets    Cache set count.
 * @param words_per_line  line_bytes / 8.
 * @param dump_base       DRAM address for the dump (way-major order).
 */
std::string ramIndexDump(unsigned ram_id, size_t ways, size_t sets,
                         size_t words_per_line, uint64_t dump_base);

/**
 * The glitch target: a secure-boot-style signature check. The victim
 * MACs @p fw_words 8-byte words of firmware at @p fw_base (multiply-xor
 * compression, one round per word), compares the digest against the
 * embedded @p expected_tag, and stores a verdict word to
 * @p result_addr: 1 if the image verified ("pass"), 0 otherwise
 * ("fail"). The attacker's tampered image never matches, so reaching
 * the pass path without a valid tag requires faulting the
 * compare-and-branch — the classic voltage-glitch win condition.
 */
std::string signatureCheck(uint64_t fw_base, size_t fw_words,
                           uint64_t expected_tag, uint64_t result_addr);

/**
 * The digest signatureCheck() computes over @p words — for staging a
 * *valid* image (expected_tag = signatureCheckTag(words)) or a broken
 * one (any other tag).
 */
uint64_t signatureCheckTag(const std::vector<uint64_t> &words);

/**
 * Expected ground-truth bytes for patternStore: what the victim's memory
 * region holds after the program ran.
 */
std::vector<uint8_t> patternStoreGroundTruth(size_t bytes, uint8_t pattern);

/** Emit "movz/movk" sequence loading a full 64-bit constant into @p reg. */
std::string loadImm64(const std::string &reg, uint64_t value);

} // namespace workloads
} // namespace voltboot

#endif // VOLTBOOT_OS_WORKLOADS_HH

/**
 * @file
 * Two-pass text assembler for the vb64 ISA.
 *
 * Accepts aarch64-flavoured assembly with labels, comments (';' or '//'),
 * decimal/hex immediates, and the directives:
 *
 *   .org <addr>     set the load address (affects branch targets only
 *                   insofar as branches are PC-relative word offsets)
 *   .word <value>   emit a raw 32-bit literal
 *
 * Example:
 *
 *   // fill v0..v3 with 0xAA
 *       movz x0, #0xaa
 *       vdup v0, #0xaa
 *   loop:
 *       sub x1, x1, #1
 *       cbnz x1, loop
 *       hlt
 */

#ifndef VOLTBOOT_ISA_ASSEMBLER_HH
#define VOLTBOOT_ISA_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/insn.hh"

namespace voltboot
{

/** An assembled program: words plus its intended load address. */
struct Program
{
    uint64_t load_address = 0;
    std::vector<uint32_t> words;

    /** Size in bytes. */
    size_t sizeBytes() const { return words.size() * 4; }

    /** The program as raw little-endian bytes (ground-truth image). */
    std::vector<uint8_t> bytes() const;
};

/** Two-pass assembler; throws FatalError with line info on bad input. */
class Assembler
{
  public:
    /** Assemble @p source into a Program. */
    static Program assemble(std::string_view source);

  private:
    struct Line
    {
        size_t number;
        std::string label;
        std::string mnemonic;
        std::vector<std::string> operands;
    };

    static std::vector<Line> tokenize(std::string_view source);
    static uint32_t encodeLine(const Line &line, uint64_t pc_words,
                               const std::vector<Line> &lines,
                               const std::vector<int64_t> &label_words);
};

} // namespace voltboot

#endif // VOLTBOOT_ISA_ASSEMBLER_HH

/**
 * @file
 * The vb64 CPU interpreter.
 *
 * A simple in-order core with the architectural state the attack targets:
 * x0-x30, the 128-bit vector file v0-v31 (where TRESOR-style ciphers hide
 * key schedules), NZCV, an exception level, and SCTLR cache-enable bits.
 *
 * The CPU talks to memory through the abstract MemoryPort so the memory
 * hierarchy (caches, iRAM, DRAM) lives in its own module; instruction
 * fetches go through the port too, which is how victim code ends up
 * resident in the i-cache.
 *
 * The register files are NOT plain member variables: they are backed by
 * MemoryArray storage supplied by the SoC, wired into the core power
 * domain. That is what makes "Volt Boot the register file" (Section 7.2)
 * fall out of the same physics as the caches.
 */

#ifndef VOLTBOOT_ISA_CPU_HH
#define VOLTBOOT_ISA_CPU_HH

#include <cstdint>
#include <optional>
#include <string>

#include "isa/insn.hh"
#include "sram/memory_array.hh"

namespace voltboot
{

/** Faults the core can raise. */
enum class CpuFault
{
    None,
    UndefinedInstruction,
    PrivilegeViolation, ///< e.g. RAMINDEX below EL3.
    MemoryFault,        ///< Unmapped address or TrustZone violation.
};

const char *toString(CpuFault fault);

/**
 * Architecturally visible effect of one injected timing fault — the
 * four failure modes the voltage-glitching literature observes when a
 * supply droop violates a pipeline's setup time.
 */
enum class FaultEffect
{
    None,            ///< The boundary survived; execute normally.
    Skip,            ///< The instruction never retires (pc advances).
    OpcodeCorrupt,   ///< A different word reaches the decoder.
    WrongBranch,     ///< Control transfers to an unintended target.
    RegisterBitFlip, ///< A register-file bit flips before the read.
};

const char *toString(FaultEffect effect);

/** One fault decision, with the payload its effect needs. */
struct FaultAction
{
    FaultEffect effect = FaultEffect::None;
    uint32_t insn_override = 0;  ///< OpcodeCorrupt: word to execute.
    uint64_t branch_target = 0;  ///< WrongBranch: next program counter.
    unsigned reg = 0;            ///< RegisterBitFlip: x-register index.
    unsigned bit = 0;            ///< RegisterBitFlip: bit to flip.
};

/**
 * Consulted by the core at every instruction boundary (after fetch,
 * before execute). Implementations must be deterministic functions of
 * their own state and the (pc, insn, retired) triple — the campaign
 * layer relies on byte-identical replays at any worker count.
 */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;
    virtual FaultAction onInstruction(uint64_t pc, uint32_t insn,
                                      uint64_t retired) = 0;
};

/**
 * Consulted by the core *before* each fetch. Returning false freezes the
 * core for that boundary: step() makes no architectural progress and
 * reports false, but the core is NOT halted — clearing the gate (or the
 * gate later returning true) lets execution resume exactly where it
 * stopped. This models the Chypnosis-style brown-out clock freeze: the
 * supply has sagged below the level the clock tree needs, so no edges
 * arrive, but SRAM/register state is still governed by the retention
 * model, not by instruction semantics.
 *
 * Like FaultInjector, implementations must be deterministic functions
 * of their own state and the retired-instruction count so campaign
 * replays are byte-identical at any worker count.
 */
class ClockGate
{
  public:
    virtual ~ClockGate() = default;
    /** @return true if the clock is running at this boundary. */
    virtual bool clockRunning(uint64_t retired) = 0;
};

/** Abstract memory/system interface the core executes against. */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /** Fetch a 32-bit instruction at @p addr (fills the i-cache). */
    virtual uint32_t fetch32(uint64_t addr) = 0;

    /** Data accesses (fill/evict the d-cache as configured). */
    virtual uint64_t read64(uint64_t addr) = 0;
    virtual void write64(uint64_t addr, uint64_t value) = 0;
    virtual uint8_t read8(uint64_t addr) = 0;
    virtual void write8(uint64_t addr, uint8_t value) = 0;

    /** DC ZVA: zero the whole cache line containing @p addr. */
    virtual void zeroCacheLine(uint64_t addr) = 0;
    /** DC CIVAC: clean+invalidate the line containing @p addr. */
    virtual void cleanInvalidateLine(uint64_t addr) = 0;
    /** IC IALLU: drop validity of all i-cache lines (data RAM untouched). */
    virtual void invalidateAllICache() = 0;

    /**
     * RAMINDEX debug read: @p descriptor selects RAM/way/index per the
     * SoC's encoding; returns the raw data-RAM word, valid bits ignored.
     */
    virtual uint64_t ramIndexRead(uint64_t descriptor) = 0;

    /** Toggle d-cache / i-cache enables (SCTLR writes reach the port). */
    virtual void setCacheEnables(bool dcache_on, bool icache_on) = 0;

    /** A taken branch retired (trains the branch target buffer). */
    virtual void branchTaken(uint64_t pc, uint64_t target)
    {
        (void)pc;
        (void)target;
    }
};

/**
 * One vb64 hardware thread.
 *
 * Construction wires the core to register-file backing storage; the SoC
 * attaches those arrays to the core power domain so register state obeys
 * the same retention physics as every other SRAM.
 */
class Cpu
{
  public:
    /**
     * @param core_id Core number reported by MPIDR/CoreId.
     * @param port    Memory system this core executes against.
     * @param xregs   Backing storage for x0-x30 (>= 31*8 bytes).
     * @param vregs   Backing storage for v0-v31 (>= 32*16 bytes).
     */
    Cpu(unsigned core_id, MemoryPort &port, MemoryArray &xregs,
        MemoryArray &vregs);

    unsigned coreId() const { return core_id_; }

    /** Current program counter. */
    uint64_t pc() const { return pc_; }
    void setPc(uint64_t pc) { pc_ = pc; }

    /** Exception level (0-3); EL3 is required for RAMINDEX. */
    unsigned el() const { return el_; }
    void setEl(unsigned el);

    /** General-purpose register access (reads of x31 return 0). */
    uint64_t x(unsigned idx) const;
    void setX(unsigned idx, uint64_t value);

    /** Vector register access, 64-bit halves. */
    uint64_t v(unsigned idx, unsigned half) const;
    void setV(unsigned idx, unsigned half, uint64_t value);

    bool halted() const { return halted_; }
    CpuFault fault() const { return fault_; }
    uint64_t instructionsRetired() const { return retired_; }

    /** SCTLR_EL1 value (cache enables). */
    uint64_t sctlr() const { return sctlr_; }

    /** Reset architectural boot state (PC, flags, halt) — a warm reboot.
     * Registers are NOT cleared: hardware does not zero them, which is
     * exactly the property Section 7.2 exploits. */
    void reset(uint64_t entry_pc);

    /** Execute one instruction. Returns false once halted/faulted. */
    bool step();

    /** Install (or clear, with nullptr) the timing-fault injector
     * consulted at each instruction boundary. Not owned. */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** Install (or clear, with nullptr) the clock gate consulted before
     * each fetch. A gated core is frozen, not halted. Not owned. */
    void setClockGate(ClockGate *gate) { gate_ = gate; }

    /** True if the last step() returned false because the clock gate
     * froze the core (as opposed to a halt/fault). */
    bool frozen() const { return frozen_; }

    /** Run at most @p max_steps instructions; returns steps executed. */
    uint64_t run(uint64_t max_steps);

  private:
    void execute(uint32_t insn);
    void setFlagsForSub(uint64_t a, uint64_t b);
    bool condHolds(Cond c) const;
    void raise(CpuFault fault);

    unsigned core_id_;
    MemoryPort &port_;
    MemoryArray &xregs_;
    MemoryArray &vregs_;

    uint64_t pc_ = 0;
    unsigned el_ = 3; // bare-metal entry, like a boot ROM handing off
    uint64_t sctlr_ = 0;
    bool flag_n_ = false, flag_z_ = false, flag_c_ = false, flag_v_ = false;
    bool halted_ = false;
    CpuFault fault_ = CpuFault::None;
    uint64_t retired_ = 0;
    FaultInjector *injector_ = nullptr;
    ClockGate *gate_ = nullptr;
    bool frozen_ = false;

    // RAMINDEX requires DSB;ISB since the last memory operation
    // (Section 6.1's synchronisation-barrier requirement).
    bool dsb_done_ = false;
    bool isb_done_ = false;
};

} // namespace voltboot

#endif // VOLTBOOT_ISA_CPU_HH

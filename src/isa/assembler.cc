#include "isa/assembler.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>
#include <map>
#include <sstream>

#include "sim/logging.hh"

namespace voltboot
{

std::vector<uint8_t>
Program::bytes() const
{
    std::vector<uint8_t> out(words.size() * 4);
    for (size_t i = 0; i < words.size(); ++i) {
        out[i * 4 + 0] = words[i] & 0xff;
        out[i * 4 + 1] = (words[i] >> 8) & 0xff;
        out[i * 4 + 2] = (words[i] >> 16) & 0xff;
        out[i * 4 + 3] = (words[i] >> 24) & 0xff;
    }
    return out;
}

namespace
{

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

std::string
trim(std::string s)
{
    const auto not_space = [](unsigned char c) { return !std::isspace(c); };
    s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
    s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
    return s;
}

/** Parse a decimal or 0x-hex integer (an optional leading '#' is eaten). */
uint64_t
parseImm(const std::string &tok, size_t line)
{
    std::string t = tok;
    if (!t.empty() && t[0] == '#')
        t = t.substr(1);
    bool neg = false;
    if (!t.empty() && t[0] == '-') {
        neg = true;
        t = t.substr(1);
    }
    int base = 10;
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
        base = 16;
        t = t.substr(2);
    }
    uint64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(t.data(), t.data() + t.size(), value, base);
    if (ec != std::errc() || ptr != t.data() + t.size())
        fatal("asm line ", line, ": bad immediate '", tok, "'");
    return neg ? static_cast<uint64_t>(-static_cast<int64_t>(value)) : value;
}

/** Parse an x-register name: x0..x30, xzr, sp is not modelled. */
unsigned
parseXReg(const std::string &tok, size_t line)
{
    std::string t = lower(trim(tok));
    if (t == "xzr")
        return kZeroReg;
    if (t.size() >= 2 && t[0] == 'x') {
        unsigned n = 0;
        auto [ptr, ec] =
            std::from_chars(t.data() + 1, t.data() + t.size(), n);
        if (ec == std::errc() && ptr == t.data() + t.size() && n <= 30)
            return n;
    }
    fatal("asm line ", line, ": bad register '", tok, "'");
}

/** Parse a v-register name, optionally with a [half] selector. */
unsigned
parseVReg(const std::string &tok, size_t line, unsigned *half_out = nullptr)
{
    std::string t = lower(trim(tok));
    unsigned half = 0;
    const size_t bracket = t.find('[');
    if (bracket != std::string::npos) {
        if (t.back() != ']')
            fatal("asm line ", line, ": bad lane selector '", tok, "'");
        half = static_cast<unsigned>(
            parseImm(t.substr(bracket + 1, t.size() - bracket - 2), line));
        if (half > 1)
            fatal("asm line ", line, ": lane must be 0 or 1");
        t = t.substr(0, bracket);
    }
    if (t.size() >= 2 && t[0] == 'v') {
        unsigned n = 0;
        auto [ptr, ec] =
            std::from_chars(t.data() + 1, t.data() + t.size(), n);
        if (ec == std::errc() && ptr == t.data() + t.size() && n <= 31) {
            if (half_out)
                *half_out = half;
            return n;
        }
    }
    fatal("asm line ", line, ": bad vector register '", tok, "'");
}

/** Parse "[xn]" or "[xn, #imm]" memory operands (split across tokens). */
void
parseMemOperand(const std::vector<std::string> &ops, size_t start,
                size_t line, unsigned *rn, uint32_t *imm)
{
    // Operands arrive comma-split, so "[x0, #8]" is two tokens:
    // "[x0" and "#8]".
    if (start >= ops.size())
        fatal("asm line ", line, ": missing memory operand");
    std::string first = trim(ops[start]);
    if (first.empty() || first.front() != '[')
        fatal("asm line ", line, ": expected '[' in memory operand");
    first = first.substr(1);
    if (!first.empty() && first.back() == ']') {
        *rn = parseXReg(first.substr(0, first.size() - 1), line);
        *imm = 0;
        return;
    }
    *rn = parseXReg(first, line);
    if (start + 1 >= ops.size())
        fatal("asm line ", line, ": unterminated memory operand");
    std::string second = trim(ops[start + 1]);
    if (second.empty() || second.back() != ']')
        fatal("asm line ", line, ": expected ']' in memory operand");
    *imm = static_cast<uint32_t>(
        parseImm(second.substr(0, second.size() - 1), line));
    if (*imm > 0xfff)
        fatal("asm line ", line, ": memory offset exceeds imm12");
}

Cond
parseCondSuffix(const std::string &mnemonic, size_t line)
{
    // mnemonic is "b.eq" etc.
    const std::string suffix = mnemonic.substr(2);
    if (suffix == "eq")
        return Cond::Eq;
    if (suffix == "ne")
        return Cond::Ne;
    if (suffix == "lt")
        return Cond::Lt;
    if (suffix == "ge")
        return Cond::Ge;
    if (suffix == "gt")
        return Cond::Gt;
    if (suffix == "le")
        return Cond::Le;
    fatal("asm line ", line, ": unknown condition '", suffix, "'");
}

SysReg
parseSysReg(const std::string &tok, size_t line)
{
    const std::string t = lower(trim(tok));
    if (t == "currentel")
        return SysReg::CurrentEl;
    if (t == "sctlr_el1")
        return SysReg::SctlrEl1;
    if (t == "mpidr_el1" || t == "coreid")
        return SysReg::CoreId;
    fatal("asm line ", line, ": unknown system register '", tok, "'");
}

} // namespace

std::vector<Assembler::Line>
Assembler::tokenize(std::string_view source)
{
    std::vector<Line> lines;
    size_t line_no = 0;
    std::istringstream stream{std::string(source)};
    std::string raw;
    while (std::getline(stream, raw)) {
        ++line_no;
        // Strip comments.
        for (const char *marker : {";", "//"}) {
            const size_t pos = raw.find(marker);
            if (pos != std::string::npos)
                raw = raw.substr(0, pos);
        }
        std::string text = trim(raw);
        if (text.empty())
            continue;

        Line line;
        line.number = line_no;

        // Leading label?
        const size_t colon = text.find(':');
        if (colon != std::string::npos &&
            text.find_first_of(" \t") > colon) {
            line.label = trim(text.substr(0, colon));
            text = trim(text.substr(colon + 1));
        }

        if (!text.empty()) {
            const size_t space = text.find_first_of(" \t");
            line.mnemonic = lower(text.substr(0, space));
            if (space != std::string::npos) {
                std::string rest = trim(text.substr(space + 1));
                std::string current;
                for (char c : rest) {
                    if (c == ',') {
                        line.operands.push_back(trim(current));
                        current.clear();
                    } else {
                        current += c;
                    }
                }
                if (!trim(current).empty())
                    line.operands.push_back(trim(current));
            }
        }
        lines.push_back(std::move(line));
    }
    return lines;
}

uint32_t
Assembler::encodeLine(const Line &l, uint64_t pc_words,
                      const std::vector<Line> &lines,
                      const std::vector<int64_t> &label_words)
{
    using namespace encode;

    auto need = [&](size_t n) {
        if (l.operands.size() != n)
            fatal("asm line ", l.number, ": '", l.mnemonic, "' needs ", n,
                  " operand(s), got ", l.operands.size());
    };
    auto label_offset = [&](const std::string &name) -> int32_t {
        for (size_t i = 0; i < lines.size(); ++i) {
            if (lines[i].label == name)
                return static_cast<int32_t>(label_words[i] -
                                            static_cast<int64_t>(pc_words));
        }
        fatal("asm line ", l.number, ": unknown label '", name, "'");
    };

    const std::string &m = l.mnemonic;

    if (m == "nop")
        return op(Opcode::Nop);
    if (m == "hlt")
        return op(Opcode::Hlt);
    if (m == "dsb")
        return op(Opcode::Dsb); // operand ("sy") optional and ignored
    if (m == "isb")
        return op(Opcode::Isb);
    if (m == "ret")
        return op(Opcode::Ret);
    if (m == "ic") {
        // "ic iallu"
        if (l.operands.size() != 1 || lower(l.operands[0]) != "iallu")
            fatal("asm line ", l.number, ": only 'ic iallu' is supported");
        return op(Opcode::IcIallu);
    }
    if (m == "dc") {
        // "dc zva, xn" / "dc civac, xn"
        need(2);
        const std::string what = lower(l.operands[0]);
        const unsigned r = parseXReg(l.operands[1], l.number);
        if (what == "zva")
            return op(Opcode::DcZva) | rn(r);
        if (what == "civac")
            return op(Opcode::DcCivac) | rn(r);
        fatal("asm line ", l.number, ": unsupported dc op '", what, "'");
    }
    if (m == "movz" || m == "movk") {
        // movz xd, #imm16 [, lsl #s]
        if (l.operands.size() != 2 && l.operands.size() != 3)
            fatal("asm line ", l.number, ": movz/movk needs 2-3 operands");
        const unsigned r = parseXReg(l.operands[0], l.number);
        const uint64_t v = parseImm(l.operands[1], l.number);
        if (v > 0xffff)
            fatal("asm line ", l.number, ": imm16 out of range");
        uint32_t s = 0;
        if (l.operands.size() == 3) {
            std::string sh = lower(l.operands[2]);
            if (sh.rfind("lsl", 0) != 0)
                fatal("asm line ", l.number, ": expected lsl shift");
            const uint64_t bits = parseImm(trim(sh.substr(3)), l.number);
            if (bits % 16 != 0 || bits > 48)
                fatal("asm line ", l.number, ": shift must be 0/16/32/48");
            s = static_cast<uint32_t>(bits / 16);
        }
        const Opcode o = m == "movz" ? Opcode::Movz : Opcode::Movk;
        return op(o) | rd(r) | imm16(static_cast<uint32_t>(v)) | shift2(s);
    }
    if (m == "mov") {
        need(2);
        const unsigned d = parseXReg(l.operands[0], l.number);
        // "mov xd, #imm" becomes movz when the immediate fits.
        if (l.operands[1][0] == '#') {
            const uint64_t v = parseImm(l.operands[1], l.number);
            if (v > 0xffff)
                fatal("asm line ", l.number,
                      ": mov immediate too large; use movz/movk");
            return op(Opcode::Movz) | rd(d) |
                   imm16(static_cast<uint32_t>(v));
        }
        return op(Opcode::MovReg) | rd(d) |
               rn(parseXReg(l.operands[1], l.number));
    }

    struct RegRegImm
    {
        const char *name;
        Opcode reg_op;
        Opcode imm_op;
    };
    static const RegRegImm arith[] = {
        {"add", Opcode::AddReg, Opcode::AddImm},
        {"sub", Opcode::SubReg, Opcode::SubImm},
    };
    for (const auto &a : arith) {
        if (m == a.name) {
            need(3);
            const unsigned d = parseXReg(l.operands[0], l.number);
            const unsigned n = parseXReg(l.operands[1], l.number);
            if (l.operands[2][0] == '#') {
                const uint64_t v = parseImm(l.operands[2], l.number);
                if (v > 0xfff)
                    fatal("asm line ", l.number, ": imm12 out of range");
                return op(a.imm_op) | rd(d) | rn(n) |
                       imm12(static_cast<uint32_t>(v));
            }
            return op(a.reg_op) | rd(d) | rn(n) |
                   rm(parseXReg(l.operands[2], l.number));
        }
    }

    struct RegReg3
    {
        const char *name;
        Opcode o;
    };
    static const RegReg3 logic[] = {
        {"and", Opcode::AndReg}, {"orr", Opcode::OrrReg},
        {"eor", Opcode::EorReg}, {"subs", Opcode::SubsReg},
        {"mul", Opcode::Mul},
    };
    for (const auto &g : logic) {
        if (m == g.name) {
            need(3);
            return op(g.o) | rd(parseXReg(l.operands[0], l.number)) |
                   rn(parseXReg(l.operands[1], l.number)) |
                   rm(parseXReg(l.operands[2], l.number));
        }
    }

    if (m == "lsl" || m == "lsr") {
        need(3);
        const unsigned d = parseXReg(l.operands[0], l.number);
        const unsigned n = parseXReg(l.operands[1], l.number);
        const uint64_t v = parseImm(l.operands[2], l.number);
        if (v > 63)
            fatal("asm line ", l.number, ": shift out of range");
        return op(m == "lsl" ? Opcode::LslImm : Opcode::LsrImm) | rd(d) |
               rn(n) | imm12(static_cast<uint32_t>(v));
    }

    if (m == "ldr" || m == "str" || m == "ldrb" || m == "strb") {
        if (l.operands.size() < 2)
            fatal("asm line ", l.number, ": bad load/store");
        const unsigned t = parseXReg(l.operands[0], l.number);
        unsigned base = 0;
        uint32_t off = 0;
        parseMemOperand(l.operands, 1, l.number, &base, &off);
        Opcode o = m == "ldr"    ? Opcode::Ldr
                   : m == "str"  ? Opcode::Str
                   : m == "ldrb" ? Opcode::Ldrb
                                 : Opcode::Strb;
        return op(o) | rd(t) | rn(base) | imm12(off);
    }

    if (m == "cmp") {
        need(2);
        const unsigned n = parseXReg(l.operands[0], l.number);
        if (l.operands[1][0] == '#') {
            const uint64_t v = parseImm(l.operands[1], l.number);
            if (v > 0xfff)
                fatal("asm line ", l.number, ": imm12 out of range");
            return op(Opcode::CmpImm) | rn(n) |
                   imm12(static_cast<uint32_t>(v));
        }
        return op(Opcode::CmpReg) | rn(n) |
               rm(parseXReg(l.operands[1], l.number));
    }

    if (m == "b" || m == "bl") {
        need(1);
        const int32_t off = label_offset(l.operands[0]);
        return op(m == "b" ? Opcode::B : Opcode::Bl) | imm19(off);
    }
    if (m == "cbz" || m == "cbnz") {
        need(2);
        const unsigned t = parseXReg(l.operands[0], l.number);
        const int32_t off = label_offset(l.operands[1]);
        return op(m == "cbz" ? Opcode::Cbz : Opcode::Cbnz) | rd(t) |
               imm19(off);
    }
    if (m.size() > 2 && m[0] == 'b' && m[1] == '.') {
        need(1);
        const Cond c = parseCondSuffix(m, l.number);
        return op(Opcode::BCond) | cond(c) |
               imm19(label_offset(l.operands[0]));
    }

    if (m == "ramindex") {
        need(2);
        return op(Opcode::RamIndex) | rd(parseXReg(l.operands[0], l.number)) |
               rn(parseXReg(l.operands[1], l.number));
    }
    if (m == "mrs") {
        need(2);
        return op(Opcode::Mrs) | rd(parseXReg(l.operands[0], l.number)) |
               sysreg(parseSysReg(l.operands[1], l.number));
    }
    if (m == "msr") {
        need(2);
        return op(Opcode::Msr) | rn(parseXReg(l.operands[1], l.number)) |
               sysreg(parseSysReg(l.operands[0], l.number));
    }

    if (m == "vdup") {
        need(2);
        const unsigned v = parseVReg(l.operands[0], l.number);
        const uint64_t i = parseImm(l.operands[1], l.number);
        if (i > 0xff)
            fatal("asm line ", l.number, ": vdup immediate exceeds a byte");
        return op(Opcode::VDup) | rd(v) | imm8(static_cast<uint32_t>(i));
    }
    if (m == "vins") {
        need(2);
        unsigned h = 0;
        const unsigned v = parseVReg(l.operands[0], l.number, &h);
        return op(Opcode::VIns) | rd(v) |
               rn(parseXReg(l.operands[1], l.number)) | half(h);
    }
    if (m == "vread") {
        need(2);
        unsigned h = 0;
        const unsigned v = parseVReg(l.operands[1], l.number, &h);
        return op(Opcode::VRead) | rd(parseXReg(l.operands[0], l.number)) |
               rn(v) | half(h);
    }

    fatal("asm line ", l.number, ": unknown mnemonic '", m, "'");
}

Program
Assembler::assemble(std::string_view source)
{
    const std::vector<Line> lines = tokenize(source);

    // Pass 1: assign word addresses to every line; handle directives.
    Program program;
    std::vector<int64_t> label_words(lines.size(), -1);
    int64_t pc_words = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
        label_words[i] = pc_words;
        const Line &l = lines[i];
        if (l.mnemonic.empty())
            continue;
        if (l.mnemonic == ".org") {
            if (l.operands.size() != 1)
                fatal("asm line ", l.number, ": .org needs an address");
            program.load_address = parseImm(l.operands[0], l.number);
            continue;
        }
        ++pc_words;
    }

    // Pass 2: encode.
    int64_t word = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
        const Line &l = lines[i];
        if (l.mnemonic.empty() || l.mnemonic == ".org")
            continue;
        if (l.mnemonic == ".word") {
            if (l.operands.size() != 1)
                fatal("asm line ", l.number, ": .word needs a value");
            program.words.push_back(static_cast<uint32_t>(
                parseImm(l.operands[0], l.number)));
            ++word;
            continue;
        }
        program.words.push_back(
            encodeLine(l, static_cast<uint64_t>(word), lines, label_words));
        ++word;
    }
    return program;
}

} // namespace voltboot

#include "isa/insn.hh"

#include <sstream>

namespace voltboot
{

namespace
{

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::Eq:
        return "eq";
      case Cond::Ne:
        return "ne";
      case Cond::Lt:
        return "lt";
      case Cond::Ge:
        return "ge";
      case Cond::Gt:
        return "gt";
      case Cond::Le:
        return "le";
    }
    return "??";
}

const char *
sysRegName(SysReg s)
{
    switch (s) {
      case SysReg::CurrentEl:
        return "currentel";
      case SysReg::SctlrEl1:
        return "sctlr_el1";
      case SysReg::CoreId:
        return "coreid";
    }
    return "?sysreg?";
}

std::string
xname(unsigned r)
{
    if (r >= kZeroReg)
        return "xzr";
    return "x" + std::to_string(r);
}

} // namespace

std::string
disassemble(uint32_t insn)
{
    using namespace decode;
    std::ostringstream os;
    const Opcode o = op(insn);
    switch (o) {
      case Opcode::Nop:
        return "nop";
      case Opcode::Hlt:
        return "hlt";
      case Opcode::Movz:
        os << "movz " << xname(rd(insn)) << ", #" << imm16(insn);
        if (shift2(insn))
            os << ", lsl #" << 16 * shift2(insn);
        return os.str();
      case Opcode::Movk:
        os << "movk " << xname(rd(insn)) << ", #" << imm16(insn);
        if (shift2(insn))
            os << ", lsl #" << 16 * shift2(insn);
        return os.str();
      case Opcode::MovReg:
        os << "mov " << xname(rd(insn)) << ", " << xname(rn(insn));
        return os.str();
      case Opcode::AddImm:
        os << "add " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", #"
           << imm12(insn);
        return os.str();
      case Opcode::SubImm:
        os << "sub " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", #"
           << imm12(insn);
        return os.str();
      case Opcode::AddReg:
        os << "add " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", "
           << xname(rm(insn));
        return os.str();
      case Opcode::SubReg:
        os << "sub " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", "
           << xname(rm(insn));
        return os.str();
      case Opcode::AndReg:
        os << "and " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", "
           << xname(rm(insn));
        return os.str();
      case Opcode::OrrReg:
        os << "orr " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", "
           << xname(rm(insn));
        return os.str();
      case Opcode::EorReg:
        os << "eor " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", "
           << xname(rm(insn));
        return os.str();
      case Opcode::Mul:
        os << "mul " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", "
           << xname(rm(insn));
        return os.str();
      case Opcode::LslImm:
        os << "lsl " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", #"
           << imm12(insn);
        return os.str();
      case Opcode::LsrImm:
        os << "lsr " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", #"
           << imm12(insn);
        return os.str();
      case Opcode::Ldr:
        os << "ldr " << xname(rd(insn)) << ", [" << xname(rn(insn)) << ", #"
           << imm12(insn) << "]";
        return os.str();
      case Opcode::Str:
        os << "str " << xname(rd(insn)) << ", [" << xname(rn(insn)) << ", #"
           << imm12(insn) << "]";
        return os.str();
      case Opcode::Ldrb:
        os << "ldrb " << xname(rd(insn)) << ", [" << xname(rn(insn))
           << ", #" << imm12(insn) << "]";
        return os.str();
      case Opcode::Strb:
        os << "strb " << xname(rd(insn)) << ", [" << xname(rn(insn))
           << ", #" << imm12(insn) << "]";
        return os.str();
      case Opcode::B:
        os << "b .+" << 4 * imm19(insn);
        return os.str();
      case Opcode::Bl:
        os << "bl .+" << 4 * imm19(insn);
        return os.str();
      case Opcode::Ret:
        return "ret";
      case Opcode::Cbz:
        os << "cbz " << xname(rd(insn)) << ", .+" << 4 * imm19(insn);
        return os.str();
      case Opcode::Cbnz:
        os << "cbnz " << xname(rd(insn)) << ", .+" << 4 * imm19(insn);
        return os.str();
      case Opcode::BCond:
        os << "b." << condName(cond(insn)) << " .+" << 4 * imm19(insn);
        return os.str();
      case Opcode::CmpReg:
        os << "cmp " << xname(rn(insn)) << ", " << xname(rm(insn));
        return os.str();
      case Opcode::CmpImm:
        os << "cmp " << xname(rn(insn)) << ", #" << imm12(insn);
        return os.str();
      case Opcode::SubsReg:
        os << "subs " << xname(rd(insn)) << ", " << xname(rn(insn)) << ", "
           << xname(rm(insn));
        return os.str();
      case Opcode::DcZva:
        os << "dc zva, " << xname(rn(insn));
        return os.str();
      case Opcode::DcCivac:
        os << "dc civac, " << xname(rn(insn));
        return os.str();
      case Opcode::IcIallu:
        return "ic iallu";
      case Opcode::Dsb:
        return "dsb sy";
      case Opcode::Isb:
        return "isb";
      case Opcode::RamIndex:
        os << "ramindex " << xname(rd(insn)) << ", " << xname(rn(insn));
        return os.str();
      case Opcode::Mrs:
        os << "mrs " << xname(rd(insn)) << ", " << sysRegName(sysreg(insn));
        return os.str();
      case Opcode::Msr:
        os << "msr " << sysRegName(sysreg(insn)) << ", "
           << xname(rn(insn));
        return os.str();
      case Opcode::VDup:
        os << "vdup v" << rd(insn) << ", #" << imm8(insn);
        return os.str();
      case Opcode::VIns:
        os << "vins v" << rd(insn) << "[" << half(insn) << "], "
           << xname(rn(insn));
        return os.str();
      case Opcode::VRead:
        os << "vread " << xname(rd(insn)) << ", v" << rn(insn) << "["
           << half(insn) << "]";
        return os.str();
    }
    os << ".word 0x" << std::hex << insn;
    return os.str();
}

} // namespace voltboot

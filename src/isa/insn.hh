/**
 * @file
 * Instruction definitions for the vb64 ISA — a compact aarch64-flavoured
 * teaching subset.
 *
 * The paper's victims are bare-metal aarch64 programs; what the attack
 * needs from an ISA is (a) instructions that occupy the i-cache as bytes
 * an attacker can grep for, (b) loads/stores that populate the d-cache,
 * (c) vector registers big enough to hold AES key schedules, and (d) the
 * system/cache-maintenance surface the paper discusses: DC ZVA line
 * zeroing, clean/invalidate ops that do NOT erase data RAM, barrier
 * instructions, and the RAMINDEX debug read gated to EL3.
 *
 * vb64 keeps aarch64's register model (x0-x30 + xzr, v0-v31, NZCV, EL0-3)
 * and assembly syntax but uses its own fixed 32-bit encoding: opcode in
 * the top 8 bits, fields packed below. The encodings are deterministic,
 * so ground-truth machine-code comparison against cache dumps works
 * exactly as in the paper.
 */

#ifndef VOLTBOOT_ISA_INSN_HH
#define VOLTBOOT_ISA_INSN_HH

#include <cstdint>
#include <string>

namespace voltboot
{

/** vb64 opcodes (top 8 bits of the instruction word). */
enum class Opcode : uint8_t
{
    // 0x00 is deliberately NOT a valid opcode: zero-filled memory must
    // fault rather than execute as a NOP slide, and a NOP-filled cache
    // line must be visibly nonzero in bit images (real A64 encodes NOP
    // as 0xD503201F for similar reasons).
    Nop = 0x3f,      ///< nop
    Hlt = 0x01,      ///< hlt — stop the core
    Movz = 0x02,     ///< movz xd, #imm16 [, lsl #0/16/32/48]
    Movk = 0x03,     ///< movk xd, #imm16 [, lsl #...]
    MovReg = 0x04,   ///< mov xd, xn
    AddImm = 0x05,   ///< add xd, xn, #imm12
    SubImm = 0x06,   ///< sub xd, xn, #imm12
    AddReg = 0x07,   ///< add xd, xn, xm
    SubReg = 0x08,   ///< sub xd, xn, xm
    AndReg = 0x09,   ///< and xd, xn, xm
    OrrReg = 0x0a,   ///< orr xd, xn, xm
    EorReg = 0x0b,   ///< eor xd, xn, xm
    LslImm = 0x0c,   ///< lsl xd, xn, #imm6
    LsrImm = 0x0d,   ///< lsr xd, xn, #imm6
    Ldr = 0x0e,      ///< ldr xd, [xn, #imm12]   (byte offset)
    Str = 0x0f,      ///< str xd, [xn, #imm12]
    Ldrb = 0x10,     ///< ldrb xd, [xn, #imm12]
    Strb = 0x11,     ///< strb xd, [xn, #imm12]
    B = 0x12,        ///< b label                (word offset, imm19)
    Cbz = 0x13,      ///< cbz xt, label
    Cbnz = 0x14,     ///< cbnz xt, label
    BCond = 0x15,    ///< b.eq/.ne/.lt/.ge/.gt/.le label
    CmpReg = 0x16,   ///< cmp xn, xm
    CmpImm = 0x17,   ///< cmp xn, #imm12
    SubsReg = 0x18,  ///< subs xd, xn, xm
    DcZva = 0x19,    ///< dc zva, xn — zero the cache line at [xn]
    DcCivac = 0x1a,  ///< dc civac, xn — clean+invalidate line at [xn]
    IcIallu = 0x1b,  ///< ic iallu — invalidate all i-cache (tags only!)
    Dsb = 0x1c,      ///< dsb sy
    Isb = 0x1d,      ///< isb
    RamIndex = 0x1e, ///< ramindex xd, xn — CP15-style debug RAM read (EL3)
    Mrs = 0x1f,      ///< mrs xd, <sysreg>
    Msr = 0x20,      ///< msr <sysreg>, xn
    VDup = 0x21,     ///< vdup vd, #imm8 — splat a byte across 128 bits
    VIns = 0x22,     ///< vins vd[half], xn — insert a 64-bit lane
    VRead = 0x23,    ///< vread xd, vn[half] — extract a 64-bit lane
    Bl = 0x24,       ///< bl label (link in x30)
    Ret = 0x25,      ///< ret (branch to x30)
    Mul = 0x26,      ///< mul xd, xn, xm
};

/** Condition codes for BCond (NZCV-based, signed compares). */
enum class Cond : uint8_t
{
    Eq = 0,
    Ne = 1,
    Lt = 2,
    Ge = 3,
    Gt = 4,
    Le = 5,
};

/** System registers reachable via mrs/msr. */
enum class SysReg : uint8_t
{
    CurrentEl = 0, ///< Read-only: current exception level in bits [3:2].
    SctlrEl1 = 1,  ///< Bit 2 = C (d-cache enable), bit 12 = I (i-cache).
    CoreId = 2,    ///< Read-only: which core this is (MPIDR-flavoured).
};

/** SCTLR bit positions (matching aarch64). */
constexpr uint64_t kSctlrC = 1ull << 2;
constexpr uint64_t kSctlrI = 1ull << 12;

/** Register index used for xzr (reads 0, writes discarded). */
constexpr unsigned kZeroReg = 31;

/** Field packing helpers. The encoding is fixed-width and lossless. */
namespace encode
{

constexpr uint32_t
op(Opcode o)
{
    return static_cast<uint32_t>(o) << 24;
}

/** rd in [23:19], rn in [18:14], rm in [13:9]. */
constexpr uint32_t rd(unsigned r) { return (r & 0x1f) << 19; }
constexpr uint32_t rn(unsigned r) { return (r & 0x1f) << 14; }
constexpr uint32_t rm(unsigned r) { return (r & 0x1f) << 9; }
/** imm12 occupies [11:0] (never collides with rd/rn). */
constexpr uint32_t imm12(uint32_t v) { return v & 0xfff; }
/** imm16 in [18:3], shift selector in [2:1] — used by movz/movk. */
constexpr uint32_t imm16(uint32_t v) { return (v & 0xffff) << 3; }
constexpr uint32_t shift2(uint32_t s) { return (s & 0x3) << 1; }
/** Signed word offset for branches, imm19 in [18:0]. */
constexpr uint32_t
imm19(int32_t v)
{
    return static_cast<uint32_t>(v) & 0x7ffff;
}
/** Condition code in [23:20] for b.cond. */
constexpr uint32_t cond(Cond c) { return (static_cast<uint32_t>(c) & 0xf) << 20; }
/** Vector half selector bit [0] for vins/vread. */
constexpr uint32_t half(unsigned h) { return h & 0x1; }
/** imm8 in [13:6] for vdup. */
constexpr uint32_t imm8(uint32_t v) { return (v & 0xff) << 6; }
/** sysreg id in [7:0] for mrs/msr. */
constexpr uint32_t sysreg(SysReg s) { return static_cast<uint32_t>(s); }

} // namespace encode

namespace decode
{

constexpr Opcode
op(uint32_t insn)
{
    return static_cast<Opcode>(insn >> 24);
}

constexpr unsigned rd(uint32_t i) { return (i >> 19) & 0x1f; }
constexpr unsigned rn(uint32_t i) { return (i >> 14) & 0x1f; }
constexpr unsigned rm(uint32_t i) { return (i >> 9) & 0x1f; }
constexpr uint32_t imm12(uint32_t i) { return i & 0xfff; }
constexpr uint32_t imm16(uint32_t i) { return (i >> 3) & 0xffff; }
constexpr uint32_t shift2(uint32_t i) { return (i >> 1) & 0x3; }

constexpr int32_t
imm19(uint32_t i)
{
    uint32_t v = i & 0x7ffff;
    if (v & 0x40000)
        v |= 0xfff80000; // sign-extend
    return static_cast<int32_t>(v);
}

constexpr Cond cond(uint32_t i) { return static_cast<Cond>((i >> 20) & 0xf); }
constexpr unsigned half(uint32_t i) { return i & 0x1; }
constexpr uint32_t imm8(uint32_t i) { return (i >> 6) & 0xff; }
constexpr SysReg sysreg(uint32_t i) { return static_cast<SysReg>(i & 0xff); }

} // namespace decode

/** Human-readable mnemonic for one encoded instruction. */
std::string disassemble(uint32_t insn);

} // namespace voltboot

#endif // VOLTBOOT_ISA_INSN_HH

#include "isa/cpu.hh"

#include "sim/logging.hh"

namespace voltboot
{

const char *
toString(CpuFault fault)
{
    switch (fault) {
      case CpuFault::None:
        return "None";
      case CpuFault::UndefinedInstruction:
        return "UndefinedInstruction";
      case CpuFault::PrivilegeViolation:
        return "PrivilegeViolation";
      case CpuFault::MemoryFault:
        return "MemoryFault";
    }
    return "?";
}

const char *
toString(FaultEffect effect)
{
    switch (effect) {
      case FaultEffect::None:
        return "none";
      case FaultEffect::Skip:
        return "skip";
      case FaultEffect::OpcodeCorrupt:
        return "opcode_corrupt";
      case FaultEffect::WrongBranch:
        return "wrong_branch";
      case FaultEffect::RegisterBitFlip:
        return "register_bitflip";
    }
    return "?";
}

Cpu::Cpu(unsigned core_id, MemoryPort &port, MemoryArray &xregs,
         MemoryArray &vregs)
    : core_id_(core_id), port_(port), xregs_(xregs), vregs_(vregs)
{
    if (xregs_.sizeBytes() < 31 * 8)
        fatal("Cpu: x-register backing store too small");
    if (vregs_.sizeBytes() < 32 * 16)
        fatal("Cpu: v-register backing store too small");
}

void
Cpu::setEl(unsigned el)
{
    if (el > 3)
        fatal("Cpu: exception level must be 0-3");
    el_ = el;
}

uint64_t
Cpu::x(unsigned idx) const
{
    if (idx >= kZeroReg)
        return 0;
    return xregs_.readWord64(idx * 8);
}

void
Cpu::setX(unsigned idx, uint64_t value)
{
    if (idx >= kZeroReg)
        return; // writes to xzr vanish
    xregs_.writeWord64(idx * 8, value);
}

uint64_t
Cpu::v(unsigned idx, unsigned half) const
{
    if (idx > 31 || half > 1)
        panic("Cpu: bad vector register access v", idx, "[", half, "]");
    return vregs_.readWord64(idx * 16 + half * 8);
}

void
Cpu::setV(unsigned idx, unsigned half, uint64_t value)
{
    if (idx > 31 || half > 1)
        panic("Cpu: bad vector register access v", idx, "[", half, "]");
    vregs_.writeWord64(idx * 16 + half * 8, value);
}

void
Cpu::reset(uint64_t entry_pc)
{
    pc_ = entry_pc;
    halted_ = false;
    fault_ = CpuFault::None;
    flag_n_ = flag_z_ = flag_c_ = flag_v_ = false;
    sctlr_ = 0;
    el_ = 3;
    dsb_done_ = isb_done_ = false;
    retired_ = 0;
    frozen_ = false;
}

void
Cpu::raise(CpuFault fault)
{
    fault_ = fault;
    halted_ = true;
}

void
Cpu::setFlagsForSub(uint64_t a, uint64_t b)
{
    const uint64_t r = a - b;
    flag_n_ = (r >> 63) & 1;
    flag_z_ = r == 0;
    flag_c_ = a >= b; // no borrow
    const bool sa = (a >> 63) & 1, sb = (b >> 63) & 1, sr = (r >> 63) & 1;
    flag_v_ = (sa != sb) && (sr != sa);
}

bool
Cpu::condHolds(Cond c) const
{
    switch (c) {
      case Cond::Eq:
        return flag_z_;
      case Cond::Ne:
        return !flag_z_;
      case Cond::Lt:
        return flag_n_ != flag_v_;
      case Cond::Ge:
        return flag_n_ == flag_v_;
      case Cond::Gt:
        return !flag_z_ && flag_n_ == flag_v_;
      case Cond::Le:
        return flag_z_ || flag_n_ != flag_v_;
    }
    return false;
}

bool
Cpu::step()
{
    if (halted_)
        return false;
    if (gate_ && !gate_->clockRunning(retired_)) {
        // No clock edge: the boundary never happens. State is untouched
        // and the core resumes from here once the gate reopens.
        frozen_ = true;
        return false;
    }
    frozen_ = false;
    uint32_t insn = port_.fetch32(pc_);
    if (injector_) {
        const FaultAction a = injector_->onInstruction(pc_, insn, retired_);
        switch (a.effect) {
          case FaultEffect::None:
            break;
          case FaultEffect::Skip:
            // The instruction never retires architecturally, but the
            // boundary still counts against the fault clock.
            pc_ += 4;
            ++retired_;
            return !halted_;
          case FaultEffect::OpcodeCorrupt:
            insn = a.insn_override;
            break;
          case FaultEffect::WrongBranch:
            pc_ = a.branch_target;
            ++retired_;
            return !halted_;
          case FaultEffect::RegisterBitFlip:
            // The flip hits the register file before the read path.
            setX(a.reg, x(a.reg) ^ (1ull << (a.bit & 63)));
            break;
        }
    }
    execute(insn);
    ++retired_;
    return !halted_;
}

uint64_t
Cpu::run(uint64_t max_steps)
{
    uint64_t steps = 0;
    while (steps < max_steps && step())
        ++steps;
    if (!halted_)
        return steps;
    return steps + (fault_ == CpuFault::None ? 1 : 1);
}

void
Cpu::execute(uint32_t insn)
{
    using namespace decode;
    const Opcode o = op(insn);
    uint64_t next_pc = pc_ + 4;

    // Any instruction other than the barriers themselves invalidates the
    // barrier pair required before a RAMINDEX result read.
    const bool is_barrier = o == Opcode::Dsb || o == Opcode::Isb;
    if (!is_barrier && o != Opcode::RamIndex)
        dsb_done_ = isb_done_ = false;

    switch (o) {
      case Opcode::Nop:
        break;
      case Opcode::Hlt:
        halted_ = true;
        break;
      case Opcode::Movz: {
        const uint64_t v = static_cast<uint64_t>(imm16(insn))
                           << (16 * shift2(insn));
        setX(rd(insn), v);
        break;
      }
      case Opcode::Movk: {
        const unsigned sh = 16 * shift2(insn);
        uint64_t v = x(rd(insn));
        v &= ~(0xffffull << sh);
        v |= static_cast<uint64_t>(imm16(insn)) << sh;
        setX(rd(insn), v);
        break;
      }
      case Opcode::MovReg:
        setX(rd(insn), x(rn(insn)));
        break;
      case Opcode::AddImm:
        setX(rd(insn), x(rn(insn)) + imm12(insn));
        break;
      case Opcode::SubImm:
        setX(rd(insn), x(rn(insn)) - imm12(insn));
        break;
      case Opcode::AddReg:
        setX(rd(insn), x(rn(insn)) + x(rm(insn)));
        break;
      case Opcode::SubReg:
        setX(rd(insn), x(rn(insn)) - x(rm(insn)));
        break;
      case Opcode::AndReg:
        setX(rd(insn), x(rn(insn)) & x(rm(insn)));
        break;
      case Opcode::OrrReg:
        setX(rd(insn), x(rn(insn)) | x(rm(insn)));
        break;
      case Opcode::EorReg:
        setX(rd(insn), x(rn(insn)) ^ x(rm(insn)));
        break;
      case Opcode::Mul:
        setX(rd(insn), x(rn(insn)) * x(rm(insn)));
        break;
      case Opcode::LslImm:
        setX(rd(insn), x(rn(insn)) << (imm12(insn) & 63));
        break;
      case Opcode::LsrImm:
        setX(rd(insn), x(rn(insn)) >> (imm12(insn) & 63));
        break;
      case Opcode::Ldr:
        setX(rd(insn), port_.read64(x(rn(insn)) + imm12(insn)));
        break;
      case Opcode::Str:
        port_.write64(x(rn(insn)) + imm12(insn), x(rd(insn)));
        break;
      case Opcode::Ldrb:
        setX(rd(insn), port_.read8(x(rn(insn)) + imm12(insn)));
        break;
      case Opcode::Strb:
        port_.write8(x(rn(insn)) + imm12(insn),
                     static_cast<uint8_t>(x(rd(insn))));
        break;
      case Opcode::B:
        next_pc = pc_ + 4ll * imm19(insn);
        port_.branchTaken(pc_, next_pc);
        break;
      case Opcode::Bl:
        setX(30, pc_ + 4);
        next_pc = pc_ + 4ll * imm19(insn);
        port_.branchTaken(pc_, next_pc);
        break;
      case Opcode::Ret:
        next_pc = x(30);
        port_.branchTaken(pc_, next_pc);
        break;
      case Opcode::Cbz:
        if (x(rd(insn)) == 0) {
            next_pc = pc_ + 4ll * imm19(insn);
            port_.branchTaken(pc_, next_pc);
        }
        break;
      case Opcode::Cbnz:
        if (x(rd(insn)) != 0) {
            next_pc = pc_ + 4ll * imm19(insn);
            port_.branchTaken(pc_, next_pc);
        }
        break;
      case Opcode::BCond:
        if (condHolds(cond(insn))) {
            next_pc = pc_ + 4ll * imm19(insn);
            port_.branchTaken(pc_, next_pc);
        }
        break;
      case Opcode::CmpReg:
        setFlagsForSub(x(rn(insn)), x(rm(insn)));
        break;
      case Opcode::CmpImm:
        setFlagsForSub(x(rn(insn)), imm12(insn));
        break;
      case Opcode::SubsReg: {
        const uint64_t a = x(rn(insn)), b = x(rm(insn));
        setFlagsForSub(a, b);
        setX(rd(insn), a - b);
        break;
      }
      case Opcode::DcZva:
        port_.zeroCacheLine(x(rn(insn)));
        break;
      case Opcode::DcCivac:
        port_.cleanInvalidateLine(x(rn(insn)));
        break;
      case Opcode::IcIallu:
        port_.invalidateAllICache();
        break;
      case Opcode::Dsb:
        dsb_done_ = true;
        break;
      case Opcode::Isb:
        if (dsb_done_)
            isb_done_ = true;
        break;
      case Opcode::RamIndex: {
        if (el_ < 3) {
            raise(CpuFault::PrivilegeViolation);
            return;
        }
        if (!(dsb_done_ && isb_done_)) {
            // Without DSB SY; ISB the data register interface returns
            // stale garbage, as the TRM warns.
            setX(rd(insn), 0xdeadbeefdeadbeefull);
        } else {
            setX(rd(insn), port_.ramIndexRead(x(rn(insn))));
        }
        dsb_done_ = isb_done_ = false;
        break;
      }
      case Opcode::Mrs: {
        switch (sysreg(insn)) {
          case SysReg::CurrentEl:
            setX(rd(insn), static_cast<uint64_t>(el_) << 2);
            break;
          case SysReg::SctlrEl1:
            setX(rd(insn), sctlr_);
            break;
          case SysReg::CoreId:
            setX(rd(insn), core_id_);
            break;
          default:
            raise(CpuFault::UndefinedInstruction);
            return;
        }
        break;
      }
      case Opcode::Msr: {
        switch (sysreg(insn)) {
          case SysReg::SctlrEl1:
            sctlr_ = x(rn(insn));
            port_.setCacheEnables(sctlr_ & kSctlrC, sctlr_ & kSctlrI);
            break;
          case SysReg::CurrentEl:
          case SysReg::CoreId:
            raise(CpuFault::PrivilegeViolation); // read-only
            return;
          default:
            raise(CpuFault::UndefinedInstruction);
            return;
        }
        break;
      }
      case Opcode::VDup: {
        const uint64_t b = imm8(insn);
        uint64_t splat = 0;
        for (int i = 0; i < 8; ++i)
            splat |= b << (8 * i);
        setV(rd(insn), 0, splat);
        setV(rd(insn), 1, splat);
        break;
      }
      case Opcode::VIns:
        setV(rd(insn), half(insn), x(rn(insn)));
        break;
      case Opcode::VRead:
        setX(rd(insn), v(rn(insn), half(insn)));
        break;
      default:
        raise(CpuFault::UndefinedInstruction);
        return;
    }

    pc_ = next_pc;
}

} // namespace voltboot

/**
 * @file
 * A small discrete-event kernel used by the power sequencer.
 *
 * Events are (time, priority, callback) tuples ordered by time then
 * priority then insertion order, so simultaneous events execute
 * deterministically. The power-cycle transients are solved analytically,
 * so the queue only has to sequence macro-level phases (supply disconnect,
 * probe attach, boot-ROM phases) — it stays intentionally simple.
 */

#ifndef VOLTBOOT_SIM_EVENT_QUEUE_HH
#define VOLTBOOT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/units.hh"

namespace voltboot
{

/** Callback-based discrete-event queue with deterministic ordering. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb at absolute time @p when with tie-break @p priority. */
    void
    schedule(Seconds when, Callback cb, int priority = 0)
    {
        heap_.push(Event{when, priority, next_sequence_++, std::move(cb)});
    }

    /** Schedule @p cb @p delay after the current simulation time. */
    void
    scheduleAfter(Seconds delay, Callback cb, int priority = 0)
    {
        schedule(now_ + delay, std::move(cb), priority);
    }

    /** Current simulation time. */
    Seconds now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /**
     * Execute the single earliest event, advancing simulated time to it.
     * @return false when the queue was empty.
     */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.callback();
        return true;
    }

    /** Run until the queue drains; returns the number of events executed. */
    size_t
    run()
    {
        size_t executed = 0;
        while (step())
            ++executed;
        return executed;
    }

    /**
     * Run events with time <= @p until; time advances to @p until even if
     * no event lands exactly there. Returns events executed.
     */
    size_t
    runUntil(Seconds until)
    {
        size_t executed = 0;
        while (!heap_.empty() && heap_.top().when <= until) {
            step();
            ++executed;
        }
        if (now_ < until)
            now_ = until;
        return executed;
    }

  private:
    struct Event
    {
        Seconds when;
        int priority;
        uint64_t sequence;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return b.when < a.when;
            if (a.priority != b.priority)
                return b.priority < a.priority;
            return b.sequence < a.sequence;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Seconds now_{0.0};
    uint64_t next_sequence_ = 0;
};

} // namespace voltboot

#endif // VOLTBOOT_SIM_EVENT_QUEUE_HH

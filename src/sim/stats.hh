/**
 * @file
 * Small statistics helpers for experiment harnesses: a running
 * mean/variance accumulator (Welford), min/max, and a fixed-bin
 * histogram. Header-only; used by benches and tests that repeat trials.
 */

#ifndef VOLTBOOT_SIM_STATS_HH
#define VOLTBOOT_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace voltboot
{

/** Online mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Standard error of the mean. */
    double
    sem() const
    {
        return n_ ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
    }

    /** Half-width of the ~95% normal confidence interval. */
    double ci95() const { return 1.96 * sem(); }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-range, fixed-bin histogram with ASCII rendering. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins)
        : lo_(lo), hi_(hi), counts_(bins, 0)
    {
        if (bins == 0 || !(hi > lo))
            fatal("Histogram: need bins > 0 and hi > lo");
    }

    void
    add(double x)
    {
        ++total_;
        if (x < lo_) {
            ++underflow_;
            return;
        }
        if (x >= hi_) {
            ++overflow_;
            return;
        }
        const size_t bin = static_cast<size_t>(
            (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
        ++counts_[std::min(bin, counts_.size() - 1)];
    }

    uint64_t total() const { return total_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    const std::vector<uint64_t> &counts() const { return counts_; }

    /** Render one line per bin: "[lo,hi) ####### (count)". */
    std::string
    render(size_t max_width = 50) const
    {
        uint64_t peak = 1;
        for (uint64_t c : counts_)
            peak = std::max(peak, c);
        std::string out;
        const double step =
            (hi_ - lo_) / static_cast<double>(counts_.size());
        for (size_t i = 0; i < counts_.size(); ++i) {
            char label[64];
            std::snprintf(label, sizeof(label), "[%8.3f, %8.3f) ",
                          lo_ + step * static_cast<double>(i),
                          lo_ + step * static_cast<double>(i + 1));
            out += label;
            out += std::string(
                static_cast<size_t>(static_cast<double>(counts_[i]) /
                                    static_cast<double>(peak) *
                                    static_cast<double>(max_width)),
                '#');
            out += " (" + std::to_string(counts_[i]) + ")\n";
        }
        return out;
    }

  private:
    double lo_, hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

} // namespace voltboot

#endif // VOLTBOOT_SIM_STATS_HH

/**
 * @file
 * Minimal logging and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations and aborts. warn()/inform() are status
 * channels that never stop the simulation.
 */

#ifndef VOLTBOOT_SIM_LOGGING_HH
#define VOLTBOOT_SIM_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace voltboot
{

/** Exception thrown for user-level configuration/usage errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown when an internal invariant is violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    format(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    format(os, args...);
    return os.str();
}

} // namespace detail

/** Report a user-level error; throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::concat(args...));
}

/** Report an internal invariant violation; throws PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::concat(args...));
}

/** Verbosity toggle for inform()/warn(); off by default in tests. */
bool &logVerbose();

/** Informational status message for the user. */
template <typename... Args>
void
inform(const Args &...args)
{
    if (logVerbose())
        std::cerr << "info: " << detail::concat(args...) << "\n";
}

/** Warn about suspicious but non-fatal conditions. */
template <typename... Args>
void
warn(const Args &...args)
{
    if (logVerbose())
        std::cerr << "warn: " << detail::concat(args...) << "\n";
}

} // namespace voltboot

#endif // VOLTBOOT_SIM_LOGGING_HH

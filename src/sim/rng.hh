/**
 * @file
 * Deterministic random number generation.
 *
 * Two generators are provided:
 *
 *  - Rng: a sequential SplitMix64 stream for workload/scheduler randomness.
 *  - cellHash / CellRng: counter-based ("random access") hashing used to
 *    derive per-SRAM-cell physical parameters from (chip seed, array id,
 *    cell index) without storing anything per cell. The same chip seed
 *    always produces the same silicon, which is what makes simulated
 *    power-up fingerprints behave like a PUF.
 */

#ifndef VOLTBOOT_SIM_RNG_HH
#define VOLTBOOT_SIM_RNG_HH

#include <cmath>
#include <cstdint>
#include <numbers>

namespace voltboot
{

/** One SplitMix64 mixing step; also usable as a standalone 64-bit hash. */
constexpr uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one well-mixed 64-bit value. */
constexpr uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/**
 * Sequential pseudo-random stream (SplitMix64).
 *
 * Fast, tiny state, full 64-bit output; statistically more than adequate for
 * workload generation and Monte Carlo retention trials.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed) : state_(splitmix64(seed)) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ULL;
        uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Standard normal via Box-Muller. */
    double
    gaussian()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * std::numbers::pi * u2);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return mean + sigma * gaussian();
    }

  private:
    uint64_t state_;
};

/**
 * Stateless per-cell random values.
 *
 * Every physical parameter of a simulated SRAM cell is a pure function of
 * the chip seed, an array identifier, the cell index, and a "channel" tag
 * naming which parameter is being drawn. This gives random-access, zero
 * storage, perfectly reproducible silicon.
 */
class CellRng
{
  public:
    CellRng(uint64_t chip_seed, uint64_t array_id)
        : base_(hashCombine(chip_seed, array_id))
    {}

    /**
     * Number of distinct raw uniform values (2^53): rawUniform() is in
     * [0, kRawUniformBuckets) and uniformFromRaw(kRawUniformBuckets)
     * would be exactly 1.0.
     */
    static constexpr uint64_t kRawUniformBuckets = uint64_t{1} << 53;

    /** Raw 64-bit hash for (cell, channel). */
    uint64_t
    bits(uint64_t cell, uint64_t channel) const
    {
        return splitmix64(hashCombine(base_, hashCombine(cell, channel)));
    }

    /**
     * The 53-bit integer behind uniform(): uniform(cell, channel) ==
     * uniformFromRaw(rawUniform(cell, channel)) exactly. Threshold
     * kernels compare these integers directly instead of re-deriving
     * the transcendental per-cell parameters (see docs/PERFORMANCE.md).
     */
    uint64_t
    rawUniform(uint64_t cell, uint64_t channel) const
    {
        return bits(cell, channel) >> 11;
    }

    /** The uniform double a 53-bit raw value maps to; exact (a 53-bit
     * integer scaled by a power of two is representable). */
    static double
    uniformFromRaw(uint64_t raw)
    {
        return static_cast<double>(raw) * 0x1.0p-53;
    }

    /**
     * How many raw uniform values map below @p x: |{raw : uniformFromRaw
     * (raw) < x}|, clamped to [0, kRawUniformBuckets]. Exact for every
     * double x: raw * 2^-53 < x  <=>  raw < x * 2^53 (both sides exact
     * in double: the left is representable, the right is an exponent
     * shift), and for integer raw that is raw < ceil(x * 2^53).
     */
    static uint64_t
    rawUniformCountBelow(double x)
    {
        if (!(x > 0.0))
            return 0;
        const double scaled = x * 0x1.0p53;
        if (scaled >= 0x1.0p53)
            return kRawUniformBuckets;
        return static_cast<uint64_t>(std::ceil(scaled));
    }

    /** Uniform double in [0, 1) for (cell, channel). */
    double
    uniform(uint64_t cell, uint64_t channel) const
    {
        return uniformFromRaw(rawUniform(cell, channel));
    }

    /**
     * The full uniform -> standard-normal transform used by gaussian():
     * exposed so threshold searches can evaluate the exact per-cell
     * math for an arbitrary raw uniform value. Weakly monotone
     * non-decreasing in u (clampOpen is flat at the edges, Acklam's
     * approximation is increasing).
     */
    static double
    gaussianFromUniform(double u)
    {
        return inverseNormalCdf(clampOpen(u));
    }

    /**
     * Standard normal for (cell, channel), via the inverse-CDF
     * approximation of Acklam (max abs error ~1.15e-9, far below process
     * noise we model).
     */
    double
    gaussian(uint64_t cell, uint64_t channel) const
    {
        return gaussianFromUniform(uniform(cell, channel));
    }

    /** Inverse of the standard normal CDF (Acklam's rational approx). */
    static double inverseNormalCdf(double p);

    /** The (chip seed, array id) hash bits() mixes into every draw —
     * exposed for the batched hashing kernel (cell_hash_batch.hh). */
    uint64_t hashBase() const { return base_; }

  private:
    static double
    clampOpen(double p)
    {
        constexpr double eps = 1e-12;
        if (p < eps)
            return eps;
        if (p > 1.0 - eps)
            return 1.0 - eps;
        return p;
    }

    uint64_t base_;
};

} // namespace voltboot

#endif // VOLTBOOT_SIM_RNG_HH

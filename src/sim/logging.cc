#include "sim/logging.hh"

namespace voltboot
{

bool &
logVerbose()
{
    static bool verbose = false;
    return verbose;
}

} // namespace voltboot

/**
 * @file
 * Arena-backed bit-packed word planes.
 *
 * The retention hot path models millions of one-bit cells; the natural
 * storage is a structure-of-arrays of contiguous `uint64_t` words where
 * bit i of the plane is cell i, so one word op (or one AVX-512
 * register, via sim/cell_hash_batch) advances 64-512 cells at a time.
 * Two pieces live here:
 *
 *  - PlaneArena: a bump allocator handing out zeroed, cache-line-
 *    aligned word spans from large blocks. Planes are never freed
 *    individually; the arena releases every block at once when it is
 *    destroyed. This is what lets a MemoryArray (or a cached
 *    FingerprintPlanes) carve all of its planes out of one contiguous
 *    reservation and account for them with a single byte count.
 *  - BitPlane: a non-owning view of one such span plus its logical bit
 *    length, with the word/byte/bit accessors the kernels and the
 *    byte-facing MemoryArray API are built from.
 *
 * Lifetime rule: a BitPlane is a *view*; it is valid exactly as long as
 * the PlaneArena it was allocated from. Structures that hand out planes
 * (MemoryArray, FingerprintPlanes) therefore embed their arena and move
 * as a unit; the fingerprint cache shares whole FingerprintPlanes via
 * shared_ptr so a cached plane can never outlive its arena.
 *
 * Layout convention (shared with the kernels): byte i of a plane
 * occupies word bits [8*(i%8), 8*(i%8)+8) of word i/8, i.e. cell index
 * == global bit index == 8*byte + bit, regardless of host endianness.
 * On little-endian hosts the word array's in-memory bytes ARE the byte
 * array, which is what makes snapshot()/fill() single memcpy/fill
 * passes. Bits past sizeBits() in the final word are kept zero by every
 * mutator (the tail invariant) so word-granular consumers never see
 * garbage lanes.
 */

#ifndef VOLTBOOT_SIM_PLANE_ARENA_HH
#define VOLTBOOT_SIM_PLANE_ARENA_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

namespace voltboot
{

/** Non-owning view of a bit-packed cell plane (see file comment). */
class BitPlane
{
  public:
    BitPlane() = default;
    BitPlane(uint64_t *words, uint64_t nbits) : words_(words), nbits_(nbits)
    {}

    /** Number of 64-bit words a plane of @p nbits cells needs. */
    static constexpr size_t
    wordsFor(uint64_t nbits)
    {
        return static_cast<size_t>((nbits + 63) / 64);
    }

    uint64_t sizeBits() const { return nbits_; }
    size_t sizeBytes() const { return static_cast<size_t>(nbits_ / 8); }
    size_t sizeWords() const { return wordsFor(nbits_); }
    bool empty() const { return nbits_ == 0; }

    uint64_t *words() { return words_; }
    const uint64_t *words() const { return words_; }
    uint64_t word(size_t w) const { return words_[w]; }

    /** Mask of the valid bits in the final word (all-ones when the
     * plane is a whole number of words). */
    uint64_t
    tailMask() const
    {
        const unsigned rem = static_cast<unsigned>(nbits_ % 64);
        return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
    }

    bool
    bit(uint64_t i) const
    {
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    void
    setBit(uint64_t i, bool v)
    {
        const uint64_t m = uint64_t{1} << (i % 64);
        words_[i / 64] = (words_[i / 64] & ~m) |
                         (static_cast<uint64_t>(v) << (i % 64));
    }

    uint8_t
    byteAt(size_t addr) const
    {
        return static_cast<uint8_t>(words_[addr / 8] >>
                                    (8 * (addr % 8)));
    }

    void
    setByte(size_t addr, uint8_t v)
    {
        const unsigned sh = 8 * (addr % 8);
        uint64_t &w = words_[addr / 8];
        w = (w & ~(uint64_t{0xff} << sh)) | (uint64_t{v} << sh);
    }

    /** Copy @p n plane bytes starting at byte @p addr into @p out.
     * Word-granular on little-endian hosts (single memcpy). */
    void
    readBytes(size_t addr, uint8_t *out, size_t n) const
    {
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(out,
                        reinterpret_cast<const uint8_t *>(words_) + addr,
                        n);
        } else {
            for (size_t i = 0; i < n; ++i)
                out[i] = byteAt(addr + i);
        }
    }

    /** Store @p n bytes at byte offset @p addr. */
    void
    writeBytes(size_t addr, const uint8_t *data, size_t n)
    {
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(reinterpret_cast<uint8_t *>(words_) + addr, data,
                        n);
        } else {
            for (size_t i = 0; i < n; ++i)
                setByte(addr + i, data[i]);
        }
    }

    /** Export the whole plane as a byte vector (word-at-a-time). */
    std::vector<uint8_t>
    toBytes() const
    {
        std::vector<uint8_t> out(sizeBytes());
        readBytes(0, out.data(), out.size());
        return out;
    }

    /** Fill every byte with @p value, one word store per 8 bytes;
     * restores the tail invariant. */
    void
    fillBytes(uint8_t value)
    {
        uint64_t w = value;
        w |= w << 8;
        w |= w << 16;
        w |= w << 32;
        const size_t nwords = sizeWords();
        for (size_t i = 0; i < nwords; ++i)
            words_[i] = w;
        if (nwords)
            words_[nwords - 1] &= tailMask();
    }

    /** All bits zero. */
    void
    clear()
    {
        std::memset(words_, 0, sizeWords() * sizeof(uint64_t));
    }

    /** All valid bits one (tail invariant preserved). */
    void
    setAll()
    {
        const size_t nwords = sizeWords();
        for (size_t i = 0; i < nwords; ++i)
            words_[i] = ~uint64_t{0};
        if (nwords)
            words_[nwords - 1] &= tailMask();
    }

    /** Word-for-word copy from a same-sized plane. */
    void
    copyFrom(const BitPlane &src)
    {
        std::memcpy(words_, src.words_, sizeWords() * sizeof(uint64_t));
    }

    /** Number of set bits across the plane. */
    uint64_t
    popcount() const
    {
        uint64_t n = 0;
        const size_t nwords = sizeWords();
        for (size_t i = 0; i < nwords; ++i)
            n += std::popcount(words_[i]);
        return n;
    }

  private:
    uint64_t *words_ = nullptr;
    uint64_t nbits_ = 0;
};

/**
 * Bump allocator for word planes. Allocations are zeroed, 64-byte
 * aligned, and live until the arena is destroyed (or releaseAll()).
 * Move-only: planes hold raw pointers into the arena's blocks, and the
 * blocks survive a move, so views stay valid when the owning structure
 * is moved (e.g. FingerprintPlanes into the cache).
 */
class PlaneArena
{
  public:
    PlaneArena() = default;
    PlaneArena(PlaneArena &&) = default;
    PlaneArena &operator=(PlaneArena &&) = default;
    PlaneArena(const PlaneArena &) = delete;
    PlaneArena &operator=(const PlaneArena &) = delete;

    /** Words an allocWords(@p nwords) call actually consumes: requests
     * are rounded up to a whole cache line so every span starts 64-byte
     * aligned. */
    static constexpr size_t
    alignWords(size_t nwords)
    {
        return (nwords + 7) & ~size_t{7};
    }

    /**
     * Ensure the next allocations up to @p nwords total fit one block.
     * Callers that know their full plane budget (a MemoryArray's
     * stored-bits + loss planes, a FingerprintPlanes triple) reserve
     * the sum of the alignWords() of each span so the arena holds
     * exactly one tight block.
     */
    void reserve(size_t nwords);

    /** Zeroed span of @p nwords words, 64-byte aligned. */
    uint64_t *allocWords(size_t nwords);

    /** Zeroed plane of @p nbits cells. */
    BitPlane
    allocBits(uint64_t nbits)
    {
        return BitPlane(allocWords(BitPlane::wordsFor(nbits)), nbits);
    }

    /** Total bytes backing the arena's blocks (the footprint). */
    size_t bytesReserved() const;
    /** Bytes actually handed out to planes. */
    size_t
    bytesUsed() const
    {
        return used_words_ * sizeof(uint64_t);
    }
    size_t blockCount() const { return blocks_.size(); }

    /** Drop every block; all planes allocated from this arena die. */
    void releaseAll();

  private:
    struct Deleter
    {
        void
        operator()(uint64_t *p) const
        {
            ::operator delete[](p, std::align_val_t{64});
        }
    };
    struct Block
    {
        std::unique_ptr<uint64_t[], Deleter> words;
        size_t capacity = 0;
        size_t used = 0;
    };

    /** Floor for fresh blocks so many tiny planes don't each pay a
     * heap allocation (512 words = 4 KiB). */
    static constexpr size_t kMinBlockWords = 512;

    Block &growBlock(size_t at_least_words);

    std::vector<Block> blocks_;
    size_t used_words_ = 0;
};

} // namespace voltboot

#endif // VOLTBOOT_SIM_PLANE_ARENA_HH

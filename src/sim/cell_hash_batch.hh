/**
 * @file
 * Batched per-cell hashing for the retention fast kernels.
 *
 * The threshold kernels in src/sram/ spend their time deriving
 * CellRng::bits(cell, channel) for runs of consecutive cells. The
 * splitmix64 chains of neighbouring cells are independent, so they map
 * directly onto 64-bit vector lanes; on x86-64 hosts with AVX-512DQ
 * (vpmullq: eight 64-bit multiplies per instruction) the batched path
 * computes eight chains at once. Lane arithmetic is identical mod 2^64
 * to the scalar path, so results are bit-exact with CellRng::bits —
 * hosts without the extension (or non-x86 builds) take the scalar loop
 * and produce the same values.
 */

#ifndef VOLTBOOT_SIM_CELL_HASH_BATCH_HH
#define VOLTBOOT_SIM_CELL_HASH_BATCH_HH

#include <cstdint>

#include "sim/rng.hh"

namespace voltboot
{

/**
 * Fill out[i] = rng.bits(cell0 + i, channel) for i in [0, n).
 * Bit-exact with per-cell CellRng::bits on every host.
 */
void cellBitsBatch(const CellRng &rng, uint64_t cell0, uint64_t channel,
                   unsigned n, uint64_t *out);

/** True when the wide-lane path is compiled in and the CPU supports
 * it (diagnostics/benchmarks; callers never need to check). */
bool cellHashBatchAccelerated();

} // namespace voltboot

#endif // VOLTBOOT_SIM_CELL_HASH_BATCH_HH

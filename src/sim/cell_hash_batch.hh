/**
 * @file
 * Batched per-cell hashing and mask derivation for the retention fast
 * kernels.
 *
 * The threshold kernels in src/sram/ spend their time deriving
 * CellRng::bits(cell, channel) for runs of consecutive cells. The
 * splitmix64 chains of neighbouring cells are independent, so they map
 * directly onto 64-bit vector lanes; on x86-64 hosts with AVX-512DQ
 * (vpmullq: eight 64-bit multiplies per instruction) the batched path
 * computes eight chains at once. Lane arithmetic is identical mod 2^64
 * to the scalar path, so results are bit-exact with CellRng::bits —
 * hosts without the extension (or builds configured with
 * -DVOLTBOOT_DISABLE_AVX512=ON) take the scalar loop and produce the
 * same values.
 *
 * Beyond raw hash batches, this header derives the *word masks* the
 * bit-sliced SoA plane kernels consume directly: one call classifies up
 * to 64 cells against a ThresholdBand (or extracts 64 power-up bits)
 * into a single uint64_t, with no per-cell scatter loop on the caller's
 * side. On AVX-512 the compare itself happens in the vector domain
 * (compare-to-mask), so a 64-cell word costs eight compare
 * instructions.
 */

#ifndef VOLTBOOT_SIM_CELL_HASH_BATCH_HH
#define VOLTBOOT_SIM_CELL_HASH_BATCH_HH

#include <cstdint>

#include "sim/rng.hh"

namespace voltboot
{

/**
 * Fill out[i] = rng.bits(cell0 + i, channel) for i in [0, n).
 * Bit-exact with per-cell CellRng::bits on every host.
 */
void cellBitsBatch(const CellRng &rng, uint64_t cell0, uint64_t channel,
                   unsigned n, uint64_t *out);

/**
 * Gathered variant: out[i] = rng.bits(keys[i], channel) for arbitrary
 * (non-consecutive) key values — used for metastable re-roll draws,
 * whose per-cell key is hashCombine(cell, nonce).
 */
void cellBitsBatchIndexed(const CellRng &rng, const uint64_t *keys,
                          uint64_t channel, unsigned n, uint64_t *out);

/**
 * Word-parallel threshold classification for n <= 64 consecutive
 * cells: returns a mask whose bit i is set iff
 * rng.rawUniform(cell0 + i, channel) >= band_lo. *in_band gets the
 * mask of cells whose raw value lands inside [band_lo, band_hi) —
 * the guard band the caller must resolve with the exact scalar
 * predicate. Bits at or above n are zero in both masks.
 */
uint64_t cellBandMaskBatch(const CellRng &rng, uint64_t cell0,
                           uint64_t channel, unsigned n,
                           uint64_t band_lo, uint64_t band_hi,
                           uint64_t *in_band);

/**
 * Same classification over a precomputed *bucket* plane (the
 * FastCached per-array caches): buckets[i] holds the top 32 bits of
 * the cell's 53-bit raw uniform (raw >> 21), halving the memory
 * stream the compare has to pull — which is what bounds throughput at
 * DRAM-scale planes. Truncation only coarsens the guard band: lanes
 * whose bucket falls in [band_lo >> 21, band_hi >> 21] land in
 * *in_band (a superset of the exact [band_lo, band_hi) membership,
 * wider by at most one bucket = 2^21 raws per edge) and must be
 * resolved by the caller's exact scalar predicate; the returned mask
 * sets exactly the other lanes whose raw is provably >= band_lo.
 * Bits at or above n are zero in both masks.
 */
uint64_t rawBucketBandMask(const uint32_t *buckets, unsigned n,
                           uint64_t band_lo, uint64_t band_hi,
                           uint64_t *in_band);

/**
 * Power-up-bit extraction for n <= 64 consecutive cells: bit i of the
 * result is rng.bits(cell0 + i, channel) & 1. This is the fingerprint
 * plane derivation reduced to one mask op per 8 cells.
 */
uint64_t cellLsbMaskBatch(const CellRng &rng, uint64_t cell0,
                          uint64_t channel, unsigned n);

/** True when the wide-lane path is compiled in and the CPU supports
 * it (diagnostics/benchmarks; callers never need to check). */
bool cellHashBatchAccelerated();

} // namespace voltboot

#endif // VOLTBOOT_SIM_CELL_HASH_BATCH_HH

#include "sim/word_popcount_batch.hh"

#include <bit>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__) && \
    !defined(VOLTBOOT_DISABLE_AVX512)
#include <immintrin.h>
#define VOLTBOOT_X86_WIDE_LANES 1
#else
#define VOLTBOOT_X86_WIDE_LANES 0
#endif

namespace voltboot
{

namespace
{

inline uint32_t
load32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

void
xorTriplePopcountScalar(const uint8_t *p, size_t oa, size_t ob, size_t oc,
                        unsigned n, uint32_t *acc)
{
    for (unsigned i = 0; i < n; ++i) {
        const size_t lane = static_cast<size_t>(i) * 4;
        acc[i] += static_cast<uint32_t>(
            std::popcount(load32(p + lane + oa) ^ load32(p + lane + ob) ^
                          load32(p + lane + oc)));
    }
}

#if VOLTBOOT_X86_WIDE_LANES

bool
lutLanesSupported()
{
    static const bool ok = __builtin_cpu_supports("avx512f") &&
                           __builtin_cpu_supports("avx512bw");
    return ok;
}

bool
popcntLanesSupported()
{
    static const bool ok = lutLanesSupported() &&
                           __builtin_cpu_supports("avx512vpopcntdq");
    return ok;
}

/**
 * Sixteen lanes of the XOR-triple at once. The three loads are
 * unaligned (lane stride 4 bytes), the XORs are lane-agnostic, and the
 * per-32-bit-lane popcount is the only part that needs a dispatch:
 * VPOPCNTDQ has it as one instruction, the BW fallback shuffles a
 * nibble lookup table and folds bytes pairwise into 32-bit sums.
 */
__attribute__((target("avx512f,avx512vpopcntdq"))) void
xorTriplePopcountVpopcnt(const uint8_t *p, size_t oa, size_t ob,
                         size_t oc, unsigned n, uint32_t *acc)
{
    unsigned i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8_t *lane = p + static_cast<size_t>(i) * 4;
        const __m512i x = _mm512_xor_si512(
            _mm512_xor_si512(
                _mm512_loadu_si512(lane + oa),
                _mm512_loadu_si512(lane + ob)),
            _mm512_loadu_si512(lane + oc));
        const __m512i sum = _mm512_popcnt_epi32(x);
        _mm512_storeu_si512(acc + i,
                            _mm512_add_epi32(
                                _mm512_loadu_si512(acc + i), sum));
    }
    if (i < n)
        xorTriplePopcountScalar(p + static_cast<size_t>(i) * 4, oa, ob,
                                oc, n - i, acc + i);
}

__attribute__((target("avx512f,avx512bw"))) void
xorTriplePopcountLut(const uint8_t *p, size_t oa, size_t ob, size_t oc,
                     unsigned n, uint32_t *acc)
{
    // Per-byte popcount via two nibble shuffles, then 8->16->32 bit
    // pairwise folds (maddubs/madd with all-ones) to per-lane sums.
    const __m512i lut = _mm512_broadcast_i32x4(_mm_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    const __m512i low4 = _mm512_set1_epi8(0x0f);
    const __m512i ones8 = _mm512_set1_epi8(1);
    const __m512i ones16 = _mm512_set1_epi16(1);
    unsigned i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8_t *lane = p + static_cast<size_t>(i) * 4;
        const __m512i x = _mm512_xor_si512(
            _mm512_xor_si512(
                _mm512_loadu_si512(lane + oa),
                _mm512_loadu_si512(lane + ob)),
            _mm512_loadu_si512(lane + oc));
        const __m512i lo = _mm512_and_si512(x, low4);
        const __m512i hi =
            _mm512_and_si512(_mm512_srli_epi16(x, 4), low4);
        const __m512i cnt8 =
            _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                            _mm512_shuffle_epi8(lut, hi));
        const __m512i cnt16 = _mm512_maddubs_epi16(cnt8, ones8);
        const __m512i sum = _mm512_madd_epi16(cnt16, ones16);
        _mm512_storeu_si512(acc + i,
                            _mm512_add_epi32(
                                _mm512_loadu_si512(acc + i), sum));
    }
    if (i < n)
        xorTriplePopcountScalar(p + static_cast<size_t>(i) * 4, oa, ob,
                                oc, n - i, acc + i);
}

#endif // VOLTBOOT_X86_WIDE_LANES

} // namespace

bool
wordPopcountAccelerated()
{
#if VOLTBOOT_X86_WIDE_LANES
    return lutLanesSupported();
#else
    return false;
#endif
}

void
xorTriplePopcountAccumulate(const uint8_t *p, size_t oa, size_t ob,
                            size_t oc, unsigned n, uint32_t *acc)
{
#if VOLTBOOT_X86_WIDE_LANES
    if (popcntLanesSupported()) {
        xorTriplePopcountVpopcnt(p, oa, ob, oc, n, acc);
        return;
    }
    if (lutLanesSupported()) {
        xorTriplePopcountLut(p, oa, ob, oc, n, acc);
        return;
    }
#endif
    xorTriplePopcountScalar(p, oa, ob, oc, n, acc);
}

} // namespace voltboot

#include "sim/plane_arena.hh"

#include "telemetry/counters.hh"

namespace voltboot
{

PlaneArena::Block &
PlaneArena::growBlock(size_t at_least_words)
{
    const size_t capacity = std::max(at_least_words, kMinBlockWords);
    telemetry::add(telemetry::Counter::ArenaBytes,
                   capacity * sizeof(uint64_t));
    Block block;
    block.words.reset(static_cast<uint64_t *>(::operator new[](
        capacity * sizeof(uint64_t), std::align_val_t{64})));
    block.capacity = capacity;
    blocks_.push_back(std::move(block));
    return blocks_.back();
}

void
PlaneArena::reserve(size_t nwords)
{
    if (!blocks_.empty() &&
        blocks_.back().capacity - blocks_.back().used >= nwords)
        return;
    growBlock(nwords);
}

uint64_t *
PlaneArena::allocWords(size_t nwords)
{
    const size_t span_words = alignWords(nwords);
    Block *block = blocks_.empty() ? nullptr : &blocks_.back();
    if (!block || block->capacity - block->used < span_words)
        block = &growBlock(span_words);
    uint64_t *span = block->words.get() + block->used;
    block->used += span_words;
    used_words_ += span_words;
    std::memset(span, 0, span_words * sizeof(uint64_t));
    return span;
}

size_t
PlaneArena::bytesReserved() const
{
    size_t words = 0;
    for (const Block &b : blocks_)
        words += b.capacity;
    return words * sizeof(uint64_t);
}

void
PlaneArena::releaseAll()
{
    blocks_.clear();
    used_words_ = 0;
}

} // namespace voltboot

/**
 * @file
 * Batched strided XOR+popcount over 32-bit words.
 *
 * The key-recovery scan (src/keyfind) scores one candidate schedule
 * offset with a handful of *linear residuals*: popcounts of three-way
 * XORs of 32-bit schedule words at fixed byte distances from the
 * offset. Consecutive word-aligned offsets read consecutive 32-bit
 * words, so sixteen candidate offsets map directly onto the 32-bit
 * lanes of one AVX-512 vector: three unaligned loads, two XORs and a
 * per-lane popcount score sixteen offsets per residual.
 *
 * Per-lane popcounts are exact small integers on every path, so the
 * three implementations — AVX-512 VPOPCNTDQ where the CPU has it, an
 * AVX-512BW nibble-LUT shuffle otherwise, and a scalar std::popcount
 * loop everywhere else (including -DVOLTBOOT_DISABLE_AVX512=ON builds)
 * — are bit-identical by construction, the same contract as
 * sim/cell_hash_batch.
 */

#ifndef VOLTBOOT_SIM_WORD_POPCOUNT_BATCH_HH
#define VOLTBOOT_SIM_WORD_POPCOUNT_BATCH_HH

#include <cstddef>
#include <cstdint>

namespace voltboot
{

/**
 * For each lane i in [0, n): load the three little-endian 32-bit words
 * at p + 4*i + oa, p + 4*i + ob, p + 4*i + oc, and add the popcount of
 * their XOR into acc[i]. Lanes stride by 4 bytes (consecutive
 * word-aligned candidate offsets). The caller guarantees every load
 * stays inside its buffer. n is capped at 64 per call.
 */
void xorTriplePopcountAccumulate(const uint8_t *p, size_t oa, size_t ob,
                                 size_t oc, unsigned n, uint32_t *acc);

/** True when a vector path is compiled in and the CPU supports it
 * (diagnostics/benchmarks; callers never need to check). */
bool wordPopcountAccelerated();

} // namespace voltboot

#endif // VOLTBOOT_SIM_WORD_POPCOUNT_BATCH_HH

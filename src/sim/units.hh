/**
 * @file
 * Strong physical unit types used throughout the simulator.
 *
 * The power-delivery and retention models mix voltages, currents,
 * temperatures and times; mixing those up silently is the classic source of
 * simulation bugs, so each quantity gets a tiny strong wrapper with explicit
 * accessors and only the physically meaningful operators.
 */

#ifndef VOLTBOOT_SIM_UNITS_HH
#define VOLTBOOT_SIM_UNITS_HH

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace voltboot
{

/**
 * CRTP base for a scalar physical quantity backed by a double.
 *
 * Provides ordering, addition/subtraction within the same unit, and scaling
 * by dimensionless factors. Cross-unit products (e.g. volts = amps * ohms)
 * are exposed as free functions next to the unit definitions so the
 * dimensional rules stay explicit.
 */
template <typename Derived>
class Quantity
{
  public:
    constexpr Quantity() = default;
    explicit constexpr Quantity(double value) : value_(value) {}

    /** Raw magnitude in the unit's base SI scale. */
    constexpr double raw() const { return value_; }

    friend constexpr auto operator<=>(const Derived &a, const Derived &b)
    { return a.raw() <=> b.raw(); }
    friend constexpr bool operator==(const Derived &a, const Derived &b)
    { return a.raw() == b.raw(); }

    friend constexpr Derived operator+(const Derived &a, const Derived &b)
    { return Derived(a.raw() + b.raw()); }
    friend constexpr Derived operator-(const Derived &a, const Derived &b)
    { return Derived(a.raw() - b.raw()); }
    friend constexpr Derived operator*(const Derived &a, double s)
    { return Derived(a.raw() * s); }
    friend constexpr Derived operator*(double s, const Derived &a)
    { return Derived(a.raw() * s); }
    friend constexpr Derived operator/(const Derived &a, double s)
    { return Derived(a.raw() / s); }
    /** Ratio of two like quantities is dimensionless. */
    friend constexpr double operator/(const Derived &a, const Derived &b)
    { return a.raw() / b.raw(); }

    Derived &operator+=(const Derived &o)
    { value_ += o.raw(); return static_cast<Derived &>(*this); }
    Derived &operator-=(const Derived &o)
    { value_ -= o.raw(); return static_cast<Derived &>(*this); }

  private:
    double value_ = 0.0;
};

/** Electric potential, stored in volts. */
class Volt : public Quantity<Volt>
{
  public:
    using Quantity::Quantity;
    static constexpr Volt millivolts(double mv) { return Volt(mv * 1e-3); }
    constexpr double volts() const { return raw(); }
    constexpr double millivolts() const { return raw() * 1e3; }
};

/** Electric current, stored in amperes. */
class Amp : public Quantity<Amp>
{
  public:
    using Quantity::Quantity;
    static constexpr Amp milliamps(double ma) { return Amp(ma * 1e-3); }
    constexpr double amps() const { return raw(); }
    constexpr double milliamps() const { return raw() * 1e3; }
};

/** Resistance, stored in ohms. */
class Ohm : public Quantity<Ohm>
{
  public:
    using Quantity::Quantity;
    static constexpr Ohm milliohms(double mo) { return Ohm(mo * 1e-3); }
    constexpr double ohms() const { return raw(); }
};

/** Capacitance, stored in farads. */
class Farad : public Quantity<Farad>
{
  public:
    using Quantity::Quantity;
    static constexpr Farad microfarads(double uf) { return Farad(uf * 1e-6); }
    static constexpr Farad nanofarads(double nf) { return Farad(nf * 1e-9); }
    constexpr double farads() const { return raw(); }
    constexpr double microfarads() const { return raw() * 1e6; }
};

/** Time interval, stored in seconds. */
class Seconds : public Quantity<Seconds>
{
  public:
    using Quantity::Quantity;
    static constexpr Seconds milliseconds(double ms)
    { return Seconds(ms * 1e-3); }
    static constexpr Seconds microseconds(double us)
    { return Seconds(us * 1e-6); }
    static constexpr Seconds nanoseconds(double ns)
    { return Seconds(ns * 1e-9); }
    constexpr double seconds() const { return raw(); }
    constexpr double milliseconds() const { return raw() * 1e3; }
    constexpr double microseconds() const { return raw() * 1e6; }
};

/**
 * Absolute temperature, stored in kelvin.
 *
 * Most of the paper's discussion is in Celsius (thermal-chamber settings),
 * so a Celsius constructor is provided; the Arrhenius retention math wants
 * kelvin.
 */
class Temperature : public Quantity<Temperature>
{
  public:
    using Quantity::Quantity;
    static constexpr Temperature celsius(double c)
    { return Temperature(c + 273.15); }
    static constexpr Temperature kelvin(double k) { return Temperature(k); }
    constexpr double kelvins() const { return raw(); }
    constexpr double celsiusDegrees() const { return raw() - 273.15; }
};

/** Ohm's law helpers keep the dimensional algebra explicit. */
constexpr Volt operator*(const Amp &i, const Ohm &r)
{ return Volt(i.amps() * r.ohms()); }
constexpr Volt operator*(const Ohm &r, const Amp &i) { return i * r; }
constexpr Amp operator/(const Volt &v, const Ohm &r)
{ return Amp(v.volts() / r.ohms()); }
/** RC time constant. */
constexpr Seconds operator*(const Ohm &r, const Farad &c)
{ return Seconds(r.ohms() * c.farads()); }

inline std::ostream &operator<<(std::ostream &os, const Volt &v)
{ return os << v.volts() << " V"; }
inline std::ostream &operator<<(std::ostream &os, const Amp &a)
{ return os << a.amps() << " A"; }
inline std::ostream &operator<<(std::ostream &os, const Seconds &s)
{ return os << s.seconds() << " s"; }
inline std::ostream &operator<<(std::ostream &os, const Temperature &t)
{ return os << t.celsiusDegrees() << " degC"; }

} // namespace voltboot

#endif // VOLTBOOT_SIM_UNITS_HH

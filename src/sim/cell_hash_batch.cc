#include "sim/cell_hash_batch.hh"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define VOLTBOOT_X86_WIDE_LANES 1
#else
#define VOLTBOOT_X86_WIDE_LANES 0
#endif

namespace voltboot
{

namespace
{

#if VOLTBOOT_X86_WIDE_LANES

bool
wideLanesSupported()
{
    static const bool ok = __builtin_cpu_supports("avx512f") &&
                           __builtin_cpu_supports("avx512dq");
    return ok;
}

/** splitmix64 in eight 64-bit lanes (identical mod 2^64 per lane). */
__attribute__((target("avx512f,avx512dq"))) inline __m512i
splitmixLanes(__m512i x)
{
    const __m512i inc = _mm512_set1_epi64(
        static_cast<long long>(0x9e3779b97f4a7c15ULL));
    const __m512i m1 = _mm512_set1_epi64(
        static_cast<long long>(0xbf58476d1ce4e5b9ULL));
    const __m512i m2 = _mm512_set1_epi64(
        static_cast<long long>(0x94d049bb133111ebULL));
    x = _mm512_add_epi64(x, inc);
    x = _mm512_mullo_epi64(
        _mm512_xor_si512(x, _mm512_srli_epi64(x, 30)), m1);
    x = _mm512_mullo_epi64(
        _mm512_xor_si512(x, _mm512_srli_epi64(x, 27)), m2);
    return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

/**
 * Eight bits() chains per iteration. The scalar chain is
 *
 *   inner  = splitmix64(cell ^ (channel + K + (cell<<6) + (cell>>2)))
 *   outer  = splitmix64(base ^ (inner + K + (base<<6) + (base>>2)))
 *   result = splitmix64(outer)
 *
 * with K the splitmix increment; every step is add/xor/shift/mullo,
 * identical mod 2^64 in 64-bit lanes.
 */
__attribute__((target("avx512f,avx512dq"))) void
cellBitsAvx512(uint64_t base, uint64_t cell0, uint64_t channel,
               unsigned n, uint64_t *out)
{
    constexpr uint64_t kInc = 0x9e3779b97f4a7c15ULL;
    const __m512i chan_k = _mm512_set1_epi64(
        static_cast<long long>(channel + kInc));
    const __m512i base_v =
        _mm512_set1_epi64(static_cast<long long>(base));
    const __m512i base_k = _mm512_set1_epi64(static_cast<long long>(
        kInc + (base << 6) + (base >> 2)));
    const __m512i step = _mm512_set1_epi64(8);
    __m512i cell = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(cell0)),
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    unsigned i = 0;
    for (; i + 8 <= n; i += 8, cell = _mm512_add_epi64(cell, step)) {
        // hashCombine(cell, channel)
        __m512i t = _mm512_xor_si512(
            cell,
            _mm512_add_epi64(
                chan_k, _mm512_add_epi64(_mm512_slli_epi64(cell, 6),
                                         _mm512_srli_epi64(cell, 2))));
        const __m512i inner = splitmixLanes(t);
        // hashCombine(base, inner)
        t = _mm512_xor_si512(base_v, _mm512_add_epi64(inner, base_k));
        const __m512i result = splitmixLanes(splitmixLanes(t));
        _mm512_storeu_si512(out + i, result);
    }
    // Scalar tail for ragged batch sizes.
    for (; i < n; ++i)
        out[i] = splitmix64(
            hashCombine(base, hashCombine(cell0 + i, channel)));
}

#endif // VOLTBOOT_X86_WIDE_LANES

} // namespace

bool
cellHashBatchAccelerated()
{
#if VOLTBOOT_X86_WIDE_LANES
    return wideLanesSupported();
#else
    return false;
#endif
}

void
cellBitsBatch(const CellRng &rng, uint64_t cell0, uint64_t channel,
              unsigned n, uint64_t *out)
{
#if VOLTBOOT_X86_WIDE_LANES
    if (wideLanesSupported()) {
        cellBitsAvx512(rng.hashBase(), cell0, channel, n, out);
        return;
    }
#endif
    for (unsigned i = 0; i < n; ++i)
        out[i] = rng.bits(cell0 + i, channel);
}

} // namespace voltboot

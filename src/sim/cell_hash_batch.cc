#include "sim/cell_hash_batch.hh"

#include "telemetry/counters.hh"

#if defined(__x86_64__) && defined(__GNUC__) && \
    !defined(VOLTBOOT_DISABLE_AVX512)
#include <immintrin.h>
#define VOLTBOOT_X86_WIDE_LANES 1
#else
#define VOLTBOOT_X86_WIDE_LANES 0
#endif

namespace voltboot
{

namespace
{

#if VOLTBOOT_X86_WIDE_LANES

bool
wideLanesSupported()
{
    static const bool ok = __builtin_cpu_supports("avx512f") &&
                           __builtin_cpu_supports("avx512dq");
    return ok;
}

/** splitmix64 in eight 64-bit lanes (identical mod 2^64 per lane). */
__attribute__((target("avx512f,avx512dq"))) inline __m512i
splitmixLanes(__m512i x)
{
    const __m512i inc = _mm512_set1_epi64(
        static_cast<long long>(0x9e3779b97f4a7c15ULL));
    const __m512i m1 = _mm512_set1_epi64(
        static_cast<long long>(0xbf58476d1ce4e5b9ULL));
    const __m512i m2 = _mm512_set1_epi64(
        static_cast<long long>(0x94d049bb133111ebULL));
    x = _mm512_add_epi64(x, inc);
    x = _mm512_mullo_epi64(
        _mm512_xor_si512(x, _mm512_srli_epi64(x, 30)), m1);
    x = _mm512_mullo_epi64(
        _mm512_xor_si512(x, _mm512_srli_epi64(x, 27)), m2);
    return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

/** Broadcast constants of the bits() chain for a fixed (base, channel). */
struct ChainConsts
{
    __m512i chan_k;
    __m512i base_v;
    __m512i base_k;
};

__attribute__((target("avx512f,avx512dq"))) inline ChainConsts
chainConsts(uint64_t base, uint64_t channel)
{
    constexpr uint64_t kInc = 0x9e3779b97f4a7c15ULL;
    ChainConsts c;
    c.chan_k =
        _mm512_set1_epi64(static_cast<long long>(channel + kInc));
    c.base_v = _mm512_set1_epi64(static_cast<long long>(base));
    c.base_k = _mm512_set1_epi64(
        static_cast<long long>(kInc + (base << 6) + (base >> 2)));
    return c;
}

/**
 * Eight bits() chains per call. The scalar chain is
 *
 *   inner  = splitmix64(cell ^ (channel + K + (cell<<6) + (cell>>2)))
 *   outer  = splitmix64(base ^ (inner + K + (base<<6) + (base>>2)))
 *   result = splitmix64(outer)
 *
 * with K the splitmix increment; every step is add/xor/shift/mullo,
 * identical mod 2^64 in 64-bit lanes.
 */
__attribute__((target("avx512f,avx512dq"))) inline __m512i
bitsLanes(const ChainConsts &c, __m512i cell)
{
    // hashCombine(cell, channel)
    __m512i t = _mm512_xor_si512(
        cell,
        _mm512_add_epi64(
            c.chan_k, _mm512_add_epi64(_mm512_slli_epi64(cell, 6),
                                       _mm512_srli_epi64(cell, 2))));
    const __m512i inner = splitmixLanes(t);
    // hashCombine(base, inner)
    t = _mm512_xor_si512(c.base_v, _mm512_add_epi64(inner, c.base_k));
    return splitmixLanes(splitmixLanes(t));
}

__attribute__((target("avx512f,avx512dq"))) void
cellBitsAvx512(uint64_t base, uint64_t cell0, uint64_t channel,
               unsigned n, uint64_t *out)
{
    const ChainConsts c = chainConsts(base, channel);
    const __m512i step = _mm512_set1_epi64(8);
    __m512i cell = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(cell0)),
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    unsigned i = 0;
    for (; i + 8 <= n; i += 8, cell = _mm512_add_epi64(cell, step))
        _mm512_storeu_si512(out + i, bitsLanes(c, cell));
    // Scalar tail for ragged batch sizes.
    for (; i < n; ++i)
        out[i] = splitmix64(
            hashCombine(base, hashCombine(cell0 + i, channel)));
}

__attribute__((target("avx512f,avx512dq"))) void
cellBitsIndexedAvx512(uint64_t base, const uint64_t *keys,
                      uint64_t channel, unsigned n, uint64_t *out)
{
    const ChainConsts c = chainConsts(base, channel);
    unsigned i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i cell = _mm512_loadu_si512(keys + i);
        _mm512_storeu_si512(out + i, bitsLanes(c, cell));
    }
    for (; i < n; ++i)
        out[i] = splitmix64(
            hashCombine(base, hashCombine(keys[i], channel)));
}

__attribute__((target("avx512f,avx512dq"))) uint64_t
cellBandMaskAvx512(uint64_t base, uint64_t cell0, uint64_t channel,
                   unsigned n, uint64_t band_lo, uint64_t band_hi,
                   uint64_t *in_band)
{
    const ChainConsts c = chainConsts(base, channel);
    const __m512i lo_v =
        _mm512_set1_epi64(static_cast<long long>(band_lo));
    const __m512i hi_v =
        _mm512_set1_epi64(static_cast<long long>(band_hi));
    const __m512i step = _mm512_set1_epi64(8);
    __m512i cell = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(cell0)),
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    uint64_t ge = 0, band = 0;
    unsigned i = 0;
    for (; i + 8 <= n; i += 8, cell = _mm512_add_epi64(cell, step)) {
        const __m512i raw = _mm512_srli_epi64(bitsLanes(c, cell), 11);
        const __mmask8 ge8 =
            _mm512_cmp_epu64_mask(raw, lo_v, _MM_CMPINT_NLT);
        const __mmask8 lt_hi8 =
            _mm512_cmp_epu64_mask(raw, hi_v, _MM_CMPINT_LT);
        ge |= static_cast<uint64_t>(ge8) << i;
        band |= static_cast<uint64_t>(ge8 & lt_hi8) << i;
    }
    for (; i < n; ++i) {
        const uint64_t raw =
            splitmix64(hashCombine(base, hashCombine(cell0 + i,
                                                     channel))) >>
            11;
        ge |= static_cast<uint64_t>(raw >= band_lo) << i;
        band |= static_cast<uint64_t>(raw >= band_lo && raw < band_hi)
                << i;
    }
    *in_band = band;
    return ge;
}

__attribute__((target("avx512f,avx512dq"))) uint64_t
rawBucketBandMaskAvx512(const uint32_t *buckets, unsigned n,
                        uint32_t lo_b, uint32_t hi_b, uint64_t *in_band)
{
    const __m512i lo_v = _mm512_set1_epi32(static_cast<int>(lo_b));
    const __m512i hi_v = _mm512_set1_epi32(static_cast<int>(hi_b));
    uint64_t ge = 0, band = 0;
    unsigned i = 0;
    // 32-bit lanes: sixteen buckets per compare, twice the lane count
    // (and half the load bandwidth) of the 64-bit raw compare.
    for (; i + 16 <= n; i += 16) {
        const __m512i c = _mm512_loadu_si512(buckets + i);
        const __mmask16 gt_hi =
            _mm512_cmp_epu32_mask(c, hi_v, _MM_CMPINT_NLE);
        const __mmask16 ge_lo =
            _mm512_cmp_epu32_mask(c, lo_v, _MM_CMPINT_NLT);
        ge |= static_cast<uint64_t>(gt_hi) << i;
        band |= static_cast<uint64_t>(ge_lo & ~gt_hi) << i;
    }
    for (; i < n; ++i) {
        ge |= static_cast<uint64_t>(buckets[i] > hi_b) << i;
        band |= static_cast<uint64_t>(buckets[i] >= lo_b &&
                                      buckets[i] <= hi_b)
                << i;
    }
    *in_band = band;
    return ge;
}

__attribute__((target("avx512f,avx512dq"))) uint64_t
cellLsbMaskAvx512(uint64_t base, uint64_t cell0, uint64_t channel,
                  unsigned n)
{
    const ChainConsts c = chainConsts(base, channel);
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i step = _mm512_set1_epi64(8);
    __m512i cell = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(cell0)),
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    uint64_t mask = 0;
    unsigned i = 0;
    for (; i + 8 <= n; i += 8, cell = _mm512_add_epi64(cell, step)) {
        const __mmask8 lsb =
            _mm512_test_epi64_mask(bitsLanes(c, cell), one);
        mask |= static_cast<uint64_t>(lsb) << i;
    }
    for (; i < n; ++i)
        mask |= (splitmix64(hashCombine(
                     base, hashCombine(cell0 + i, channel))) &
                 1)
                << i;
    return mask;
}

#endif // VOLTBOOT_X86_WIDE_LANES

} // namespace

bool
cellHashBatchAccelerated()
{
#if VOLTBOOT_X86_WIDE_LANES
    return wideLanesSupported();
#else
    return false;
#endif
}

void
cellBitsBatch(const CellRng &rng, uint64_t cell0, uint64_t channel,
              unsigned n, uint64_t *out)
{
    telemetry::noteHashBatch(n);
#if VOLTBOOT_X86_WIDE_LANES
    if (wideLanesSupported()) {
        cellBitsAvx512(rng.hashBase(), cell0, channel, n, out);
        return;
    }
#endif
    for (unsigned i = 0; i < n; ++i)
        out[i] = rng.bits(cell0 + i, channel);
}

void
cellBitsBatchIndexed(const CellRng &rng, const uint64_t *keys,
                     uint64_t channel, unsigned n, uint64_t *out)
{
    telemetry::noteHashBatch(n);
#if VOLTBOOT_X86_WIDE_LANES
    if (wideLanesSupported()) {
        cellBitsIndexedAvx512(rng.hashBase(), keys, channel, n, out);
        return;
    }
#endif
    for (unsigned i = 0; i < n; ++i)
        out[i] = rng.bits(keys[i], channel);
}

uint64_t
cellBandMaskBatch(const CellRng &rng, uint64_t cell0, uint64_t channel,
                  unsigned n, uint64_t band_lo, uint64_t band_hi,
                  uint64_t *in_band)
{
    telemetry::noteHashBatch(n);
#if VOLTBOOT_X86_WIDE_LANES
    if (wideLanesSupported())
        return cellBandMaskAvx512(rng.hashBase(), cell0, channel, n,
                                  band_lo, band_hi, in_band);
#endif
    uint64_t ge = 0, band = 0;
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t raw = rng.rawUniform(cell0 + i, channel);
        ge |= static_cast<uint64_t>(raw >= band_lo) << i;
        band |= static_cast<uint64_t>(raw >= band_lo && raw < band_hi)
                << i;
    }
    *in_band = band;
    return ge;
}

uint64_t
rawBucketBandMask(const uint32_t *buckets, unsigned n, uint64_t band_lo,
                  uint64_t band_hi, uint64_t *in_band)
{
    telemetry::noteHashBatch(n);
    // Bucket-domain edges. A lane is provably >= band_lo iff its
    // bucket strictly exceeds hi_b (then raw >= (hi_b+1)<<21 > hi >=
    // lo); provably below iff its bucket is under lo_b; everything in
    // [lo_b, hi_b] is the caller's scalar-resolve set. band_hi can be
    // the full 2^53 hash range, whose bucket (2^32) overflows a
    // 32-bit lane — clamping it to 0xffffffff leaves "bucket > hi_b"
    // correctly unsatisfiable. band_lo == 2^53 (degenerate empty
    // band) would need the same care on the lower edge; settle it up
    // front instead.
    const uint64_t lo_b64 = band_lo >> 21;
    const uint64_t hi_b64 = band_hi >> 21;
    if (lo_b64 > 0xffffffffull) {
        *in_band = 0;
        return 0;
    }
    const uint32_t lo_b = static_cast<uint32_t>(lo_b64);
    const uint32_t hi_b = static_cast<uint32_t>(
        hi_b64 > 0xffffffffull ? 0xffffffffull : hi_b64);
#if VOLTBOOT_X86_WIDE_LANES
    if (wideLanesSupported())
        return rawBucketBandMaskAvx512(buckets, n, lo_b, hi_b, in_band);
#endif
    uint64_t ge = 0, band = 0;
    for (unsigned i = 0; i < n; ++i) {
        ge |= static_cast<uint64_t>(buckets[i] > hi_b) << i;
        band |= static_cast<uint64_t>(buckets[i] >= lo_b &&
                                      buckets[i] <= hi_b)
                << i;
    }
    *in_band = band;
    return ge;
}

uint64_t
cellLsbMaskBatch(const CellRng &rng, uint64_t cell0, uint64_t channel,
                 unsigned n)
{
    telemetry::noteHashBatch(n);
#if VOLTBOOT_X86_WIDE_LANES
    if (wideLanesSupported())
        return cellLsbMaskAvx512(rng.hashBase(), cell0, channel, n);
#endif
    uint64_t mask = 0;
    for (unsigned i = 0; i < n; ++i)
        mask |= (rng.bits(cell0 + i, channel) & 1) << i;
    return mask;
}

} // namespace voltboot

/**
 * @file
 * The unified key-recovery engine: batched scan, prior-guided
 * correction, multi-dump fusion and work-stealing parallelism behind
 * one front door.
 *
 * crypto/ grew two independent recovery tools — KeyFinder (exact-scan,
 * Volt Boot's error-free dumps) and RobustKeyScanner (correction scan,
 * cold boot's decayed dumps) — each with its own sequential sliding
 * loop. This engine generalises both into one pipeline:
 *
 *   1. *Vectorized scan.* Every candidate offset passes the linear
 *      residual early-reject filter (keyfind/schedule_scan, AVX-512
 *      batched with scalar fallback) so the full 11-round expansion
 *      runs only on the ~0.02% of offsets that could possibly be
 *      accepted. The hit list is bit-identical to KeyFinder::scan.
 *
 *   2. *Prior-guided correction.* Surviving the prefilter, windows go
 *      to KeyCorrector::attempt with per-bit flip priors when the
 *      caller supplies them (keyfind/prior derives them from the SRAM
 *      retention model; multi-dump fusion adds disagreement evidence).
 *      With no priors the hits are identical to RobustKeyScanner::scan.
 *
 *   3. *Parallel orchestration.* The offset space is split into
 *      fixed-size chunks forming a deterministic task list; workers
 *      steal tasks via an atomic cursor and results merge back in task
 *      order, so the output is byte-identical at any --jobs. The
 *      engine itself draws no randomness — determinism needs no seed
 *      plumbing at all.
 *
 * Campaign trials drive the engine through the KeyRecovery attack mode
 * (src/campaign); benches drive it directly (bench/keyfind_throughput).
 */

#ifndef VOLTBOOT_KEYFIND_ENGINE_HH
#define VOLTBOOT_KEYFIND_ENGINE_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/key_corrector.hh"
#include "crypto/key_finder.hh"
#include "keyfind/prior.hh"
#include "keyfind/schedule_scan.hh"

namespace voltboot
{
namespace keyfind
{

/** Work tallies of the correction stage. */
struct CorrectionStats
{
    uint64_t attempted = 0; ///< Windows entered into the corrector.
    uint64_t accepted = 0;  ///< Attempts that produced an accepted key.
    uint64_t gave_up_residual = 0;
    uint64_t gave_up_error_floor = 0;
    uint64_t gave_up_max_iterations = 0;
    uint64_t iterations = 0;     ///< Local-search iterations, summed.
    uint64_t distance_evals = 0; ///< Candidate schedules scored, summed.

    void
    operator+=(const CorrectionStats &o)
    {
        attempted += o.attempted;
        accepted += o.accepted;
        gave_up_residual += o.gave_up_residual;
        gave_up_error_floor += o.gave_up_error_floor;
        gave_up_max_iterations += o.gave_up_max_iterations;
        iterations += o.iterations;
        distance_evals += o.distance_evals;
    }
};

/** Engine configuration. */
struct KeyRecoveryConfig
{
    /** Exact-scan settings (variants, stride, acceptance threshold). */
    KeyFinderConfig scan;
    /** Correction local-search settings. */
    KeyCorrectorConfig correct;
    /** Run the correction stage (stage 2) at all. */
    bool run_correction = true;
    /** Key size the correction stage targets (16, 24 or 32). */
    size_t correct_key_bytes = 16;
    /** First-round mismatch fraction above which a window skips the
     * corrector (RobustKeyScanner's prefilter). */
    double prefilter_threshold = 0.375;
    /** Use per-bit flip priors when the caller provides them. */
    bool use_priors = true;
    /** Worker threads; 0 picks the hardware concurrency. Results are
     * byte-identical regardless. */
    unsigned jobs = 1;
    /** Candidate offsets per work-stealing task. */
    size_t chunk_offsets = 4096;
};

/** Everything one recovery run produced. */
struct RecoveryReport
{
    /** Exact-scan hits, fewest bit errors first (KeyFinder order). */
    std::vector<KeyCandidate> scan_hits;
    /** Correction hits, fewest residual errors first
     * (RobustKeyScanner order). */
    std::vector<RobustScanHit> corrected_hits;
    ScanStats scan;
    CorrectionStats correction;
    size_t dumps_fused = 1;
    /** Bits that disagreed across the fused dumps (0 for one dump). */
    size_t disagreeing_bits = 0;

    /** The recovered key, preferring the exact scan's best hit and
     * falling back to the best corrected hit. */
    std::optional<std::vector<uint8_t>> bestKey() const;
};

/** The batched, parallel scan + correction pipeline. */
class KeyRecoveryEngine
{
  public:
    explicit KeyRecoveryEngine(KeyRecoveryConfig config = {})
        : config_(config)
    {}

    /** Recover from a single dump, no priors. */
    RecoveryReport recover(const MemoryImage &dump) const;

    /**
     * Recover from @p dumps of the same array (majority-vote fused when
     * more than one), optionally guided by per-bit flip priors
     * @p cell_flip_priors (one entry per bit; see decayFlipPriors).
     * With several dumps the fusion's disagreement evidence is folded
     * into the priors.
     */
    RecoveryReport recover(std::span<const MemoryImage> dumps,
                           std::span<const float> cell_flip_priors = {})
        const;

    const KeyRecoveryConfig &config() const { return config_; }

  private:
    RecoveryReport
    recoverImage(const MemoryImage &image,
                 std::span<const float> flip_likelihood) const;

    KeyRecoveryConfig config_;
};

} // namespace keyfind
} // namespace voltboot

#endif // VOLTBOOT_KEYFIND_ENGINE_HH

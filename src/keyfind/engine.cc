#include "keyfind/engine.hh"

#include <algorithm>
#include <atomic>
#include <thread>

#include "sim/logging.hh"
#include "telemetry/counters.hh"

namespace voltboot
{
namespace keyfind
{

namespace
{

/** One work-stealing unit: a contiguous offset range of one stage. */
struct Task
{
    bool correction;
    size_t key_bytes;
    size_t schedule_bytes;
    size_t off_begin;
    size_t off_end;
};

/** Per-task results, merged back in task order so the final output is
 * independent of which worker ran what. */
struct TaskResult
{
    std::vector<KeyCandidate> scan_hits;
    std::vector<RobustScanHit> corrected_hits;
    ScanStats scan;
    CorrectionStats correction;
};

/** Append chunked tasks covering every valid offset of one stage. */
void
appendTasks(std::vector<Task> &tasks, bool correction, size_t key_bytes,
            size_t schedule_bytes, size_t image_bytes, size_t stride,
            size_t chunk_offsets)
{
    if (image_bytes < schedule_bytes)
        return;
    const size_t last_off = image_bytes - schedule_bytes;
    const size_t span = std::max<size_t>(1, chunk_offsets) * stride;
    for (size_t begin = 0; begin <= last_off; begin += span)
        tasks.push_back(Task{correction, key_bytes, schedule_bytes,
                             begin,
                             std::min(begin + span, last_off + 1)});
}

void
runCorrectionTask(std::span<const uint8_t> bytes, const Task &task,
                  const KeyRecoveryConfig &config,
                  std::span<const float> flip_likelihood,
                  TaskResult &result)
{
    const KeyCorrector corrector(config.correct);
    const size_t kb = task.key_bytes;
    for (size_t off = task.off_begin; off < task.off_end;
         off += config.scan.stride) {
        std::span<const uint8_t> window(bytes.data() + off,
                                        task.schedule_bytes);
        // Same gauntlet as RobustKeyScanner: constant windows are never
        // schedules, and a window whose first derived round already
        // disagrees on more than the prefilter fraction is random data.
        bool all_same = true;
        for (size_t i = 1; i < kb && all_same; ++i)
            all_same = window[i] == window[0];
        if (all_same)
            continue;
        if (RobustKeyScanner::firstRoundMismatch(window, kb) >
            config.prefilter_threshold)
            continue;
        ++result.correction.attempted;
        std::span<const float> prior;
        if (config.use_priors && !flip_likelihood.empty())
            prior = flip_likelihood.subspan(off * 8, kb * 8);
        CorrectionAttempt a = corrector.attempt(window, kb, prior);
        result.correction.iterations += a.iterations;
        result.correction.distance_evals += a.distance_evals;
        switch (a.gave_up) {
          case GiveUpReason::None:
            break;
          case GiveUpReason::Residual:
            ++result.correction.gave_up_residual;
            break;
          case GiveUpReason::ErrorFloor:
            ++result.correction.gave_up_error_floor;
            break;
          case GiveUpReason::MaxIterations:
            ++result.correction.gave_up_max_iterations;
            break;
        }
        if (a.key) {
            ++result.correction.accepted;
            result.corrected_hits.push_back(
                RobustScanHit{off, std::move(*a.key)});
        }
    }
}

void
runTask(std::span<const uint8_t> bytes, const Task &task,
        const KeyRecoveryConfig &config,
        std::span<const float> flip_likelihood, TaskResult &result)
{
    if (task.correction) {
        runCorrectionTask(bytes, task, config, flip_likelihood, result);
        telemetry::add(telemetry::Counter::KeyfindCorrections,
                       result.correction.attempted);
        telemetry::add(telemetry::Counter::KeyfindCorrectionIters,
                       result.correction.iterations);
    } else {
        scheduleScanRange(bytes, task.key_bytes, task.schedule_bytes,
                          task.off_begin, task.off_end, config.scan,
                          result.scan_hits, result.scan);
        telemetry::add(telemetry::Counter::KeyfindOffsets,
                       result.scan.offsets);
        telemetry::add(telemetry::Counter::KeyfindEarlyRejects,
                       result.scan.early_rejects);
    }
}

} // namespace

std::optional<std::vector<uint8_t>>
RecoveryReport::bestKey() const
{
    if (!scan_hits.empty())
        return scan_hits.front().key;
    if (!corrected_hits.empty())
        return corrected_hits.front().corrected.key;
    return std::nullopt;
}

RecoveryReport
KeyRecoveryEngine::recoverImage(
    const MemoryImage &image,
    std::span<const float> flip_likelihood) const
{
    if (config_.scan.stride == 0)
        fatal("KeyRecoveryEngine: stride must be positive");
    if (!flip_likelihood.empty() &&
        flip_likelihood.size() != image.sizeBits())
        fatal("KeyRecoveryEngine: flip priors must hold one entry per "
              "bit, got ", flip_likelihood.size());
    const auto &bytes = image.bytes();

    // Deterministic task list: scan stages in the reference variant
    // order, then the correction stage. Workers steal via the cursor;
    // results land in per-task slots and merge back in list order, so
    // any interleaving produces the same output.
    std::vector<Task> tasks;
    if (config_.scan.aes128)
        appendTasks(tasks, false, 16, 176, bytes.size(),
                    config_.scan.stride, config_.chunk_offsets);
    if (config_.scan.aes256)
        appendTasks(tasks, false, 32, 240, bytes.size(),
                    config_.scan.stride, config_.chunk_offsets);
    if (config_.run_correction) {
        const size_t kb = config_.correct_key_bytes;
        if (kb != 16 && kb != 24 && kb != 32)
            fatal("KeyRecoveryEngine: unsupported correction key size ",
                  kb);
        const size_t schedule_bytes =
            Aes::expandKey(std::vector<uint8_t>(kb, 0)).size();
        appendTasks(tasks, true, kb, schedule_bytes, bytes.size(),
                    config_.scan.stride, config_.chunk_offsets);
    }

    std::vector<TaskResult> results(tasks.size());
    std::atomic<size_t> cursor{0};
    auto drain = [&]() {
        for (;;) {
            const size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                break;
            runTask(bytes, tasks[i], config_, flip_likelihood,
                    results[i]);
        }
    };

    unsigned jobs = config_.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    if (jobs <= 1 || tasks.size() <= 1) {
        drain();
    } else {
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (unsigned w = 0; w < jobs; ++w)
            workers.emplace_back([&]() {
                telemetry::WorkerScope scope;
                drain();
            });
        for (std::thread &t : workers)
            t.join();
    }

    RecoveryReport report;
    for (TaskResult &r : results) {
        report.scan += r.scan;
        report.correction += r.correction;
        std::move(r.scan_hits.begin(), r.scan_hits.end(),
                  std::back_inserter(report.scan_hits));
        std::move(r.corrected_hits.begin(), r.corrected_hits.end(),
                  std::back_inserter(report.corrected_hits));
    }
    // The references' exact sorts, applied to the same pre-sort order
    // the sequential loops produce (ascending offset per stage).
    std::sort(report.scan_hits.begin(), report.scan_hits.end(),
              [](const KeyCandidate &a, const KeyCandidate &b) {
                  return a.bit_errors < b.bit_errors;
              });
    std::sort(report.corrected_hits.begin(),
              report.corrected_hits.end(),
              [](const RobustScanHit &a, const RobustScanHit &b) {
                  return a.corrected.residual_bit_errors <
                         b.corrected.residual_bit_errors;
              });
    return report;
}

RecoveryReport
KeyRecoveryEngine::recover(const MemoryImage &dump) const
{
    return recoverImage(dump, {});
}

RecoveryReport
KeyRecoveryEngine::recover(std::span<const MemoryImage> dumps,
                           std::span<const float> cell_flip_priors) const
{
    if (dumps.empty())
        fatal("KeyRecoveryEngine: no dumps");
    if (dumps.size() == 1) {
        std::span<const float> prior;
        if (config_.use_priors)
            prior = cell_flip_priors;
        return recoverImage(dumps[0], prior);
    }
    const FusedDump fused = fuseDumps(dumps, cell_flip_priors);
    std::span<const float> prior;
    if (config_.use_priors)
        prior = fused.flip_likelihood;
    RecoveryReport report = recoverImage(fused.image, prior);
    report.dumps_fused = fused.dumps;
    report.disagreeing_bits = fused.disagreeing_bits;
    return report;
}

} // namespace keyfind
} // namespace voltboot

#include "keyfind/prior.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace voltboot
{
namespace keyfind
{

namespace
{

/** Standard normal CDF. */
inline double
phi(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

constexpr float kPriorFloor = 1e-4f;
constexpr float kPriorCeil = 0.5f;
constexpr float kDisagreePrior = 0.45f;

} // namespace

std::vector<float>
decayFlipPriors(const RetentionModel &model, size_t bits,
                Seconds off_time, Temperature t, double profile_sigma_ln)
{
    std::vector<float> priors(bits, kPriorFloor);
    if (off_time.seconds() <= 0.0)
        return priors; // No unpowered interval: nothing decays.
    const double ln_off = std::log(off_time.seconds());
    const double ln_median = model.logMedianRetention(t);
    const double sigma_cell = model.config().retention_sigma_ln;
    const double sigma =
        profile_sigma_ln > 0 ? profile_sigma_ln : 1e-6;
    for (size_t cell = 0; cell < bits; ++cell) {
        const CellParams p = model.cellParams(cell);
        // The profiled estimate of this cell's log retention time; the
        // loss probability is how far the off interval sits above it,
        // in units of the profiling uncertainty.
        const double ln_ret = ln_median + sigma_cell * p.retention_z;
        const double p_loss = phi((ln_off - ln_ret) / sigma);
        priors[cell] = std::clamp(static_cast<float>(0.5 * p_loss),
                                  kPriorFloor, kPriorCeil);
    }
    return priors;
}

FusedDump
fuseDumps(std::span<const MemoryImage> dumps,
          std::span<const float> cell_flip_priors)
{
    if (dumps.empty())
        fatal("fuseDumps: no dumps");
    const size_t size = dumps[0].sizeBytes();
    for (const MemoryImage &d : dumps)
        if (d.sizeBytes() != size)
            fatal("fuseDumps: dump sizes differ (", d.sizeBytes(),
                  " vs ", size, ")");
    if (!cell_flip_priors.empty() && cell_flip_priors.size() != size * 8)
        fatal("fuseDumps: priors must hold one entry per bit, got ",
              cell_flip_priors.size());

    FusedDump out;
    out.dumps = dumps.size();
    out.flip_likelihood.resize(size * 8);
    std::vector<uint8_t> bytes(size);
    const size_t n = dumps.size();
    for (size_t byte = 0; byte < size; ++byte) {
        uint8_t fused = 0;
        for (unsigned bit = 0; bit < 8; ++bit) {
            const uint8_t mask = static_cast<uint8_t>(1u << bit);
            size_t ones = 0;
            for (const MemoryImage &d : dumps)
                ones += (d.bytes()[byte] & mask) != 0;
            bool value;
            if (ones * 2 > n)
                value = true;
            else if (ones * 2 < n)
                value = false;
            else
                value = (dumps[0].bytes()[byte] & mask) != 0;
            if (value)
                fused |= mask;
            const size_t idx = byte * 8 + bit;
            float p = cell_flip_priors.empty() ? 0.05f
                                               : cell_flip_priors[idx];
            if (ones != 0 && ones != n) {
                p = std::max(p, kDisagreePrior);
                ++out.disagreeing_bits;
            }
            out.flip_likelihood[idx] = p;
        }
        bytes[byte] = fused;
    }
    out.image = MemoryImage(std::move(bytes));
    return out;
}

} // namespace keyfind
} // namespace voltboot

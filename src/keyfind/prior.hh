/**
 * @file
 * Per-cell bit-flip priors and multi-dump evidence fusion.
 *
 * The corrector's local search is blind by default: it scores every
 * candidate key-bit flip equally. But the physics is not uniform — a
 * cell whose retention time sits far below the off interval almost
 * certainly decayed, while a strong cell almost certainly kept its bit.
 * The attacker can profile exactly this (DRV fingerprinting enrolls
 * per-cell strength from repeated power-ups of the *same* silicon), so
 * the simulator grants it directly from the RetentionModel: per-cell
 * loss probabilities under the trial's off-time/temperature, widened by
 * a profiling-noise sigma so the prior is informative rather than an
 * oracle.
 *
 * Fusion implements the other classic cold-boot trick: power-cycle the
 * victim N times and majority-vote the dumps. Decayed skewed cells
 * resolve identically every time (no information), but the metastable
 * fraction re-draws per power-up — disagreement across dumps marks a
 * cell as decayed-and-unreliable, which is precisely where correction
 * effort should go first.
 */

#ifndef VOLTBOOT_KEYFIND_PRIOR_HH
#define VOLTBOOT_KEYFIND_PRIOR_HH

#include <span>
#include <vector>

#include "sram/memory_image.hh"
#include "sram/retention_model.hh"

namespace voltboot
{
namespace keyfind
{

/**
 * Per-bit flip likelihoods for a dump taken after @p off_time unpowered
 * at temperature @p t, from the array's retention model. Entry i
 * corresponds to image bit i (byte i/8, bit i%8, LSB-first — the
 * MemoryImage::bitAt convention). Each likelihood is
 * 0.5 * P(cell decayed), the decayed cell resolving to the stored
 * value about half the time; @p profile_sigma_ln widens the per-cell
 * retention estimate to model imperfect profiling. Values are clamped
 * to [1e-4, 0.5] so no bit is ever considered certain.
 */
std::vector<float> decayFlipPriors(const RetentionModel &model,
                                   size_t bits, Seconds off_time,
                                   Temperature t,
                                   double profile_sigma_ln = 0.5);

/** Majority-voted dump plus per-bit reliability evidence. */
struct FusedDump
{
    MemoryImage image;                 ///< Majority-vote of the dumps.
    std::vector<float> flip_likelihood; ///< Per-bit flip prior.
    size_t dumps = 0;                  ///< Dumps fused.
    size_t disagreeing_bits = 0;       ///< Bits not unanimous across dumps.
};

/**
 * Fuse equal-sized dumps of the same array by per-bit majority vote
 * (ties resolve to the first dump's bit). The fused flip likelihood
 * starts from @p cell_flip_priors when given (one entry per bit, e.g.
 * decayFlipPriors) or a 0.05 floor otherwise, and is raised to at
 * least 0.45 wherever the dumps disagree — a cell that reads
 * differently across power cycles has certainly lost its data.
 */
FusedDump fuseDumps(std::span<const MemoryImage> dumps,
                    std::span<const float> cell_flip_priors = {});

} // namespace keyfind
} // namespace voltboot

#endif // VOLTBOOT_KEYFIND_PRIOR_HH

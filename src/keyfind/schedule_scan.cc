#include "keyfind/schedule_scan.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "crypto/key_corrector.hh"
#include "sim/word_popcount_batch.hh"
#include "telemetry/counters.hh"

namespace voltboot
{
namespace keyfind
{

namespace
{

/** Residual filter lanes evaluated per batched pass. */
constexpr unsigned kBatchLanes = 64;

inline uint32_t
load32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Residual sum of the window at @p w for one variant (scalar path,
 * used for non-word strides where lanes are not contiguous). */
uint32_t
residualSum(const uint8_t *w, std::span<const unsigned> words,
            unsigned nk)
{
    uint32_t sum = 0;
    for (unsigned i : words)
        sum += static_cast<uint32_t>(
            std::popcount(load32(w + size_t{i} * 4) ^
                          load32(w + size_t{i - 1} * 4) ^
                          load32(w + size_t{i - nk} * 4)));
    return sum;
}

/** The reference accept test, applied to a survivor window. */
void
scoreWindow(std::span<const uint8_t> bytes, size_t off, size_t key_bytes,
            size_t schedule_bytes, double max_error_fraction,
            std::vector<KeyCandidate> &hits)
{
    std::span<const uint8_t> window(bytes.data() + off, schedule_bytes);
    // Same constant-window skip as the reference (Rcon injection
    // forbids constant schedules; zero pages dominate real dumps). A
    // constant window has zero linear residual, so the filter alone
    // cannot reject it.
    if (std::all_of(window.begin(), window.begin() + 16,
                    [&](uint8_t b) { return b == window[0]; }))
        return;
    const double derived_bits =
        static_cast<double>((schedule_bytes - key_bytes) * 8);
    const size_t errors =
        KeyFinder::scheduleBitErrors(window, key_bytes);
    const double frac = static_cast<double>(errors) / derived_bits;
    if (frac <= max_error_fraction) {
        KeyCandidate cand;
        cand.offset = off;
        cand.key_bytes = key_bytes;
        cand.key.assign(window.begin(), window.begin() + key_bytes);
        cand.bit_errors = errors;
        cand.error_fraction = frac;
        hits.push_back(std::move(cand));
    }
}

} // namespace

size_t
acceptedErrorBudget(double max_error_fraction, size_t derived_bits)
{
    const double db = static_cast<double>(derived_bits);
    size_t e = 0;
    if (max_error_fraction > 0) {
        const double approx = max_error_fraction * db;
        e = approx >= static_cast<double>(derived_bits)
                ? derived_bits
                : static_cast<size_t>(approx);
    }
    // Nudge to the exact boundary of the double comparison the
    // reference performs.
    while (e + 1 <= derived_bits &&
           static_cast<double>(e + 1) / db <= max_error_fraction)
        ++e;
    while (e > 0 && static_cast<double>(e) / db > max_error_fraction)
        --e;
    return e;
}

bool
scheduleScanAccelerated()
{
    return wordPopcountAccelerated();
}

void
scheduleScanRange(std::span<const uint8_t> bytes, size_t key_bytes,
                  size_t schedule_bytes, size_t off_begin, size_t off_end,
                  const KeyFinderConfig &config,
                  std::vector<KeyCandidate> &hits, ScanStats &stats)
{
    if (bytes.size() < schedule_bytes)
        return;
    const size_t last_off = bytes.size() - schedule_bytes;
    if (off_begin > last_off)
        return;
    off_end = std::min(off_end, last_off + 1);

    const unsigned nk = static_cast<unsigned>(key_bytes / 4);
    const auto words = scheduleResidualWords(key_bytes);
    const size_t budget = acceptedErrorBudget(
        config.max_error_fraction, (schedule_bytes - key_bytes) * 8);

    if (config.stride == 4) {
        // Batched path: 64 consecutive word-aligned offsets per pass,
        // one strided XOR3+popcount kernel call per relation, then a
        // scalar compare of each lane's residual sum against the
        // budget.
        uint32_t acc[kBatchLanes];
        for (size_t off = off_begin; off < off_end;
             off += size_t{kBatchLanes} * 4) {
            const unsigned lanes = static_cast<unsigned>(
                std::min<size_t>(kBatchLanes, (off_end - off + 3) / 4));
            std::memset(acc, 0, sizeof(uint32_t) * lanes);
            const uint8_t *base = bytes.data() + off;
            for (unsigned i : words)
                xorTriplePopcountAccumulate(
                    base, size_t{i} * 4, size_t{i - 1} * 4,
                    size_t{i - nk} * 4, lanes, acc);
            stats.offsets += lanes;
            for (unsigned l = 0; l < lanes; ++l) {
                if (acc[l] > budget) {
                    ++stats.early_rejects;
                    continue;
                }
                ++stats.scored;
                scoreWindow(bytes, off + size_t{l} * 4, key_bytes,
                            schedule_bytes, config.max_error_fraction,
                            hits);
            }
        }
    } else {
        for (size_t off = off_begin; off < off_end;
             off += config.stride) {
            ++stats.offsets;
            if (residualSum(bytes.data() + off, words, nk) > budget) {
                ++stats.early_rejects;
                continue;
            }
            ++stats.scored;
            scoreWindow(bytes, off, key_bytes, schedule_bytes,
                        config.max_error_fraction, hits);
        }
    }
}

std::vector<KeyCandidate>
scheduleScan(const MemoryImage &image, const KeyFinderConfig &config,
             ScanStats *stats)
{
    std::vector<KeyCandidate> hits;
    ScanStats local;
    const auto &bytes = image.bytes();

    struct Variant
    {
        size_t key_bytes;
        size_t schedule_bytes;
        bool enabled;
    };
    const Variant variants[] = {
        {16, 176, config.aes128},
        {32, 240, config.aes256},
    };
    for (const Variant &v : variants) {
        if (!v.enabled || bytes.size() < v.schedule_bytes)
            continue;
        scheduleScanRange(bytes, v.key_bytes, v.schedule_bytes, 0,
                          bytes.size(), config, hits, local);
    }

    telemetry::add(telemetry::Counter::KeyfindOffsets, local.offsets);
    telemetry::add(telemetry::Counter::KeyfindEarlyRejects,
                   local.early_rejects);
    if (stats)
        *stats += local;

    std::sort(hits.begin(), hits.end(),
              [](const KeyCandidate &a, const KeyCandidate &b) {
                  return a.bit_errors < b.bit_errors;
              });
    return hits;
}

} // namespace keyfind
} // namespace voltboot

/**
 * @file
 * Batched AES key-schedule scan with a vectorized early-reject filter.
 *
 * crypto/key_finder.cc scores every candidate offset by expanding the
 * full 11-round schedule from the window's leading bytes — ~3.5 KiB of
 * S-box work per offset, almost all of it spent proving that random
 * data is not a schedule. This module keeps the *accept* decision
 * bit-identical while making the *reject* decision nearly free:
 *
 *   For the schedule rows with no S-box, an ideal schedule satisfies
 *   w[i] = w[i-Nk] ^ w[i-1] exactly, so the observed window's residual
 *   r[i] = popcount(W[i] ^ W[i-1] ^ W[i-Nk]) is bounded by the sum of
 *   the bit errors on those three words. Over the disjoint-support
 *   relation set (crypto/scheduleResidualWords) the residual sum never
 *   exceeds the window's derived-bit error count — the quantity the
 *   reference scorer thresholds. An offset whose residual sum already
 *   exceeds the acceptance budget therefore *cannot* be accepted, and
 *   is rejected without expanding anything. On random data the
 *   residual sum concentrates around half the relation bits (~160 for
 *   AES-128 vs a budget of 128 at the default 10% threshold), so only
 *   ~0.02% of offsets survive to the exact scorer.
 *
 * The residuals themselves are word-wise XOR + popcount with no
 * cross-offset dependency, so 16 consecutive offsets are evaluated per
 * AVX-512 pass via sim/word_popcount_batch (runtime-dispatched, with a
 * bit-identical scalar fallback). Survivors are re-scored with the
 * reference KeyFinder::scheduleBitErrors, making the hit list — order
 * included — byte-identical to KeyFinder::scan.
 */

#ifndef VOLTBOOT_KEYFIND_SCHEDULE_SCAN_HH
#define VOLTBOOT_KEYFIND_SCHEDULE_SCAN_HH

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/key_finder.hh"

namespace voltboot
{
namespace keyfind
{

/** Work tallies of a scan pass. */
struct ScanStats
{
    uint64_t offsets = 0;       ///< Candidate offsets examined.
    uint64_t early_rejects = 0; ///< Rejected by the residual filter alone.
    uint64_t scored = 0;        ///< Survivors run through the exact scorer.

    void
    operator+=(const ScanStats &o)
    {
        offsets += o.offsets;
        early_rejects += o.early_rejects;
        scored += o.scored;
    }
};

/**
 * Scan byte offsets [off_begin, off_end) of @p bytes (at
 * @p config.stride spacing, off_begin itself being the first candidate)
 * for schedules of one AES variant, appending accepted candidates to
 * @p hits in ascending-offset order. Offsets whose window would overrun
 * the buffer are skipped. The accepted set and every candidate field
 * are bit-identical to the corresponding KeyFinder::scan windows.
 */
void scheduleScanRange(std::span<const uint8_t> bytes, size_t key_bytes,
                       size_t schedule_bytes, size_t off_begin,
                       size_t off_end, const KeyFinderConfig &config,
                       std::vector<KeyCandidate> &hits, ScanStats &stats);

/**
 * Whole-image scan over every variant @p config enables — the drop-in
 * batched equivalent of KeyFinder(config).scan(image): same hits, same
 * sort, same tie order.
 */
std::vector<KeyCandidate> scheduleScan(const MemoryImage &image,
                                       const KeyFinderConfig &config,
                                       ScanStats *stats = nullptr);

/** True when the residual filter runs on an AVX-512 path. */
bool scheduleScanAccelerated();

/**
 * Largest bit-error count the reference scorer accepts: the greatest
 * integer e with e / derived_bits <= max_error_fraction under exact
 * double division (the comparison KeyFinder::scan performs).
 */
size_t acceptedErrorBudget(double max_error_fraction,
                           size_t derived_bits);

} // namespace keyfind
} // namespace voltboot

#endif // VOLTBOOT_KEYFIND_SCHEDULE_SCAN_HH

/**
 * @file
 * The integrated system-on-chip plus its circuit board.
 *
 * A Soc instance owns:
 *  - the Board (PMIC, power domains, test pads),
 *  - every MemoryArray (cache data/tag RAMs, register files, iRAM, DRAM),
 *    each wired to its power domain,
 *  - the MemorySystem (caches and regions built over those arrays),
 *  - one Cpu per core with register files living in the core domain,
 *  - the boot behaviour of its platform (VideoCore L2 clobber, boot-ROM
 *    iRAM scratch usage, optional Section 8 countermeasures).
 *
 * Time is tracked by an EventQueue so unpowered intervals have real
 * durations for the retention physics.
 */

#ifndef VOLTBOOT_SOC_SOC_HH
#define VOLTBOOT_SOC_SOC_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "isa/cpu.hh"
#include "mem/btb.hh"
#include "mem/memory_system.hh"
#include "mem/tlb.hh"
#include "power/board.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "soc/soc_config.hh"
#include "sram/memory_array.hh"
#include "sram/memory_image.hh"

namespace voltboot
{

/**
 * JTAG debug port: direct word access to the iRAM, available on parts
 * that boot from internal ROM (the i.MX535 path of Section 7.3).
 */
class JtagPort
{
  public:
    explicit JtagPort(class Soc &soc) : soc_(soc) {}

    /** True when the platform exposes JTAG. */
    bool available() const;
    /** Dump @p length bytes of iRAM starting at absolute @p addr. */
    MemoryImage readIram(uint64_t addr, size_t length) const;
    /** Write bytes into iRAM (load an image before the attack). */
    void writeIram(uint64_t addr, std::span<const uint8_t> data);

  private:
    Soc &soc_;
};

/** The whole device under attack. */
class Soc
{
  public:
    explicit Soc(const SocConfig &config);

    const SocConfig &config() const { return config_; }
    Board &board() { return board_; }
    const Board &board() const { return board_; }
    EventQueue &eventQueue() { return queue_; }
    MemorySystem &memory() { return memsys_; }
    JtagPort &jtag() { return jtag_; }

    unsigned coreCount() const { return config_.core_count; }
    Cpu &cpu(size_t core) { return *cpus_.at(core); }
    CorePort &port(size_t core) { return *ports_.at(core); }

    /** Ambient temperature the device sits at (thermal-chamber knob). */
    Temperature ambient() const { return ambient_; }
    void setAmbient(Temperature t) { ambient_ = t; }

    /** @name Power-cycle control (the attacker's switch and probe) */
    ///@{
    /** Apply main power and run the platform boot ROM. */
    void powerOn();
    /** Cut main power. Probed domains ride through. */
    void powerOff();
    /** Let @p interval of wall-clock pass (unpowered decay accrues). */
    void advanceTime(Seconds interval);
    /** Full cycle: off, wait @p off_interval, on (boot ROM runs again). */
    void powerCycle(Seconds off_interval);
    bool poweredOn() const { return board_.pmic().mainSupplyOn(); }
    ///@}

    /** @name Software loading and execution */
    ///@{
    /** Copy an assembled program into DRAM at its load address. */
    void loadProgram(const Program &program);
    /** Copy raw bytes into DRAM at @p addr. */
    void loadBytes(uint64_t addr, std::span<const uint8_t> data);
    /** Reset core @p core to @p entry and run at most @p max_steps. */
    uint64_t runCore(size_t core, uint64_t entry, uint64_t max_steps);
    ///@}

    /** @name Array access for wiring and analysis */
    ///@{
    MemoryArray &l1iData(size_t core) { return *l1i_data_.at(core); }
    MemoryArray &l1dData(size_t core) { return *l1d_data_.at(core); }
    MemoryArray &xRegs(size_t core) { return *xregs_.at(core); }
    MemoryArray &vRegs(size_t core) { return *vregs_.at(core); }
    MemoryArray *iramArray() { return iram_ ? iram_.get() : nullptr; }
    MemoryArray &dramArray() { return *dram_; }
    MemoryArray *l2Data() { return l2_data_ ? l2_data_.get() : nullptr; }
    ///@}

    /** @name Core-domain microarchitectural RAMs (Section 2.1's "15
     * internal RAMs": TLBs and branch predictors are RAMINDEX-visible
     * SRAM too) */
    ///@{
    Tlb &dtlb(size_t core) { return *dtlbs_.at(core); }
    Btb &btb(size_t core) { return *btbs_.at(core); }
    ///@}

    /**
     * Attach a Volt Boot probe at test pad @p pad_label. Returns the
     * domain now held. Throws FatalError if the pad does not exist or the
     * probe voltage mismatches the rail.
     */
    PowerDomain *attachProbe(const std::string &pad_label,
                             const VoltageProbe &probe);
    /** Detach any probe at @p pad_label's domain. */
    void detachProbe(const std::string &pad_label);

    /**
     * Boot from attacker-controlled media (USB mass storage). Fails (and
     * returns false) when authenticated boot rejects unsigned images.
     * On success the attacker program is in DRAM and core 0 is reset to
     * its entry; caches stay disabled unless the program enables them.
     */
    bool bootFromExternalMedia(const Program &program);

    /** Number of completed boots (diagnostics). */
    uint64_t bootCount() const { return boot_count_; }

  private:
    void buildArrays();
    void buildMemorySystem();
    void wireDomains();
    void runBootRom();

    SocConfig config_;
    Board board_;
    EventQueue queue_;
    Temperature ambient_ = Temperature::celsius(25.0);
    Rng boot_noise_;

    // Backing arrays (owned here; caches/regions reference them).
    std::vector<std::unique_ptr<MemoryArray>> l1i_data_, l1i_tags_;
    std::vector<std::unique_ptr<MemoryArray>> l1d_data_, l1d_tags_;
    std::unique_ptr<MemoryArray> l2_data_, l2_tags_;
    std::unique_ptr<MemoryArray> iram_;
    std::unique_ptr<MemoryArray> dram_;
    std::vector<std::unique_ptr<MemoryArray>> xregs_, vregs_;
    std::vector<std::unique_ptr<MemoryArray>> dtlb_store_, btb_store_;
    std::vector<std::unique_ptr<Tlb>> dtlbs_;
    std::vector<std::unique_ptr<Btb>> btbs_;

    MemorySystem memsys_;
    std::vector<std::unique_ptr<CorePort>> ports_;
    std::vector<std::unique_ptr<Cpu>> cpus_;
    JtagPort jtag_;
    uint64_t boot_count_ = 0;
};

} // namespace voltboot

#endif // VOLTBOOT_SOC_SOC_HH

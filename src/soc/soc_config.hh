/**
 * @file
 * Device database: the three evaluation platforms of the paper's Table 2,
 * with the power wiring of Table 3.
 *
 *  | Board          | SoC     | CPU            | Pad  | Rail    | Target  |
 *  |----------------|---------|----------------|------|---------|---------|
 *  | Raspberry Pi 4 | BCM2711 | 4x Cortex-A72  | TP15 | 0.8 V   | L1/regs |
 *  | Raspberry Pi 3 | BCM2837 | 4x Cortex-A53  | PP58 | 1.2 V   | L1/regs |
 *  | i.MX53 QSB     | i.MX535 | 1x Cortex-A8   | SH13 | 1.3 V   | iRAM    |
 */

#ifndef VOLTBOOT_SOC_SOC_CONFIG_HH
#define VOLTBOOT_SOC_SOC_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "sim/units.hh"

namespace voltboot
{

/** One power domain of the SoC and what it feeds. */
struct DomainSpec
{
    std::string name;    ///< Supply pin name, e.g. "VDD_CORE".
    Volt nominal;        ///< Nominal voltage.
    bool buck = true;    ///< Switching regulator (vs LDO).
    Amp surge_current{0.5};
    Amp retention_current{0.008};
    Farad decap = Farad::microfarads(100.0);
};

/** A region the boot ROM scribbles over before releasing the CPU. */
struct BootClobber
{
    uint64_t begin; ///< Absolute address, inclusive.
    uint64_t end;   ///< Absolute address, exclusive.
};

/** Full platform description. */
struct SocConfig
{
    std::string board_name;
    std::string soc_name;
    std::string cpu_name;
    std::string pmic_name;
    unsigned core_count = 4;

    CacheGeometry l1i;
    CacheGeometry l1d;
    std::optional<CacheGeometry> l2;

    uint64_t dram_base = 0x0;
    size_t dram_bytes = 1 << 20;
    uint64_t iram_base = 0;
    size_t iram_bytes = 0;

    /** Power domains; conventionally core, memory, io. */
    DomainSpec core_domain;
    DomainSpec mem_domain;
    DomainSpec io_domain;
    /**
     * Optional dedicated external-SDRAM rail. When present, DRAM (and
     * the L2 on parts where the L2 is not in the on-chip memory domain)
     * draws from it instead of mem_domain — the i.MX535's VDDAL1 feeds
     * only the on-chip L1 memories (iRAM), while the external DDR has
     * its own supply.
     */
    std::optional<DomainSpec> sdram_domain;

    /** Which arrays hang off which domain. */
    bool iram_on_mem_domain = true;
    /** L2 sits on the sdram/mem domain boundary: true = mem_domain. */
    bool l2_on_mem_domain = true;

    /** Board-level test pads: label -> domain name. */
    struct PadSpec
    {
        std::string label;
        std::string domain;
    };
    std::vector<PadSpec> pads;

    /** The pad the published attack probes, and the memories it targets. */
    std::string attack_pad;
    std::string attack_target; ///< "L1D, L1I, registers" or "iRAM".

    /**
     * BCM-style VideoCore: a GPU boot firmware that owns the shared L2
     * at startup and clobbers its contents before the ARM cores run.
     */
    bool has_videocore = false;

    /**
     * i.MX-style internal boot ROM that uses part of the iRAM as
     * scratchpad before handing off (the paper measures the region
     * 0xF800083C-0xF80018CC plus a cluster near the end; ~5% of iRAM).
     */
    std::vector<BootClobber> iram_boot_clobbers;

    /** JTAG debug access available without boot firmware (i.MX535). */
    bool jtag_enabled = false;

    /**
     * The L1I data RAM stores instructions and ECC interleaved in an
     * undocumented bit order (the paper's footnote 4 on the Cortex-A53):
     * RAMINDEX dumps of it cannot be grepped for machine code directly;
     * attackers compare before/after dumps instead.
     */
    bool icache_ecc_undocumented = false;

    /** OEM-mandated authenticated boot (Section 8 countermeasure). */
    bool authenticated_boot = false;
    /** Hardware SRAM reset at boot (Section 8 countermeasure). */
    bool boot_sram_reset = false;
    /** TrustZone NS-bit enforcement on debug reads (Section 8). */
    bool trustzone_enforced = false;

    /** Chip-unique process variation seed. */
    uint64_t chip_seed = 0x2711;

    /** Evaluated platforms. */
    static SocConfig bcm2711(); ///< Raspberry Pi 4.
    static SocConfig bcm2837(); ///< Raspberry Pi 3.
    static SocConfig imx535();  ///< i.MX53 Quick Start Board.

    /** All three, in the paper's Table 2 order. */
    static std::vector<SocConfig> allPlatforms();
};

} // namespace voltboot

#endif // VOLTBOOT_SOC_SOC_CONFIG_HH

#include "soc/soc_config.hh"

namespace voltboot
{

SocConfig
SocConfig::bcm2711()
{
    SocConfig c;
    c.board_name = "Raspberry Pi 4";
    c.soc_name = "BCM2711";
    c.cpu_name = "Cortex-A72";
    c.pmic_name = "MxL7704";
    c.core_count = 4;

    // A72: 48 KB 3-way L1I, 32 KB 2-way L1D (the paper's Table 4 works
    // on the 2-way 32 KB d-cache: WAY0 = 256 lines x 512 bits = 16 KB).
    c.l1i = CacheGeometry{48 * 1024, 3, 64};
    c.l1d = CacheGeometry{32 * 1024, 2, 64};
    c.l2 = CacheGeometry{1024 * 1024, 16, 64};

    c.dram_bytes = 2 << 20;

    c.core_domain = DomainSpec{"VDD_CORE", Volt(0.8), true,
                               Amp(0.6), Amp::milliamps(8),
                               Farad::microfarads(220)};
    c.mem_domain = DomainSpec{"VDD_SDRAM", Volt(1.1), true,
                              Amp(0.8), Amp::milliamps(15),
                              Farad::microfarads(100)};
    c.io_domain = DomainSpec{"VDD_IO", Volt(3.3), false,
                             Amp(0.2), Amp::milliamps(5),
                             Farad::microfarads(47)};

    c.pads = {{"TP15", "VDD_CORE"},
              {"TP14", "VDD_SDRAM"},
              {"TP7", "VDD_IO"}};
    c.attack_pad = "TP15";
    c.attack_target = "L1D, L1I, registers";

    c.has_videocore = true; // VideoCore clobbers the shared L2 at boot
    c.chip_seed = 0x2711;
    return c;
}

SocConfig
SocConfig::bcm2837()
{
    SocConfig c;
    c.board_name = "Raspberry Pi 3";
    c.soc_name = "BCM2837";
    c.cpu_name = "Cortex-A53";
    c.pmic_name = "PAM2306 (discrete)";
    c.core_count = 4;

    // A53: 32 KB 2-way L1I (with per-line ECC bits in the real part),
    // 32 KB 4-way L1D, 512 KB shared L2. A53 L1s replace pseudo-randomly.
    c.l1i = CacheGeometry{32 * 1024, 2, 64, ReplacementPolicy::Random};
    c.l1d = CacheGeometry{32 * 1024, 4, 64, ReplacementPolicy::Random};
    c.l2 = CacheGeometry{512 * 1024, 16, 64};

    c.dram_bytes = 2 << 20;

    c.core_domain = DomainSpec{"VDD_CORE", Volt(1.2), true,
                               Amp(0.5), Amp::milliamps(8),
                               Farad::microfarads(220)};
    c.mem_domain = DomainSpec{"VDD_SDRAM", Volt(1.2), true,
                              Amp(0.7), Amp::milliamps(15),
                              Farad::microfarads(100)};
    c.io_domain = DomainSpec{"VDD_IO", Volt(3.3), false,
                             Amp(0.2), Amp::milliamps(5),
                             Farad::microfarads(47)};

    c.pads = {{"PP58", "VDD_CORE"},
              {"PP23", "VDD_SDRAM"},
              {"PP7", "VDD_IO"}};
    c.attack_pad = "PP58";
    c.attack_target = "L1D, L1I, registers";

    c.has_videocore = true;
    // Footnote 4: the A53 i-cache line holds instructions + ECC in an
    // order the TRM does not document.
    c.icache_ecc_undocumented = true;
    c.chip_seed = 0x2837;
    return c;
}

SocConfig
SocConfig::imx535()
{
    SocConfig c;
    c.board_name = "i.MX53 QSB";
    c.soc_name = "i.MX535";
    c.cpu_name = "Cortex-A8";
    c.pmic_name = "DA9053";
    c.core_count = 1;

    // A8: 32 KB/32 KB 4-way L1s (pseudo-random replacement), 256 KB L2.
    c.l1i = CacheGeometry{32 * 1024, 4, 64, ReplacementPolicy::Random};
    c.l1d = CacheGeometry{32 * 1024, 4, 64, ReplacementPolicy::Random};
    c.l2 = CacheGeometry{256 * 1024, 8, 64};

    c.dram_bytes = 2 << 20;

    // 128 KB iRAM (OCRAM) at its real address.
    c.iram_base = 0xF8000000;
    c.iram_bytes = 128 * 1024;
    c.iram_on_mem_domain = true;

    c.core_domain = DomainSpec{"VCC_GP", Volt(1.1), true,
                               Amp(0.5), Amp::milliamps(8),
                               Farad::microfarads(100)};
    // The L1 memory power domain of the i.MX535: feeds the iRAM only.
    c.mem_domain = DomainSpec{"VDDAL1", Volt(1.3), true,
                              Amp(0.3), Amp::milliamps(6),
                              Farad::microfarads(47)};
    c.io_domain = DomainSpec{"NVCC_IO", Volt(3.15), false,
                             Amp(0.2), Amp::milliamps(5),
                             Farad::microfarads(47)};
    // External DDR and the L2 complex draw from a separate rail, so a
    // probe on VDDAL1 (SH13) retains the iRAM and nothing else.
    c.sdram_domain = DomainSpec{"NVCC_EMI_DRAM", Volt(1.5), true,
                                Amp(0.6), Amp::milliamps(20),
                                Farad::microfarads(100)};
    c.l2_on_mem_domain = false;

    c.pads = {{"SH13", "VDDAL1"},
              {"SH2", "VCC_GP"},
              {"SH9", "NVCC_IO"}};
    c.attack_pad = "SH13";
    c.attack_target = "iRAM";

    // The internal boot ROM uses iRAM as scratchpad before DRAM is up:
    // the paper locates the main clobber at 0xF800083C-0xF80018CC plus a
    // smaller region near the end of the iRAM (~5% total inaccessible).
    c.iram_boot_clobbers = {
        {0xF800083C, 0xF80018CC},
        {0xF801F400, 0xF8020000},
    };
    c.jtag_enabled = true;
    c.has_videocore = false;
    c.chip_seed = 0x535;
    return c;
}

std::vector<SocConfig>
SocConfig::allPlatforms()
{
    return {bcm2837(), bcm2711(), imx535()};
}

} // namespace voltboot

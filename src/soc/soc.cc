#include "soc/soc.hh"

#include <cstring>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace voltboot
{

bool
JtagPort::available() const
{
    return soc_.config().jtag_enabled;
}

MemoryImage
JtagPort::readIram(uint64_t addr, size_t length) const
{
    if (!available())
        fatal("JtagPort: platform ", soc_.config().soc_name,
              " does not expose JTAG");
    MemoryArray *iram = soc_.iramArray();
    if (!iram)
        fatal("JtagPort: platform has no iRAM");
    const uint64_t base = soc_.config().iram_base;
    if (addr < base || addr + length > base + iram->sizeBytes())
        fatal("JtagPort: read outside iRAM window");
    std::vector<uint8_t> out(length);
    iram->read(addr - base, out);
    return MemoryImage(std::move(out));
}

void
JtagPort::writeIram(uint64_t addr, std::span<const uint8_t> data)
{
    if (!available())
        fatal("JtagPort: platform ", soc_.config().soc_name,
              " does not expose JTAG");
    MemoryArray *iram = soc_.iramArray();
    if (!iram)
        fatal("JtagPort: platform has no iRAM");
    const uint64_t base = soc_.config().iram_base;
    if (addr < base || addr + data.size() > base + iram->sizeBytes())
        fatal("JtagPort: write outside iRAM window");
    iram->write(addr - base, data);
}

namespace
{

DomainLoadProfile
profileOf(const DomainSpec &spec)
{
    DomainLoadProfile p;
    p.surge_current = spec.surge_current;
    p.retention_current = spec.retention_current;
    p.decap = spec.decap;
    return p;
}

} // namespace

Soc::Soc(const SocConfig &config)
    : config_(config), board_(config.board_name, config.pmic_name),
      boot_noise_(hashCombine(config.chip_seed, 0xb007)), jtag_(*this)
{
    if (config_.core_count == 0)
        fatal("Soc: must have at least one core");

    // Create the power domains.
    std::vector<const DomainSpec *> specs{
        &config_.core_domain, &config_.mem_domain, &config_.io_domain};
    if (config_.sdram_domain)
        specs.push_back(&*config_.sdram_domain);
    for (const DomainSpec *spec : specs) {
        board_.pmic().addDomain(
            spec->name, spec->nominal,
            spec->buck ? RegulatorKind::Buck : RegulatorKind::Ldo,
            profileOf(*spec));
    }
    for (const auto &pad : config_.pads)
        board_.addTestPad(pad.label, pad.domain);

    buildArrays();
    wireDomains();
    buildMemorySystem();

    // Cores and their ports.
    for (unsigned core = 0; core < config_.core_count; ++core) {
        ports_.push_back(std::make_unique<CorePort>(memsys_, core));
        cpus_.push_back(std::make_unique<Cpu>(core, *ports_.back(),
                                              *xregs_[core],
                                              *vregs_[core]));
    }
}

void
Soc::buildArrays()
{
    const uint64_t seed = config_.chip_seed;
    uint64_t array_id = 1;
    auto sram = [&](const std::string &name, size_t bytes) {
        return std::make_unique<SramArray>(name, bytes, seed, array_id++);
    };

    for (unsigned core = 0; core < config_.core_count; ++core) {
        const std::string prefix = "core" + std::to_string(core);
        l1i_data_.push_back(
            sram(prefix + ".L1I.data", config_.l1i.size_bytes));
        l1i_tags_.push_back(
            sram(prefix + ".L1I.tag", Cache::tagRamBytes(config_.l1i)));
        l1d_data_.push_back(
            sram(prefix + ".L1D.data", config_.l1d.size_bytes));
        l1d_tags_.push_back(
            sram(prefix + ".L1D.tag", Cache::tagRamBytes(config_.l1d)));
        xregs_.push_back(sram(prefix + ".xregs", 31 * 8));
        vregs_.push_back(sram(prefix + ".vregs", 32 * 16));
        // Microarchitectural SRAMs: 64-entry 4-way DTLB, 256-entry BTB.
        dtlb_store_.push_back(sram(prefix + ".dtlb", 64 * 16));
        btb_store_.push_back(sram(prefix + ".btb", 256 * 16));
    }
    if (config_.l2) {
        l2_data_ = sram("L2.data", config_.l2->size_bytes);
        l2_tags_ = sram("L2.tag", Cache::tagRamBytes(*config_.l2));
    }
    if (config_.iram_bytes)
        iram_ = sram("iRAM", config_.iram_bytes);
    dram_ = std::make_unique<DramArray>("DRAM", config_.dram_bytes, seed,
                                        array_id++);
}

void
Soc::wireDomains()
{
    PowerDomain *core_dom = board_.pmic().domain(config_.core_domain.name);
    PowerDomain *mem_dom = board_.pmic().domain(config_.mem_domain.name);
    PowerDomain *sdram_dom =
        config_.sdram_domain
            ? board_.pmic().domain(config_.sdram_domain->name)
            : mem_dom;

    for (unsigned core = 0; core < config_.core_count; ++core) {
        core_dom->attachLoad(l1i_data_[core].get());
        core_dom->attachLoad(l1i_tags_[core].get());
        core_dom->attachLoad(l1d_data_[core].get());
        core_dom->attachLoad(l1d_tags_[core].get());
        core_dom->attachLoad(xregs_[core].get());
        core_dom->attachLoad(vregs_[core].get());
        core_dom->attachLoad(dtlb_store_[core].get());
        core_dom->attachLoad(btb_store_[core].get());
    }
    if (l2_data_) {
        PowerDomain *dom = config_.l2_on_mem_domain ? mem_dom : sdram_dom;
        dom->attachLoad(l2_data_.get());
        dom->attachLoad(l2_tags_.get());
    }
    if (iram_) {
        PowerDomain *dom = config_.iram_on_mem_domain ? mem_dom : core_dom;
        dom->attachLoad(iram_.get());
    }
    sdram_dom->attachLoad(dram_.get());
}

void
Soc::buildMemorySystem()
{
    memsys_.setMainMemory(*dram_, config_.dram_base);
    if (iram_)
        memsys_.setIram(*iram_, config_.iram_base);
    if (config_.l2) {
        // The L2 fills from DRAM; mainMemory() is stable once set.
        auto l2 = std::make_unique<Cache>("L2", *config_.l2, *l2_data_,
                                          *l2_tags_,
                                          memsys_.mainMemory());
        memsys_.setL2(std::move(l2));
    }
    // L1s fill from the L2 if present, else straight from DRAM.
    LineBacking *l1_backing = memsys_.l1Backing();
    for (unsigned core = 0; core < config_.core_count; ++core) {
        const std::string prefix = "core" + std::to_string(core);
        auto l1i = std::make_unique<Cache>(prefix + ".L1I", config_.l1i,
                                           *l1i_data_[core],
                                           *l1i_tags_[core], l1_backing);
        auto l1d = std::make_unique<Cache>(prefix + ".L1D", config_.l1d,
                                           *l1d_data_[core],
                                           *l1d_tags_[core], l1_backing);
        if (config_.icache_ecc_undocumented)
            l1i->setDebugScramble(
                hashCombine(config_.chip_seed, 0xecc00 + core));
        const size_t idx = memsys_.addCore(std::move(l1i), std::move(l1d));
        dtlbs_.push_back(std::make_unique<Tlb>(prefix + ".DTLB", 64, 4,
                                               *dtlb_store_[core]));
        btbs_.push_back(std::make_unique<Btb>(prefix + ".BTB", 256,
                                              *btb_store_[core]));
        memsys_.setCoreDebugRams(idx, dtlbs_.back().get(),
                                 btbs_.back().get());
    }
    memsys_.setTzEnforced(config_.trustzone_enforced);
}

void
Soc::powerOn()
{
    if (poweredOn())
        return;
    board_.pmic().connectMainSupply(queue_.now(), ambient_);
    runBootRom();
}

void
Soc::powerOff()
{
    board_.pmic().disconnectMainSupply(queue_.now());
}

void
Soc::advanceTime(Seconds interval)
{
    if (interval.seconds() < 0.0)
        fatal("Soc: cannot advance time backwards");
    queue_.runUntil(queue_.now() + interval);
    trace::setSimTime(queue_.now());
}

void
Soc::powerCycle(Seconds off_interval)
{
    powerOff();
    advanceTime(off_interval);
    powerOn();
}

void
Soc::runBootRom()
{
    ++boot_count_;
    if (trace::enabled()) {
        trace::instant("soc", "boot_rom",
                       {{"boot_count", boot_count_},
                        {"sram_reset", config_.boot_sram_reset},
                        {"videocore_l2_clobber",
                         config_.has_videocore && l2_data_ != nullptr}});
    }

    // After power-on the L1 backings must be rewired: the Cache objects
    // persist, but their controller state (LRU) is volatile. Reset it by
    // re-enabling nothing: caches come up disabled with garbage tags.
    for (unsigned core = 0; core < config_.core_count; ++core) {
        memsys_.l1i(core).setEnabled(false);
        memsys_.l1d(core).setEnabled(false);
        cpus_[core]->reset(config_.dram_base);
    }

    if (config_.boot_sram_reset) {
        // Section 8 countermeasure: hardware MBIST-style zeroisation of
        // every on-chip SRAM at reset.
        for (unsigned core = 0; core < config_.core_count; ++core) {
            l1i_data_[core]->fill(0);
            l1d_data_[core]->fill(0);
            l1i_tags_[core]->fill(0);
            l1d_tags_[core]->fill(0);
            xregs_[core]->fill(0);
            vregs_[core]->fill(0);
        }
        if (l2_data_) {
            l2_data_->fill(0);
            l2_tags_->fill(0);
        }
        if (iram_)
            iram_->fill(0);
    }

    if (config_.has_videocore && l2_data_) {
        // The VideoCore boots first from its own ROM and uses the shared
        // L2 for its firmware, clobbering whatever survived the power
        // cycle ("pre-compiled binaries that clobber L2 cache contents").
        for (size_t i = 0; i + 8 <= l2_data_->sizeBytes(); i += 8)
            l2_data_->writeWord64(i, boot_noise_.next());
        l2_tags_->fill(0);
    }

    if (Cache *l2 = memsys_.l2()) {
        // Boot firmware sanitises the L2 tags (clears valid bits — data
        // RAM untouched) and enables it for the ARM complex.
        l2->invalidateAll();
        l2->setEnabled(true);
    }

    if (iram_ && !config_.iram_boot_clobbers.empty()) {
        // The internal boot ROM uses part of the iRAM as scratchpad
        // before the DRAM controller is up.
        for (const BootClobber &region : config_.iram_boot_clobbers) {
            for (uint64_t a = region.begin; a < region.end; ++a) {
                iram_->writeByte(a - config_.iram_base,
                                 static_cast<uint8_t>(boot_noise_.next()));
            }
        }
    }
}

void
Soc::loadProgram(const Program &program)
{
    loadBytes(program.load_address, program.bytes());
}

void
Soc::loadBytes(uint64_t addr, std::span<const uint8_t> data)
{
    if (!poweredOn())
        fatal("Soc: cannot load software while powered off");
    if (addr < config_.dram_base ||
        addr + data.size() > config_.dram_base + config_.dram_bytes)
        fatal("Soc: program does not fit in DRAM");
    dram_->write(addr - config_.dram_base, data);
    // DMA coherence: the loader wrote DRAM behind the caches' backs, so
    // any stale copy of these lines must be discarded (no write-back —
    // the old data there is dead by definition of loading over it).
    const uint64_t line = 64;
    const uint64_t first = addr & ~(line - 1);
    const uint64_t last = (addr + data.size() + line - 1) & ~(line - 1);
    for (uint64_t a = first; a < last; a += line) {
        if (Cache *l2 = memsys_.l2())
            l2->invalidateLine(a);
        for (unsigned core = 0; core < config_.core_count; ++core) {
            memsys_.l1i(core).invalidateLine(a);
            memsys_.l1d(core).invalidateLine(a);
        }
    }
}

uint64_t
Soc::runCore(size_t core, uint64_t entry, uint64_t max_steps)
{
    if (!poweredOn())
        fatal("Soc: cannot execute while powered off");
    Cpu &c = cpu(core);
    c.reset(entry);
    return c.run(max_steps);
}

PowerDomain *
Soc::attachProbe(const std::string &pad_label, const VoltageProbe &probe)
{
    return board_.attachProbeAtPad(pad_label, probe);
}

void
Soc::detachProbe(const std::string &pad_label)
{
    const TestPad *pad = board_.findPad(pad_label);
    if (!pad)
        fatal("Soc: no pad ", pad_label);
    board_.pmic().domain(pad->domain_name)->detachProbe();
}

bool
Soc::bootFromExternalMedia(const Program &program)
{
    if (!poweredOn())
        fatal("Soc: power the board before booting external media");
    if (config_.authenticated_boot) {
        // OEM signature check: unsigned attacker images are rejected and
        // the SoC refuses to hand over the cores (Section 8).
        if (trace::enabled()) {
            trace::instant("soc", "external_boot",
                           {{"accepted", false},
                            {"reason", "authenticated boot"}});
        }
        return false;
    }
    if (trace::enabled())
        trace::instant("soc", "external_boot", {{"accepted", true}});
    loadProgram(program);
    for (unsigned core = 0; core < config_.core_count; ++core) {
        cpus_[core]->reset(program.load_address);
        // With TrustZone enforced, the OEM's secure monitor owns the
        // secure world; externally booted code executes non-secure, so
        // hardware filters its debug reads of secure-tagged lines.
        ports_[core]->setSecureWorld(!config_.trustzone_enforced);
    }
    return true;
}

} // namespace voltboot

/**
 * @file
 * Report generation: the human-facing end of the observability loop.
 *
 * Two products, both deterministic byte-for-byte given the same inputs:
 *
 *  - Trace report: one JSONL trace rendered as Markdown — span
 *    statistics, the reconstructed span tree, per-domain voltage
 *    waveform summaries, and (optionally) the invariant check verdict.
 *
 *  - Campaign report: a sweep JSON joined with its per-trial traces and
 *    an optional throughput baseline — outcome summary, per-board /
 *    per-target success and bit-error tables, the paper's
 *    retention-vs-off-time view, aggregated trace statistics, and, when
 *    the sweep carries its opt-in timing section, wall-clock percentile
 *    tables plus a regression verdict against the baseline.
 *
 * Determinism note: every section derived from canonical inputs
 * (records, traces) is byte-stable across runs and job counts. The
 * wall-clock and regression sections are derived from the sweep's
 * non-canonical `timing` section and only appear when the sweep was
 * run with `--timing`; a canonical sweep yields a canonical report.
 */

#ifndef VOLTBOOT_REPORT_REPORT_HH
#define VOLTBOOT_REPORT_REPORT_HH

#include <span>
#include <string>
#include <vector>

#include "report/campaign_json.hh"
#include "report/invariants.hh"
#include "trace/trace.hh"

namespace voltboot
{
namespace report
{

/** A rendered trace report plus the invariant verdict (when checked). */
struct TraceReport
{
    std::string markdown;
    std::vector<Violation> violations;
};

/**
 * Render @p events as a Markdown trace report.
 *
 * @param source Label used in the report heading.
 * @param check  Run checkTraceInvariants() and include the verdict.
 */
TraceReport buildTraceReport(std::span<const trace::TraceEvent> events,
                             const std::string &source, bool check);

/** Options for buildCampaignReport(). */
struct CampaignReportOptions
{
    /** Directory holding `trial_NNNNNN.jsonl` traces; empty skips the
     * per-trial trace join. */
    std::string trace_dir;

    /** Optional throughput baseline (BENCH_campaign.json). */
    const Baseline *baseline = nullptr;

    /** Telemetry heartbeat JSONL (`sweep --heartbeat`) to join into
     * the throughput section; empty skips it. */
    std::string heartbeat_path;

    /** Invariant-check every joined trace; violations (and missing
     * trace files) become problems. */
    bool check = false;

    /** Minimum acceptable throughput as a fraction of the baseline;
     * below this the regression section flags a problem. */
    double regression_threshold = 0.5;
};

/** A rendered campaign report plus everything that went wrong. */
struct CampaignReport
{
    std::string markdown;

    /** Human-readable problems: invariant violations per trial trace,
     * missing trace files (under --check), throughput regressions.
     * Non-empty means the report subcommand exits non-zero. */
    std::vector<std::string> problems;
};

/** Join @p sweep with traces/baseline per @p opts and render. */
CampaignReport buildCampaignReport(const SweepDoc &sweep,
                                   const CampaignReportOptions &opts);

/** The `trial_NNNNNN.jsonl` path for @p index under @p trace_dir;
 * matches Campaign's own trace naming. */
std::string trialTracePath(const std::string &trace_dir, uint64_t index);

} // namespace report
} // namespace voltboot

#endif // VOLTBOOT_REPORT_REPORT_HH

/**
 * @file
 * Span aggregation: rolls a trace's Complete events into summary
 * statistics and a flamegraph-style tree, and extracts the per-domain
 * supply-voltage waveform from the power layer's Counter samples.
 *
 * The emission side guarantees two orderings the aggregator leans on:
 * events arrive in emission order, and a `trace::Span` emits its
 * Complete event when it *closes* — so child spans always precede their
 * parents in the stream and nesting can be reconstructed with a single
 * backward containment pass, no sorting required.
 *
 * "Self" simulation time is a span's duration minus the durations of
 * its direct children, i.e. the time attributable to that span alone —
 * the number a flamegraph colours by.
 */

#ifndef VOLTBOOT_REPORT_SPAN_AGGREGATOR_HH
#define VOLTBOOT_REPORT_SPAN_AGGREGATOR_HH

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace voltboot
{
namespace report
{

/** Accumulated statistics of one (category, name) span kind. */
struct SpanStats
{
    uint64_t count = 0;
    double total_s = 0.0; ///< Sum of span durations (simulation time).
    double self_s = 0.0;  ///< Sum of durations minus child durations.
};

/** One node of the reconstructed span tree. */
struct SpanNode
{
    std::string category;
    std::string name;
    double start_s = 0.0;
    double dur_s = 0.0;
    double self_s = 0.0;
    std::vector<SpanNode> children;
};

/** One sample of a domain's supply voltage (simulation time, volts). */
struct VoltageSample
{
    double ts_s = 0.0;
    double volts = 0.0;
};

/** One numeric sample of a generic counter track (timestamp, value). */
struct CounterSample
{
    double ts_s = 0.0;
    double value = 0.0;
};

/** Aggregated view of one event sequence. */
class SpanAggregate
{
  public:
    /** Aggregate @p events (any phases; non-Complete events are only
     * consulted for instant/counter tallies and waveforms). */
    static SpanAggregate build(std::span<const trace::TraceEvent> events);

    /** Per-(category, name) span statistics, keyed "category/name",
     * sorted (std::map), so rendering is deterministic. */
    const std::map<std::string, SpanStats> &spans() const
    { return spans_; }

    /** Per-(category, name) Instant/Counter event counts. */
    const std::map<std::string, uint64_t> &eventCounts() const
    { return event_counts_; }

    /** Top-level spans with their nested children. */
    const std::vector<SpanNode> &roots() const { return roots_; }

    /**
     * Supply-voltage waveforms keyed by domain name, decoded from the
     * power layer's `voltage.<domain>` Counter events — the simulated
     * equivalent of the paper's oscilloscope shots.
     */
    const std::map<std::string, std::vector<VoltageSample>> &
    waveforms() const
    { return waveforms_; }

    /**
     * Every Counter event's numeric `v` samples keyed "category/name"
     * — the generic sibling of waveforms(). Campaign progress events
     * (`campaign/progress.*`) land here, giving `report trace` a
     * trial-rate-over-time view of a sweep.
     */
    const std::map<std::string, std::vector<CounterSample>> &
    counterTracks() const
    { return counter_tracks_; }

    uint64_t totalEvents() const { return total_events_; }

    /** Markdown table of spans(): calls, total and self time. */
    std::string renderSpanTable() const;

    /** Indented flamegraph-style rendering of the span tree. */
    std::string renderTree() const;

    /** Markdown summary of each domain's waveform (sample count,
     * min/max volts, final level). */
    std::string renderWaveforms() const;

    /** Markdown summary of counterTracks(): sample count, first/min/
     * max/last value per track. */
    std::string renderCounterTracks() const;

  private:
    std::map<std::string, SpanStats> spans_;
    std::map<std::string, uint64_t> event_counts_;
    std::vector<SpanNode> roots_;
    std::map<std::string, std::vector<VoltageSample>> waveforms_;
    std::map<std::string, std::vector<CounterSample>> counter_tracks_;
    uint64_t total_events_ = 0;
};

} // namespace report
} // namespace voltboot

#endif // VOLTBOOT_REPORT_SPAN_AGGREGATOR_HH

/**
 * @file
 * Strict reader for the JSONL trace wire format.
 *
 * Parses `trace::toJsonlLine()` output back into `trace::TraceEvent`
 * values, closing the loop the emission side opened: everything the
 * simulator writes can be loaded, aggregated, invariant-checked and
 * reported on without leaving the tree. The reader enforces the schema
 * documented in docs/TRACING.md — required keys, key types, phase
 * letters, `dur_us` present exactly on `"X"` events — and reports any
 * deviation as a JsonParseError carrying the file, 1-based line and
 * column of the offending token.
 *
 * Round-trip contract: for any event sequence, `readTrace(toJsonl(ev))`
 * re-serializes to the original bytes. Three details make that hold:
 * numbers carry their raw source text (see report/json.hh), timestamps
 * are converted from microseconds with a one-ulp correction so
 * `Seconds::microseconds()` reproduces the parsed value exactly, and
 * argument values are re-rendered through the same primitives the
 * writer used. tests/report_test.cpp pins the contract with a
 * property test over generated events (including nan/inf args, which
 * serialize as null).
 */

#ifndef VOLTBOOT_REPORT_TRACE_READER_HH
#define VOLTBOOT_REPORT_TRACE_READER_HH

#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hh"

namespace voltboot
{
namespace report
{

/**
 * Parse one JSONL line into a TraceEvent.
 *
 * @param line     The line, without its trailing newline.
 * @param source   Name used in diagnostics.
 * @param line_no  1-based line number used in diagnostics.
 * @throws JsonParseError on malformed JSON or schema violations.
 */
trace::TraceEvent readTraceLine(std::string_view line,
                                const std::string &source = "<string>",
                                size_t line_no = 1);

/** Parse a whole JSONL document (one event per non-final line). */
std::vector<trace::TraceEvent>
readTrace(std::string_view text, const std::string &source = "<string>");

/** Load and parse a JSONL trace file; fatal() if unreadable. */
std::vector<trace::TraceEvent> readTraceFile(const std::string &path);

/**
 * Return a stable `const char *` for @p category.
 *
 * TraceEvent::category must outlive the event; emitted events point at
 * string literals, parsed events point into this process-lifetime
 * intern pool. Known layer names return the same storage every call.
 */
const char *internCategory(const std::string &category);

} // namespace report
} // namespace voltboot

#endif // VOLTBOOT_REPORT_TRACE_READER_HH

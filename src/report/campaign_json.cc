#include "report/campaign_json.hh"

#include <fstream>
#include <sstream>

#include "report/json.hh"
#include "sim/logging.hh"

namespace voltboot
{
namespace report
{

namespace
{

[[noreturn]] void
schemaFail(const std::string &source, const JsonValue &at,
           const std::string &detail)
{
    throw JsonParseError(source, at.line, at.column, detail);
}

const JsonValue &
member(const JsonValue &object, const char *key, JsonValue::Kind kind,
       const std::string &source)
{
    const JsonValue *v = object.find(key);
    if (v == nullptr)
        schemaFail(source, object,
                   std::string("missing required key \"") + key + "\"");
    if (v->kind != kind)
        schemaFail(source, *v,
                   std::string("key \"") + key + "\" must be a " +
                       JsonValue::kindName(kind) + ", got " +
                       JsonValue::kindName(v->kind));
    return *v;
}

double
num(const JsonValue &object, const char *key, const std::string &source)
{
    return member(object, key, JsonValue::Kind::Number, source).number;
}

uint64_t
uns(const JsonValue &object, const char *key, const std::string &source)
{
    const JsonValue &v =
        member(object, key, JsonValue::Kind::Number, source);
    if (v.number < 0)
        schemaFail(source, v,
                   std::string("key \"") + key + "\" must be >= 0");
    return static_cast<uint64_t>(v.number);
}

std::string
str(const JsonValue &object, const char *key, const std::string &source)
{
    return member(object, key, JsonValue::Kind::String, source).text;
}

bool
boolean(const JsonValue &object, const char *key,
        const std::string &source)
{
    return member(object, key, JsonValue::Kind::Bool, source).boolean;
}

std::string
readFileOrFatal(const std::string &path, const char *what)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open ", what, " '", path, "'");
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

trace::MetricsSnapshot
parseMetrics(const JsonValue &obj, const std::string &source)
{
    trace::MetricsSnapshot snap;
    for (const auto &[name, value] :
         member(obj, "counters", JsonValue::Kind::Object, source)
             .members) {
        if (!value.isNumber())
            schemaFail(source, value, "counter values must be numbers");
        snap.counters[name] = value.number;
    }
    for (const auto &[name, value] :
         member(obj, "gauges", JsonValue::Kind::Object, source)
             .members) {
        if (!value.isNumber())
            schemaFail(source, value, "gauge values must be numbers");
        snap.gauges[name] = value.number;
    }
    for (const auto &[name, value] :
         member(obj, "histograms", JsonValue::Kind::Object, source)
             .members) {
        if (!value.isObject())
            schemaFail(source, value,
                       "histogram entries must be objects");
        trace::HistogramSummary h;
        h.count = uns(value, "count", source);
        h.mean = num(value, "mean", source);
        h.min = num(value, "min", source);
        h.max = num(value, "max", source);
        h.p50 = num(value, "p50", source);
        h.p90 = num(value, "p90", source);
        h.p99 = num(value, "p99", source);
        snap.histograms[name] = h;
    }
    return snap;
}

} // namespace

SweepDoc
parseSweepJson(std::string_view text, const std::string &source)
{
    const JsonValue doc = parseJson(text, source);
    if (!doc.isObject())
        schemaFail(source, doc, "campaign document must be an object");

    SweepDoc sweep;
    sweep.schema = str(doc, "schema", source);
    if (sweep.schema != "voltboot-campaign-v1")
        schemaFail(source, *doc.find("schema"),
                   "unsupported schema \"" + sweep.schema +
                       "\" (expected voltboot-campaign-v1)");
    sweep.campaign_seed = uns(doc, "campaign_seed", source);
    sweep.grid = str(doc, "grid", source);

    const JsonValue &records =
        member(doc, "records", JsonValue::Kind::Array, source);
    const uint64_t trials = uns(doc, "trials", source);
    if (trials != records.items.size())
        schemaFail(source, records,
                   "\"trials\" (" + std::to_string(trials) +
                       ") does not match the record count (" +
                       std::to_string(records.items.size()) + ")");

    sweep.records.reserve(records.items.size());
    for (const JsonValue &r : records.items) {
        if (!r.isObject())
            schemaFail(source, r, "records must be objects");
        SweepRecord rec;
        rec.index = uns(r, "index", source);
        rec.board = str(r, "board", source);
        rec.target = str(r, "target", source);
        rec.attack = str(r, "attack", source);
        rec.temp_c = num(r, "temp_c", source);
        rec.off_ms = num(r, "off_ms", source);
        rec.current_a = num(r, "current_a", source);
        rec.impedance_mohm = num(r, "impedance_mohm", source);
        rec.seed_index = uns(r, "seed_index", source);
        rec.chip_seed = uns(r, "chip_seed", source);
        rec.status = str(r, "status", source);
        rec.detail = str(r, "detail", source);
        rec.probe_attached = boolean(r, "probe_attached", source);
        rec.booted = boolean(r, "booted", source);
        rec.dump_bytes = uns(r, "dump_bytes", source);
        rec.accuracy = num(r, "accuracy", source);
        rec.bit_error_rate = num(r, "bit_error_rate", source);
        rec.key_planted = boolean(r, "key_planted", source);
        rec.key_found = boolean(r, "key_found", source);
        rec.key_exact = boolean(r, "key_exact", source);
        // Glitch fields postdate the v1 schema; absent in old sweeps.
        if (r.find("glitch_off_ns"))
            rec.glitch_off_ns = num(r, "glitch_off_ns", source);
        if (r.find("glitch_width_ns"))
            rec.glitch_width_ns = num(r, "glitch_width_ns", source);
        if (r.find("glitch_depth_v"))
            rec.glitch_depth_v = num(r, "glitch_depth_v", source);
        if (r.find("glitch_faults"))
            rec.glitch_faults = uns(r, "glitch_faults", source);
        if (r.find("glitch_effect"))
            rec.glitch_effect = str(r, "glitch_effect", source);
        if (r.find("glitch_bypassed"))
            rec.glitch_bypassed = boolean(r, "glitch_bypassed", source);
        if (r.find("undervolt_depth_v"))
            rec.undervolt_depth_v = num(r, "undervolt_depth_v", source);
        if (r.find("hold_ns"))
            rec.hold_ns = num(r, "hold_ns", source);
        if (r.find("readout_rate"))
            rec.readout_rate = num(r, "readout_rate", source);
        if (r.find("cpa_window_ns"))
            rec.cpa_window_ns = num(r, "cpa_window_ns", source);
        if (r.find("se_frozen"))
            rec.se_frozen = boolean(r, "se_frozen", source);
        if (r.find("se_zeroized"))
            rec.se_zeroized = boolean(r, "se_zeroized", source);
        if (r.find("se_read_fraction"))
            rec.se_read_fraction = num(r, "se_read_fraction", source);
        if (r.find("cpa_recovered"))
            rec.cpa_recovered = uns(r, "cpa_recovered", source);
        if (r.find("dump_count"))
            rec.dump_count = uns(r, "dump_count", source);
        if (r.find("use_priors"))
            rec.use_priors = boolean(r, "use_priors", source);
        if (r.find("kr_scan_hits"))
            rec.kr_scan_hits = uns(r, "kr_scan_hits", source);
        if (r.find("kr_corrected_hits"))
            rec.kr_corrected_hits = uns(r, "kr_corrected_hits", source);
        if (r.find("kr_bit_errors"))
            rec.kr_bit_errors = uns(r, "kr_bit_errors", source);
        if (r.find("kr_key_bits_flipped"))
            rec.kr_key_bits_flipped =
                uns(r, "kr_key_bits_flipped", source);
        if (r.find("kr_correction_iterations"))
            rec.kr_correction_iterations =
                uns(r, "kr_correction_iterations", source);
        if (r.find("kr_disagreeing_bits"))
            rec.kr_disagreeing_bits =
                uns(r, "kr_disagreeing_bits", source);
        sweep.records.push_back(std::move(rec));
    }

    if (const JsonValue *timing = doc.find("timing")) {
        if (!timing->isObject())
            schemaFail(source, *timing, "\"timing\" must be an object");
        sweep.has_timing = true;
        sweep.wall_seconds = num(*timing, "wall_seconds", source);
        sweep.jobs = uns(*timing, "jobs", source);
        sweep.trials_per_second =
            num(*timing, "trials_per_second", source);
        sweep.trials_timed_out = uns(*timing, "trials_timed_out", source);
        if (const JsonValue *metrics = timing->find("metrics"))
            sweep.metrics = parseMetrics(*metrics, source);
    }
    return sweep;
}

SweepDoc
readSweepFile(const std::string &path)
{
    return parseSweepJson(readFileOrFatal(path, "sweep result"), path);
}

double
Baseline::bestTrialsPerSecond() const
{
    double best = 0.0;
    for (const BaselineRun &run : runs)
        best = std::max(best, run.trials_per_second);
    return best;
}

const BaselineRun *
Baseline::runForJobs(uint64_t jobs) const
{
    for (const BaselineRun &run : runs)
        if (run.jobs == jobs)
            return &run;
    return nullptr;
}

Baseline
parseBaselineJson(std::string_view text, const std::string &source)
{
    const JsonValue doc = parseJson(text, source);
    if (!doc.isObject())
        schemaFail(source, doc, "baseline document must be an object");

    Baseline base;
    base.bench = str(doc, "bench", source);
    base.trials = uns(doc, "trials", source);
    for (const JsonValue &r :
         member(doc, "runs", JsonValue::Kind::Array, source).items) {
        if (!r.isObject())
            schemaFail(source, r, "baseline runs must be objects");
        BaselineRun run;
        run.jobs = uns(r, "jobs", source);
        run.wall_seconds = num(r, "wall_seconds", source);
        run.trials_per_second = num(r, "trials_per_second", source);
        base.runs.push_back(run);
    }
    return base;
}

Baseline
readBaselineFile(const std::string &path)
{
    return parseBaselineJson(readFileOrFatal(path, "baseline"), path);
}

} // namespace report
} // namespace voltboot

/**
 * @file
 * Prometheus text exposition (version 0.0.4) for MetricsSnapshot.
 *
 * Maps the registry's dotted metric names onto Prometheus conventions:
 * names are prefixed `voltboot_` and dots become underscores, counters
 * and gauges emit one sample each, and histograms emit as summaries —
 * `{quantile="0.5|0.9|0.99"}` samples plus `_sum` and `_count`. Output
 * is sorted by metric name (the snapshot maps are ordered), so the
 * exposition is deterministic for a deterministic snapshot.
 */

#ifndef VOLTBOOT_REPORT_PROMETHEUS_HH
#define VOLTBOOT_REPORT_PROMETHEUS_HH

#include <string>
#include <utility>
#include <vector>

#include "trace/metrics.hh"

namespace voltboot
{
namespace report
{

/** Constant labels stamped onto every sample, in the given order. */
using PrometheusLabels =
    std::vector<std::pair<std::string, std::string>>;

/** Render @p snap in the Prometheus text exposition format. */
std::string toPrometheus(const trace::MetricsSnapshot &snap);

/** As above, with @p labels attached to every sample (merged in front
 * of the summary quantile label). */
std::string toPrometheus(const trace::MetricsSnapshot &snap,
                         const PrometheusLabels &labels);

/** `voltboot_` + @p name with every non-alphanumeric mapped to `_`. */
std::string prometheusName(const std::string &name);

/** Escape @p value for use inside a label: `\` -> `\\`, `"` -> `\"`,
 * newline -> `\n` (exposition format rules). */
std::string escapeLabelValue(const std::string &value);

} // namespace report
} // namespace voltboot

#endif // VOLTBOOT_REPORT_PROMETHEUS_HH

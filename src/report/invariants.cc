#include "report/invariants.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <optional>

namespace voltboot
{
namespace report
{

namespace
{

/** Slack for comparing simulation times / voltages that went through a
 * serialize-parse cycle. Well below any physical scale in the model. */
constexpr double kEps = 1e-9;

constexpr const char *kVoltagePrefix = "voltage.";

std::optional<double>
argNumber(const trace::TraceEvent &ev, const char *key)
{
    for (const trace::Arg &arg : ev.args) {
        if (arg.key != key)
            continue;
        double v = 0.0;
        const auto [ptr, ec] = std::from_chars(
            arg.json.data(), arg.json.data() + arg.json.size(), v);
        if (ec == std::errc() && ptr == arg.json.data() + arg.json.size())
            return v;
        return std::nullopt; // null (nan/inf) or non-numeric.
    }
    return std::nullopt;
}

/** Unquote a string-valued argument rendered by trace::jsonQuote.
 * Returns the raw JSON (with quotes) unchanged if not a string — only
 * used for comparisons against known unescaped names, where that can
 * never produce a false match. */
std::string
argString(const trace::TraceEvent &ev, const char *key)
{
    for (const trace::Arg &arg : ev.args) {
        if (arg.key != key)
            continue;
        const std::string &j = arg.json;
        if (j.size() >= 2 && j.front() == '"' && j.back() == '"' &&
            j.find('\\') == std::string::npos)
            return j.substr(1, j.size() - 2);
        return j;
    }
    return {};
}

std::string
eventLabel(const trace::TraceEvent &ev)
{
    return std::string(ev.category) + "/" + ev.name;
}

/** Per-domain probe/hold state machine for the probe_hold invariant. */
struct ProbeState
{
    bool probed = false;
    /** The last probe transient's droop minimum: once the domain rides
     * on the probe, its rail never goes below this. */
    std::optional<double> hold_v;
};

void
checkMonotonicTime(std::span<const trace::TraceEvent> events,
                   std::vector<Violation> &out)
{
    double clock = 0.0;
    bool first = true;
    for (size_t i = 0; i < events.size(); ++i) {
        const trace::TraceEvent &ev = events[i];
        double at = ev.ts.seconds();
        if (ev.phase == trace::Phase::Complete) {
            if (ev.dur.seconds() < -kEps) {
                out.push_back(
                    {"monotonic_time", i,
                     eventLabel(ev) + " has negative duration"});
                continue;
            }
            // Spans are emitted at close: order by end time.
            at += ev.dur.seconds();
        }
        if (!first && at < clock - kEps)
            out.push_back({"monotonic_time", i,
                           eventLabel(ev) +
                               " emitted at simulation time " +
                               std::to_string(at) +
                               " s after the clock reached " +
                               std::to_string(clock) + " s"});
        clock = std::max(clock, at);
        first = false;
    }
}

void
checkSpanNesting(std::span<const trace::TraceEvent> events,
                 std::vector<Violation> &out)
{
    struct Interval
    {
        double start;
        double end;
        size_t index;
    };
    std::vector<Interval> roots;
    for (size_t i = 0; i < events.size(); ++i) {
        const trace::TraceEvent &ev = events[i];
        if (ev.phase != trace::Phase::Complete)
            continue;
        const double s = ev.ts.seconds();
        const double e = s + ev.dur.seconds();
        // Adopt contained predecessors (children emit before parents).
        while (!roots.empty() && roots.back().start >= s - kEps &&
               roots.back().end <= e + kEps)
            roots.pop_back();
        // Whatever remains must end strictly before this span starts;
        // anything else straddles a boundary.
        if (!roots.empty() && roots.back().end > s + kEps)
            out.push_back(
                {"span_nesting", i,
                 eventLabel(ev) + " partially overlaps " +
                     eventLabel(events[roots.back().index]) +
                     " (neither nested nor disjoint)"});
        roots.push_back({s, e, i});
    }
}

void
checkVoltages(std::span<const trace::TraceEvent> events,
              std::vector<Violation> &out)
{
    static const char *keys[] = {"voltage_v", "v",      "v_min",
                                 "v_settled", "from_v", "to_v",
                                 "supply_v"};
    for (size_t i = 0; i < events.size(); ++i) {
        for (const char *key : keys) {
            const auto v = argNumber(events[i], key);
            if (v && *v < -kEps)
                out.push_back({"nonnegative_voltage", i,
                               eventLabel(events[i]) + " arg \"" + key +
                                   "\" is negative (" +
                                   std::to_string(*v) + " V)"});
        }
    }
}

void
checkProbeHold(std::span<const trace::TraceEvent> events,
               std::vector<Violation> &out)
{
    std::map<std::string, ProbeState> domains;
    for (size_t i = 0; i < events.size(); ++i) {
        const trace::TraceEvent &ev = events[i];
        const std::string cat = ev.category;
        if (cat == "power" && ev.phase == trace::Phase::Instant) {
            const std::string domain = argString(ev, "domain");
            ProbeState &st = domains[domain];
            if (ev.name == "probe_attach") {
                st.probed = true;
                st.hold_v.reset();
            } else if (ev.name == "probe_detach") {
                st.probed = false;
                st.hold_v.reset();
            } else if (ev.name == "domain_power_up") {
                // Main supply back: the probe floor no longer binds.
                st.hold_v.reset();
            } else if (ev.name == "probe_transient" && st.probed) {
                const auto v_min = argNumber(ev, "v_min");
                const auto v_settled = argNumber(ev, "v_settled");
                if (v_min && v_settled && *v_settled < *v_min - kEps)
                    out.push_back(
                        {"probe_hold", i,
                         "probe transient on " + domain +
                             " settled below its own droop minimum (" +
                             std::to_string(*v_settled) + " < " +
                             std::to_string(*v_min) + " V)"});
                if (v_min)
                    st.hold_v = *v_min;
            }
            continue;
        }
        if (ev.phase == trace::Phase::Counter &&
            ev.name.rfind(kVoltagePrefix, 0) == 0) {
            const std::string domain =
                ev.name.substr(std::string(kVoltagePrefix).size());
            const auto it = domains.find(domain);
            if (it == domains.end() || !it->second.probed ||
                !it->second.hold_v)
                continue;
            const auto v = argNumber(ev, "v");
            if (v && *v < *it->second.hold_v - kEps)
                out.push_back(
                    {"probe_hold", i,
                     "probe-held domain " + domain + " sampled at " +
                         std::to_string(*v) +
                         " V, below the hold floor of " +
                         std::to_string(*it->second.hold_v) + " V"});
        }
    }
}

void
checkAttackStepOrder(std::span<const trace::TraceEvent> events,
                     std::vector<Violation> &out)
{
    auto rank = [](const std::string &name) -> int {
        if (name == "attack.steps12_probe")
            return 1;
        if (name == "attack.step3_power_cycle")
            return 2;
        if (name == "attack.step4_extract")
            return 3;
        return 0;
    };
    int prev = 0;
    size_t prev_index = 0;
    for (size_t i = 0; i < events.size(); ++i) {
        const trace::TraceEvent &ev = events[i];
        if (ev.phase != trace::Phase::Complete ||
            std::string(ev.category) != "core")
            continue;
        const int r = rank(ev.name);
        if (r == 0)
            continue;
        // Steps may repeat (several extractions) and a fresh attack run
        // restarts at steps 1-2; what must never happen is a later step
        // preceding an earlier one inside a run.
        if (prev != 0 && r < prev && r != 1)
            out.push_back({"attack_step_order", i,
                           ev.name + " appears after " +
                               events[prev_index].name +
                               " (paper's four-step order violated)"});
        prev = r;
        prev_index = i;
    }
}

/**
 * Every "power"/"glitch.pulse" span promises a bounded excursion: all
 * voltage.<domain> samples inside the span stay within
 * [nominal - depth, nominal], and the last sample in the window is back
 * at nominal (the rail recovers before the span ends). A pulse span
 * with no samples at all is also a violation — the waveform was claimed
 * but never observed.
 */
void
checkGlitchBounds(std::span<const trace::TraceEvent> events,
                  std::vector<Violation> &out)
{
    for (size_t i = 0; i < events.size(); ++i) {
        const trace::TraceEvent &ev = events[i];
        if (ev.phase != trace::Phase::Complete ||
            std::string(ev.category) != "power" ||
            ev.name != "glitch.pulse")
            continue;
        const std::string domain = argString(ev, "domain");
        const auto nominal = argNumber(ev, "nominal_v");
        const auto depth = argNumber(ev, "depth_v");
        if (domain.empty() || !nominal || !depth) {
            out.push_back({"glitch_bounds", i,
                           "glitch.pulse span lacks domain/nominal_v/"
                           "depth_v args"});
            continue;
        }
        const double start = ev.ts.seconds();
        const double end = start + ev.dur.seconds();
        const double floor =
            std::max(*nominal - *depth, 0.0) - kEps;
        const std::string counter =
            std::string(kVoltagePrefix) + domain;
        size_t samples = 0;
        std::optional<double> last_v;
        // The pulse span is emitted after its samples (children first),
        // so every sample it covers precedes it in the stream.
        for (size_t j = 0; j < i; ++j) {
            const trace::TraceEvent &s = events[j];
            if (s.phase != trace::Phase::Counter || s.name != counter)
                continue;
            const double at = s.ts.seconds();
            if (at < start - kEps || at > end + kEps)
                continue;
            const auto v = argNumber(s, "v");
            if (!v)
                continue;
            ++samples;
            last_v = *v;
            if (*v < floor)
                out.push_back(
                    {"glitch_bounds", j,
                     "voltage." + domain + " sampled at " +
                         std::to_string(*v) +
                         " V inside a glitch pulse of depth " +
                         std::to_string(*depth) + " V (floor " +
                         std::to_string(std::max(*nominal - *depth,
                                                 0.0)) +
                         " V)"});
            if (*v > *nominal + kEps)
                out.push_back(
                    {"glitch_bounds", j,
                     "voltage." + domain + " sampled at " +
                         std::to_string(*v) +
                         " V, above nominal " +
                         std::to_string(*nominal) +
                         " V inside a glitch pulse"});
        }
        if (samples == 0) {
            out.push_back({"glitch_bounds", i,
                           "glitch.pulse span on " + domain +
                               " covers no voltage samples"});
            continue;
        }
        if (last_v && std::abs(*last_v - *nominal) > kEps)
            out.push_back(
                {"glitch_bounds", i,
                 "voltage." + domain + " ends a glitch pulse at " +
                     std::to_string(*last_v) +
                     " V instead of recovering to nominal " +
                     std::to_string(*nominal) + " V"});
    }
}

/**
 * The static-undervolt and coupling-capture spans make the same
 * bounded-excursion promise as glitch.pulse, with the floor named
 * differently: "undervolt.hold" sags by depth_v below nominal,
 * "coupling.capture" bounds its worst per-byte dip as dip_bound_v.
 * Samples covered by either span must stay within [floor, nominal]
 * and the last one must be back at nominal.
 */
void
checkSidechannelBounds(std::span<const trace::TraceEvent> events,
                       std::vector<Violation> &out)
{
    for (size_t i = 0; i < events.size(); ++i) {
        const trace::TraceEvent &ev = events[i];
        if (ev.phase != trace::Phase::Complete ||
            std::string(ev.category) != "power")
            continue;
        const bool hold = ev.name == "undervolt.hold";
        const bool capture = ev.name == "coupling.capture";
        if (!hold && !capture)
            continue;
        const char *depth_key = hold ? "depth_v" : "dip_bound_v";
        const std::string domain = argString(ev, "domain");
        const auto nominal = argNumber(ev, "nominal_v");
        const auto depth = argNumber(ev, depth_key);
        if (domain.empty() || !nominal || !depth) {
            out.push_back({"sidechannel_bounds", i,
                           ev.name + " span lacks domain/nominal_v/" +
                               depth_key + " args"});
            continue;
        }
        const double start = ev.ts.seconds();
        const double end = start + ev.dur.seconds();
        const double floor =
            std::max(*nominal - *depth, 0.0) - kEps;
        const std::string counter =
            std::string(kVoltagePrefix) + domain;
        size_t samples = 0;
        std::optional<double> last_v;
        // Both spans are emitted after their samples (children first),
        // so every sample they cover precedes them in the stream.
        for (size_t j = 0; j < i; ++j) {
            const trace::TraceEvent &s = events[j];
            if (s.phase != trace::Phase::Counter || s.name != counter)
                continue;
            const double at = s.ts.seconds();
            if (at < start - kEps || at > end + kEps)
                continue;
            const auto v = argNumber(s, "v");
            if (!v)
                continue;
            ++samples;
            last_v = *v;
            if (*v < floor)
                out.push_back(
                    {"sidechannel_bounds", j,
                     "voltage." + domain + " sampled at " +
                         std::to_string(*v) + " V inside a " + ev.name +
                         " span bounded at " +
                         std::to_string(std::max(*nominal - *depth,
                                                 0.0)) +
                         " V"});
            if (*v > *nominal + kEps)
                out.push_back(
                    {"sidechannel_bounds", j,
                     "voltage." + domain + " sampled at " +
                         std::to_string(*v) +
                         " V, above nominal " +
                         std::to_string(*nominal) + " V inside a " +
                         ev.name + " span"});
        }
        if (samples == 0) {
            out.push_back({"sidechannel_bounds", i,
                           ev.name + " span on " + domain +
                               " covers no voltage samples"});
            continue;
        }
        if (last_v && std::abs(*last_v - *nominal) > kEps)
            out.push_back(
                {"sidechannel_bounds", i,
                 "voltage." + domain + " ends a " + ev.name +
                     " span at " + std::to_string(*last_v) +
                     " V instead of recovering to nominal " +
                     std::to_string(*nominal) + " V"});
    }
}

} // namespace

std::vector<Violation>
checkTraceInvariants(std::span<const trace::TraceEvent> events)
{
    std::vector<Violation> out;
    checkMonotonicTime(events, out);
    checkSpanNesting(events, out);
    checkVoltages(events, out);
    checkProbeHold(events, out);
    checkAttackStepOrder(events, out);
    checkGlitchBounds(events, out);
    checkSidechannelBounds(events, out);
    return out;
}

std::string
renderViolations(std::span<const Violation> violations)
{
    std::string out;
    for (const Violation &v : violations) {
        out += v.invariant;
        out += " @ event ";
        out += std::to_string(v.event_index);
        out += ": ";
        out += v.message;
        out += "\n";
    }
    return out;
}

} // namespace report
} // namespace voltboot

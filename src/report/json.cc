#include "report/json.hh"

#include <cctype>
#include <charconv>

namespace voltboot
{
namespace report
{

JsonParseError::JsonParseError(const std::string &source, size_t line,
                               size_t column, const std::string &detail)
    : FatalError(source + ":" + std::to_string(line) + ":" +
                 std::to_string(column) + ": " + detail),
      line_(line), column_(column)
{}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

namespace
{

/** Recursive-descent parser over one contiguous text span. */
class Parser
{
  public:
    Parser(std::string_view text, const std::string &source,
           size_t first_line)
        : text_(text), source_(source), line_(first_line)
    {}

    JsonValue
    document()
    {
        skipWhitespace();
        JsonValue value = parseValue();
        skipWhitespace();
        if (pos_ < text_.size())
            fail("trailing content after JSON value");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &detail)
    {
        throw JsonParseError(source_, line_, column_, detail);
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek()
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    advance()
    {
        const char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void
    expect(char want, const char *where)
    {
        if (atEnd() || text_[pos_] != want)
            fail(std::string("expected '") + want + "' " + where);
        advance();
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                advance();
            else
                break;
        }
    }

    void
    stamp(JsonValue &value)
    {
        value.line = line_;
        value.column = column_;
    }

    JsonValue
    parseValue()
    {
        if (atEnd())
            fail("unexpected end of input, expected a JSON value");
        const char c = text_[pos_];
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': case 'f': return parseBool();
          case 'n': return parseNull();
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p)
            if (atEnd() || text_[pos_] != *p)
                fail(std::string("malformed literal, expected '") + word +
                     "'");
            else
                advance();
    }

    JsonValue
    parseNull()
    {
        JsonValue v;
        stamp(v);
        literal("null");
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        stamp(v);
        v.kind = JsonValue::Kind::Bool;
        if (text_[pos_] == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
            v.boolean = false;
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        stamp(v);
        v.kind = JsonValue::Kind::Number;
        const size_t start = pos_;
        // Validate the RFC 8259 number grammar by hand so the raw text
        // span is exact; from_chars below does the value conversion.
        if (!atEnd() && text_[pos_] == '-')
            advance();
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(
                           text_[pos_])))
            fail("malformed number: expected a digit");
        if (text_[pos_] == '0') {
            advance();
        } else {
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                advance();
        }
        if (!atEnd() && text_[pos_] == '.') {
            advance();
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(
                               text_[pos_])))
                fail("malformed number: expected a digit after '.'");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                advance();
        }
        if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            advance();
            if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-'))
                advance();
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(
                               text_[pos_])))
                fail("malformed number: expected an exponent digit");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                advance();
        }
        v.text = std::string(text_.substr(start, pos_ - start));
        const auto [ptr, ec] = std::from_chars(
            v.text.data(), v.text.data() + v.text.size(), v.number);
        if (ec != std::errc() || ptr != v.text.data() + v.text.size())
            fail("number out of range: '" + v.text + "'");
        return v;
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        stamp(v);
        v.kind = JsonValue::Kind::String;
        v.text = parseStringBody();
        return v;
    }

    std::string
    parseStringBody()
    {
        expect('"', "to open a string");
        std::string out;
        for (;;) {
            if (atEnd())
                fail("unterminated string");
            const char c = advance();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                fail("unterminated escape sequence");
            const char esc = advance();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (atEnd())
                        fail("unterminated \\u escape");
                    const char h = advance();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("malformed \\u escape: non-hex digit");
                }
                // Encode the BMP code point as UTF-8 (surrogate pairs
                // never appear in this repository's output; reject them
                // rather than mis-decode).
                if (code >= 0xD800 && code <= 0xDFFF)
                    fail("surrogate \\u escapes are not supported");
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail(std::string("invalid escape '\\") + esc + "'");
            }
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        stamp(v);
        v.kind = JsonValue::Kind::Array;
        expect('[', "to open an array");
        skipWhitespace();
        if (!atEnd() && text_[pos_] == ']') {
            advance();
            return v;
        }
        for (;;) {
            skipWhitespace();
            v.items.push_back(parseValue());
            skipWhitespace();
            if (atEnd())
                fail("unterminated array");
            const char c = advance();
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        stamp(v);
        v.kind = JsonValue::Kind::Object;
        expect('{', "to open an object");
        skipWhitespace();
        if (!atEnd() && text_[pos_] == '}') {
            advance();
            return v;
        }
        for (;;) {
            skipWhitespace();
            if (atEnd() || text_[pos_] != '"')
                fail("expected a quoted object key");
            const size_t key_line = line_;
            const size_t key_column = column_;
            std::string key = parseStringBody();
            for (const auto &[existing, value] : v.members)
                if (existing == key)
                    throw JsonParseError(source_, key_line, key_column,
                                         "duplicate object key \"" + key +
                                             "\"");
            skipWhitespace();
            expect(':', "after object key");
            skipWhitespace();
            v.members.emplace_back(std::move(key), parseValue());
            skipWhitespace();
            if (atEnd())
                fail("unterminated object");
            const char c = advance();
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    const std::string &source_;
    size_t pos_ = 0;
    size_t line_;
    size_t column_ = 1;
};

} // namespace

JsonValue
parseJson(std::string_view text, const std::string &source,
          size_t first_line)
{
    return Parser(text, source, first_line).document();
}

} // namespace report
} // namespace voltboot

#include "report/report.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "report/heartbeat.hh"
#include "report/span_aggregator.hh"
#include "report/trace_reader.hh"

namespace voltboot
{
namespace report
{

namespace
{

std::string
fmt(const char *spec, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, value);
    return buf;
}

std::string
pct(uint64_t part, uint64_t whole)
{
    if (whole == 0)
        return "-";
    return fmt("%.1f%%", 100.0 * static_cast<double>(part) /
                             static_cast<double>(whole));
}

/** Accumulator for one table bucket of trial records. */
struct Bucket
{
    uint64_t trials = 0;
    uint64_t ok = 0;
    uint64_t keys_exact = 0;
    double accuracy_sum = 0.0;
    double ber_sum = 0.0;

    void
    add(const SweepRecord &r)
    {
        ++trials;
        if (r.status == "ok") {
            ++ok;
            accuracy_sum += r.accuracy;
            ber_sum += r.bit_error_rate;
        }
        keys_exact += r.key_exact;
    }

    std::string
    meanAccuracy() const
    {
        return ok ? fmt("%.4f", accuracy_sum / static_cast<double>(ok))
                  : std::string("-");
    }

    std::string
    meanBer() const
    {
        return ok ? fmt("%.5f", ber_sum / static_cast<double>(ok))
                  : std::string("-");
    }
};

std::string
renderBucketTable(const char *label,
                  const std::map<std::string, Bucket> &buckets)
{
    std::string out;
    out += std::string("| ") + label +
           " | trials | ok | success | mean accuracy | mean BER |"
           " keys exact |\n";
    out += "|---|---:|---:|---:|---:|---:|---:|\n";
    for (const auto &[key, b] : buckets) {
        out += "| `" + key + "` | " + std::to_string(b.trials) + " | " +
               std::to_string(b.ok) + " | " + pct(b.ok, b.trials) +
               " | " + b.meanAccuracy() + " | " + b.meanBer() + " | " +
               std::to_string(b.keys_exact) + " |\n";
    }
    return out;
}

} // namespace

std::string
trialTracePath(const std::string &trace_dir, uint64_t index)
{
    char name[32];
    std::snprintf(name, sizeof(name), "trial_%06llu.jsonl",
                  static_cast<unsigned long long>(index));
    return (std::filesystem::path(trace_dir) / name).string();
}

TraceReport
buildTraceReport(std::span<const trace::TraceEvent> events,
                 const std::string &source, bool check)
{
    TraceReport report;
    const SpanAggregate agg = SpanAggregate::build(events);

    uint64_t spans = 0, instants = 0, counters = 0;
    for (const trace::TraceEvent &ev : events) {
        switch (ev.phase) {
          case trace::Phase::Complete: ++spans; break;
          case trace::Phase::Instant: ++instants; break;
          case trace::Phase::Counter: ++counters; break;
        }
    }

    std::string &md = report.markdown;
    md += "# Trace report: " + source + "\n\n";
    md += "- events: " + std::to_string(events.size()) + " (" +
          std::to_string(spans) + " spans, " + std::to_string(instants) +
          " instants, " + std::to_string(counters) + " counters)\n\n";

    md += "## Spans\n\n";
    if (agg.spans().empty())
        md += "No complete spans in this trace.\n";
    else
        md += agg.renderSpanTable();
    md += "\n";

    if (!agg.eventCounts().empty()) {
        md += "## Instant and counter events\n\n";
        md += "| event | count |\n|---|---:|\n";
        for (const auto &[key, count] : agg.eventCounts())
            md += "| `" + key + "` | " + std::to_string(count) + " |\n";
        md += "\n";
    }

    if (!agg.roots().empty()) {
        md += "## Span tree\n\n```\n" + agg.renderTree() + "```\n\n";
    }

    if (!agg.waveforms().empty()) {
        md += "## Domain voltage waveforms\n\n";
        md += agg.renderWaveforms();
        md += "\n";
    }

    if (!agg.counterTracks().empty()) {
        md += "## Counter tracks\n\n";
        md += agg.renderCounterTracks();
        md += "\n";
    }

    if (check) {
        report.violations = checkTraceInvariants(events);
        md += "## Invariant check\n\n";
        if (report.violations.empty()) {
            md += "PASS: all invariants hold over " +
                  std::to_string(events.size()) + " events.\n";
        } else {
            md += "FAIL: " + std::to_string(report.violations.size()) +
                  " violation(s).\n\n```\n" +
                  renderViolations(report.violations) + "```\n";
        }
    }
    return report;
}

CampaignReport
buildCampaignReport(const SweepDoc &sweep,
                    const CampaignReportOptions &opts)
{
    CampaignReport report;
    std::string &md = report.markdown;

    // --- Overview -------------------------------------------------
    uint64_t ok = 0, attack_failed = 0, errors = 0, skipped = 0;
    uint64_t booted = 0, keys_exact = 0;
    for (const SweepRecord &r : sweep.records) {
        if (r.status == "ok")
            ++ok;
        else if (r.status == "attack_failed")
            ++attack_failed;
        else if (r.status == "error")
            ++errors;
        else if (r.status == "skipped")
            ++skipped;
        booted += r.booted;
        keys_exact += r.key_exact;
    }

    md += "# Campaign report\n\n";
    md += "- grid: `" + sweep.grid + "`\n";
    md += "- campaign seed: " + std::to_string(sweep.campaign_seed) +
          "\n";
    md += "- trials: " + std::to_string(sweep.records.size()) + "\n\n";

    md += "## Outcome summary\n\n";
    md += "| status | trials | share |\n|---|---:|---:|\n";
    const uint64_t total = sweep.records.size();
    md += "| ok | " + std::to_string(ok) + " | " + pct(ok, total) +
          " |\n";
    md += "| attack_failed | " + std::to_string(attack_failed) + " | " +
          pct(attack_failed, total) + " |\n";
    md += "| error | " + std::to_string(errors) + " | " +
          pct(errors, total) + " |\n";
    md += "| skipped | " + std::to_string(skipped) + " | " +
          pct(skipped, total) + " |\n\n";
    md += "Booted " + std::to_string(booted) + "/" +
          std::to_string(total) + " trials; " +
          std::to_string(keys_exact) + " exact key recoveries.\n\n";

    // --- Per-board / per-target breakdowns ------------------------
    std::map<std::string, Bucket> by_board, by_target, by_attack;
    for (const SweepRecord &r : sweep.records) {
        by_board[r.board].add(r);
        by_target[r.target].add(r);
        by_attack[r.attack].add(r);
    }
    md += "## Per-board results\n\n";
    md += renderBucketTable("board", by_board);
    md += "\n## Per-target results\n\n";
    md += renderBucketTable("target", by_target);
    md += "\n## Per-attack results\n\n";
    md += renderBucketTable("attack", by_attack);
    md += "\n";

    // --- Retention vs off time (the paper's core plot) ------------
    // Keyed by the raw off_ms double: distinct grid points stay
    // distinct and sort numerically.
    std::map<double, Bucket> by_off;
    for (const SweepRecord &r : sweep.records)
        by_off[r.off_ms].add(r);
    md += "## Retention vs power-off time\n\n";
    md += "| off (ms) | trials | ok | success | mean accuracy |"
          " mean BER |\n";
    md += "|---:|---:|---:|---:|---:|---:|\n";
    for (const auto &[off_ms, b] : by_off) {
        md += "| " + fmt("%g", off_ms) + " | " +
              std::to_string(b.trials) + " | " + std::to_string(b.ok) +
              " | " + pct(b.ok, b.trials) + " | " + b.meanAccuracy() +
              " | " + b.meanBer() + " |\n";
    }
    md += "\n";

    // --- Per-trial trace join -------------------------------------
    if (!opts.trace_dir.empty()) {
        md += "## Per-trial traces\n\n";
        uint64_t found = 0, missing = 0, checked_bad = 0;
        uint64_t total_events = 0;
        std::map<std::string, SpanStats> merged;
        for (const SweepRecord &r : sweep.records) {
            const std::string path =
                trialTracePath(opts.trace_dir, r.index);
            if (!std::filesystem::exists(path)) {
                ++missing;
                if (opts.check)
                    report.problems.push_back("missing trace file " +
                                              path);
                continue;
            }
            ++found;
            const std::vector<trace::TraceEvent> events =
                readTraceFile(path);
            total_events += events.size();
            const SpanAggregate agg = SpanAggregate::build(events);
            for (const auto &[key, stats] : agg.spans()) {
                SpanStats &m = merged[key];
                m.count += stats.count;
                m.total_s += stats.total_s;
                m.self_s += stats.self_s;
            }
            if (opts.check) {
                const std::vector<Violation> violations =
                    checkTraceInvariants(events);
                if (!violations.empty()) {
                    ++checked_bad;
                    for (const Violation &v : violations)
                        report.problems.push_back(
                            path + ": " + v.invariant + " @ event " +
                            std::to_string(v.event_index) + ": " +
                            v.message);
                }
            }
        }
        md += "- traces joined: " + std::to_string(found) + "/" +
              std::to_string(total) + " (" + std::to_string(missing) +
              " missing)\n";
        md += "- events: " + std::to_string(total_events) + "\n";
        if (opts.check)
            md += "- invariant check: " +
                  (checked_bad == 0 && missing == 0
                       ? std::string("PASS")
                       : "FAIL (" + std::to_string(checked_bad) +
                             " bad trace(s), " +
                             std::to_string(missing) + " missing)") +
                  "\n";
        md += "\n";
        if (!merged.empty()) {
            md += "### Aggregated span statistics\n\n";
            md += "| span | calls | total (us) | self (us) |\n";
            md += "|---|---:|---:|---:|\n";
            for (const auto &[key, stats] : merged)
                md += "| `" + key + "` | " +
                      std::to_string(stats.count) + " | " +
                      fmt("%.3f", stats.total_s * 1e6) + " | " +
                      fmt("%.3f", stats.self_s * 1e6) + " |\n";
            md += "\n";
        }
    }

    // --- Heartbeat join (opt-in, non-canonical) -------------------
    if (!opts.heartbeat_path.empty()) {
        md += "## Throughput (heartbeat stream)\n\n";
        const std::vector<Heartbeat> beats =
            readHeartbeats(opts.heartbeat_path);
        if (beats.empty()) {
            md += "No heartbeat samples in `" + opts.heartbeat_path +
                  "`.\n\n";
        } else {
            md += renderHeartbeatSummary(beats);
            const Heartbeat &last = beats.back();
            const uint64_t recorded = ok + attack_failed + errors;
            md += "Final sample vs sweep result: " +
                  std::to_string(last.completed) + " completed in "
                  "heartbeats, " + std::to_string(recorded) +
                  " recorded in the sweep (" +
                  (last.completed == recorded
                       ? std::string("exact match")
                       : "within one snapshot interval of a killed "
                         "run") +
                  ").\n\n";
        }
    }

    // --- Wall clock (opt-in, non-canonical) -----------------------
    if (sweep.has_timing) {
        md += "## Wall clock\n\n";
        md += "- wall time: " + fmt("%.3f", sweep.wall_seconds) +
              " s at " + std::to_string(sweep.jobs) + " job(s)\n";
        md += "- throughput: " + fmt("%.1f", sweep.trials_per_second) +
              " trials/s\n";
        md += "- timed out: " + std::to_string(sweep.trials_timed_out) +
              "\n\n";
        if (!sweep.metrics.histograms.empty()) {
            md += "| metric | count | mean | p50 | p90 | p99 | max |\n";
            md += "|---|---:|---:|---:|---:|---:|---:|\n";
            for (const auto &[name, h] : sweep.metrics.histograms) {
                md += "| `" + name + "` | " + std::to_string(h.count) +
                      " | " + fmt("%.6f", h.mean) + " | " +
                      fmt("%.6f", h.p50) + " | " + fmt("%.6f", h.p90) +
                      " | " + fmt("%.6f", h.p99) + " | " +
                      fmt("%.6f", h.max) + " |\n";
            }
            md += "\n";
        }
    }

    // --- Regression vs baseline -----------------------------------
    if (opts.baseline != nullptr) {
        md += "## Throughput vs baseline\n\n";
        if (!sweep.has_timing) {
            md += "Sweep has no timing section (run with --timing to "
                  "compare against a baseline).\n\n";
        } else {
            const BaselineRun *run =
                opts.baseline->runForJobs(sweep.jobs);
            const double base_tps =
                run ? run->trials_per_second
                    : opts.baseline->bestTrialsPerSecond();
            md += "- baseline `" + opts.baseline->bench + "`: " +
                  fmt("%.1f", base_tps) + " trials/s" +
                  (run ? " (matched at " + std::to_string(sweep.jobs) +
                             " job(s))"
                       : " (best run; no matching job count)") +
                  "\n";
            if (base_tps > 0.0) {
                const double ratio =
                    sweep.trials_per_second / base_tps;
                md += "- this sweep: " +
                      fmt("%.1f", sweep.trials_per_second) +
                      " trials/s, " + fmt("%.2f", ratio) +
                      "x baseline (threshold " +
                      fmt("%.2f", opts.regression_threshold) + "x)\n";
                if (ratio < opts.regression_threshold) {
                    md += "- **REGRESSION**: throughput below "
                          "threshold\n";
                    report.problems.push_back(
                        "throughput_regression: " +
                        fmt("%.1f", sweep.trials_per_second) +
                        " trials/s is " + fmt("%.2f", ratio) +
                        "x the baseline " + fmt("%.1f", base_tps) +
                        " trials/s (threshold " +
                        fmt("%.2f", opts.regression_threshold) + "x)");
                } else {
                    md += "- OK: throughput within threshold\n";
                }
            } else {
                md += "- baseline throughput is zero; no comparison\n";
            }
            md += "\n";
        }
    }

    return report;
}

} // namespace report
} // namespace voltboot

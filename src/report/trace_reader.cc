#include "report/trace_reader.hh"

#include <cmath>
#include <fstream>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>

#include "report/json.hh"
#include "sim/logging.hh"

namespace voltboot
{
namespace report
{

namespace
{

/**
 * Invert `Seconds::microseconds()` exactly.
 *
 * The obvious `us * 1e-6` can land one ulp away from the double whose
 * `microseconds()` rendering produced @p us, which would break the
 * byte-identical round trip on the timestamp field. Since x -> x * 1e6
 * is monotone, the exact preimage (when one exists — and it does for
 * any value the writer produced) is within a couple of ulps of the
 * estimate; walk to it.
 */
Seconds
secondsFromMicros(double us)
{
    double s = us * 1e-6;
    if (s * 1e6 == us || !std::isfinite(us))
        return Seconds(s);
    for (int dir : {+1, -1}) {
        double probe = s;
        for (int step = 0; step < 4; ++step) {
            probe = std::nextafter(
                probe, dir > 0 ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<double>::infinity());
            if (probe * 1e6 == us)
                return Seconds(probe);
        }
    }
    return Seconds(s); // No exact preimage; nearest representable.
}

[[noreturn]] void
schemaFail(const std::string &source, const JsonValue &at,
           const std::string &detail)
{
    throw JsonParseError(source, at.line, at.column, detail);
}

/** Fetch required member @p key of kind @p kind from @p object. */
const JsonValue &
require(const JsonValue &object, const char *key, JsonValue::Kind kind,
        const std::string &source)
{
    const JsonValue *v = object.find(key);
    if (v == nullptr)
        schemaFail(source, object,
                   std::string("missing required key \"") + key + "\"");
    if (v->kind != kind)
        schemaFail(source, *v,
                   std::string("key \"") + key + "\" must be a " +
                       JsonValue::kindName(kind) + ", got " +
                       JsonValue::kindName(v->kind));
    return *v;
}

/** Re-render one parsed argument value the way trace::Arg renders it. */
std::string
renderArgValue(const JsonValue &v, const std::string &source)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        return "null"; // nan/inf numbers serialize as null.
      case JsonValue::Kind::Bool:
        return v.boolean ? "true" : "false";
      case JsonValue::Kind::Number:
        return v.text; // Raw source text: byte-exact.
      case JsonValue::Kind::String:
        return trace::jsonQuote(v.text);
      case JsonValue::Kind::Array:
      case JsonValue::Kind::Object:
        schemaFail(source, v,
                   "trace argument values must be scalars, got " +
                       std::string(JsonValue::kindName(v.kind)));
    }
    panic("bad JsonValue::Kind");
}

} // namespace

const char *
internCategory(const std::string &category)
{
    // The common layer names get the same literals the emitters use.
    static const char *known[] = {"power", "sram", "soc", "core",
                                  "campaign"};
    for (const char *k : known)
        if (category == k)
            return k;
    // Anything else goes into a process-lifetime pool. std::set nodes
    // are address-stable, which is exactly the guarantee
    // TraceEvent::category needs.
    static std::mutex mutex;
    static std::set<std::string> pool;
    std::lock_guard<std::mutex> lock(mutex);
    return pool.insert(category).first->c_str();
}

trace::TraceEvent
readTraceLine(std::string_view line, const std::string &source,
              size_t line_no)
{
    const JsonValue doc = parseJson(line, source, line_no);
    if (!doc.isObject())
        schemaFail(source, doc, "trace line must be a JSON object");

    static const char *allowed[] = {"ts_us", "cat", "ph",
                                    "name",  "dur_us", "args"};
    for (const auto &[key, value] : doc.members) {
        bool ok = false;
        for (const char *k : allowed)
            ok = ok || key == k;
        if (!ok)
            schemaFail(source, value,
                       "unknown trace key \"" + key + "\"");
    }

    trace::TraceEvent ev;

    const JsonValue &ph =
        require(doc, "ph", JsonValue::Kind::String, source);
    if (ph.text == "i")
        ev.phase = trace::Phase::Instant;
    else if (ph.text == "X")
        ev.phase = trace::Phase::Complete;
    else if (ph.text == "C")
        ev.phase = trace::Phase::Counter;
    else
        schemaFail(source, ph,
                   "unknown phase \"" + ph.text +
                       "\" (expected \"i\", \"X\" or \"C\")");

    const JsonValue &ts =
        require(doc, "ts_us", JsonValue::Kind::Number, source);
    ev.ts = secondsFromMicros(ts.number);

    ev.category = internCategory(
        require(doc, "cat", JsonValue::Kind::String, source).text);
    ev.name = require(doc, "name", JsonValue::Kind::String, source).text;

    const JsonValue *dur = doc.find("dur_us");
    if (ev.phase == trace::Phase::Complete) {
        if (dur == nullptr)
            schemaFail(source, doc,
                       "complete (\"X\") events require \"dur_us\"");
        if (!dur->isNumber())
            schemaFail(source, *dur, "\"dur_us\" must be a number");
        ev.dur = secondsFromMicros(dur->number);
    } else if (dur != nullptr) {
        schemaFail(source, *dur,
                   "\"dur_us\" is only valid on \"X\" events");
    }

    const JsonValue &args =
        require(doc, "args", JsonValue::Kind::Object, source);
    ev.args.reserve(args.members.size());
    for (const auto &[key, value] : args.members) {
        trace::Arg arg(key, "");
        arg.json = renderArgValue(value, source);
        ev.args.push_back(std::move(arg));
    }
    return ev;
}

std::vector<trace::TraceEvent>
readTrace(std::string_view text, const std::string &source)
{
    std::vector<trace::TraceEvent> events;
    size_t line_no = 1;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        const std::string_view line = text.substr(pos, eol - pos);
        if (line.empty())
            throw JsonParseError(source, line_no, 1,
                                 "blank line in JSONL trace");
        events.push_back(readTraceLine(line, source, line_no));
        pos = eol + 1;
        ++line_no;
    }
    return events;
}

std::vector<trace::TraceEvent>
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open trace file '", path, "'");
    std::ostringstream content;
    content << in.rdbuf();
    return readTrace(content.str(), path);
}

} // namespace report
} // namespace voltboot

#include "report/prometheus.hh"

#include <cctype>
#include <cmath>

#include "trace/trace.hh"

namespace voltboot
{
namespace report
{

namespace
{

/** Prometheus sample value: like trace::jsonNumber, but nan/inf render
 * as `NaN` / `+Inf` / `-Inf` instead of JSON null. */
std::string
promValue(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    return trace::jsonNumber(value);
}

/** `{a="x",b="y"}` for the constant labels; empty for none. */
std::string
renderLabels(const PrometheusLabels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ",";
        out += labels[i].first + "=\"" +
               escapeLabelValue(labels[i].second) + "\"";
    }
    out += "}";
    return out;
}

/** Constant labels merged with the summary's quantile label. */
std::string
renderQuantileLabels(const PrometheusLabels &labels,
                     const char *quantile)
{
    std::string out = "{";
    for (const auto &[key, value] : labels)
        out += key + "=\"" + escapeLabelValue(value) + "\",";
    out += std::string("quantile=\"") + quantile + "\"}";
    return out;
}

} // namespace

std::string
prometheusName(const std::string &name)
{
    std::string out = "voltboot_";
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    return out;
}

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
toPrometheus(const trace::MetricsSnapshot &snap)
{
    return toPrometheus(snap, {});
}

std::string
toPrometheus(const trace::MetricsSnapshot &snap,
             const PrometheusLabels &labels)
{
    const std::string l = renderLabels(labels);
    std::string out;
    for (const auto &[name, value] : snap.counters) {
        const std::string p = prometheusName(name);
        out += "# TYPE " + p + " counter\n";
        out += p + l + " " + promValue(value) + "\n";
    }
    for (const auto &[name, value] : snap.gauges) {
        const std::string p = prometheusName(name);
        out += "# TYPE " + p + " gauge\n";
        out += p + l + " " + promValue(value) + "\n";
    }
    for (const auto &[name, h] : snap.histograms) {
        const std::string p = prometheusName(name);
        out += "# TYPE " + p + " summary\n";
        out += p + renderQuantileLabels(labels, "0.5") + " " +
               promValue(h.p50) + "\n";
        out += p + renderQuantileLabels(labels, "0.9") + " " +
               promValue(h.p90) + "\n";
        out += p + renderQuantileLabels(labels, "0.99") + " " +
               promValue(h.p99) + "\n";
        out += p + "_sum" + l + " " +
               promValue(h.mean * static_cast<double>(h.count)) + "\n";
        out += p + "_count" + l + " " + std::to_string(h.count) + "\n";
    }
    return out;
}

} // namespace report
} // namespace voltboot

#include "report/prometheus.hh"

#include <cctype>
#include <cmath>

#include "trace/trace.hh"

namespace voltboot
{
namespace report
{

namespace
{

/** Prometheus sample value: like trace::jsonNumber, but nan/inf render
 * as `NaN` / `+Inf` / `-Inf` instead of JSON null. */
std::string
promValue(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    return trace::jsonNumber(value);
}

} // namespace

std::string
prometheusName(const std::string &name)
{
    std::string out = "voltboot_";
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    return out;
}

std::string
toPrometheus(const trace::MetricsSnapshot &snap)
{
    std::string out;
    for (const auto &[name, value] : snap.counters) {
        const std::string p = prometheusName(name);
        out += "# TYPE " + p + " counter\n";
        out += p + " " + promValue(value) + "\n";
    }
    for (const auto &[name, value] : snap.gauges) {
        const std::string p = prometheusName(name);
        out += "# TYPE " + p + " gauge\n";
        out += p + " " + promValue(value) + "\n";
    }
    for (const auto &[name, h] : snap.histograms) {
        const std::string p = prometheusName(name);
        out += "# TYPE " + p + " summary\n";
        out += p + "{quantile=\"0.5\"} " + promValue(h.p50) + "\n";
        out += p + "{quantile=\"0.9\"} " + promValue(h.p90) + "\n";
        out += p + "{quantile=\"0.99\"} " + promValue(h.p99) + "\n";
        out += p + "_sum " +
               promValue(h.mean * static_cast<double>(h.count)) + "\n";
        out += p + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

} // namespace report
} // namespace voltboot

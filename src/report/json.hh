/**
 * @file
 * A small strict JSON parser with line/column diagnostics.
 *
 * The report layer consumes this repository's own machine output — the
 * JSONL event traces (`trace::toJsonlLine`), campaign result documents
 * (`CampaignResult::toJson`) and bench artefacts (`BENCH_*.json`) — so
 * the parser is deliberately strict: RFC 8259 grammar only, duplicate
 * object keys rejected, no trailing garbage, and every error carries the
 * 1-based line and column where parsing stopped. Nothing here tries to
 * be a general-purpose JSON library; it is the consumption half of the
 * observability contract, sized to the documents we emit.
 *
 * Two properties matter to callers:
 *
 *  - **Positions.** Every parsed value remembers where it started, so
 *    schema validation downstream (trace_reader, campaign_json) can
 *    point at the offending value, not just the offending line.
 *  - **Raw number text.** Numbers keep their source spelling alongside
 *    the parsed double, which is what lets the JSONL round trip
 *    (`toJsonlLine` → reader → re-serialize) be byte-identical: the
 *    writer's shortest-round-trip rendering is re-emitted verbatim.
 */

#ifndef VOLTBOOT_REPORT_JSON_HH
#define VOLTBOOT_REPORT_JSON_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace voltboot
{
namespace report
{

/** Parse failure; the message embeds "<source>:<line>:<col>". */
class JsonParseError : public FatalError
{
  public:
    JsonParseError(const std::string &source, size_t line, size_t column,
                   const std::string &detail);

    size_t line() const { return line_; }
    size_t column() const { return column_; }

  private:
    size_t line_;
    size_t column_;
};

/** One parsed JSON value (a small, copyable tree). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String value (Kind::String, unescaped) or the raw source text of
     * a number (Kind::Number, byte-exact). */
    std::string text;
    std::vector<JsonValue> items; ///< Kind::Array elements, in order.
    /** Kind::Object members in document order (keys are unescaped). */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** 1-based position of the value's first character. */
    size_t line = 1;
    size_t column = 1;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(std::string_view key) const;

    /** Human name of @p kind for diagnostics ("object", "number", ...). */
    static const char *kindName(Kind kind);
};

/**
 * Parse @p text as exactly one JSON document (leading/trailing
 * whitespace allowed, anything else after the value is an error).
 *
 * @param source      Name used in diagnostics (file path, "<string>").
 * @param first_line  Line number of @p text's first line, so callers
 *                    slicing one line out of a JSONL file report real
 *                    file positions.
 * @throws JsonParseError on any deviation from the JSON grammar.
 */
JsonValue parseJson(std::string_view text,
                    const std::string &source = "<string>",
                    size_t first_line = 1);

} // namespace report
} // namespace voltboot

#endif // VOLTBOOT_REPORT_JSON_HH

#include "report/span_aggregator.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace voltboot
{
namespace report
{

namespace
{

constexpr const char *kVoltagePrefix = "voltage.";

/** Parse a rendered JSON number argument; false for null/non-numbers. */
bool
argNumber(const trace::Arg &arg, double *out)
{
    const std::string &j = arg.json;
    const auto [ptr, ec] =
        std::from_chars(j.data(), j.data() + j.size(), *out);
    return ec == std::errc() && ptr == j.data() + j.size();
}

std::string
fmtUs(double seconds)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    return buf;
}

std::string
fmtVolts(double volts)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", volts);
    return buf;
}

void
renderNode(const SpanNode &node, size_t depth, std::string &out)
{
    out.append(depth * 2, ' ');
    out += "- ";
    out += node.category;
    out += "/";
    out += node.name;
    out += "  [start ";
    out += fmtUs(node.start_s);
    out += " us, dur ";
    out += fmtUs(node.dur_s);
    out += " us, self ";
    out += fmtUs(node.self_s);
    out += " us]\n";
    for (const SpanNode &child : node.children)
        renderNode(child, depth + 1, out);
}

} // namespace

SpanAggregate
SpanAggregate::build(std::span<const trace::TraceEvent> events)
{
    SpanAggregate agg;
    agg.total_events_ = events.size();

    for (const trace::TraceEvent &ev : events) {
        const std::string key =
            std::string(ev.category) + "/" + ev.name;

        if (ev.phase != trace::Phase::Complete) {
            ++agg.event_counts_[key];
            if (ev.phase == trace::Phase::Counter) {
                double v = 0.0;
                for (const trace::Arg &arg : ev.args)
                    if (arg.key == "v" && argNumber(arg, &v)) {
                        agg.counter_tracks_[key].push_back(
                            {ev.ts.seconds(), v});
                        if (ev.name.rfind(kVoltagePrefix, 0) == 0)
                            agg.waveforms_[ev.name.substr(
                                               std::string(
                                                   kVoltagePrefix)
                                                   .size())]
                                .push_back({ev.ts.seconds(), v});
                    }
            }
            continue;
        }

        // Complete span: adopt every already-finished top-level span
        // whose interval this one contains. Children close (and are
        // emitted) before their parents, so they sit at the tail of
        // the current root list.
        SpanNode node;
        node.category = ev.category;
        node.name = ev.name;
        node.start_s = ev.ts.seconds();
        node.dur_s = ev.dur.seconds();

        const double start = node.start_s;
        const double end = node.start_s + node.dur_s;
        std::vector<SpanNode> adopted;
        while (!agg.roots_.empty()) {
            const SpanNode &tail = agg.roots_.back();
            if (tail.start_s >= start &&
                tail.start_s + tail.dur_s <= end) {
                adopted.push_back(std::move(agg.roots_.back()));
                agg.roots_.pop_back();
            } else {
                break;
            }
        }
        std::reverse(adopted.begin(), adopted.end());
        node.children = std::move(adopted);

        double child_time = 0.0;
        for (const SpanNode &child : node.children)
            child_time += child.dur_s;
        node.self_s = std::max(0.0, node.dur_s - child_time);

        SpanStats &stats = agg.spans_[key];
        ++stats.count;
        stats.total_s += node.dur_s;
        stats.self_s += node.self_s;

        agg.roots_.push_back(std::move(node));
    }
    return agg;
}

std::string
SpanAggregate::renderSpanTable() const
{
    std::string out;
    out += "| span | calls | total (us) | self (us) |\n";
    out += "|---|---:|---:|---:|\n";
    for (const auto &[key, stats] : spans_) {
        out += "| `" + key + "` | " + std::to_string(stats.count) +
               " | " + fmtUs(stats.total_s) + " | " +
               fmtUs(stats.self_s) + " |\n";
    }
    return out;
}

std::string
SpanAggregate::renderTree() const
{
    std::string out;
    for (const SpanNode &root : roots_)
        renderNode(root, 0, out);
    return out;
}

std::string
SpanAggregate::renderWaveforms() const
{
    std::string out;
    out += "| domain | samples | min (V) | max (V) | final (V) |\n";
    out += "|---|---:|---:|---:|---:|\n";
    for (const auto &[domain, samples] : waveforms_) {
        double lo = samples.front().volts;
        double hi = samples.front().volts;
        for (const VoltageSample &s : samples) {
            lo = std::min(lo, s.volts);
            hi = std::max(hi, s.volts);
        }
        out += "| `" + domain + "` | " +
               std::to_string(samples.size()) + " | " + fmtVolts(lo) +
               " | " + fmtVolts(hi) + " | " +
               fmtVolts(samples.back().volts) + " |\n";
    }
    return out;
}

std::string
SpanAggregate::renderCounterTracks() const
{
    std::string out;
    out += "| track | samples | first | min | max | last |\n";
    out += "|---|---:|---:|---:|---:|---:|\n";
    auto fmt = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%g", v);
        return std::string(buf);
    };
    for (const auto &[key, samples] : counter_tracks_) {
        double lo = samples.front().value;
        double hi = samples.front().value;
        for (const CounterSample &s : samples) {
            lo = std::min(lo, s.value);
            hi = std::max(hi, s.value);
        }
        out += "| `" + key + "` | " + std::to_string(samples.size()) +
               " | " + fmt(samples.front().value) + " | " + fmt(lo) +
               " | " + fmt(hi) + " | " + fmt(samples.back().value) +
               " |\n";
    }
    return out;
}

} // namespace report
} // namespace voltboot

#include "report/heartbeat.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/json.hh"
#include "sim/logging.hh"

namespace voltboot
{
namespace report
{

namespace
{

double
numberOr(const JsonValue *v, double fallback)
{
    return v && v->isNumber() ? v->number : fallback;
}

uint64_t
countOr(const JsonValue *v, uint64_t fallback)
{
    return v && v->isNumber() ? static_cast<uint64_t>(v->number)
                              : fallback;
}

/** Parse one heartbeat line; false when it is not a heartbeat. */
bool
parseHeartbeatLine(const std::string &line, const std::string &source,
                   size_t line_no, Heartbeat *out)
{
    JsonValue v;
    try {
        v = parseJson(line, source, line_no);
    } catch (const JsonParseError &) {
        return false; // torn tail write or foreign line
    }
    const JsonValue *schema = v.find("schema");
    if (!schema || !schema->isString() ||
        schema->text != "voltboot-heartbeat-v1")
        return false;

    Heartbeat hb;
    hb.seq = countOr(v.find("seq"), 0);
    if (const JsonValue *f = v.find("final"); f && f->isBool())
        hb.final_sample = f->boolean;
    if (const JsonValue *c = v.find("campaign"); c && c->isObject()) {
        hb.campaign_seed = countOr(c->find("seed"), 0);
        if (const JsonValue *g = c->find("grid"); g && g->isString())
            hb.grid_spec = g->text;
        hb.total_trials = countOr(c->find("total_trials"), 0);
    }
    if (const JsonValue *p = v.find("progress"); p && p->isObject()) {
        hb.started = countOr(p->find("started"), 0);
        hb.completed = countOr(p->find("completed"), 0);
        hb.won = countOr(p->find("won"), 0);
        hb.failed = countOr(p->find("failed"), 0);
        hb.skipped = countOr(p->find("skipped"), 0);
    }
    if (const JsonValue *c = v.find("counters"); c && c->isObject())
        for (const auto &[name, value] : c->members)
            if (value.isNumber())
                hb.counters[name] =
                    static_cast<uint64_t>(value.number);
    if (const JsonValue *w = v.find("wall"); w && w->isObject()) {
        hb.unix_ms = countOr(w->find("unix_ms"), 0);
        hb.elapsed_s = numberOr(w->find("elapsed_s"), 0.0);
        hb.trials_per_sec = numberOr(w->find("trials_per_sec"), 0.0);
        hb.trials_per_sec_ewma =
            numberOr(w->find("trials_per_sec_ewma"), 0.0);
        hb.eta_s = numberOr(w->find("eta_s"), 0.0);
    }
    *out = std::move(hb);
    return true;
}

std::string
fmtRate(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

} // namespace

std::vector<Heartbeat>
readHeartbeats(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open heartbeat stream '", path, "'");
    std::vector<Heartbeat> beats;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        Heartbeat hb;
        if (parseHeartbeatLine(line, path, line_no, &hb))
            beats.push_back(std::move(hb));
    }
    return beats;
}

std::string
renderHeartbeatSummary(const std::vector<Heartbeat> &beats)
{
    if (beats.empty())
        return "";
    const Heartbeat &last = beats.back();
    double peak = 0.0;
    for (const Heartbeat &hb : beats)
        peak = std::max(peak, hb.trials_per_sec);

    std::ostringstream out;
    out << "Heartbeat stream: " << beats.size() << " sample"
        << (beats.size() == 1 ? "" : "s") << " over "
        << fmtRate(last.elapsed_s) << " s ("
        << (last.final_sample ? "clean shutdown"
                              : "no final sample — interrupted run")
        << ").\n\n";
    out << "| sample | trials done | rate (trials/s) | EWMA | ETA (s) "
           "|\n";
    out << "|---|---:|---:|---:|---:|\n";
    auto row = [&](const char *tag, const Heartbeat &hb) {
        out << "| " << tag << " (seq " << hb.seq << ") | "
            << hb.completed + hb.skipped << "/" << hb.total_trials
            << " | " << fmtRate(hb.trials_per_sec) << " | "
            << fmtRate(hb.trials_per_sec_ewma) << " | "
            << fmtRate(hb.eta_s) << " |\n";
    };
    row("first", beats.front());
    if (beats.size() > 2)
        row("mid", beats[beats.size() / 2]);
    if (beats.size() > 1)
        row("last", last);
    out << "\nPeak sampled rate: " << fmtRate(peak) << " trials/s.\n";
    return out.str();
}

} // namespace report
} // namespace voltboot

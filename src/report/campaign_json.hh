/**
 * @file
 * Parsers for the campaign result JSON (`CampaignResult::toJson`) and
 * the bench baseline artefacts (`BENCH_campaign.json`), feeding the
 * report generator.
 *
 * Loading a sweep back through this reader is the inverse of
 * `CampaignResult::toJson()` for everything the report needs: the
 * canonical record fields always, and the opt-in `timing` section
 * (wall clock, throughput, metrics snapshot) when the sweep was run
 * with `--timing`. Schema violations are reported as JsonParseError
 * with the offending value's line/column, same as the trace reader.
 */

#ifndef VOLTBOOT_REPORT_CAMPAIGN_JSON_HH
#define VOLTBOOT_REPORT_CAMPAIGN_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/metrics.hh"

namespace voltboot
{
namespace report
{

/** One trial record, as re-read from campaign JSON. */
struct SweepRecord
{
    uint64_t index = 0;
    std::string board;
    std::string target;
    std::string attack;
    double temp_c = 0.0;
    double off_ms = 0.0;
    double current_a = 0.0;
    double impedance_mohm = 0.0;
    uint64_t seed_index = 0;
    uint64_t chip_seed = 0;
    std::string status; ///< ok | attack_failed | error | skipped
    std::string detail;
    bool probe_attached = false;
    bool booted = false;
    uint64_t dump_bytes = 0;
    double accuracy = 0.0;
    double bit_error_rate = 0.0;
    bool key_planted = false;
    bool key_found = false;
    bool key_exact = false;

    /** Glitch axes and outcome; default-zero when reading sweeps
     * written before the glitch attack existed. */
    double glitch_off_ns = 0.0;
    double glitch_width_ns = 0.0;
    double glitch_depth_v = 0.0;
    uint64_t glitch_faults = 0;
    std::string glitch_effect;
    bool glitch_bypassed = false;

    /** Sidechannel axes and outcome; default-zero when reading sweeps
     * written before the static-extract/coupling attacks existed. */
    double undervolt_depth_v = 0.0;
    double hold_ns = 0.0;
    double readout_rate = 0.0;
    double cpa_window_ns = 0.0;
    bool se_frozen = false;
    bool se_zeroized = false;
    double se_read_fraction = 0.0;
    uint64_t cpa_recovered = 0;

    /** Key-recovery axes and outcome; defaults when reading sweeps
     * written before the keyfind engine existed. */
    uint64_t dump_count = 1;
    bool use_priors = false;
    uint64_t kr_scan_hits = 0;
    uint64_t kr_corrected_hits = 0;
    uint64_t kr_bit_errors = 0;
    uint64_t kr_key_bits_flipped = 0;
    uint64_t kr_correction_iterations = 0;
    uint64_t kr_disagreeing_bits = 0;
};

/** A whole sweep document. */
struct SweepDoc
{
    std::string schema; ///< "voltboot-campaign-v1"
    uint64_t campaign_seed = 0;
    std::string grid;
    std::vector<SweepRecord> records;

    /** Opt-in timing section (non-canonical); valid iff has_timing. */
    bool has_timing = false;
    double wall_seconds = 0.0;
    uint64_t jobs = 0;
    double trials_per_second = 0.0;
    uint64_t trials_timed_out = 0;
    trace::MetricsSnapshot metrics;
};

/** Parse a campaign result document; throws JsonParseError. */
SweepDoc parseSweepJson(std::string_view text,
                        const std::string &source = "<string>");

/** Load and parse a sweep JSON file; fatal() if unreadable. */
SweepDoc readSweepFile(const std::string &path);

/** One `runs[]` entry of a BENCH_campaign.json artefact. */
struct BaselineRun
{
    uint64_t jobs = 0;
    double wall_seconds = 0.0;
    double trials_per_second = 0.0;
};

/** A BENCH_campaign.json throughput baseline. */
struct Baseline
{
    std::string bench;
    uint64_t trials = 0;
    std::vector<BaselineRun> runs;

    /** Best throughput over all runs; 0 when there are none. */
    double bestTrialsPerSecond() const;
    /** Throughput of the run with matching @p jobs, or nullptr. */
    const BaselineRun *runForJobs(uint64_t jobs) const;
};

/** Parse a BENCH_campaign.json document; throws JsonParseError. */
Baseline parseBaselineJson(std::string_view text,
                           const std::string &source = "<string>");

/** Load and parse a baseline file; fatal() if unreadable. */
Baseline readBaselineFile(const std::string &path);

} // namespace report
} // namespace voltboot

#endif // VOLTBOOT_REPORT_CAMPAIGN_JSON_HH

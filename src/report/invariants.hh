/**
 * @file
 * Trace invariant checking: the physical and structural properties a
 * valid simulator trace must uphold.
 *
 * The paper's argument rests on reading instruments correctly — a
 * voltage trace that ran backwards in time or a probe-held rail that
 * "dipped" below its hold floor would mean the bench was broken, not
 * that the attack failed. The simulated equivalent: any trace the
 * simulator emits must satisfy these invariants, and a trace that does
 * not is evidence of a simulator bug (or a corrupted file), which is
 * exactly what `voltboot_cli report trace --check` exists to catch.
 *
 * Invariants checked (names appear verbatim in violation output):
 *
 *  - `monotonic_time` — the emission clock never runs backwards:
 *    instants/counters are ordered by `ts`, spans by their *end* time
 *    (a span is emitted when it closes), and no span has negative
 *    duration.
 *  - `span_nesting` — span intervals are properly nested: any two are
 *    disjoint or one contains the other; partial overlap is structural
 *    corruption.
 *  - `nonnegative_voltage` — no voltage-carrying argument
 *    (`voltage_v`, `v`, `v_min`, `v_settled`, `from_v`, `to_v`,
 *    `supply_v`) is ever negative.
 *  - `probe_hold` — between `probe_attach` and `probe_detach`, once the
 *    probe transient has resolved, the domain's sampled supply voltage
 *    never falls below that transient's droop minimum `v_min` (the
 *    floor the probe guarantees), and the transient itself satisfies
 *    `v_min <= v_settled`.
 *  - `attack_step_order` — the `core` attack-step spans appear in the
 *    paper's four-step order (steps 1–2 probe, step 3 power cycle,
 *    step 4 extract); a later step never precedes an earlier one
 *    except where a fresh attack run restarts the sequence.
 *  - `glitch_bounds` — every `power`/`glitch.pulse` span covers at
 *    least one `voltage.<domain>` sample, all covered samples stay
 *    within `[nominal - depth, nominal]`, and the last covered sample
 *    has recovered to nominal before the span ends.
 *  - `sidechannel_bounds` — same bounded-excursion contract for the
 *    static-undervolt and coupling-capture spans: every
 *    `power`/`undervolt.hold` span (floor `nominal - depth_v`) and
 *    `power`/`coupling.capture` span (floor `nominal - dip_bound_v`)
 *    covers at least one `voltage.<domain>` sample, all covered
 *    samples stay within `[floor, nominal]`, and the last covered
 *    sample has recovered to nominal.
 */

#ifndef VOLTBOOT_REPORT_INVARIANTS_HH
#define VOLTBOOT_REPORT_INVARIANTS_HH

#include <span>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace voltboot
{
namespace report
{

/** One invariant violation, tied to the offending event. */
struct Violation
{
    /** Invariant name (stable identifiers, see file comment). */
    const char *invariant = "";
    /** Index of the offending event in the checked sequence (which is
     * its 1-based line number minus one in a JSONL file). */
    size_t event_index = 0;
    std::string message;
};

/** Check every invariant over @p events; empty result means valid. */
std::vector<Violation>
checkTraceInvariants(std::span<const trace::TraceEvent> events);

/** Render @p violations one per line as `invariant @ event N: msg`. */
std::string renderViolations(std::span<const Violation> violations);

} // namespace report
} // namespace voltboot

#endif // VOLTBOOT_REPORT_INVARIANTS_HH

/**
 * @file
 * Reader for the telemetry heartbeat JSONL stream
 * (`voltboot_cli sweep --heartbeat FILE`; schema
 * `voltboot-heartbeat-v1`, written by telemetry::CampaignMonitor).
 *
 * Heartbeats are the crash-tolerant record of a sweep: one appended,
 * flushed line per sampling interval, so even a SIGKILLed campaign
 * leaves a parseable progress history ending within one interval of
 * where it died. The reader is lenient about truncation — a torn final
 * line (the process died mid-write) is dropped, everything before it
 * is kept — but strict about the lines it does accept.
 */

#ifndef VOLTBOOT_REPORT_HEARTBEAT_HH
#define VOLTBOOT_REPORT_HEARTBEAT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace voltboot
{
namespace report
{

/** One parsed heartbeat line. */
struct Heartbeat
{
    uint64_t seq = 0;
    bool final_sample = false;
    uint64_t campaign_seed = 0;
    std::string grid_spec;
    uint64_t total_trials = 0;
    uint64_t started = 0;
    uint64_t completed = 0;
    uint64_t won = 0;
    uint64_t failed = 0;
    uint64_t skipped = 0;
    /** Raw counter block, name -> value. */
    std::map<std::string, uint64_t> counters;
    double elapsed_s = 0.0;
    double trials_per_sec = 0.0;
    double trials_per_sec_ewma = 0.0;
    double eta_s = 0.0;
    uint64_t unix_ms = 0;
};

/**
 * Parse the heartbeat stream at @p path, in file order. Lines that are
 * not valid heartbeat objects (torn tail writes, foreign schemas) are
 * skipped. fatal()s when the file cannot be read.
 */
std::vector<Heartbeat> readHeartbeats(const std::string &path);

/** Markdown summary of a heartbeat stream for the campaign report:
 * sample cadence, rate trajectory, and the final sample. Empty string
 * for an empty stream. */
std::string renderHeartbeatSummary(const std::vector<Heartbeat> &beats);

} // namespace report
} // namespace voltboot

#endif // VOLTBOOT_REPORT_HEARTBEAT_HH

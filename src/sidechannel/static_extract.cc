#include "sidechannel/static_extract.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "isa/assembler.hh"
#include "mem/memory_system.hh"
#include "os/workloads.hh"
#include "sim/logging.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace voltboot
{
namespace sidechannel
{

namespace
{

/** Simulation-time span + wall-clock metric, as core/attack.cc does. */
class StepScope
{
  public:
    StepScope(Soc &soc, std::string name)
        : sync_(soc), soc_(soc), span_("core", name),
          metric_("core.wall_s." + name),
          t0_(std::chrono::steady_clock::now())
    {
    }

    ~StepScope()
    {
        trace::setSimTime(soc_.eventQueue().now());
        span_.end();
        if (trace::Metrics *m = trace::metricsRegistry()) {
            m->observe(metric_,
                       std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0_)
                           .count());
        }
    }

    void arg(trace::Arg a) { span_.arg(std::move(a)); }

  private:
    struct ClockSync
    {
        explicit ClockSync(Soc &soc)
        {
            trace::setSimTime(soc.eventQueue().now());
        }
    };

    ClockSync sync_; ///< Must precede span_: syncs the clock it reads.
    Soc &soc_;
    trace::Span span_;
    std::string metric_;
    std::chrono::steady_clock::time_point t0_;
};

/**
 * The brown-out detector: freeze the clock while the rail sits below
 * freeze_fraction x nominal. A pure function of the waveform and the
 * retired-instruction count, so replays are byte-identical.
 */
class UndervoltClockGate : public ClockGate
{
  public:
    UndervoltClockGate(const fault::GlitchWaveform &wave, double threshold,
                       Seconds cycle)
        : wave_(wave), threshold_(threshold), cycle_(cycle.seconds())
    {
    }

    bool
    clockRunning(uint64_t retired) override
    {
        const double t = static_cast<double>(retired) * cycle_;
        return wave_.at(Seconds(t)).volts() >= threshold_;
    }

  private:
    const fault::GlitchWaveform &wave_;
    double threshold_;
    double cycle_;
};

class GateGuard
{
  public:
    GateGuard(Cpu &cpu, ClockGate *gate) : cpu_(cpu)
    {
        cpu_.setClockGate(gate);
    }
    ~GateGuard() { cpu_.setClockGate(nullptr); }

  private:
    Cpu &cpu_;
};

/**
 * Emit the whole undervolt ramp into the trace in one batch: one
 * voltage.<domain> Counter sample per cycle boundary where the value
 * changes, a guaranteed return-to-nominal sample at ramp end, then the
 * "power" Complete span undervolt.hold bracketing them (children before
 * parents, as the span aggregator expects). Timestamps are assigned
 * manually, so the batch may be emitted at any sim time at or after
 * the ramp end.
 */
void
emitHoldTrace(const fault::GlitchWaveform &wave, const std::string &domain,
              Seconds anchor, Seconds cycle)
{
    if (!trace::enabled())
        return;
    const std::string counter_name = "voltage." + domain;
    auto sample = [&](double t_rel, double v) {
        trace::TraceEvent ev;
        ev.phase = trace::Phase::Counter;
        ev.category = "power";
        ev.name = counter_name;
        ev.ts = Seconds(anchor.seconds() + t_rel);
        ev.args.push_back({"v", v});
        trace::emit(std::move(ev));
    };
    const double t0 = wave.start().seconds();
    const double t3 = wave.end().seconds();
    const double cyc = cycle.seconds();
    double last_v = wave.nominal().volts();
    for (double t = (std::floor(t0 / cyc) + 1.0) * cyc; t < t3;
         t += cyc) {
        const double v = wave.at(Seconds(t)).volts();
        if (v != last_v) {
            sample(t, v);
            last_v = v;
        }
    }
    sample(t3, wave.nominal().volts());

    trace::TraceEvent span;
    span.phase = trace::Phase::Complete;
    span.category = "power";
    span.name = "undervolt.hold";
    span.ts = Seconds(anchor.seconds() + t0);
    span.dur = wave.params().width;
    span.args.push_back({"domain", domain});
    span.args.push_back({"nominal_v", wave.nominal().volts()});
    span.args.push_back({"depth_v", wave.params().depth.volts()});
    span.args.push_back({"offset_s", t0});
    span.args.push_back({"width_s", wave.params().width.seconds()});
    trace::emit(std::move(span));
}

} // namespace

const char *
toString(ExtractTarget target)
{
    switch (target) {
      case ExtractTarget::DCache:
        return "dcache";
      case ExtractTarget::Regs:
        return "regs";
      case ExtractTarget::Iram:
        return "iram";
    }
    return "?";
}

StaticExtractAttack::StaticExtractAttack(Soc &soc,
                                         StaticExtractConfig config)
    : soc_(soc), config_(config)
{
}

const DomainSpec &
StaticExtractAttack::targetDomain() const
{
    const SocConfig &cfg = soc_.config();
    switch (config_.target) {
      case ExtractTarget::DCache:
      case ExtractTarget::Regs:
        // wireDomains hangs the L1s and both register files off the
        // core domain, which is also what clocks the core: one rail
        // both freezes the logic and feeds the cells.
        return cfg.core_domain;
      case ExtractTarget::Iram:
        return cfg.iram_on_mem_domain ? cfg.mem_domain : cfg.core_domain;
    }
    return cfg.core_domain;
}

namespace
{

/** Countdown spin, then a zeroize of the secret, then hlt. */
std::string
buildZeroizeVictim(const StaticExtractConfig &cfg, uint64_t wipe_base,
                   size_t wipe_bytes, bool enable_caches)
{
    std::ostringstream os;
    os << "// Static-extract victim: countdown, then zeroize\n";
    if (enable_caches) {
        os << "    movz x0, #0x1004\n";
        os << "    msr sctlr_el1, x0\n";
    }
    if (cfg.victim_countdown > 0) {
        os << workloads::loadImm64("x5", cfg.victim_countdown);
        os << "spin_loop:\n";
        os << "    sub x5, x5, #1\n";
        os << "    cbnz x5, spin_loop\n";
    }
    if (cfg.target == ExtractTarget::Regs) {
        for (unsigned v = 0; v < 32; ++v)
            os << "    vdup v" << v << ", #0\n";
    } else {
        os << workloads::loadImm64("x1", wipe_base);
        os << "    movz x2, #0\n";
        os << workloads::loadImm64("x3", wipe_bytes / 8);
        os << "wipe_loop:\n";
        os << "    str x2, [x1]\n";
        os << "    add x1, x1, #8\n";
        os << "    sub x3, x3, #1\n";
        os << "    cbnz x3, wipe_loop\n";
    }
    os << "    hlt\n";
    return os.str();
}

} // namespace

StaticExtractOutcome
StaticExtractAttack::execute()
{
    if (!soc_.poweredOn())
        fatal("StaticExtractAttack: the board must be powered on");
    if (config_.target == ExtractTarget::Iram && !soc_.iramArray())
        fatal("StaticExtractAttack: this platform has no iRAM");

    StepScope scope(soc_, "attack.static_extract");
    scope.arg({"target", toString(config_.target)});
    scope.arg({"depth_v", config_.depth.volts()});
    scope.arg({"hold_s", config_.hold.seconds()});
    scope.arg({"readout_rate", config_.readout_rate});

    // The array the frozen state is read out of, and the region the
    // victim wipes to destroy it.
    const MemoryArray *target_array = nullptr;
    uint64_t wipe_base = 0;
    size_t wipe_bytes = config_.data_bytes;
    bool caches_on = false;
    switch (config_.target) {
      case ExtractTarget::DCache:
        target_array = &soc_.l1dData(0);
        wipe_base = soc_.config().dram_base + config_.data_offset;
        caches_on = true;
        break;
      case ExtractTarget::Regs:
        target_array = &soc_.vRegs(0);
        break;
      case ExtractTarget::Iram:
        target_array = soc_.iramArray();
        wipe_base = soc_.memory().iram()->base();
        break;
    }
    if (wipe_bytes == 0)
        wipe_bytes = target_array->sizeBytes();

    victim_source_ = buildZeroizeVictim(config_, wipe_base, wipe_bytes,
                                        caches_on);
    Program victim = Assembler::assemble(victim_source_);
    victim.load_address = soc_.config().dram_base + config_.load_offset;
    soc_.loadProgram(victim);
    soc_.memory().l1i(0).invalidateAll();
    if (config_.target != ExtractTarget::DCache)
        soc_.memory().l1d(0).invalidateAll();

    const DomainSpec &domain = targetDomain();
    const fault::GlitchParams ramp{config_.ramp_offset, config_.hold,
                                   config_.depth};
    const fault::GlitchWaveform wave(domain.nominal, ramp,
                                     config_.ramp_impedance, domain.decap);
    const bool live = !ramp.degenerate();

    UndervoltClockGate gate(wave,
                            config_.freeze_fraction * domain.nominal.volts(),
                            config_.cycle);
    Cpu &cpu = soc_.cpu(0);
    GateGuard guard(cpu, live ? &gate : nullptr);
    cpu.reset(victim.load_address);

    const Seconds anchor = soc_.eventQueue().now();
    const double cyc = config_.cycle.seconds();

    StaticExtractOutcome out;
    out.floor_v = live ? wave.floor().volts() : domain.nominal.volts();

    // Phase A: the victim races the ramp. Each retired instruction
    // costs one cycle; the gate freezes the core the first time the
    // rail is below brown-out at a boundary.
    uint64_t steps = 0;
    while (steps < config_.max_steps) {
        const bool more = cpu.step();
        if (!more)
            break;
        ++steps;
        soc_.advanceTime(config_.cycle);
    }
    out.steps = steps;
    out.frozen = cpu.frozen();
    out.zeroized = cpu.halted() && cpu.fault() == CpuFault::None;

    // Phase B: let the simulation clock pass the end of the hold so the
    // waveform batch (and everything after it) stamps in the past.
    {
        const Seconds now = soc_.eventQueue().now();
        const double past_end =
            anchor.seconds() + wave.end().seconds() + cyc - now.seconds();
        if (past_end > 0.0)
            soc_.advanceTime(Seconds(past_end));
    }

    // Phase C: record the ramp, apply the retention physics, read out.
    if (live) {
        emitHoldTrace(wave, domain.name, anchor, config_.cycle);
        if (PowerDomain *pd = soc_.board().pmic().domain(domain.name)) {
            for (MemoryArray *load : pd->loads()) {
                load->droopTo(wave.floor());
                out.cells_lost += load->lastCellsLost();
            }
        }
    }

    MemoryImage dump;
    switch (config_.target) {
      case ExtractTarget::DCache:
        dump = soc_.memory().l1d(0).dumpAll();
        break;
      case ExtractTarget::Regs:
        dump = MemoryImage(soc_.vRegs(0).snapshot());
        break;
      case ExtractTarget::Iram:
        dump = MemoryImage(soc_.iramArray()->snapshot());
        break;
    }

    // The slow readout path only sees what fits inside the hold window.
    size_t readable = dump.sizeBytes();
    if (live && config_.readout_rate > 0.0) {
        const double hold_us = config_.hold.seconds() * 1e6;
        const double budget = hold_us * config_.readout_rate;
        readable = std::min(
            readable, static_cast<size_t>(std::floor(std::max(0.0, budget))));
    }
    if (readable < dump.sizeBytes()) {
        std::vector<uint8_t> bytes = dump.bytes();
        std::fill(bytes.begin() + static_cast<long>(readable), bytes.end(),
                  0);
        dump = MemoryImage(std::move(bytes));
    }
    out.bytes_read = readable;
    out.read_fraction = dump.sizeBytes() == 0
                            ? 1.0
                            : static_cast<double>(readable) /
                                  static_cast<double>(dump.sizeBytes());
    out.dump = std::move(dump);

    scope.arg({"frozen", out.frozen});
    scope.arg({"zeroized", out.zeroized});
    scope.arg({"cells_lost", out.cells_lost});
    scope.arg({"read_fraction", out.read_fraction});
    return out;
}

} // namespace sidechannel
} // namespace voltboot

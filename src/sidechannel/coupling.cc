#include "sidechannel/coupling.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "crypto/aes.hh"
#include "sim/rng.hh"

namespace voltboot
{
namespace sidechannel
{

namespace
{

/** Uniform double in [0, 1) from one hash value. */
double
unitFromHash(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string
hexEncode(const std::array<uint8_t, 16> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

bool
hexDecode(const std::string &hex, std::array<uint8_t, 16> *out)
{
    if (hex.size() != 32)
        return false;
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    for (size_t i = 0; i < 16; ++i) {
        const int hi = nibble(hex[i * 2]);
        const int lo = nibble(hex[i * 2 + 1]);
        if (hi < 0 || lo < 0)
            return false;
        (*out)[i] = static_cast<uint8_t>(hi << 4 | lo);
    }
    return true;
}

/** Arg values arrive pre-rendered as JSON; undo the two shapes the
 * analyzer consumes (plain strings without escapes, and numbers). */
bool
argString(const trace::TraceEvent &ev, const char *key, std::string *out)
{
    for (const trace::Arg &a : ev.args) {
        if (a.key == key && a.json.size() >= 2 && a.json.front() == '"' &&
            a.json.back() == '"') {
            *out = a.json.substr(1, a.json.size() - 2);
            return true;
        }
    }
    return false;
}

bool
argNumber(const trace::TraceEvent &ev, const char *key, double *out)
{
    for (const trace::Arg &a : ev.args) {
        if (a.key == key) {
            char *end = nullptr;
            const double v = std::strtod(a.json.c_str(), &end);
            if (end == a.json.c_str())
                return false;
            *out = v;
            return true;
        }
    }
    return false;
}

} // namespace

CouplingRun
runCoupledAesVictim(const CouplingVictimConfig &config)
{
    CouplingRun run;
    if (!trace::enabled())
        return run;

    const std::array<uint8_t, 256> &sbox = Aes::sbox();
    const std::string counter_name = "voltage." + config.domain;
    const double cyc = config.cycle.seconds();
    const double start = config.start.seconds();
    const double block_period =
        (16.0 + static_cast<double>(config.gap_cycles)) * cyc;

    auto sample = [&](double t, double v) {
        trace::TraceEvent ev;
        ev.phase = trace::Phase::Counter;
        ev.category = "power";
        ev.name = counter_name;
        ev.ts = Seconds(t);
        ev.args.push_back({"v", v});
        trace::emit(std::move(ev));
        run.end = Seconds(t);
    };

    double last_t = start;
    for (uint64_t b = 0; b < config.blocks; ++b) {
        const double t_b = start + static_cast<double>(b) * block_period;

        std::array<uint8_t, 16> pt;
        for (size_t i = 0; i < 16; ++i)
            pt[i] = static_cast<uint8_t>(
                hashCombine(config.seed, b * 16 + i));

        trace::TraceEvent mark;
        mark.phase = trace::Phase::Instant;
        mark.category = "core";
        mark.name = "aes.block";
        mark.ts = Seconds(t_b);
        mark.args.push_back({"block", b});
        mark.args.push_back({"pt", hexEncode(pt)});
        trace::emit(std::move(mark));

        for (size_t i = 0; i < 16; ++i) {
            const uint8_t inter =
                sbox[static_cast<uint8_t>(pt[i] ^ config.key[i])];
            const int hw = std::popcount(static_cast<unsigned>(inter));
            const double noise =
                config.noise_mv *
                unitFromHash(hashCombine(
                    hashCombine(config.seed, 0x201bULL), b * 16 + i));
            const double dip_mv =
                config.couple_mv_per_bit * (hw + 1) + noise;
            sample(t_b + static_cast<double>(i) * cyc,
                   config.nominal.volts() - dip_mv / 1000.0);
        }
        last_t = t_b + 16.0 * cyc;
        sample(last_t, config.nominal.volts());
    }
    run.blocks = config.blocks;

    // The capture span closes over its children (aggregator contract:
    // children precede parents in emission order).
    trace::TraceEvent span;
    span.phase = trace::Phase::Complete;
    span.category = "power";
    span.name = "coupling.capture";
    span.ts = config.start;
    span.dur = Seconds(last_t - start);
    span.args.push_back({"domain", config.domain});
    span.args.push_back({"nominal_v", config.nominal.volts()});
    span.args.push_back(
        {"dip_bound_v",
         (config.couple_mv_per_bit * 9.0 + config.noise_mv) / 1000.0});
    span.args.push_back({"blocks", config.blocks});
    span.args.push_back({"cycle_ns", cyc * 1e9});
    trace::emit(std::move(span));

    if (trace::simTime().seconds() < last_t)
        trace::setSimTime(Seconds(last_t));
    return run;
}

CpaResult
analyzeCoupling(const std::vector<trace::TraceEvent> &events,
                const CpaOptions &opts)
{
    CpaResult result;
    std::string domain = opts.domain;
    if (domain.empty()) {
        // Auto-detect: prefer the capture span's own domain arg, fall
        // back to the first voltage counter in the trace.
        for (const trace::TraceEvent &ev : events) {
            if (ev.phase == trace::Phase::Complete &&
                ev.name == "coupling.capture" &&
                argString(ev, "domain", &domain))
                break;
        }
        if (domain.empty()) {
            for (const trace::TraceEvent &ev : events) {
                if (ev.phase == trace::Phase::Counter &&
                    ev.name.rfind("voltage.", 0) == 0) {
                    domain = ev.name.substr(8);
                    break;
                }
            }
        }
    }
    const std::string counter_name = "voltage." + domain;

    // Gather per-block plaintexts and their sample vectors, in trace
    // order: each rail sample belongs to the most recent aes.block.
    std::vector<std::array<uint8_t, 16>> pts;
    std::vector<std::vector<double>> samples;
    std::vector<double> block_ts;
    for (const trace::TraceEvent &ev : events) {
        if (ev.phase == trace::Phase::Instant && ev.name == "aes.block") {
            std::string hex;
            std::array<uint8_t, 16> pt;
            if (!argString(ev, "pt", &hex) || !hexDecode(hex, &pt))
                continue;
            pts.push_back(pt);
            samples.emplace_back();
            block_ts.push_back(ev.ts.seconds());
        } else if (ev.phase == trace::Phase::Counter &&
                   ev.name == counter_name && !pts.empty()) {
            double v = 0.0;
            if (!argNumber(ev, "v", &v))
                continue;
            if (opts.window_ns > 0.0 &&
                (ev.ts.seconds() - block_ts.back()) * 1e9 >=
                    opts.window_ns)
                continue;
            samples.back().push_back(v);
        }
    }

    result.blocks = pts.size();
    if (pts.size() < 2)
        return result;

    size_t slots = samples[0].size();
    for (const std::vector<double> &s : samples)
        slots = std::min(slots, s.size());
    result.samples_per_block = slots;
    if (slots == 0)
        return result;

    const size_t n = pts.size();
    const double dn = static_cast<double>(n);

    // Per-slot rail statistics, shared by every guess.
    std::vector<double> sum_y(slots, 0.0), sum_yy(slots, 0.0);
    for (size_t b = 0; b < n; ++b) {
        for (size_t s = 0; s < slots; ++s) {
            const double y = samples[b][s];
            sum_y[s] += y;
            sum_yy[s] += y * y;
        }
    }

    const std::array<uint8_t, 256> &sbox = Aes::sbox();
    std::array<double, 256> hw;
    for (unsigned v = 0; v < 256; ++v)
        hw[v] = static_cast<double>(std::popcount(v));

    std::vector<double> h(n);
    std::vector<double> sum_xy(slots);
    for (size_t byte = 0; byte < 16; ++byte) {
        CpaByteResult best;
        for (unsigned g = 0; g < 256; ++g) {
            double sum_x = 0.0, sum_xx = 0.0;
            for (size_t b = 0; b < n; ++b) {
                h[b] = hw[sbox[static_cast<uint8_t>(pts[b][byte] ^ g)]];
                sum_x += h[b];
                sum_xx += h[b] * h[b];
            }
            std::fill(sum_xy.begin(), sum_xy.end(), 0.0);
            for (size_t b = 0; b < n; ++b)
                for (size_t s = 0; s < slots; ++s)
                    sum_xy[s] += h[b] * samples[b][s];

            const double var_x = dn * sum_xx - sum_x * sum_x;
            double score = 0.0;
            for (size_t s = 0; s < slots; ++s) {
                const double var_y = dn * sum_yy[s] - sum_y[s] * sum_y[s];
                if (var_x <= 0.0 || var_y <= 0.0)
                    continue;
                const double cov = dn * sum_xy[s] - sum_x * sum_y[s];
                const double r = cov / std::sqrt(var_x * var_y);
                score = std::max(score, std::fabs(r));
            }
            if (score > best.best_corr) {
                best.best_guess = static_cast<uint8_t>(g);
                best.best_corr = score;
            }
        }
        best.confident = best.best_corr >= opts.confidence_threshold;
        if (best.confident)
            ++result.recovered;
        result.bytes[byte] = best;
    }
    return result;
}

unsigned
countCorrectBytes(const CpaResult &result,
                  const std::array<uint8_t, 16> &key)
{
    unsigned correct = 0;
    for (size_t i = 0; i < 16; ++i)
        if (result.bytes[i].best_guess == key[i])
            ++correct;
    return correct;
}

std::string
renderCpaMarkdown(const CpaResult &result)
{
    std::ostringstream os;
    os << "## CPA key recovery (supply-voltage coupling)\n\n";
    os << "blocks: " << result.blocks
       << ", samples/block: " << result.samples_per_block
       << ", confident bytes: " << result.recovered << "/16\n\n";
    os << "| byte | guess | abs r | confident |\n";
    os << "|---:|---|---:|---|\n";
    static const char digits[] = "0123456789abcdef";
    for (size_t i = 0; i < 16; ++i) {
        const CpaByteResult &b = result.bytes[i];
        os << "| " << i << " | 0x" << digits[b.best_guess >> 4]
           << digits[b.best_guess & 0xf] << " | "
           << trace::jsonNumber(b.best_corr) << " | "
           << (b.confident ? "yes" : "no") << " |\n";
    }
    return os.str();
}

} // namespace sidechannel
} // namespace voltboot

/**
 * @file
 * Supply-voltage-coupling leakage: the AES victim and its CPA analyzer.
 *
 * Sanjaya et al. observe that a victim's switching activity couples
 * into the shared supply rail: every bit that toggles draws charge, so
 * the rail dips in proportion to the Hamming weight of the data being
 * processed. The trace layer already records per-domain rails as
 * `voltage.<domain>` Counter events (PR 4), which makes the attack a
 * pure trace-analysis problem: given a rail waveform captured while
 * the victim encrypts known plaintexts, recover the key.
 *
 * Two halves:
 *
 *  - runCoupledAesVictim() plays the victim: for each block it emits an
 *    `aes.block` Instant carrying the plaintext, then one rail sample
 *    per byte whose dip is couple_mv_per_bit x (HW(sbox(pt ^ key)) + 1)
 *    plus bounded counter-seeded noise — the classic first-round
 *    S-box leakage model — all inside a "power" span
 *    `coupling.capture` that the sidechannel_bounds invariant audits.
 *
 *  - analyzeCoupling() is the attacker: classic correlation power
 *    analysis. For each key byte and each of the 256 guesses it
 *    predicts the per-block hypothetical power HW(sbox(pt ^ guess))
 *    and ranks guesses by the best Pearson correlation against any
 *    sample slot in the capture. A flat or foreign waveform has no
 *    slot that correlates, so nothing clears the confidence threshold
 *    and zero bytes are recovered — the analyzer never hallucinates a
 *    key out of noise-free silence.
 *
 * Both halves are deterministic: the victim's noise is counter-hashed
 * from (seed, block, byte) and the analyzer is straight-line float
 * arithmetic over parsed events, so campaigns are byte-identical at
 * any --jobs and the same trace always analyzes to the same ranking.
 */

#ifndef VOLTBOOT_SIDECHANNEL_COUPLING_HH
#define VOLTBOOT_SIDECHANNEL_COUPLING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hh"
#include "trace/trace.hh"

namespace voltboot
{
namespace sidechannel
{

/** The coupled AES victim: what it encrypts and how hard it leaks. */
struct CouplingVictimConfig
{
    /** Rail the victim's activity couples into. */
    std::string domain = "core";
    Volt nominal{0.8};

    /** Number of known-plaintext blocks captured. */
    uint64_t blocks = 48;
    /** Capture start time (simulation seconds). */
    Seconds start = Seconds::nanoseconds(10.0);
    /** One rail sample per processed byte, one byte per cycle. */
    Seconds cycle = Seconds::nanoseconds(1.0);
    /** Idle cycles between blocks (rail back at nominal). */
    uint64_t gap_cycles = 4;

    /** Rail dip per Hamming-weight unit, in millivolts. */
    double couple_mv_per_bit = 2.0;
    /** Bounded uniform measurement noise amplitude, in millivolts. */
    double noise_mv = 0.4;

    /** Seed for plaintexts and noise (counter-hashed). */
    uint64_t seed = 1;
    /** The key under attack. */
    std::array<uint8_t, 16> key{};
};

/** What the victim run emitted. */
struct CouplingRun
{
    uint64_t blocks = 0;
    /** Simulation time of the last emitted sample. */
    Seconds end{0.0};
};

/**
 * Emit the victim's capture into the current thread's trace sink.
 * No-op (blocks = 0) when tracing is disabled. Advances the trace
 * clock to the capture end so later events stay monotonic.
 */
CouplingRun runCoupledAesVictim(const CouplingVictimConfig &config);

/** CPA verdict for one key byte. */
struct CpaByteResult
{
    uint8_t best_guess = 0;
    /** |Pearson r| of the winning guess at its best sample slot. */
    double best_corr = 0.0;
    /** best_corr cleared the confidence threshold. */
    bool confident = false;
};

/** Analyzer knobs. */
struct CpaOptions
{
    /** Which voltage.<domain> counter carries the leakage. Empty =
     * auto-detect from the trace's coupling.capture span (falling back
     * to the first voltage counter seen). */
    std::string domain;
    /** Only correlate samples within this many ns of each aes.block
     * marker; 0 = use every sample up to the next block. */
    double window_ns = 0.0;
    /** Minimum |r| for a byte to count as recovered. */
    double confidence_threshold = 0.25;
};

/** Full CPA ranking over a parsed trace. */
struct CpaResult
{
    std::array<CpaByteResult, 16> bytes{};
    size_t blocks = 0;
    size_t samples_per_block = 0;
    /** Bytes whose winning guess cleared the confidence threshold. */
    unsigned recovered = 0;
};

/**
 * Correlation power analysis over a parsed trace: consume `aes.block`
 * instants (known plaintexts) and `voltage.<domain>` Counter samples,
 * rank all 256 guesses per key byte by max-|r| over sample slots.
 * Deterministic; ties break toward the numerically lower guess.
 */
CpaResult analyzeCoupling(const std::vector<trace::TraceEvent> &events,
                          const CpaOptions &opts = {});

/** How many bytes the ranking got right against the true key. */
unsigned countCorrectBytes(const CpaResult &result,
                           const std::array<uint8_t, 16> &key);

/** Byte-deterministic Markdown table of the per-byte ranking. */
std::string renderCpaMarkdown(const CpaResult &result);

} // namespace sidechannel
} // namespace voltboot

#endif // VOLTBOOT_SIDECHANNEL_COUPLING_HH

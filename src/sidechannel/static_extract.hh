/**
 * @file
 * The Chypnosis-style static undervolt extraction attack.
 *
 * Glitching (src/fault) drives a rail *briefly* below its timing margin
 * to corrupt one instruction; this family drives it *statically* below
 * the brown-out threshold and keeps it there. Below brown-out the clock
 * tree stops producing edges, so the core freezes mid-execution — but
 * SRAM cells whose data-retention voltage (DRV) sits below the sagged
 * rail keep their state. The attacker then has all the time in the
 * world to read the frozen state out through a slow path (JTAG, scan,
 * or bit-banged debug), which is exactly the Chypnosis observation:
 * undervolting turns a running chip into a readable snapshot.
 *
 * The model composes three existing layers:
 *
 *  - the fault::GlitchWaveform trapezoid generates the undervolt ramp
 *    (offset = ramp start, width = hold time, depth = sag below
 *    nominal), traced as voltage.<domain> Counter samples inside an
 *    "undervolt.hold" span that the report layer's sidechannel_bounds
 *    invariant audits;
 *  - an isa/cpu ClockGate samples the waveform at each instruction
 *    boundary and freezes the core once the rail sags below
 *    freeze_fraction x nominal (the brown-out detector's threshold);
 *  - sram/MemoryArray::droopTo applies the retention physics: cells
 *    whose DRV exceeds the waveform floor flip to their power-up
 *    fingerprints, so digging too deep corrupts the very state the
 *    freeze preserved.
 *
 * The victim is a countdown-then-zeroize program: it spins for a
 * configurable number of cycles and then wipes the secret region. A
 * well-timed, deep-enough ramp freezes the clock before the wipe
 * reaches the secret; a shallow ramp lets the zeroize win; an
 * over-deep ramp freezes the core but kills the cells. The success
 * surface over (depth, hold, readout rate) is the experiment.
 */

#ifndef VOLTBOOT_SIDECHANNEL_STATIC_EXTRACT_HH
#define VOLTBOOT_SIDECHANNEL_STATIC_EXTRACT_HH

#include <cstdint>
#include <string>

#include "fault/glitch.hh"
#include "soc/soc.hh"
#include "sram/memory_image.hh"

namespace voltboot
{
namespace sidechannel
{

/** Which on-chip state the frozen chip is read out of. */
enum class ExtractTarget
{
    DCache, ///< L1 data RAM (secrets staged by a store loop).
    Regs,   ///< The vector register file.
    Iram,   ///< On-chip iRAM (i.MX-style).
};

const char *toString(ExtractTarget target);

/** Bench settings for one static-extraction run. */
struct StaticExtractConfig
{
    ExtractTarget target = ExtractTarget::DCache;

    /** Static sag below nominal (the undervolt depth). */
    Volt depth{0.45};
    /** How long the rail is held at the floor before release. */
    Seconds hold = Seconds::nanoseconds(400.0);
    /** Ramp start relative to victim entry. */
    Seconds ramp_offset = Seconds::nanoseconds(20.0);
    /** Supply-path impedance that sets the ramp edge slew. */
    Ohm ramp_impedance = Ohm::milliohms(20.0);

    /**
     * Readout bandwidth of the slow extraction path, in bytes per
     * microsecond of hold time; 0 = unlimited. The frozen window is
     * exactly `hold`, so bytes beyond hold_us * readout_rate are never
     * observed and read back as zero.
     */
    double readout_rate = 0.0;

    /** Core clock period: one instruction boundary per cycle. */
    Seconds cycle = Seconds::nanoseconds(1.0);
    /** Brown-out threshold as a fraction of nominal: the clock stops
     * once the rail sags below freeze_fraction x nominal. */
    double freeze_fraction = 0.7;

    /** Victim countdown iterations before it starts zeroizing. */
    uint64_t victim_countdown = 64;
    /** Step budget for the victim run (hang cutoff). */
    uint64_t max_steps = 100000;
    /** Determinism seed (reserved for future stochastic readout). */
    uint64_t seed = 1;

    /** Victim layout, as DRAM-base offsets. */
    uint64_t load_offset = 0x1000;
    /** Region the victim wipes (the staged secret); DCache target. */
    uint64_t data_offset = 0x40000;
    /** Wipe length; 0 = size of the target array. */
    size_t data_bytes = 0;
};

/** Outcome of one static-extraction run. */
struct StaticExtractOutcome
{
    /** The clock froze below brown-out before the victim halted. */
    bool frozen = false;
    /** The victim completed its zeroize wipe and halted cleanly. */
    bool zeroized = false;
    uint64_t steps = 0;
    /** Waveform floor the rail sagged to, in volts. */
    double floor_v = 0.0;
    /** Retention cells flipped by the droop across the domain. */
    uint64_t cells_lost = 0;
    /** Bytes the slow readout path observed before the hold ended. */
    size_t bytes_read = 0;
    /** bytes_read / dump size. */
    double read_fraction = 1.0;
    /** The extracted image (unread suffix zero-filled). */
    MemoryImage dump;
};

/**
 * Orchestrates the undervolt-freeze-readout sequence against a powered
 * Soc. Runs under a "core" span `attack.static_extract`; the ramp lands
 * in the trace as a "power" span `undervolt.hold` over voltage.<domain>
 * Counter samples.
 */
class StaticExtractAttack
{
  public:
    StaticExtractAttack(Soc &soc, StaticExtractConfig config = {});

    /** Stage the victim, ramp the rail, freeze, droop, read out. */
    StaticExtractOutcome execute();

    /** The exact victim source of the last execute() (ground truth). */
    const std::string &victimSource() const { return victim_source_; }

    /** Power domain the configured target's arrays draw from. */
    const DomainSpec &targetDomain() const;

    const StaticExtractConfig &config() const { return config_; }

  private:
    Soc &soc_;
    StaticExtractConfig config_;
    std::string victim_source_;
};

} // namespace sidechannel
} // namespace voltboot

#endif // VOLTBOOT_SIDECHANNEL_STATIC_EXTRACT_HH

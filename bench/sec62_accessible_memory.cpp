/**
 * @file
 * Section 6.2 — "How much memory is accessible to an attacker?"
 *
 * Bare-metal software populates each target memory with a known pattern;
 * the Volt Boot procedure runs; the bench reports what fraction of each
 * memory survives the boot phase into attacker hands:
 *
 *   - BCM2711/BCM2837 L1 caches: 100% (software-enabled, untouched by
 *     boot) — "an attacker simply never activates the cache";
 *   - shared L2 on the Pis: 0% (VideoCore clobbers it with firmware);
 *   - i.MX535 iRAM: ~95% (boot ROM scratchpad clobbers the rest).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

namespace
{

double
fractionOfPattern(const MemoryImage &img, uint8_t pattern)
{
    size_t matches = 0;
    for (uint8_t b : img.bytes())
        matches += b == pattern;
    return static_cast<double>(matches) / img.sizeBytes();
}

} // namespace

int
main()
{
    bench::banner("Section 6.2", "memory accessible after SoC boot-up");

    TextTable table(
        {"Platform", "Memory", "Accessible after reboot", "Paper"});

    // --- Pi-class devices: L1 yes, shared L2 no ---
    for (auto maker : {&SocConfig::bcm2711, &SocConfig::bcm2837}) {
        const SocConfig cfg = maker();
        Soc soc(cfg);
        soc.powerOn();

        BareMetalRunner runner(soc);
        const uint64_t base = cfg.dram_base + 0x40000;
        runner.runOn(0, workloads::patternStore(
                            base, cfg.l1d.size_bytes, 0xAA));
        // Also stash a pattern in the shared L2 directly.
        soc.l2Data()->fill(0xBB);

        VoltBootAttack attack(soc);
        attack.execute();

        const MemoryImage l1 = attack.dumpL1(0, L1Ram::DData);
        table.addRow({cfg.soc_name, "L1 d-cache",
                      TextTable::pct(fractionOfPattern(l1, 0xAA) /
                                     1.0), // full cache was filled
                      "100% (software-enabled)"});

        // The L2's data RAM, post-boot (host-level view of the arrays).
        size_t bb = 0;
        for (size_t i = 0; i < soc.l2Data()->sizeBytes(); ++i)
            bb += soc.l2Data()->readByte(i) == 0xBB;
        table.addRow({cfg.soc_name, "shared L2",
                      TextTable::pct(static_cast<double>(bb) /
                                     soc.l2Data()->sizeBytes()),
                      "0% (VideoCore clobbers it)"});
    }

    // --- i.MX535 iRAM: boot ROM scratch eats ~5% ---
    {
        const SocConfig cfg = SocConfig::imx535();
        Soc soc(cfg);
        soc.powerOn();
        std::vector<uint8_t> pattern(cfg.iram_bytes, 0xCC);
        soc.jtag().writeIram(cfg.iram_base, pattern);

        VoltBootAttack attack(soc);
        attack.execute();
        const MemoryImage iram = attack.dumpIram();
        table.addRow({cfg.soc_name, "iRAM (128KB)",
                      TextTable::pct(fractionOfPattern(iram, 0xCC)),
                      "~95% (boot ROM scratchpad)"});
    }

    std::cout << table.render();
    std::cout << "\npaper: L1 caches fully available (no boot clobber); "
                 "L2 unavailable on Broadcom parts;\n"
                 "       ~95% of i.MX535 iRAM available to the "
                 "attacker.\n";
    return 0;
}

/**
 * @file
 * Table 2 — "Evaluated platforms and SoCs."
 *
 * Prints the platform database: board, SoC, microarchitecture, core
 * count, cache geometry, iRAM and power-management device, matching the
 * paper's evaluation-platform table.
 */

#include <iostream>
#include <sstream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "soc/soc_config.hh"

using namespace voltboot;

namespace
{

std::string
cacheString(const CacheGeometry &g)
{
    std::ostringstream os;
    os << g.size_bytes / 1024 << "KB/" << g.ways << "-way";
    return os.str();
}

} // namespace

int
main()
{
    bench::banner("Table 2", "evaluated platforms and SoCs");

    TextTable table({"Board", "SoC", "CPU", "Cores", "L1I", "L1D", "L2",
                     "iRAM", "PMIC"});
    for (const SocConfig &cfg : SocConfig::allPlatforms()) {
        table.addRow({
            cfg.board_name,
            cfg.soc_name,
            cfg.cpu_name,
            std::to_string(cfg.core_count),
            cacheString(cfg.l1i),
            cacheString(cfg.l1d),
            cfg.l2 ? cacheString(*cfg.l2) : "-",
            cfg.iram_bytes ? std::to_string(cfg.iram_bytes / 1024) + "KB"
                           : "-",
            cfg.pmic_name,
        });
    }
    std::cout << table.render();
    std::cout << "\npaper: Raspberry Pi 3 (BCM2837, 4x Cortex-A53), "
                 "Raspberry Pi 4 (BCM2711, 4x Cortex-A72),\n"
                 "       i.MX53 QSB (i.MX535, Cortex-A8 with 128KB "
                 "iRAM); three distinct PMICs.\n";
    return 0;
}

/**
 * @file
 * Extension E1 — the wider internal-RAM attack surface.
 *
 * Section 2.1 notes that a Cortex-A72 exposes fifteen internal RAMs
 * through the CP15 RAMINDEX interface — TLBs and branch predictors
 * included, all of them core-domain SRAM. This bench extends the paper's
 * evaluation to that surface: a victim process runs with an MMU mapping
 * its secret pages and a branchy working loop; Volt Boot then dumps the
 * DTLB and BTB entry RAMs and reconstructs
 *
 *   - the victim's address-space layout (VPN -> PPN pairs with ASIDs),
 *   - its hot control flow (branch sites and targets),
 *
 * none of which appears in the caches at all. The BTB extractor runs
 * branch-free (unrolled) so it cannot train the structure it reads.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "mem/tlb.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Extension E1",
                  "dumping the DTLB and BTB across a power cycle");

    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    // --- victim: an OS-like process with a private address space ---
    soc.dtlb(0).invalidateAll();
    soc.btb(0).invalidateAll();
    PageTable table(*soc.memory().mainMemory(), 0x100000, 0x101000);
    Mmu mmu(soc.dtlb(0), table);
    mmu.setEnabled(true);
    mmu.setAsid(17);

    // Secret heap: 8 pages at VA 0x7f400000 -> PA 0x40000.
    for (uint64_t page = 0; page < 8; ++page) {
        table.map(0x7f400000 + page * 4096, 0x40000 + page * 4096, true);
        (void)mmu.translate(0x7f400000 + page * 4096 + 128);
    }
    // And a branchy hot loop.
    Program victim = Assembler::assemble(R"(
        movz x1, #200
    outer:
        movz x2, #3
    inner:
        sub x2, x2, #1
        cbnz x2, inner
        sub x1, x1, #1
        cbnz x1, outer
        hlt
    )");
    victim.load_address = 0x2000;
    soc.loadProgram(victim);
    soc.runCore(0, 0x2000, 100000);

    std::cout << "victim: 8 secret pages mapped (ASID 17), hot loop at "
                 "0x2000 executed\n\n";

    // --- attack ---
    VoltBootAttack attack(soc);
    if (!attack.execute().rebooted_into_attacker_code) {
        std::cout << "attack failed\n";
        return 1;
    }

    const MemoryImage tlb_dump = attack.dumpDtlb(0);
    const MemoryImage btb_dump = attack.dumpBtb(0);

    // Reconstruct the address space from the TLB entry RAM.
    const auto entries = Tlb::parseDump(tlb_dump);
    TextTable tlb_table({"ASID", "VA page", "PA page", "writable"});
    size_t victim_pages = 0;
    for (const auto &e : entries) {
        if (e.asid != 17)
            continue; // garbage/fingerprint entries decode as noise
        ++victim_pages;
        tlb_table.addRow({std::to_string(e.asid),
                          TextTable::hex(e.vpn * 4096),
                          TextTable::hex(e.ppn * 4096),
                          e.writable ? "yes" : "no"});
    }
    std::cout << "DTLB dump (" << tlb_dump.sizeBytes()
              << " bytes) -> victim address-space layout:\n"
              << tlb_table.render();
    std::cout << "victim pages recovered: " << victim_pages << " / 8\n\n";

    // Reconstruct control flow from the BTB entry RAM.
    const auto branches = Btb::parseDump(btb_dump);
    TextTable btb_table({"branch site", "target", "within victim code"});
    size_t victim_branches = 0;
    for (const auto &b : branches) {
        const bool in_victim =
            b.branch_pc >= 0x2000 && b.branch_pc < 0x2100;
        victim_branches += in_victim;
        if (in_victim)
            btb_table.addRow({TextTable::hex(b.branch_pc),
                              TextTable::hex(b.target), "yes"});
    }
    std::cout << "BTB dump -> victim control-flow edges:\n"
              << btb_table.render();
    std::cout << "victim branch sites recovered: " << victim_branches
              << " (expect 2: the inner and outer loop back-edges)\n";

    std::cout << "\nextension of the paper's Section 2.1 observation: "
                 "every RAMINDEX-visible internal\nRAM in the probed "
                 "domain leaks — not just caches, but the address-space "
                 "and branch\nhistory of whatever ran before the power "
                 "cycle.\n";
    return (victim_pages == 8 && victim_branches >= 2) ? 0 : 1;
}

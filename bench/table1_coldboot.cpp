/**
 * @file
 * Table 1 — "Errors in d-cache data after a cold boot attack execution in
 * a BCM2711 SoC."
 *
 * Procedure (Section 3): load bare-metal software to populate the d-cache
 * of each core, statically chill the board, power cycle for a few
 * milliseconds, extract the cache and compute the mean error against the
 * pre-stored pattern, plus the fractional Hamming distance between the
 * post-cycle cache and the cache's power-on fingerprint.
 *
 * Paper's result: ~50% error at 0 / -5 / -40 degC (no retention), and a
 * fractional HD of ~0.10 vs the startup state (i.e. the cache simply
 * reverted to its power-on fingerprint, up to metastable cells).
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Table 1",
                  "cold boot errors on BCM2711 d-cache vs temperature");

    const double temperatures[] = {0.0, -5.0, -40.0};
    TextTable table({"Temperature", "Mean error (4 cores)",
                     "Frac. HD vs power-on state"});

    for (double celsius : temperatures) {
        Soc soc(SocConfig::bcm2711());
        soc.powerOn();

        // Capture each core's power-on d-cache fingerprint first.
        std::vector<MemoryImage> startup;
        for (size_t core = 0; core < soc.coreCount(); ++core)
            startup.push_back(soc.memory().l1d(core).dumpAll());

        // Victim software fills every core's d-cache with the pattern.
        BareMetalRunner runner(soc);
        for (size_t core = 0; core < soc.coreCount(); ++core) {
            const uint64_t base =
                soc.config().dram_base + 0x40000 + core * 0x10000;
            runner.runOn(core, workloads::patternStore(
                                   base, soc.config().l1d.size_bytes,
                                   0xAA));
        }

        // The cold boot: chill, cut power for a few ms, reboot, dump.
        ColdBootAttack attack(soc, Temperature::celsius(celsius),
                              Seconds::milliseconds(5));
        if (!attack.powerCycleAndBoot()) {
            std::cout << "boot failed\n";
            return 1;
        }

        double error_sum = 0, hd_sum = 0;
        for (size_t core = 0; core < soc.coreCount(); ++core) {
            const MemoryImage dump = attack.dumpL1(core, L1Ram::DData);
            const MemoryImage truth =
                MemoryImage::filled(dump.sizeBytes(), 0xAA);
            error_sum += MemoryImage::fractionalHamming(dump, truth);
            hd_sum += MemoryImage::fractionalHamming(dump, startup[core]);
        }
        const double err = error_sum / soc.coreCount();
        const double hd = hd_sum / soc.coreCount();

        std::string label = TextTable::num(celsius, 0) + " degC";
        if (celsius == 0.0)
            label += " (recommended min)";
        if (celsius == -40.0)
            label += " (SoC hard limit)";
        table.addRow({label, TextTable::pct(err), TextTable::num(hd, 3)});
    }

    std::cout << table.render();
    std::cout << "\npaper: error ~50.1-50.4% at every temperature; "
                 "fractional HD vs startup ~0.10\n"
              << "(the d-cache reverts to its power-on state: cold boot "
                 "is ineffective on embedded SRAM)\n";
    return 0;
}

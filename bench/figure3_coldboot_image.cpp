/**
 * @file
 * Figure 3 — "Data cache (L1) snippet (WAY0 = 256 x 512 = 16KB) of a
 * Cortex-A72 core when we disconnect the power for a few milliseconds at
 * -40 degC."
 *
 * The victim fills the d-cache with a pattern; the cold boot power cycle
 * then destroys it, leaving the ~50/50 random power-on state. The bench
 * emits the bit image (PBM artefact + ASCII impression) and the summary
 * statistics the figure conveys: ones-density ~0.5, no pattern.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Figure 3",
                  "d-cache WAY0 bit image after a -40 degC cold boot");

    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(
                        base, soc.config().l1d.size_bytes, 0xAA));

    ColdBootAttack attack(soc, Temperature::celsius(-40),
                          Seconds::milliseconds(5));
    if (!attack.powerCycleAndBoot()) {
        std::cout << "boot failed\n";
        return 1;
    }
    const MemoryImage way0 = attack.dumpL1Way(0, L1Ram::DData, 0);

    // WAY0 of the A72 d-cache: 256 lines x 512 bits = 16 KB.
    const size_t line_bits = soc.config().l1d.line_bytes * 8;
    std::cout << "WAY0 = " << soc.config().l1d.sets() << " x " << line_bits
              << " = " << way0.sizeBytes() / 1024 << "KB\n\n";

    std::cout << "bit-image impression (each char = 8x8 bit block):\n";
    std::cout << bench::asciiBitmap(way0, line_bits, 24) << "\n";

    TextTable stats({"Metric", "Measured", "Paper"});
    stats.addRow({"ones density", TextTable::num(way0.onesDensity(), 4),
                  "~0.5 (equal 1s and 0s)"});
    const MemoryImage truth = MemoryImage::filled(way0.sizeBytes(), 0xAA);
    stats.addRow({"error vs stored 0xAA pattern",
                  TextTable::pct(
                      MemoryImage::fractionalHamming(way0, truth)),
                  "~50% (no data remained)"});
    stats.addRow({"byte entropy (bits/byte)",
                  TextTable::num(way0.byteEntropy(), 2),
                  "~8 (uniform random)"});
    std::cout << stats.render();

    bench::saveArtefact("figure3_way0_coldboot.pbm",
                        way0.toPbm(line_bits));
    std::cout << "\npaper: equal number of 1s and 0s -> the cache reset "
                 "to its power-on state.\n";
    return 0;
}

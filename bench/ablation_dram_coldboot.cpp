/**
 * @file
 * Ablation A4 — the classic DRAM cold boot, on this substrate.
 *
 * Why did anyone build TRESOR and CaSE in the first place? Because the
 * Halderman-style attack really works on DRAM: chill the module, pull
 * it, transplant it, dump it, and error-correct the disk key out of the
 * decayed image. This bench runs that pipeline across the
 * temperature/transplant-time grid and reports key-recovery success,
 * establishing the baseline the paper's on-chip schemes defend against —
 * and that Volt Boot then re-breaks from the other side.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "crypto/aes.hh"
#include "crypto/key_corrector.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace voltboot;

namespace
{

struct Trial
{
    bool recovered;
    double ber;
    size_t flips;
};

Trial
run(double celsius, Seconds off_time, uint64_t seed)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    Rng rng(seed);
    std::vector<uint8_t> key(16);
    for (auto &b : key)
        b = static_cast<uint8_t>(rng.next());
    const auto sched = Aes::expandKey(key);
    soc.dramArray().write(0x40000, sched);

    soc.setAmbient(Temperature::celsius(celsius));
    soc.powerCycle(off_time);

    std::vector<uint8_t> window(176 + 64);
    soc.dramArray().read(0x40000, window);

    Trial t;
    size_t errs = 0;
    for (size_t i = 0; i < 176; ++i)
        errs += std::popcount(
            static_cast<uint8_t>(window[i] ^ sched[i]));
    t.ber = static_cast<double>(errs) / (176 * 8);

    RobustKeyScanner scanner{KeyCorrector{}};
    const auto hit = scanner.best(MemoryImage(window), 16);
    t.recovered = hit && hit->corrected.key == key;
    t.flips = hit ? hit->corrected.key_bits_flipped : 0;
    return t;
}

} // namespace

int
main()
{
    bench::banner("Ablation A4",
                  "classic DRAM cold boot: key recovery vs temperature "
                  "and transplant time");

    TextTable table({"Ambient", "Off-time", "Dump BER", "Key recovered",
                     "Key bits repaired"});
    struct Point
    {
        double celsius;
        double off_s;
    };
    for (const Point p :
         {Point{25, 0.2}, Point{25, 2.0}, Point{25, 30.0},
          Point{0, 2.0}, Point{-50, 10.0}, Point{-50, 60.0}}) {
        int ok = 0;
        double ber = 0;
        size_t flips = 0;
        const int trials = 3;
        for (int t = 0; t < trials; ++t) {
            const Trial r =
                run(p.celsius, Seconds(p.off_s), 50 + t);
            ok += r.recovered;
            ber += r.ber;
            flips += r.flips;
        }
        table.addRow({TextTable::num(p.celsius, 0) + " degC",
                      TextTable::num(p.off_s, 1) + " s",
                      TextTable::pct(ber / trials, 2),
                      std::to_string(ok) + "/" + std::to_string(trials),
                      TextTable::num(static_cast<double>(flips) / trials,
                                     1)});
    }
    std::cout << table.render();

    std::cout
        << "\nshape: chilled transplants recover the key reliably "
           "(matching Halderman et al.);\nwarm fast swaps sit at the "
           "error-corrector's limit, and slow warm swaps fail — which\n"
           "is exactly why the original attack chills the module. This "
           "is the attack on-chip\ncrypto neutralises, and the bar Volt "
           "Boot clears from the other side: SRAM never\ngives the "
           "attacker a usable BER at any temperature, but the probe "
           "gives 0% BER\ndirectly.\n";
    return 0;
}

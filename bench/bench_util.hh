/**
 * @file
 * Shared helpers for the bench harness binaries: banner printing, image
 * saving, and common victim setup, so each bench reads like the
 * experiment it reproduces.
 */

#ifndef VOLTBOOT_BENCH_BENCH_UTIL_HH
#define VOLTBOOT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "sram/memory_image.hh"

namespace voltboot
{
namespace bench
{

/** Print the experiment banner: which artefact this regenerates. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::cout << "==================================================="
                 "=============\n";
    std::cout << id << ": " << title << "\n";
    std::cout << "==================================================="
                 "=============\n";
}

/** Where bench image artefacts land. */
inline std::string
artefactDir()
{
    return "bench_artifacts";
}

/** Save @p content under bench_artifacts/, best effort. */
inline void
saveArtefact(const std::string &filename, const std::string &content)
{
    std::string dir = artefactDir();
    // Portable best-effort mkdir via std::filesystem would drag in more
    // headers than this needs; rely on the caller's cwd being writable.
    if (std::system(("mkdir -p " + dir).c_str()) != 0)
        std::cout << "  [artefact] mkdir failed for " << dir << "\n";
    std::ofstream out(dir + "/" + filename);
    if (out) {
        out << content;
        std::cout << "  [artefact] " << dir << "/" << filename << "\n";
    } else {
        std::cout << "  [artefact] could not write " << filename << "\n";
    }
}

/**
 * Render a coarse ASCII impression of a bit image (the paper's cache
 * snapshot figures): each character cell is the ones-density of an
 * 8x8-bit block: ' ' mostly 0s, '#' mostly 1s.
 */
inline std::string
asciiBitmap(const MemoryImage &img, size_t width_bits, size_t max_rows = 16)
{
    static const char *shades = " .:-=+*#";
    const size_t rows_total = img.sizeBits() / width_bits;
    const size_t block = 8;
    std::string out;
    for (size_t row = 0; row < rows_total / block && row < max_rows;
         ++row) {
        for (size_t col = 0; col < width_bits / block; ++col) {
            size_t ones = 0;
            for (size_t y = 0; y < block; ++y)
                for (size_t x = 0; x < block; ++x)
                    ones += img.bitAt((row * block + y) * width_bits +
                                      col * block + x);
            out += shades[(ones * 7) / (block * block)];
        }
        out += '\n';
    }
    return out;
}

} // namespace bench
} // namespace voltboot

#endif // VOLTBOOT_BENCH_BENCH_UTIL_HH

/**
 * @file
 * P2 — campaign engine throughput (BENCH_campaign.json artefact).
 *
 * Runs the same fixed attack sweep at 1, 4 and hardware-concurrency
 * worker threads and records trials/sec for each, so later PRs can
 * track the engine's scaling trajectory. Also asserts the engine's core
 * promise while it is at it: the canonical JSON of every run is
 * byte-identical regardless of job count.
 *
 * Flags (for CI smoke runs):
 *   --trials N       approximate trial count (rounded up to the nearest
 *                    even number: the grid runs 2 attacks per seed)
 *   --jobs A,B,...   explicit worker-thread counts to sweep
 */

#include <algorithm>
#include <charconv>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "core/analysis.hh"

using namespace voltboot;

namespace
{

std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

[[noreturn]] void
usageFatal(const std::string &detail)
{
    std::cerr << "campaign_throughput: " << detail << "\n"
              << "usage: campaign_throughput [--trials N] "
                 "[--jobs A,B,...]\n";
    std::exit(2);
}

uint64_t
parseUint(const std::string &flag, const std::string &text)
{
    uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size() ||
        text.empty())
        usageFatal("malformed value '" + text + "' for " + flag);
    return value;
}

std::vector<unsigned>
parseJobsList(const std::string &text)
{
    std::vector<unsigned> jobs;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t comma = std::min(text.find(',', pos), text.size());
        const std::string item = text.substr(pos, comma - pos);
        const uint64_t j = parseUint("--jobs", item);
        if (j == 0)
            usageFatal("--jobs entries must be >= 1");
        jobs.push_back(static_cast<unsigned>(j));
        pos = comma + 1;
    }
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t trials = 0;        // 0 = the default 12-trial grid
    std::vector<unsigned> jobs; // empty = the default 1/4/N sweep
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageFatal("missing value for " + flag);
            return argv[++i];
        };
        if (flag == "--trials")
            trials = parseUint(flag, value());
        else if (flag == "--jobs")
            jobs = parseJobsList(value());
        else
            usageFatal("unknown option " + flag);
    }

    bench::banner("P2", "campaign engine throughput (1/4/N threads)");

    SweepGrid grid;
    grid.boards = {"pi4"};
    grid.targets = {TargetRam::DCache};
    grid.attacks = {AttackKind::VoltBoot, AttackKind::ColdBoot};
    grid.temps_c = {25.0};
    grid.offs_ms = {5.0};
    grid.seed_count = 6; // 12 trials: enough to keep every worker busy
    if (trials > 0)
        grid.seed_count = std::max<uint64_t>(1, (trials + 1) / 2);

    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    if (jobs.empty()) {
        // Default sweep, deduped while preserving order (hw may be 1
        // or 4).
        for (unsigned j : {1u, 4u, hw})
            if (std::find(jobs.begin(), jobs.end(), j) == jobs.end())
                jobs.push_back(j);
    }

    TextTable table({"jobs", "wall (s)", "trials/s", "speedup vs 1"});
    std::string baseline_json;
    double baseline_tps = 0.0;
    std::string artefact = "{\n  \"bench\": \"campaign_throughput\",\n"
                           "  \"trials\": " +
                           std::to_string(grid.size()) +
                           ",\n  \"hardware_concurrency\": " +
                           std::to_string(hw) + ",\n  \"runs\": [\n";
    for (size_t i = 0; i < jobs.size(); ++i) {
        CampaignConfig cfg;
        cfg.jobs = jobs[i];
        cfg.seed = 0xbe;
        const CampaignResult result = Campaign(grid, cfg).run();
        const std::string json = result.toJson();
        if (baseline_json.empty()) {
            baseline_json = json;
            baseline_tps = result.trialsPerSecond();
        } else if (json != baseline_json) {
            std::cout << "ERROR: results differ from --jobs "
                      << jobs.front() << " run!\n";
            return 1;
        }
        const double speedup =
            baseline_tps > 0.0 ? result.trialsPerSecond() / baseline_tps
                               : 0.0;
        table.addRow({std::to_string(jobs[i]),
                      TextTable::num(result.wall_seconds, 2),
                      TextTable::num(result.trialsPerSecond(), 2),
                      TextTable::num(speedup, 2) + "x"});
        artefact += "    {\"jobs\": " + std::to_string(jobs[i]) +
                    ", \"wall_seconds\": " +
                    jsonNum(result.wall_seconds) +
                    ", \"trials_per_second\": " +
                    jsonNum(result.trialsPerSecond()) +
                    ", \"speedup_vs_serial\": " + jsonNum(speedup) + "}";
        artefact += (i + 1 < jobs.size()) ? ",\n" : "\n";
    }
    artefact += "  ]\n}\n";

    std::cout << table.render();
    std::cout << "(all runs byte-identical across job counts)\n";
    bench::saveArtefact("BENCH_campaign.json", artefact);
    return 0;
}

/**
 * @file
 * Section 7.2 — "Attacking CPU registers."
 *
 * Bare-metal software fills the 128-bit vector registers v0..v31 with
 * distinguishable patterns (0xFF / 0xAA). Volt Boot holds the core power
 * domain through the power cycle; a post-reboot extraction program reads
 * the registers out with vread/str. The paper reports full state
 * retention on both BCM2711 and BCM2837.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Section 7.2",
                  "vector register retention across Volt Boot");

    TextTable table({"SoC", "Core", "Registers intact", "Accuracy"});
    for (auto maker : {&SocConfig::bcm2711, &SocConfig::bcm2837}) {
        const SocConfig cfg = maker();
        Soc soc(cfg);
        soc.powerOn();

        BareMetalRunner runner(soc);
        for (size_t core = 0; core < soc.coreCount(); ++core)
            runner.runOn(core, workloads::vectorFill(0xFF, 0xAA));

        VoltBootAttack attack(soc);
        if (!attack.execute().rebooted_into_attacker_code) {
            std::cout << "attack failed\n";
            return 1;
        }

        for (size_t core = 0; core < soc.coreCount(); ++core) {
            const MemoryImage regs = attack.dumpVectorRegisters(core);
            // Ground truth: even registers 0xFF, odd 0xAA.
            std::vector<uint8_t> truth(512);
            for (size_t v = 0; v < 32; ++v)
                for (size_t b = 0; b < 16; ++b)
                    truth[v * 16 + b] = (v % 2 == 0) ? 0xFF : 0xAA;
            const RetentionReport rep =
                compareImages(regs, MemoryImage(truth));
            size_t intact = 0;
            for (size_t v = 0; v < 32; ++v) {
                bool ok = true;
                for (size_t b = 0; b < 16; ++b)
                    ok &= regs.byteAt(v * 16 + b) == truth[v * 16 + b];
                intact += ok;
            }
            table.addRow({cfg.soc_name, std::to_string(core),
                          std::to_string(intact) + " / 32",
                          TextTable::pct(rep.accuracy())});
        }
    }
    std::cout << table.render();
    std::cout << "\npaper: vector registers <v0..v31> fully retain their "
                 "states on BCM2711 and BCM2837 —\nany crypto hiding key "
                 "schedules in registers (TRESOR-style) is exposed.\n";
    return 0;
}

/**
 * @file
 * Extension E2 — why SoCs don't reset SRAM at boot: PUF and TRNG.
 *
 * Section 5.2.4 identifies two reasons SRAM powers up uninitialised: the
 * boot-speed cost of zeroisation and the *security applications of the
 * startup state itself* (PUFs, TRNGs). This bench quantifies the
 * trade-off the boot-SRAM-reset countermeasure would make: the same
 * power-up physics that defeats Volt Boot when cleared is a usable
 * fingerprint and entropy source when kept.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "sram/puf.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Extension E2",
                  "SRAM power-up state as PUF and TRNG (Section 5.2.4)");

    // --- PUF population quality ---
    const PufMetrics m = measurePufMetrics(4096, 8, 5);
    TextTable puf({"Metric", "Measured", "Ideal"});
    puf.addRow({"intra-chip fractional HD (reliability)",
                TextTable::num(m.intra_chip_hd, 4), "0 (low)"});
    puf.addRow({"inter-chip fractional HD (uniqueness)",
                TextTable::num(m.inter_chip_hd, 4), "0.5"});
    puf.addRow({"uniformity (ones density)",
                TextTable::num(m.uniformity, 4), "0.5"});
    std::cout << "PUF quality over 8 simulated chips:\n" << puf.render();

    // --- enrollment / authentication demo ---
    SramArray genuine("genuine", 4096, 0x1001, 1);
    SramPuf puf_dev(genuine);
    puf_dev.enroll();
    double hd_genuine = 0;
    const bool auth = puf_dev.authenticate(&hd_genuine);

    SramArray impostor("impostor", 4096, 0x2002, 1);
    SramPuf impostor_dev(impostor);
    const double hd_impostor = MemoryImage::fractionalHamming(
        impostor_dev.observe(), puf_dev.reference());

    TextTable auth_table({"Party", "HD to reference", "Accepted"});
    auth_table.addRow({"genuine chip", TextTable::num(hd_genuine, 4),
                       auth ? "yes" : "NO"});
    auth_table.addRow({"impostor chip", TextTable::num(hd_impostor, 4),
                       hd_impostor < 0.25 ? "YES (!)" : "no"});
    std::cout << "\nauthentication (threshold 0.25):\n"
              << auth_table.render();

    // --- TRNG quality ---
    SramArray entropy("entropy", 8192, 0x3003, 1);
    SramTrng trng(entropy);
    trng.calibrate(8);
    const auto bits = trng.harvest(8000);
    TextTable trng_table({"Metric", "Measured", "Target"});
    trng_table.addRow({"metastable cells found",
                       std::to_string(trng.noisyCellCount()) + " / " +
                           std::to_string(entropy.sizeBits()),
                       "~25% of cells"});
    trng_table.addRow({"bits harvested", std::to_string(bits.size()),
                       "8000"});
    trng_table.addRow({"monobit bias", TextTable::num(
                                            SramTrng::bias(bits), 4),
                       "< 0.05"});
    trng_table.addRow(
        {"serial correlation",
         TextTable::num(SramTrng::serialCorrelation(bits), 4),
         "~0"});
    std::cout << "\nTRNG from metastable cells (temporal Von Neumann):\n"
              << trng_table.render();

    std::cout
        << "\nthe countermeasure trade-off: hardware boot-time SRAM "
           "reset kills Volt Boot but\nalso erases the PUF fingerprint "
           "and the entropy source — one reason Section 8\nfinds no "
           "deployed hardware reset in commodity parts.\n";
    return 0;
}

/**
 * @file
 * P7 — CPA key recovery from supply-voltage coupling
 * (BENCH_cpa.json artefact).
 *
 * Sweeps the voltage-coupling attack over a correlation-window axis
 * and reports the per-window fraction of AES key bytes whose winning
 * CPA guess was both confident and correct. Asserts the two
 * load-bearing properties along the way: the sweep is byte-identical
 * across job counts, and the nominal full-window scenario recovers at
 * least 80% of the key bytes.
 *
 * Flags (for CI smoke runs):
 *   --seeds N        chip seeds per cell (default 8)
 *   --jobs A,B,...   worker-thread counts to compare (default 1,2)
 */

#include <algorithm>
#include <charconv>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "core/analysis.hh"

using namespace voltboot;

namespace
{

std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

[[noreturn]] void
usageFatal(const std::string &detail)
{
    std::cerr << "cpa_recovery: " << detail << "\n"
              << "usage: cpa_recovery [--seeds N] [--jobs A,B,...]\n";
    std::exit(2);
}

uint64_t
parseUint(const std::string &flag, const std::string &text)
{
    uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size() ||
        text.empty())
        usageFatal("malformed value '" + text + "' for " + flag);
    return value;
}

std::vector<unsigned>
parseJobsList(const std::string &text)
{
    std::vector<unsigned> jobs;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t comma = std::min(text.find(',', pos), text.size());
        const uint64_t j =
            parseUint("--jobs", text.substr(pos, comma - pos));
        if (j == 0)
            usageFatal("--jobs entries must be >= 1");
        jobs.push_back(static_cast<unsigned>(j));
        pos = comma + 1;
    }
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seeds = 8;
    std::vector<unsigned> jobs{1, 2};
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageFatal("missing value for " + flag);
            return argv[++i];
        };
        if (flag == "--seeds")
            seeds = std::max<uint64_t>(1, parseUint(flag, value()));
        else if (flag == "--jobs")
            jobs = parseJobsList(value());
        else
            usageFatal("unknown option " + flag);
    }

    bench::banner("P7", "CPA key recovery vs correlation window");

    // Window 0 is the nominal scenario (correlate every sample up to
    // the next block); the finite windows shrink the usable slot count
    // towards the single-sample floor. The acceptance bar below only
    // binds the nominal cell.
    SweepGrid grid;
    grid.attacks = {AttackKind::VoltageCoupling};
    grid.cpa_windows_ns = {0.0, 2.0, 8.0};
    grid.seed_count = seeds;

    CampaignResult result;
    std::string baseline_json;
    double best_tps = 0.0;
    for (const unsigned j : jobs) {
        CampaignConfig cfg;
        cfg.jobs = j;
        cfg.seed = 0xc9a5;
        CampaignResult r = Campaign(grid, cfg).run();
        const std::string json = r.toJson();
        if (baseline_json.empty())
            baseline_json = json;
        else if (json != baseline_json) {
            std::cout << "ERROR: results differ from --jobs "
                      << jobs.front() << " run!\n";
            return 1;
        }
        best_tps = std::max(best_tps, r.trialsPerSecond());
        result = std::move(r);
    }

    // Aggregate correct-byte fraction per window over seeds. The
    // accuracy field of a coupling trial is correct_bytes / 16.
    std::map<double, std::pair<uint64_t, double>>
        surface; // window_ns -> (trials, summed accuracy)
    for (const TrialRecord &rec : result.records) {
        auto &cell = surface[rec.spec.cpa_window_ns];
        ++cell.first;
        cell.second += rec.accuracy;
    }

    TextTable table({"window (ns)", "trials", "key bytes correct"});
    double nominal_rate = 0.0;
    std::string cells_json;
    for (const auto &[window, cell] : surface) {
        const double rate = cell.second / static_cast<double>(cell.first);
        if (window == 0.0)
            nominal_rate = rate;
        table.addRow({window == 0.0 ? "full block"
                                    : TextTable::num(window, 0),
                      std::to_string(cell.first), TextTable::pct(rate)});
        if (!cells_json.empty())
            cells_json += ",\n";
        cells_json += "    {\"window_ns\": " + jsonNum(window) +
                      ", \"trials\": " + std::to_string(cell.first) +
                      ", \"key_byte_rate\": " + jsonNum(rate) + "}";
    }
    std::cout << table.render();

    const CampaignSummary s = result.summary();
    std::cout << s.cpa_key_bytes << " confident key bytes over "
              << s.coupling_trials << " trials; nominal window recovers "
              << TextTable::pct(nominal_rate) << " of the key\n";
    std::cout << "(all runs byte-identical across job counts)\n";

    std::string artefact =
        "{\n  \"bench\": \"cpa_recovery\",\n"
        "  \"trials\": " + std::to_string(s.coupling_trials) +
        ",\n  \"confident_key_bytes\": " +
        std::to_string(s.cpa_key_bytes) +
        ",\n  \"nominal_key_byte_rate\": " + jsonNum(nominal_rate) +
        ",\n  \"trials_per_second\": " + jsonNum(best_tps) +
        ",\n  \"cells\": [\n" + cells_json + "\n  ]\n}\n";
    bench::saveArtefact("BENCH_cpa.json", artefact);

    // The acceptance bar: the nominal-leakage scenario recovers at
    // least 80% of the AES key bytes.
    if (nominal_rate < 0.8) {
        std::cout << "ERROR: nominal CPA recovery below 80% ("
                  << TextTable::pct(nominal_rate) << ")\n";
        return 1;
    }
    return 0;
}

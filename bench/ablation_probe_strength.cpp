/**
 * @file
 * Ablation A1 — probe strength vs data retention.
 *
 * The paper specifies a bench supply with ">3 A current driving
 * capability" because the core-domain disconnect surge (400-600 mA on a
 * Pi 4) must not droop the rail below the cells' data retention voltage.
 * This ablation sweeps the probe's current limit and source impedance
 * and reports the droop minimum and the resulting retention accuracy,
 * locating the cliff.
 *
 * The current-limit and impedance sweeps run as campaigns through the
 * parallel sweep engine (two chips per grid point, mean accuracy
 * reported); the decoupling-capacitance sweep stays hand-rolled since
 * board decap is not a grid axis.
 */

#include <iostream>
#include <map>

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

namespace
{

/** Mean Ok-trial accuracy per value of @p axis ("n/a" if all failed). */
std::map<double, RunningStats>
accuracyByAxis(const CampaignResult &result, double TrialSpec::*axis)
{
    std::map<double, RunningStats> by_value;
    for (const TrialRecord &r : result.records)
        if (r.status == TrialStatus::Ok)
            by_value[r.spec.*axis].add(r.accuracy);
    return by_value;
}

ProbeTransient
solveTransient(Amp limit, Ohm impedance, Farad decap)
{
    const SocConfig cfg = SocConfig::bcm2711();
    return TransientSolver::solve(
        VoltageProbe{cfg.core_domain.nominal, limit, impedance},
        cfg.core_domain.surge_current, cfg.core_domain.retention_current,
        decap, Seconds::microseconds(5));
}

double
retentionWithProbe(Amp max_current, Ohm impedance, Farad decap)
{
    SocConfig soc_cfg = SocConfig::bcm2711();
    soc_cfg.core_domain.decap = decap;
    Soc soc(soc_cfg);
    soc.powerOn();
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));
    const MemoryImage before = soc.memory().l1d(0).dumpAll();

    AttackConfig cfg;
    cfg.probe_max_current = max_current;
    cfg.probe_impedance = impedance;
    VoltBootAttack attack(soc, cfg);
    if (!attack.execute().rebooted_into_attacker_code)
        return -1.0;
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    return compareImages(dump, before).accuracy();
}

} // namespace

int
main()
{
    bench::banner("Ablation A1",
                  "probe current capability / impedance vs retention");

    const std::vector<double> amps{0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 3.0};
    const std::vector<double> mohms{10.0, 50.0, 200.0, 500.0, 900.0,
                                    1300.0};

    std::cout << "\n(a) current-limit sweep at 50 mOhm source "
                 "impedance (campaign, 2 chips/point):\n";
    SweepGrid grid_a;
    grid_a.boards = {"pi4"};
    grid_a.attacks = {AttackKind::VoltBoot};
    grid_a.currents_a = amps;
    grid_a.seed_count = 2;
    CampaignConfig cfg_a;
    cfg_a.seed = 0xa1a;
    const CampaignResult res_a = Campaign(grid_a, cfg_a).run();
    const auto acc_a = accuracyByAxis(res_a, &TrialSpec::current_a);

    TextTable ta({"Probe limit", "Droop minimum", "Current-limited",
                  "Retention accuracy"});
    for (double a : amps) {
        const ProbeTransient tr =
            solveTransient(Amp(a), Ohm(0.05),
                           SocConfig::bcm2711().core_domain.decap);
        const auto hit = acc_a.find(a);
        ta.addRow({TextTable::num(a, 2) + " A",
                   TextTable::num(tr.v_min.volts(), 3) + " V",
                   tr.current_limited ? "yes" : "no",
                   hit != acc_a.end() && hit->second.count()
                       ? TextTable::pct(hit->second.mean())
                       : "n/a"});
    }
    std::cout << ta.render();

    std::cout << "\n(b) source-impedance sweep at 3 A limit (campaign, "
                 "2 chips/point, stock 220 uF decap):\n";
    SweepGrid grid_b;
    grid_b.boards = {"pi4"};
    grid_b.attacks = {AttackKind::VoltBoot};
    grid_b.impedances_mohm = mohms;
    grid_b.seed_count = 2;
    CampaignConfig cfg_b;
    cfg_b.seed = 0xa1b;
    const CampaignResult res_b = Campaign(grid_b, cfg_b).run();
    const auto acc_b = accuracyByAxis(res_b, &TrialSpec::impedance_mohm);

    TextTable tb({"Source impedance", "Droop minimum",
                  "Retention accuracy"});
    for (double mo : mohms) {
        const ProbeTransient tr =
            solveTransient(Amp(3.0), Ohm::milliohms(mo),
                           SocConfig::bcm2711().core_domain.decap);
        const auto hit = acc_b.find(mo);
        tb.addRow({TextTable::num(mo, 0) + " mOhm",
                   TextTable::num(tr.v_min.volts(), 3) + " V",
                   hit != acc_b.end() && hit->second.count()
                       ? TextTable::pct(hit->second.mean())
                       : "n/a"});
    }
    std::cout << tb.render();
    std::cout << "(flat: the rail decoupling capacitance absorbs the "
                 "microsecond surge, so probe\nimpedance barely matters "
                 "while the current limit is not hit)\n";

    std::cout << "\n(c) decoupling-capacitance sweep with a long lead "
                 "probe (3 A limit, 1 Ohm):\n";
    TextTable tc({"Rail decap", "Droop minimum", "Retention accuracy"});
    for (double uf : {220.0, 47.0, 10.0, 4.7, 1.0, 0.1}) {
        const ProbeTransient tr = solveTransient(
            Amp(3.0), Ohm::milliohms(1000), Farad::microfarads(uf));
        const double acc = retentionWithProbe(
            Amp(3.0), Ohm::milliohms(1000), Farad::microfarads(uf));
        tc.addRow({TextTable::num(uf, 1) + " uF",
                   TextTable::num(tr.v_min.volts(), 3) + " V",
                   TextTable::pct(acc)});
    }
    std::cout << tc.render();
    std::cout << "(boards with small decoupling caps punish sloppy "
                 "probing: with little capacitance,\nthe full ohmic "
                 "droop I*R develops and marginal cells flip)\n";

    std::cout << "\npaper: a probe at the rail voltage draws only a few "
                 "mA in steady state, but the\nabrupt disconnect spikes "
                 "the current; an insufficient supply drops the rail "
                 "below the\ndata retention voltage and corrupts the "
                 "extraction — hence the >3 A bench supply.\n";
    return 0;
}

/**
 * @file
 * Ablation A1 — probe strength vs data retention.
 *
 * The paper specifies a bench supply with ">3 A current driving
 * capability" because the core-domain disconnect surge (400-600 mA on a
 * Pi 4) must not droop the rail below the cells' data retention voltage.
 * This ablation sweeps the probe's current limit and source impedance
 * and reports the droop minimum and the resulting retention accuracy,
 * locating the cliff.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

namespace
{

double
retentionWithProbe(Amp max_current, Ohm impedance,
                   Farad decap = Farad::microfarads(220))
{
    SocConfig soc_cfg = SocConfig::bcm2711();
    soc_cfg.core_domain.decap = decap;
    Soc soc(soc_cfg);
    soc.powerOn();
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));
    const MemoryImage before = soc.memory().l1d(0).dumpAll();

    AttackConfig cfg;
    cfg.probe_max_current = max_current;
    cfg.probe_impedance = impedance;
    VoltBootAttack attack(soc, cfg);
    if (!attack.execute().rebooted_into_attacker_code)
        return -1.0;
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    return compareImages(dump, before).accuracy();
}

} // namespace

int
main()
{
    bench::banner("Ablation A1",
                  "probe current capability / impedance vs retention");

    std::cout << "\n(a) current-limit sweep at 50 mOhm source "
                 "impedance:\n";
    TextTable ta({"Probe limit", "Droop minimum", "Current-limited",
                  "Retention accuracy"});
    for (double amps : {0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 3.0}) {
        // Solve the transient separately for reporting.
        const SocConfig cfg = SocConfig::bcm2711();
        const ProbeTransient tr = TransientSolver::solve(
            VoltageProbe{cfg.core_domain.nominal, Amp(amps), Ohm(0.05)},
            cfg.core_domain.surge_current,
            cfg.core_domain.retention_current, cfg.core_domain.decap,
            Seconds::microseconds(5));
        const double acc = retentionWithProbe(Amp(amps), Ohm(0.05));
        ta.addRow({TextTable::num(amps, 2) + " A",
                   TextTable::num(tr.v_min.volts(), 3) + " V",
                   tr.current_limited ? "yes" : "no",
                   TextTable::pct(acc)});
    }
    std::cout << ta.render();

    std::cout << "\n(b) source-impedance sweep at 3 A limit (stock "
                 "220 uF decap):\n";
    TextTable tb({"Source impedance", "Droop minimum",
                  "Retention accuracy"});
    for (double mohm : {10.0, 50.0, 200.0, 500.0, 900.0, 1300.0}) {
        const SocConfig cfg = SocConfig::bcm2711();
        const ProbeTransient tr = TransientSolver::solve(
            VoltageProbe{cfg.core_domain.nominal, Amp(3.0),
                         Ohm::milliohms(mohm)},
            cfg.core_domain.surge_current,
            cfg.core_domain.retention_current, cfg.core_domain.decap,
            Seconds::microseconds(5));
        const double acc =
            retentionWithProbe(Amp(3.0), Ohm::milliohms(mohm));
        tb.addRow({TextTable::num(mohm, 0) + " mOhm",
                   TextTable::num(tr.v_min.volts(), 3) + " V",
                   TextTable::pct(acc)});
    }
    std::cout << tb.render();
    std::cout << "(flat: the rail decoupling capacitance absorbs the "
                 "microsecond surge, so probe\nimpedance barely matters "
                 "while the current limit is not hit)\n";

    std::cout << "\n(c) decoupling-capacitance sweep with a long lead "
                 "probe (3 A limit, 1 Ohm):\n";
    TextTable tc({"Rail decap", "Droop minimum", "Retention accuracy"});
    for (double uf : {220.0, 47.0, 10.0, 4.7, 1.0, 0.1}) {
        const SocConfig cfg = SocConfig::bcm2711();
        const ProbeTransient tr = TransientSolver::solve(
            VoltageProbe{cfg.core_domain.nominal, Amp(3.0),
                         Ohm::milliohms(1000)},
            cfg.core_domain.surge_current,
            cfg.core_domain.retention_current,
            Farad::microfarads(uf), Seconds::microseconds(5));
        const double acc = retentionWithProbe(
            Amp(3.0), Ohm::milliohms(1000), Farad::microfarads(uf));
        tc.addRow({TextTable::num(uf, 1) + " uF",
                   TextTable::num(tr.v_min.volts(), 3) + " V",
                   TextTable::pct(acc)});
    }
    std::cout << tc.render();
    std::cout << "(boards with small decoupling caps punish sloppy "
                 "probing: with little capacitance,\nthe full ohmic "
                 "droop I*R develops and marginal cells flip)\n";

    std::cout << "\npaper: a probe at the rail voltage draws only a few "
                 "mA in steady state, but the\nabrupt disconnect spikes "
                 "the current; an insufficient supply drops the rail "
                 "below the\ndata retention voltage and corrupts the "
                 "extraction — hence the >3 A bench supply.\n";
    return 0;
}

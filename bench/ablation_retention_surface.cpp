/**
 * @file
 * Ablation A2 — the temperature/off-time retention surface, SRAM vs
 * DRAM.
 *
 * Prints the closed-form expected survival fraction over a grid of
 * temperatures and power-off durations for both cell technologies, with
 * the literature anchor points marked:
 *
 *  - SRAM retains ~80% for 20 ms at -110 degC and ~0% at -40 degC
 *    (Anagnostopoulos et al.; the paper's Section 3 argument);
 *  - DRAM retains across whole seconds at room temperature and for
 *    capture-sized windows when chilled (Halderman et al.), which is why
 *    classic cold boot works on DRAM and not on SRAM.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "sim/rng.hh"
#include "sram/retention_model.hh"

using namespace voltboot;

namespace
{

void
printSurface(const char *name, const RetentionConfig &cfg)
{
    const RetentionModel model(cfg, CellRng(1, 1));
    const double temps[] = {-140, -110, -80, -40, 0, 25};
    const double offs_ms[] = {0.5, 2, 20, 200, 2000, 20000};

    std::cout << "\n" << name
              << " expected survival (rows: off-time; cols: degC):\n";
    std::vector<std::string> header{"off \\ degC"};
    for (double t : temps)
        header.push_back(TextTable::num(t, 0));
    TextTable table(header);
    for (double ms : offs_ms) {
        std::vector<std::string> row{TextTable::num(ms, 1) + " ms"};
        for (double t : temps)
            row.push_back(TextTable::pct(
                model.expectedSurvival(Seconds::milliseconds(ms),
                                       Temperature::celsius(t)),
                1));
        table.addRow(row);
    }
    std::cout << table.render();
}

} // namespace

int
main()
{
    bench::banner("Ablation A2",
                  "retention vs temperature and off-time, SRAM vs DRAM");

    printSurface("6T SRAM", RetentionConfig::sram6t());
    printSurface("DRAM", RetentionConfig::dram());

    const RetentionModel sram(RetentionConfig::sram6t(), CellRng(1, 1));
    const RetentionModel dram(RetentionConfig::dram(), CellRng(1, 2));

    std::cout << "\nanchor points:\n";
    TextTable anchors({"Anchor", "Model", "Literature"});
    anchors.addRow(
        {"SRAM -110 degC / 20 ms",
         TextTable::pct(sram.expectedSurvival(
             Seconds::milliseconds(20), Temperature::celsius(-110))),
         "~80% (Anagnostopoulos et al.)"});
    anchors.addRow(
        {"SRAM -40 degC / 2 ms",
         TextTable::pct(sram.expectedSurvival(
             Seconds::milliseconds(2), Temperature::celsius(-40))),
         "~0% (paper Table 1)"});
    anchors.addRow(
        {"DRAM 25 degC / 64 ms refresh",
         TextTable::pct(dram.expectedSurvival(
             Seconds::milliseconds(64), Temperature::celsius(25))),
         "~100% (DRAM spec)"});
    anchors.addRow(
        {"DRAM -50 degC / 10 s",
         TextTable::pct(dram.expectedSurvival(
             Seconds(10.0), Temperature::celsius(-50))),
         "~100% (Halderman et al.)"});
    std::cout << anchors.render();

    std::cout << "\ntakeaway: there is no temperature an attacker can "
                 "reach where SRAM survives a\nrealistic battery-pull "
                 "(hundreds of ms) — which is exactly why Volt Boot "
                 "swaps the\ntemperature knob for the voltage knob.\n";
    return 0;
}

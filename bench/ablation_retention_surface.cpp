/**
 * @file
 * Ablation A2 — the temperature/off-time retention surface, SRAM vs
 * DRAM.
 *
 * The SRAM surface is *measured*: a campaign of cold-boot trials over
 * the (temperature x off-time x chip) grid runs through the parallel
 * campaign engine, and each cell of the table is the mean retention
 * accuracy of the extracted L1D dumps (50% = chance, nothing retained).
 * The DRAM surface and the literature anchors use the closed-form
 * expected-survival model, as before:
 *
 *  - SRAM retains ~80% for 20 ms at -110 degC and ~0% at -40 degC
 *    (Anagnostopoulos et al.; the paper's Section 3 argument);
 *  - DRAM retains across whole seconds at room temperature and for
 *    capture-sized windows when chilled (Halderman et al.), which is why
 *    classic cold boot works on DRAM and not on SRAM.
 */

#include <iostream>
#include <map>

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "core/analysis.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sram/retention_model.hh"

using namespace voltboot;

namespace
{

const std::vector<double> kTemps{-140, -110, -80, -40, 25};
const std::vector<double> kOffsMs{0.5, 2, 20, 200};

void
printMeasuredSramSurface()
{
    SweepGrid grid;
    grid.boards = {"pi4"};
    grid.targets = {TargetRam::DCache};
    grid.attacks = {AttackKind::ColdBoot};
    grid.temps_c = kTemps;
    grid.offs_ms = kOffsMs;
    grid.seed_count = 2;

    CampaignConfig cfg;
    cfg.seed = 0xa2;
    Campaign campaign(grid, cfg);
    const CampaignResult result = campaign.run();

    // Mean accuracy per (off-time, temperature) cell.
    std::map<std::pair<double, double>, RunningStats> cells;
    for (const TrialRecord &r : result.records)
        if (r.status == TrialStatus::Ok)
            cells[{r.spec.off_ms, r.spec.temp_c}].add(r.accuracy);

    std::cout << "\n6T SRAM measured retention accuracy (" << grid.size()
              << " cold-boot trials, " << grid.seed_count
              << " chips; 50% = chance):\n";
    std::vector<std::string> header{"off \\ degC"};
    for (double t : kTemps)
        header.push_back(TextTable::num(t, 0));
    TextTable table(header);
    for (double ms : kOffsMs) {
        std::vector<std::string> row{TextTable::num(ms, 1) + " ms"};
        for (double t : kTemps)
            row.push_back(TextTable::pct(cells[{ms, t}].mean(), 1));
        table.addRow(row);
    }
    std::cout << table.render();
}

void
printClosedFormSurface(const char *name, const RetentionConfig &cfg)
{
    const RetentionModel model(cfg, CellRng(1, 1));
    std::cout << "\n" << name
              << " expected survival (rows: off-time; cols: degC):\n";
    std::vector<std::string> header{"off \\ degC"};
    for (double t : kTemps)
        header.push_back(TextTable::num(t, 0));
    TextTable table(header);
    for (double ms : kOffsMs) {
        std::vector<std::string> row{TextTable::num(ms, 1) + " ms"};
        for (double t : kTemps)
            row.push_back(TextTable::pct(
                model.expectedSurvival(Seconds::milliseconds(ms),
                                       Temperature::celsius(t)),
                1));
        table.addRow(row);
    }
    std::cout << table.render();
}

} // namespace

int
main()
{
    bench::banner("Ablation A2",
                  "retention vs temperature and off-time, SRAM vs DRAM");

    printMeasuredSramSurface();
    printClosedFormSurface("DRAM", RetentionConfig::dram());

    const RetentionModel sram(RetentionConfig::sram6t(), CellRng(1, 1));
    const RetentionModel dram(RetentionConfig::dram(), CellRng(1, 2));

    std::cout << "\nanchor points:\n";
    TextTable anchors({"Anchor", "Model", "Literature"});
    anchors.addRow(
        {"SRAM -110 degC / 20 ms",
         TextTable::pct(sram.expectedSurvival(
             Seconds::milliseconds(20), Temperature::celsius(-110))),
         "~80% (Anagnostopoulos et al.)"});
    anchors.addRow(
        {"SRAM -40 degC / 2 ms",
         TextTable::pct(sram.expectedSurvival(
             Seconds::milliseconds(2), Temperature::celsius(-40))),
         "~0% (paper Table 1)"});
    anchors.addRow(
        {"DRAM 25 degC / 64 ms refresh",
         TextTable::pct(dram.expectedSurvival(
             Seconds::milliseconds(64), Temperature::celsius(25))),
         "~100% (DRAM spec)"});
    anchors.addRow(
        {"DRAM -50 degC / 10 s",
         TextTable::pct(dram.expectedSurvival(
             Seconds(10.0), Temperature::celsius(-50))),
         "~100% (Halderman et al.)"});
    std::cout << anchors.render();

    std::cout << "\ntakeaway: there is no temperature an attacker can "
                 "reach where SRAM survives a\nrealistic battery-pull "
                 "(hundreds of ms) — which is exactly why Volt Boot "
                 "swaps the\ntemperature knob for the voltage knob.\n";
    return 0;
}

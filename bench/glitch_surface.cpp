/**
 * @file
 * P6 — glitch success-rate surface (BENCH_glitch.json artefact).
 *
 * Sweeps the voltage-glitch attack over a small offset × depth grid
 * around the signature check's compare/branch window and reports the
 * bypass rate per cell, plus campaign throughput. Asserts the two
 * load-bearing properties along the way: the sweep is byte-identical
 * across job counts, and the surface is nontrivial (the sub-margin
 * cells never win, at least one deep on-target cell does).
 *
 * Flags (for CI smoke runs):
 *   --seeds N        chip seeds per cell (default 8)
 *   --jobs A,B,...   worker-thread counts to compare (default 1,2)
 */

#include <algorithm>
#include <charconv>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "core/analysis.hh"

using namespace voltboot;

namespace
{

std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

[[noreturn]] void
usageFatal(const std::string &detail)
{
    std::cerr << "glitch_surface: " << detail << "\n"
              << "usage: glitch_surface [--seeds N] [--jobs A,B,...]\n";
    std::exit(2);
}

uint64_t
parseUint(const std::string &flag, const std::string &text)
{
    uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size() ||
        text.empty())
        usageFatal("malformed value '" + text + "' for " + flag);
    return value;
}

std::vector<unsigned>
parseJobsList(const std::string &text)
{
    std::vector<unsigned> jobs;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t comma = std::min(text.find(',', pos), text.size());
        const uint64_t j =
            parseUint("--jobs", text.substr(pos, comma - pos));
        if (j == 0)
            usageFatal("--jobs entries must be >= 1");
        jobs.push_back(static_cast<unsigned>(j));
        pos = comma + 1;
    }
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seeds = 8;
    std::vector<unsigned> jobs{1, 2};
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageFatal("missing value for " + flag);
            return argv[++i];
        };
        if (flag == "--seeds")
            seeds = std::max<uint64_t>(1, parseUint(flag, value()));
        else if (flag == "--jobs")
            jobs = parseJobsList(value());
        else
            usageFatal("unknown option " + flag);
    }

    bench::banner("P6", "glitch success-rate surface (offset x depth)");

    // Offsets bracket the 16-word victim's cmp/b.ne window (the branch
    // boundary sits at ~110 ns at the 1 ns default clock); 0.04 V of
    // depth stays inside the 10% timing margin of the 0.8 V core rail
    // and can never fault, the deep cells crowbar well below it.
    SweepGrid grid;
    grid.attacks = {AttackKind::Glitch};
    grid.glitch_offs_ns = {60.0, 105.0, 107.0, 109.0, 111.0};
    grid.glitch_widths_ns = {2.0};
    grid.glitch_depths_v = {0.04, 0.3, 0.5};
    grid.seed_count = seeds;

    CampaignResult result;
    std::string baseline_json;
    double best_tps = 0.0;
    for (const unsigned j : jobs) {
        CampaignConfig cfg;
        cfg.jobs = j;
        cfg.seed = 0x911c;
        CampaignResult r = Campaign(grid, cfg).run();
        const std::string json = r.toJson();
        if (baseline_json.empty())
            baseline_json = json;
        else if (json != baseline_json) {
            std::cout << "ERROR: results differ from --jobs "
                      << jobs.front() << " run!\n";
            return 1;
        }
        best_tps = std::max(best_tps, r.trialsPerSecond());
        result = std::move(r);
    }

    // Aggregate the (offset, depth) surface over seeds.
    std::map<std::pair<double, double>, std::pair<uint64_t, uint64_t>>
        surface; // (off, depth) -> (trials, bypasses)
    for (const TrialRecord &rec : result.records) {
        auto &cell = surface[{rec.spec.glitch_off_ns,
                              rec.spec.glitch_depth_v}];
        ++cell.first;
        cell.second += rec.glitch_bypassed;
    }

    TextTable table({"offset (ns)", "depth (V)", "bypass rate"});
    uint64_t zero_cells = 0, live_cells = 0;
    std::string cells_json;
    for (const auto &[key, cell] : surface) {
        const double rate =
            static_cast<double>(cell.second) / cell.first;
        (cell.second == 0 ? zero_cells : live_cells) += 1;
        table.addRow({TextTable::num(key.first, 0),
                      TextTable::num(key.second, 2),
                      TextTable::pct(rate)});
        if (!cells_json.empty())
            cells_json += ",\n";
        cells_json += "    {\"offset_ns\": " + jsonNum(key.first) +
                      ", \"depth_v\": " + jsonNum(key.second) +
                      ", \"trials\": " + std::to_string(cell.first) +
                      ", \"bypassed\": " + std::to_string(cell.second) +
                      ", \"rate\": " + jsonNum(rate) + "}";
    }
    std::cout << table.render();

    const CampaignSummary s = result.summary();
    std::cout << s.glitch_bypassed << "/" << s.glitch_trials
              << " signature checks bypassed; " << live_cells
              << " live cells, " << zero_cells << " dead cells\n";
    std::cout << "(all runs byte-identical across job counts)\n";

    std::string artefact =
        "{\n  \"bench\": \"glitch_surface\",\n"
        "  \"trials\": " + std::to_string(s.glitch_trials) +
        ",\n  \"bypassed\": " + std::to_string(s.glitch_bypassed) +
        ",\n  \"trials_per_second\": " + jsonNum(best_tps) +
        ",\n  \"cells\": [\n" + cells_json + "\n  ]\n}\n";
    bench::saveArtefact("BENCH_glitch.json", artefact);

    // The acceptance surface: sub-margin cells all dead, and the
    // crowbar actually wins somewhere.
    if (zero_cells == 0 || live_cells == 0) {
        std::cout << "ERROR: success-rate surface is trivial\n";
        return 1;
    }
    return 0;
}

/**
 * @file
 * P8 — keyfind engine throughput (BENCH_keyfind.json artefact).
 *
 * Times the batched residual-filter scan against the reference
 * KeyFinder sweep on a planted 1 MiB dump across bit-error rates, and
 * the correction stage with and without DRV-style priors. Asserts the
 * load-bearing properties on the way:
 *
 *   - the batched hit list is bit-identical to KeyFinder::scan at
 *     every error rate;
 *   - the full pipeline is byte-identical across --jobs counts;
 *   - the batched scan clears 10x the reference throughput on the
 *     1 MiB dump (the early-reject filter skips the 11-round
 *     expansion on ~99.98% of offsets).
 *
 * Flags (for CI smoke runs):
 *   --mib N          dump size in MiB (default 1)
 *   --jobs A,B,...   worker-thread counts to compare (default 1,4)
 */

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "crypto/aes.hh"
#include "keyfind/engine.hh"
#include "keyfind/schedule_scan.hh"
#include "sim/rng.hh"

using namespace voltboot;

namespace
{

std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

[[noreturn]] void
usageFatal(const std::string &detail)
{
    std::cerr << "keyfind_throughput: " << detail << "\n"
              << "usage: keyfind_throughput [--mib N] [--jobs A,B,...]\n";
    std::exit(2);
}

uint64_t
parseUint(const std::string &flag, const std::string &text)
{
    uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size() ||
        text.empty())
        usageFatal("malformed value '" + text + "' for " + flag);
    return value;
}

std::vector<unsigned>
parseJobsList(const std::string &text)
{
    std::vector<unsigned> jobs;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t comma = std::min(text.find(',', pos), text.size());
        const uint64_t j =
            parseUint("--jobs", text.substr(pos, comma - pos));
        if (j == 0)
            usageFatal("--jobs entries must be >= 1");
        jobs.push_back(static_cast<unsigned>(j));
        pos = comma + 1;
    }
    return jobs;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::vector<uint8_t>
corrupt(std::vector<uint8_t> data, double ber, uint64_t seed)
{
    Rng rng(seed);
    for (auto &b : data)
        for (int bit = 0; bit < 8; ++bit)
            if (rng.uniform() < ber)
                b ^= 1u << bit;
    return data;
}

bool
sameCandidates(const std::vector<KeyCandidate> &a,
               const std::vector<KeyCandidate> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].offset != b[i].offset || a[i].key != b[i].key ||
            a[i].bit_errors != b[i].bit_errors ||
            a[i].error_fraction != b[i].error_fraction)
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t mib = 1;
    std::vector<unsigned> jobs{1, 4};
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageFatal("missing value for " + flag);
            return argv[++i];
        };
        if (flag == "--mib")
            mib = std::max<uint64_t>(1, parseUint(flag, value()));
        else if (flag == "--jobs")
            jobs = parseJobsList(value());
        else
            usageFatal("unknown option " + flag);
    }

    bench::banner("P8", "keyfind scan + correction throughput");
    std::cout << "residual filter path: "
              << (keyfind::scheduleScanAccelerated() ? "AVX-512"
                                                     : "scalar")
              << "\n\n";

    // --- the dump: schedules planted in random filler ---
    const size_t bytes = mib << 20;
    Rng krng(42);
    std::vector<uint8_t> key(16);
    for (auto &b : key)
        b = static_cast<uint8_t>(krng.next());
    const auto sched = Aes::expandKey(key);
    Rng rng(7);
    std::vector<uint8_t> base(bytes);
    for (auto &b : base)
        b = static_cast<uint8_t>(rng.next());
    const std::vector<size_t> plants = {0x1000, bytes / 2, bytes - 4096};
    for (size_t off : plants)
        std::copy(sched.begin(), sched.end(), base.begin() + off);

    // --- scan: reference vs batched, per bit-error rate ---
    TextTable table({"BER", "ref offsets/s", "batched offsets/s",
                     "speedup", "hits", "first key (ms)"});
    const KeyFinderConfig scan_cfg;
    const KeyFinder reference(scan_cfg);
    double min_speedup = 1e30;
    double best_batched = 0.0, best_reference = 0.0;
    std::string cells_json;
    bool parity_ok = true;
    for (double ber : {0.0, 0.01, 0.05, 0.5}) {
        const MemoryImage image(
            corrupt(base, ber, 100 + static_cast<uint64_t>(ber * 1e6)));

        auto t0 = std::chrono::steady_clock::now();
        const auto ref_hits = reference.scan(image);
        const double ref_s = secondsSince(t0);

        t0 = std::chrono::steady_clock::now();
        keyfind::ScanStats stats;
        const auto fast_hits =
            keyfind::scheduleScan(image, scan_cfg, &stats);
        const double fast_s = secondsSince(t0);

        if (!sameCandidates(fast_hits, ref_hits)) {
            std::cout << "ERROR: batched scan diverges from the "
                         "reference at BER "
                      << ber << "\n";
            parity_ok = false;
        }

        // Time-to-first-key: the full engine on the same dump.
        t0 = std::chrono::steady_clock::now();
        keyfind::KeyRecoveryConfig ecfg;
        ecfg.run_correction = false;
        const auto report =
            keyfind::KeyRecoveryEngine(ecfg).recover(image);
        const double first_key_ms =
            report.bestKey() ? secondsSince(t0) * 1e3 : -1.0;

        const double offsets = static_cast<double>(stats.offsets);
        const double ref_rate = offsets / std::max(ref_s, 1e-9);
        const double fast_rate = offsets / std::max(fast_s, 1e-9);
        const double speedup = fast_rate / std::max(ref_rate, 1e-9);
        min_speedup = std::min(min_speedup, speedup);
        best_batched = std::max(best_batched, fast_rate);
        best_reference = std::max(best_reference, ref_rate);

        table.addRow({TextTable::pct(ber, 1), TextTable::num(ref_rate, 0),
                      TextTable::num(fast_rate, 0),
                      TextTable::num(speedup, 1) + "x",
                      std::to_string(fast_hits.size()),
                      first_key_ms < 0 ? "-"
                                       : TextTable::num(first_key_ms, 1)});
        if (!cells_json.empty())
            cells_json += ",\n";
        cells_json +=
            "    {\"ber\": " + jsonNum(ber) +
            ", \"reference_offsets_per_second\": " + jsonNum(ref_rate) +
            ", \"batched_offsets_per_second\": " + jsonNum(fast_rate) +
            ", \"speedup\": " + jsonNum(speedup) +
            ", \"hits\": " + std::to_string(fast_hits.size()) +
            ", \"early_reject_fraction\": " +
            jsonNum(static_cast<double>(stats.early_rejects) /
                    std::max(offsets, 1.0)) +
            "}";
    }
    std::cout << table.render();

    // --- full pipeline, byte-identical across jobs ---
    const MemoryImage pipeline_image(corrupt(base, 0.01, 4242));
    std::string jobs_json;
    double best_pipeline = 0.0;
    std::vector<KeyCandidate> serial_scan;
    std::vector<RobustScanHit> serial_corrected;
    bool jobs_ok = true;
    for (size_t ji = 0; ji < jobs.size(); ++ji) {
        keyfind::KeyRecoveryConfig ecfg;
        ecfg.jobs = jobs[ji];
        const auto t0 = std::chrono::steady_clock::now();
        const auto report =
            keyfind::KeyRecoveryEngine(ecfg).recover(pipeline_image);
        const double dt = secondsSince(t0);
        const double rate =
            static_cast<double>(report.scan.offsets) / std::max(dt, 1e-9);
        best_pipeline = std::max(best_pipeline, rate);
        if (ji == 0) {
            serial_scan = report.scan_hits;
            serial_corrected = report.corrected_hits;
        } else {
            bool same = sameCandidates(report.scan_hits, serial_scan) &&
                        report.corrected_hits.size() ==
                            serial_corrected.size();
            for (size_t i = 0; same && i < serial_corrected.size(); ++i)
                same = report.corrected_hits[i].offset ==
                           serial_corrected[i].offset &&
                       report.corrected_hits[i].corrected.key ==
                           serial_corrected[i].corrected.key;
            if (!same) {
                std::cout << "ERROR: --jobs " << jobs[ji]
                          << " results differ from --jobs "
                          << jobs.front() << "!\n";
                jobs_ok = false;
            }
        }
        if (!jobs_json.empty())
            jobs_json += ",\n";
        jobs_json += "    {\"jobs\": " + std::to_string(jobs[ji]) +
                     ", \"pipeline_offsets_per_second\": " +
                     jsonNum(rate) + "}";
    }
    if (jobs_ok)
        std::cout << "full pipeline byte-identical across jobs (";
    else
        std::cout << "full pipeline DIVERGED across jobs (";
    for (size_t i = 0; i < jobs.size(); ++i)
        std::cout << (i ? "," : "") << jobs[i];
    std::cout << ")\n";

    // --- correction stage: blind vs prior-guided ---
    // A small dump of corrupted schedules; the priors mark exactly the
    // bits an attacker's DRV profile would flag.
    const size_t cbytes = 64 << 10;
    std::vector<uint8_t> cimg(cbytes);
    Rng crng(11);
    for (auto &b : cimg)
        b = static_cast<uint8_t>(crng.next());
    std::vector<float> priors(cbytes * 8, 0.001f);
    Rng frng(13);
    for (size_t p = 0; p < 8; ++p) {
        const size_t off = 0x1000 + p * 0x1800;
        std::copy(sched.begin(), sched.end(), cimg.begin() + off);
        for (int f = 0; f < 3; ++f) {
            const size_t bit =
                off * 8 + static_cast<size_t>(frng.next() % 128);
            cimg[bit / 8] ^= 1u << (bit % 8);
            priors[bit] = 0.4f;
        }
    }
    const MemoryImage cimage(std::move(cimg));
    const std::vector<MemoryImage> cdumps{cimage};

    double corrections_per_s[2] = {0, 0};
    uint64_t distance_evals[2] = {0, 0};
    for (int guided = 0; guided < 2; ++guided) {
        keyfind::KeyRecoveryConfig ecfg;
        ecfg.use_priors = guided == 1;
        const auto t0 = std::chrono::steady_clock::now();
        const auto report = keyfind::KeyRecoveryEngine(ecfg).recover(
            std::span<const MemoryImage>(cdumps),
            std::span<const float>(priors));
        const double dt = secondsSince(t0);
        corrections_per_s[guided] =
            static_cast<double>(report.correction.attempted) /
            std::max(dt, 1e-9);
        distance_evals[guided] = report.correction.distance_evals;
    }
    std::cout << "correction: " << TextTable::num(corrections_per_s[0], 0)
              << " attempts/s blind, "
              << TextTable::num(corrections_per_s[1], 0)
              << " attempts/s prior-guided ("
              << distance_evals[0] << " vs " << distance_evals[1]
              << " schedule evals)\n";

    std::string artefact =
        "{\n  \"bench\": \"keyfind_throughput\",\n"
        "  \"dump_bytes\": " + std::to_string(bytes) +
        ",\n  \"accelerated\": " +
        (keyfind::scheduleScanAccelerated() ? "true" : "false") +
        ",\n  \"scan_offsets_per_second\": " + jsonNum(best_batched) +
        ",\n  \"reference_offsets_per_second\": " +
        jsonNum(best_reference) +
        ",\n  \"min_scan_speedup\": " + jsonNum(min_speedup) +
        ",\n  \"pipeline_offsets_per_second\": " +
        jsonNum(best_pipeline) +
        ",\n  \"corrections_per_second\": " +
        jsonNum(corrections_per_s[0]) +
        ",\n  \"prior_corrections_per_second\": " +
        jsonNum(corrections_per_s[1]) +
        ",\n  \"cells\": [\n" + cells_json + "\n  ],\n"
        "  \"jobs\": [\n" + jobs_json + "\n  ]\n}\n";
    bench::saveArtefact("BENCH_keyfind.json", artefact);

    if (!parity_ok || !jobs_ok)
        return 1;
    if (min_speedup < 10.0) {
        std::cout << "ERROR: batched scan speedup below 10x ("
                  << TextTable::num(min_speedup, 1) << "x)\n";
        return 1;
    }
    std::cout << "takeaway: the residual filter rejects ~99.98% of "
                 "offsets before any schedule\nexpansion, so the scan "
                 "runs >10x the reference while staying bit-identical;\n"
                 "priors cut the correction search cost without "
                 "changing its answers.\n";
    return 0;
}

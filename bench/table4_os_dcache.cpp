/**
 * @file
 * Table 4 — "Extracted data from d-cache of a BCM2711 SoC using Volt
 * Boot attack" (Section 7.1.2).
 *
 * The microbenchmark varies an array of 8-byte elements from 4 KB
 * (12.5% of the 32 KB two-way d-cache) to the full cache size, one
 * process per core, under a Linux-class system with background kernel
 * activity. Each configuration runs three times; the table reports the
 * mean element count recovered from way 0, way 1 and their union per
 * core, plus the percentage extracted.
 *
 * Paper's shape: 100% at 4/8/16 KB, falling to ~86-92% at 32 KB, where
 * the kernel's background evictions bite.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/linux_model.hh"
#include "sim/stats.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Table 4",
                  "d-cache extraction vs array size under an OS");

    const size_t sizes_kb[] = {4, 8, 16, 32};
    const int trials = 3;
    const size_t cores = 4;
    const size_t ways = 2;

    for (size_t kb : sizes_kb) {
        // Accumulate per-core sums over the trials.
        std::vector<double> w0(cores, 0), w1(cores, 0), uni(cores, 0);
        std::vector<RunningStats> spread(cores);
        size_t elements_total = 0;

        for (int trial = 0; trial < trials; ++trial) {
            Soc soc(SocConfig::bcm2711());
            soc.powerOn();
            LinuxModelConfig lm_cfg;
            lm_cfg.seed = 0x700 + kb * 10 + trial;
            LinuxModel linux_model(soc, lm_cfg);
            linux_model.boot();
            const auto truth =
                linux_model.runArrayBenchmark(kb * 1024);
            elements_total = truth[0].elements.size();

            VoltBootAttack attack(soc);
            if (!attack.execute().rebooted_into_attacker_code) {
                std::cout << "attack failed\n";
                return 1;
            }
            for (size_t core = 0; core < cores; ++core) {
                std::vector<MemoryImage> dumps;
                for (size_t w = 0; w < ways; ++w)
                    dumps.push_back(
                        attack.dumpL1Way(core, L1Ram::DData, w));
                const ElementRecovery er =
                    recoverElements(dumps, truth[core].elements);
                w0[core] += er.per_way[0];
                w1[core] += er.per_way[1];
                uni[core] += er.in_union;
                spread[core].add(er.fractionRecovered());
            }
        }

        std::cout << "\narray size " << kb << "KB (" << elements_total
                  << " elements, mean of " << trials << " trials):\n";
        TextTable table({"", "Core 0", "Core 1", "Core 2", "Core 3"});
        auto row = [&](const char *name, const std::vector<double> &v,
                       int decimals) {
            std::vector<std::string> cells{name};
            for (size_t core = 0; core < cores; ++core)
                cells.push_back(
                    TextTable::num(v[core] / trials, decimals));
            table.addRow(cells);
        };
        row("W0", w0, 1);
        row("W1", w1, 1);
        row("W0 u W1", uni, 1);
        std::vector<std::string> pct_cells{"% data extracted"};
        for (size_t core = 0; core < cores; ++core)
            pct_cells.push_back(TextTable::pct(
                uni[core] / trials / elements_total));
        table.addRow(pct_cells);
        std::vector<std::string> sd_cells{"trial stddev"};
        for (size_t core = 0; core < cores; ++core)
            sd_cells.push_back(
                "+-" + TextTable::pct(spread[core].stddev()));
        table.addRow(sd_cells);
        std::cout << table.render();
    }

    std::cout << "\npaper: 100% extraction at 4/8/16KB; ~85.7-91.8% at "
                 "32KB (kernel background\nprocesses evict lines when "
                 "the working set reaches the cache size).\n";
    return 0;
}

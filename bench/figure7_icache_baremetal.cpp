/**
 * @file
 * Figure 7 — "Snapshots of i-cache after attacking bare-metal software in
 * (a) BCM2711 and (b) BCM2837 SoCs."
 *
 * The victim runs a NOP-filler from the i-cache on all four cores; the
 * Volt Boot attack then extracts the i-cache and verifies the machine
 * code stayed resident bit-exact across the power cycle. The bench
 * prints the bit-image impression (structured, unlike Figure 3's random
 * field) and the retention accuracy, which the paper reports as 100% on
 * every core of both devices.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Figure 7",
                  "i-cache snapshots after attacking bare-metal software");

    for (auto maker : {&SocConfig::bcm2711, &SocConfig::bcm2837}) {
        const SocConfig cfg = maker();
        std::cout << "\n--- " << cfg.soc_name << " ---\n";

        Soc soc(cfg);
        soc.powerOn();

        // Bare-metal victim: enable caches, execute a long NOP slide.
        BareMetalRunner runner(soc);
        std::vector<MemoryImage> before;
        for (size_t core = 0; core < soc.coreCount(); ++core) {
            runner.runOn(core, workloads::nopFiller(4096));
            before.push_back(soc.memory().l1i(core).dumpAll());
        }
        const std::vector<uint8_t> code = runner.lastProgram().bytes();

        VoltBootAttack attack(soc);
        if (!attack.execute().rebooted_into_attacker_code) {
            std::cout << "attack failed\n";
            return 1;
        }

        // Footnote 4: the A53's i-cache interleaves instructions and ECC
        // in an undocumented order, so BCM2837 dumps cannot be grepped
        // for code; retention is measured by before/after comparison
        // (both dumps go through the same undocumented order).
        const bool ecc = cfg.icache_ecc_undocumented;
        TextTable table({"Core", "Retention accuracy",
                         ecc ? "victim code found (via before/after)"
                             : "victim code found in dump"});
        for (size_t core = 0; core < soc.coreCount(); ++core) {
            const MemoryImage dump = attack.dumpL1(core, L1Ram::IData);
            const RetentionReport rep =
                compareImages(dump, before[core]);
            const std::vector<uint8_t> needle(code.begin() + 8,
                                              code.begin() + 8 + 64);
            const bool found = ecc ? rep.error_bits == 0
                                   : dump.contains(needle);
            table.addRow({"core " + std::to_string(core),
                          TextTable::pct(rep.accuracy()),
                          found ? "yes" : "NO"});
            if (core == 0) {
                const size_t line_bits = cfg.l1i.line_bytes * 8;
                std::cout
                    << "core 0 way 0 bit-image impression (structured "
                       "pattern = retained instructions):\n"
                    << bench::asciiBitmap(
                           attack.dumpL1Way(core, L1Ram::IData, 0),
                           line_bits, 12)
                    << "\n";
                bench::saveArtefact(
                    std::string("figure7_") + cfg.soc_name +
                        "_icache_way0.pbm",
                    attack.dumpL1Way(core, L1Ram::IData, 0)
                        .toPbm(line_bits));
            }
        }
        std::cout << table.render();
    }

    std::cout << "\npaper: instructions stay in the i-cache across power "
                 "cycles; 100% accuracy on all\nfour cores of both "
                 "devices (compare to Figure 3's random post-cold-boot "
                 "state).\n";
    return 0;
}

/**
 * @file
 * P1 — simulation-infrastructure micro-benchmarks (google-benchmark).
 *
 * Not a paper artefact: measures the throughput of the substrate the
 * reproduction runs on (per-cell parameter hashing, array power cycles,
 * cache accesses, interpreter dispatch, attack end-to-end), so
 * regressions in the simulator itself are visible.
 */

#include <benchmark/benchmark.h>

#include "core/attack.hh"
#include "crypto/aes.hh"
#include "isa/assembler.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"
#include "sram/memory_array.hh"

namespace
{

using namespace voltboot;

void
BM_CellParams(benchmark::State &state)
{
    const RetentionModel model(RetentionConfig::sram6t(), CellRng(1, 1));
    uint64_t cell = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.cellParams(cell++));
}
BENCHMARK(BM_CellParams);

void
BM_ArrayPowerCycle(benchmark::State &state)
{
    SramArray a("bench", static_cast<size_t>(state.range(0)), 7, 1);
    a.powerUp(Volt(0.8));
    for (auto _ : state) {
        a.powerDown();
        a.powerUp(Volt(0.8), Seconds::milliseconds(5),
                  Temperature::celsius(-60)); // partial-loss regime
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ArrayPowerCycle)->Arg(4096)->Arg(32768);

void
BM_ArrayPowerCycleFastPath(benchmark::State &state)
{
    // Room temperature: the all-lost fast path with cached fingerprint.
    SramArray a("bench", static_cast<size_t>(state.range(0)), 7, 2);
    a.powerUp(Volt(0.8));
    for (auto _ : state) {
        a.powerDown();
        a.powerUp(Volt(0.8), Seconds(1.0), Temperature::celsius(25));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ArrayPowerCycleFastPath)->Arg(32768);

void
BM_CacheHit(benchmark::State &state)
{
    SramArray data("d", 32768, 1, 1);
    SramArray tags("t", Cache::tagRamBytes({32768, 2, 64}), 1, 2);
    DramArray mem("m", 1 << 20, 1, 3);
    data.powerUp(Volt(0.8));
    tags.powerUp(Volt(0.8));
    mem.powerUp(Volt(1.1));
    MemoryRegion region(mem, 0);
    Cache cache("L1D", {32768, 2, 64}, data, tags, &region);
    cache.invalidateAll();
    cache.setEnabled(true);
    cache.read64(0x100, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.read64(0x100, true));
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissEvict(benchmark::State &state)
{
    SramArray data("d", 32768, 1, 1);
    SramArray tags("t", Cache::tagRamBytes({32768, 2, 64}), 1, 2);
    DramArray mem("m", 1 << 20, 1, 3);
    data.powerUp(Volt(0.8));
    tags.powerUp(Volt(0.8));
    mem.powerUp(Volt(1.1));
    MemoryRegion region(mem, 0);
    Cache cache("L1D", {32768, 2, 64}, data, tags, &region);
    cache.invalidateAll();
    cache.setEnabled(true);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.read64(addr, true));
        addr = (addr + 32768) & 0xFFFFF; // always conflict
    }
}
BENCHMARK(BM_CacheMissEvict);

void
BM_InterpreterLoop(benchmark::State &state)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    Program p = Assembler::assemble(R"(
        movz x1, #1000
    loop:
        sub x1, x1, #1
        cbnz x1, loop
        hlt
    )");
    p.load_address = 0x1000;
    soc.loadProgram(p);
    for (auto _ : state) {
        soc.runCore(0, 0x1000, 10'000'000);
        benchmark::DoNotOptimize(soc.cpu(0).x(1));
    }
    state.SetItemsProcessed(state.iterations() * 3001);
}
BENCHMARK(BM_InterpreterLoop);

void
BM_AesEncryptBlock(benchmark::State &state)
{
    std::vector<uint8_t> key(16, 0x5a);
    Aes aes(key);
    std::array<uint8_t, 16> block{};
    for (auto _ : state) {
        aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void
BM_FullVoltBootAttack(benchmark::State &state)
{
    for (auto _ : state) {
        Soc soc(SocConfig::bcm2711());
        soc.powerOn();
        BareMetalRunner runner(soc);
        runner.runOn(0, workloads::patternStore(0x40000, 4096, 0xAA));
        VoltBootAttack attack(soc);
        attack.execute();
        benchmark::DoNotOptimize(attack.dumpL1Way(0, L1Ram::DData, 0));
    }
}
BENCHMARK(BM_FullVoltBootAttack)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

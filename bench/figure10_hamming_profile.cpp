/**
 * @file
 * Figure 10 — "Hamming distance between image binary and post-attack
 * binary" at 512-bit granularity over the i.MX535 iRAM address space.
 *
 * Reproduces the error-localisation plot: errors cluster at the start of
 * the iRAM (the boot ROM's scratch region, 0xF800083C-0xF80018CC) and
 * near the end; the large middle is error-free. Prints an ASCII profile
 * and emits the raw series as CSV.
 */

#include <iostream>
#include <sstream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Figure 10",
                  "per-512-bit Hamming distance profile over the iRAM");

    Soc soc(SocConfig::imx535());
    soc.powerOn();

    // Victim image: pseudo-random bitmap (content does not matter for
    // the error profile, only where the boot ROM scribbles).
    Rng rng(0x916);
    std::vector<uint8_t> truth(soc.config().iram_bytes);
    for (auto &b : truth)
        b = static_cast<uint8_t>(rng.next());
    soc.jtag().writeIram(soc.config().iram_base, truth);

    VoltBootAttack attack(soc);
    if (!attack.execute().rebooted_into_attacker_code) {
        std::cout << "attack failed\n";
        return 1;
    }
    const MemoryImage dump = attack.dumpIram();

    const size_t granularity = 512; // bits
    const auto profile =
        MemoryImage::blockHamming(dump, MemoryImage(truth), granularity);

    // ASCII profile: one row per 16 blocks (1 KB), bar = summed HD.
    std::cout << "HD per 1KB of iRAM (each '#' ~ 256 error bits):\n";
    const uint64_t base = soc.config().iram_base;
    std::ostringstream csv;
    csv << "address,hd_512bit_block\n";
    size_t first_err = SIZE_MAX, head_end = 0, last_err = 0;
    for (size_t block = 0; block < profile.size(); ++block) {
        csv << TextTable::hex(base + block * granularity / 8) << ","
            << profile[block] << "\n";
        if (profile[block]) {
            if (first_err == SIZE_MAX)
                first_err = block;
            // The head cluster is the contiguous-ish run near the start
            // (first half of the address space); later hits form the
            // tail cluster.
            if (block < profile.size() / 2)
                head_end = block;
            last_err = block;
        }
    }
    for (size_t row = 0; row < profile.size(); row += 16) {
        size_t sum = 0;
        for (size_t i = row; i < std::min(row + 16, profile.size()); ++i)
            sum += profile[i];
        if (sum == 0)
            continue; // print only rows with errors, plus markers below
        std::cout << TextTable::hex(base + row * granularity / 8) << " |"
                  << std::string(std::min<size_t>(sum / 256 + 1, 60), '#')
                  << " (" << sum << " bits)\n";
    }
    std::cout << "(all other addresses: zero errors)\n\n";

    TextTable table({"Metric", "Measured", "Paper"});
    table.addRow({"first erroneous block",
                  first_err == SIZE_MAX
                      ? "-"
                      : TextTable::hex(base + first_err * 64),
                  "~0xF800083C"});
    table.addRow({"head error cluster ends at",
                  TextTable::hex(base + head_end * 64 + 63),
                  "~0xF80018CC"});
    table.addRow({"tail error cluster ends at",
                  TextTable::hex(base + last_err * 64 + 63),
                  "a cluster near the end of the iRAM"});
    table.addRow({"overall error",
                  TextTable::pct(MemoryImage::fractionalHamming(
                      dump, MemoryImage(truth))),
                  "2.7%"});
    std::cout << table.render();

    bench::saveArtefact("figure10_hamming_profile.csv", csv.str());
    std::cout << "\npaper: errors cluster around the beginning "
                 "(0xF800083C-0xF80018CC boot ROM scratch)\nand the end "
                 "of the iRAM; everything else is error-free.\n";
    return 0;
}

/**
 * @file
 * Table 3 — "PCB test pads to probe, nominal voltage, target memories
 * and power domains."
 *
 * Prints, for each platform, the board-level probe point the attack
 * uses, the rail voltage an attacker measures there, and which on-chip
 * memories that domain keeps alive.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "soc/soc_config.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Table 3",
                  "attack probe points and target power domains");

    TextTable table({"Board", "PCB test pad", "Nominal voltage",
                     "Target memories", "Power domain"});
    for (const SocConfig &cfg : SocConfig::allPlatforms()) {
        // Find the attack pad's domain and voltage in the pad list.
        std::string domain = "?";
        double volts = 0.0;
        for (const auto &pad : cfg.pads) {
            if (pad.label != cfg.attack_pad)
                continue;
            domain = pad.domain;
            if (domain == cfg.core_domain.name)
                volts = cfg.core_domain.nominal.volts();
            else if (domain == cfg.mem_domain.name)
                volts = cfg.mem_domain.nominal.volts();
            else if (domain == cfg.io_domain.name)
                volts = cfg.io_domain.nominal.volts();
        }
        const bool core = domain == cfg.core_domain.name;
        table.addRow({
            cfg.board_name,
            cfg.attack_pad,
            TextTable::num(volts, 1) + "V",
            cfg.attack_target,
            (core ? "Core (" : "Memory (") + domain + ")",
        });
    }
    std::cout << table.render();
    std::cout << "\npaper: Pi 3 -> PP58 @ 1.2V (VDD_CORE), "
                 "Pi 4 -> TP15 @ 0.8V (VDD_CORE), "
                 "i.MX53 -> SH13 @ 1.3V (VDDAL1)\n";
    return 0;
}

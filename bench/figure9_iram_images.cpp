/**
 * @file
 * Figure 9 — "Visual representation of iRAM's data extraction" on the
 * i.MX535 (Section 7.3).
 *
 * Four copies of a 512x512-pixel-bit (32 KB each, 128 KB total) bitmap
 * are stored into the iRAM over JTAG; the Volt Boot attack holds the
 * VDDAL1 memory domain through the power cycle and dumps the iRAM. The
 * bench reports per-quadrant error, the overall error (paper: 2.7%),
 * and saves the four extracted quadrant images.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace voltboot;

namespace
{

/** A synthetic 512x512 1-bit "photograph": structured, recognisable. */
std::vector<uint8_t>
makeBitmapQuadrant()
{
    // 512x512 bits = 32 KB. Concentric rings + gradient dithering gives
    // the dump a visually obvious structure, like the paper's photo.
    std::vector<uint8_t> out(32 * 1024, 0);
    for (size_t y = 0; y < 512; ++y) {
        for (size_t x = 0; x < 512; ++x) {
            const double dx = static_cast<double>(x) - 256.0;
            const double dy = static_cast<double>(y) - 256.0;
            const double r = std::sqrt(dx * dx + dy * dy);
            const bool bit = (static_cast<int>(r / 24.0) % 2 == 0) ^
                             ((x + y) % 7 < 2);
            const size_t idx = y * 512 + x;
            if (bit)
                out[idx / 8] |= 1u << (idx % 8);
        }
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner("Figure 9",
                  "iRAM bitmap extraction on the i.MX535 (JTAG)");

    Soc soc(SocConfig::imx535());
    soc.powerOn();

    // Victim data: four copies of the 32 KB bitmap fill the 128 KB iRAM.
    const std::vector<uint8_t> quadrant = makeBitmapQuadrant();
    std::vector<uint8_t> truth;
    for (int q = 0; q < 4; ++q)
        truth.insert(truth.end(), quadrant.begin(), quadrant.end());
    soc.jtag().writeIram(soc.config().iram_base, truth);

    VoltBootAttack attack(soc);
    if (!attack.execute().rebooted_into_attacker_code) {
        std::cout << "attack failed\n";
        return 1;
    }
    const MemoryImage dump = attack.dumpIram();
    const MemoryImage truth_img(truth);

    TextTable table({"Quadrant", "Address range", "Error", "Note"});
    const uint64_t base = soc.config().iram_base;
    for (int q = 0; q < 4; ++q) {
        const size_t off = q * 32 * 1024;
        const MemoryImage part = dump.slice(off, 32 * 1024);
        const MemoryImage want(std::vector<uint8_t>(
            truth.begin() + off, truth.begin() + off + 32 * 1024));
        const double err = MemoryImage::fractionalHamming(part, want);
        const char *note =
            q == 0 ? "boot-ROM scratch region lands here"
            : q == 3 ? "tail clobber lands here"
                     : "clean";
        table.addRow({"(" + std::string(1, 'a' + q) + ")",
                      TextTable::hex(base + off) + "-" +
                          TextTable::hex(base + off + 0x7FFF),
                      TextTable::pct(err), note});
        bench::saveArtefact(
            "figure9_quadrant_" + std::string(1, 'a' + q) + ".pbm",
            part.toPbm(512));
    }
    std::cout << table.render();

    const double overall =
        MemoryImage::fractionalHamming(dump, truth_img);
    std::cout << "\noverall iRAM extraction error: "
              << TextTable::pct(overall) << "  (paper: 2.7%)\n";
    std::cout << "error source: internal boot firmware partially "
                 "clobbers the iRAM before releasing\nthe core — "
                 "consistent across i.MX535 devices.\n";
    return 0;
}

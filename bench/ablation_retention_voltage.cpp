/**
 * @file
 * Ablation A5 — standby voltage scaling vs data retention.
 *
 * Section 2.1: "modern processors dynamically scale down the voltage
 * when the RAM is not actively accessed because it reduces the energy
 * leakage" — safe only while the standby level clears every cell's data
 * retention voltage (Qin et al., the paper's [34]). This ablation sweeps
 * the standby level of the core domain and reports the bit-error rate
 * induced in a pattern-filled L1, locating the retention cliff against
 * the DRV distribution (mean 250 mV, sigma 35 mV) — the same cliff the
 * Volt Boot probe must stay above during the disconnect surge.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Ablation A5",
                  "standby voltage scaling vs L1 retention");

    TextTable table({"Standby level", "Bit errors after resume",
                     "DRV tail above level"});
    for (double mv : {800.0, 550.0, 450.0, 400.0, 350.0, 300.0, 275.0,
                      250.0, 225.0, 200.0, 150.0, 100.0}) {
        Soc soc(SocConfig::bcm2711());
        soc.powerOn();
        soc.l1dData(0).fill(0xA5);
        const MemoryImage before(soc.l1dData(0).snapshot());

        PowerDomain *core =
            soc.board().pmic().domain(soc.config().core_domain.name);
        core->scaleVoltage(Volt::millivolts(mv)); // enter standby
        core->scaleVoltage(Volt(0.8));            // resume

        const MemoryImage after(soc.l1dData(0).snapshot());
        const double err =
            MemoryImage::fractionalHamming(before, after);

        // Analytic fraction of cells with DRV above the standby level.
        const RetentionModel model(RetentionConfig::sram6t(),
                                   CellRng(soc.config().chip_seed, 1));
        const double mean = model.config().drv_mean.volts();
        const double sigma = model.config().drv_sigma.volts();
        const double z = (mv / 1000.0 - mean) / sigma;
        const double tail = 0.5 * std::erfc(z / std::sqrt(2.0));

        table.addRow({TextTable::num(mv, 0) + " mV",
                      TextTable::pct(err, 3), TextTable::pct(tail, 3)});
    }
    std::cout << table.render();

    std::cout
        << "\nshape: retention is free down to ~2 sigma above the DRV "
           "mean (~320 mV), then the\nlognormal tail bites and errors "
           "track the analytic DRV exceedance. Vendors pick\nstandby "
           "levels against this curve; the Volt Boot probe must clear "
           "the same bar\nduring the disconnect surge (see A1).\n";
    return 0;
}

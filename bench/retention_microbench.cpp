/**
 * @file
 * P3 — retention hot-path throughput (BENCH_retention.json artefact).
 *
 * Times the three state transitions the attack stack spends its life
 * in — full power-up resolution, unpowered decay, and a supply droop —
 * under each retention kernel (reference scalar path, fast threshold
 * path, fast with cached raw planes), reporting cells/sec and the
 * speedup over the reference path. The kernels are bit-exact by
 * construction; this bench re-asserts it by comparing every final
 * snapshot and loss count against the reference run before reporting.
 *
 * Flags:
 *   --bytes N   array size in bytes       (default 262144)
 *   --reps N    timed repetitions         (default 8)
 *   --smoke     CI preset: small array, few reps
 */

#include <charconv>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "sram/memory_array.hh"
#include "sram/retention_kernel.hh"

using namespace voltboot;

namespace
{

std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

[[noreturn]] void
usageFatal(const std::string &detail)
{
    std::cerr << "retention_microbench: " << detail << "\n"
              << "usage: retention_microbench [--bytes N] [--reps N] "
                 "[--smoke]\n";
    std::exit(2);
}

uint64_t
parseUint(const std::string &flag, const std::string &text)
{
    uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size() ||
        text.empty())
        usageFatal("malformed value '" + text + "' for " + flag);
    return value;
}

/** RAII: select a kernel, restore the previous one on scope exit. */
class KernelScope
{
  public:
    explicit KernelScope(RetentionKernel k) : saved_(retentionKernel())
    {
        setRetentionKernel(k);
    }
    ~KernelScope() { setRetentionKernel(saved_); }

  private:
    RetentionKernel saved_;
};

struct ScenarioRun
{
    double seconds = 0.0;
    uint64_t last_lost = 0;
    std::vector<uint8_t> snapshot;
};

/**
 * One timed scenario under the currently selected kernel. The array is
 * rebuilt per run (same seed => same silicon), warmed with one untimed
 * iteration so FastCached pays its plane-build cost outside the timed
 * region, mirroring steady-state campaign use.
 */
ScenarioRun
runScenario(const std::string &scenario, size_t bytes, unsigned reps)
{
    SramArray array("bench", bytes, /*chip_seed=*/0x7e57, /*array_id=*/3);
    const Volt vdd(1.0);
    array.powerUp(vdd);
    array.fill(0xA5);

    const auto iteration = [&]() {
        if (scenario == "powerup_resolve") {
            array.powerDown();
            array.powerUp(vdd); // everything resolves to fingerprint
        } else if (scenario == "decay_survival") {
            array.powerDown();
            array.powerUp(vdd, Seconds::milliseconds(20),
                          Temperature::celsius(-110));
        } else { // droop
            array.droopTo(Volt::millivolts(250));
        }
    };

    iteration(); // warm-up: fingerprint + cached planes
    ScenarioRun run;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < reps; ++r)
        iteration();
    const auto t1 = std::chrono::steady_clock::now();
    run.seconds = std::chrono::duration<double>(t1 - t0).count();
    run.last_lost = array.lastCellsLost();
    run.snapshot = array.snapshot();
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t bytes = 256 * 1024;
    unsigned reps = 8;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageFatal("missing value for " + flag);
            return argv[++i];
        };
        if (flag == "--bytes")
            bytes = parseUint(flag, value());
        else if (flag == "--reps")
            reps = static_cast<unsigned>(parseUint(flag, value()));
        else if (flag == "--smoke") {
            bytes = 16 * 1024;
            reps = 2;
        } else {
            usageFatal("unknown option " + flag);
        }
    }
    if (bytes == 0 || reps == 0)
        usageFatal("--bytes and --reps must be >= 1");

    bench::banner("P3", "retention kernel throughput (cells/sec)");
    std::cout << "array: " << bytes << " bytes (" << bytes * 8
              << " cells), " << reps << " reps per scenario\n\n";

    const RetentionKernel kernels[] = {RetentionKernel::Reference,
                                       RetentionKernel::Fast,
                                       RetentionKernel::FastCached};
    const char *scenarios[] = {"powerup_resolve", "decay_survival",
                               "droop"};

    std::string artefact = "{\n  \"bench\": \"retention_microbench\",\n"
                           "  \"bytes\": " +
                           std::to_string(bytes) +
                           ",\n  \"reps\": " + std::to_string(reps) +
                           ",\n  \"scenarios\": [\n";
    TextTable table({"scenario", "kernel", "cells/s", "speedup vs ref"});
    bool first_scenario = true;
    for (const char *scenario : scenarios) {
        artefact += std::string(first_scenario ? "" : ",\n") +
                    "    {\"scenario\": \"" + scenario +
                    "\", \"kernels\": [\n";
        first_scenario = false;
        ScenarioRun reference;
        bool first_kernel = true;
        for (RetentionKernel kernel : kernels) {
            KernelScope scope(kernel);
            const ScenarioRun run = runScenario(scenario, bytes, reps);
            if (kernel == RetentionKernel::Reference) {
                reference = run;
            } else if (run.snapshot != reference.snapshot ||
                       run.last_lost != reference.last_lost) {
                std::cout << "ERROR: " << toString(kernel)
                          << " diverges from reference on " << scenario
                          << "!\n";
                return 1;
            }
            const double cells_per_sec =
                run.seconds > 0.0
                    ? static_cast<double>(bytes) * 8.0 * reps /
                          run.seconds
                    : 0.0;
            const double ref_cps =
                reference.seconds > 0.0
                    ? static_cast<double>(bytes) * 8.0 * reps /
                          reference.seconds
                    : 0.0;
            const double speedup =
                ref_cps > 0.0 ? cells_per_sec / ref_cps : 0.0;
            table.addRow({scenario, toString(kernel),
                          TextTable::num(cells_per_sec / 1e6, 1) + "M",
                          TextTable::num(speedup, 1) + "x"});
            artefact += std::string(first_kernel ? "" : ",\n") +
                        "      {\"kernel\": \"" + toString(kernel) +
                        "\", \"seconds\": " + jsonNum(run.seconds) +
                        ", \"cells_per_second\": " +
                        jsonNum(cells_per_sec) +
                        ", \"speedup_vs_reference\": " +
                        jsonNum(speedup) + "}";
            first_kernel = false;
        }
        artefact += "\n    ]}";
    }
    artefact += "\n  ]\n}\n";

    std::cout << table.render();
    std::cout << "(all kernels byte-identical per scenario)\n";
    bench::saveArtefact("BENCH_retention.json", artefact);
    return 0;
}

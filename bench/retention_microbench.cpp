/**
 * @file
 * P3 — retention hot-path throughput (BENCH_retention.json artefact)
 * and the SoA plane-size scaling curve (BENCH_plane.json artefact).
 *
 * Times the three state transitions the attack stack spends its life
 * in — full power-up resolution, unpowered decay, and a supply droop —
 * under each retention kernel (reference scalar path, fast threshold
 * path, fast with cached raw planes), reporting cells/sec and the
 * speedup over the reference path. The kernels are bit-exact by
 * construction; this bench re-asserts it by comparing every final
 * snapshot and loss count against the reference run before reporting.
 *
 * With --sizes the bench instead sweeps the bit-sliced plane kernels
 * across array sizes (64 KiB to 256 MiB is the intended curve) and
 * writes BENCH_plane.json. The reference kernel is only timed and
 * byte-compared in full at small sizes (it is ~100x slower, so a
 * 256 MiB reference run would dominate the bench); at larger sizes
 * correctness is asserted by re-deriving a deterministic sample of
 * cells with the exact scalar model math and comparing against the
 * fast-kernel plane. Every size also runs the same transition on
 * --jobs concurrent threads (shared fingerprint cache) and asserts the
 * snapshots are byte-identical across threads.
 *
 * With --overhead the bench instead times the decay transition with and
 * without a telemetry::WorkerScope installed (interleaved rounds,
 * best-of-N each side) and fails when the instrumented side is more
 * than --overhead-threshold slower — the guard that keeps the live
 * counter instrumentation honest (BENCH_overhead.json artefact).
 *
 * Flags:
 *   --bytes N     array size in bytes       (default 262144)
 *   --reps N      timed repetitions         (default 8)
 *   --sizes A,B   plane-scaling mode over the listed sizes (bytes)
 *   --jobs N      threads for the cross-thread identity check (default 2)
 *   --overhead    counter-overhead guard mode (decay kernel)
 *   --overhead-rounds N      interleaved rounds per side (default 7)
 *   --overhead-threshold F   max allowed slowdown fraction (default 0.02)
 *   --smoke       CI preset: small array, few reps
 */

#include <charconv>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "sram/fingerprint_cache.hh"
#include "sram/memory_array.hh"
#include "sram/retention_kernel.hh"
#include "telemetry/counters.hh"

using namespace voltboot;

namespace
{

constexpr uint64_t kBenchSeed = 0x7e57;
constexpr uint64_t kBenchArrayId = 3;
constexpr uint8_t kFillPattern = 0xA5;
const Volt kVdd(1.0);
const Seconds kDecayOff = Seconds::milliseconds(20);
const Temperature kDecayTemp = Temperature::celsius(-110);
const Volt kDroopV = Volt::millivolts(250);

/** Largest size at which the reference kernel is timed and compared in
 * full; beyond this the sampled scalar check takes over. */
constexpr size_t kFullReferenceMaxBytes = size_t{1} << 20;

/** Cells per sampled verification pass. */
constexpr uint64_t kSampleCells = 4096;

std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

[[noreturn]] void
usageFatal(const std::string &detail)
{
    std::cerr << "retention_microbench: " << detail << "\n"
              << "usage: retention_microbench [--bytes N] [--reps N] "
                 "[--sizes A,B,...] [--jobs N] [--overhead] "
                 "[--overhead-rounds N] [--overhead-threshold F] "
                 "[--smoke]\n";
    std::exit(2);
}

uint64_t
parseUint(const std::string &flag, const std::string &text)
{
    uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size() ||
        text.empty())
        usageFatal("malformed value '" + text + "' for " + flag);
    return value;
}

double
parseFraction(const std::string &flag, const std::string &text)
{
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size() ||
        text.empty() || value <= 0.0 || value >= 1.0)
        usageFatal("malformed fraction '" + text + "' for " + flag +
                   " (want a value in (0, 1))");
    return value;
}

std::vector<size_t>
parseSizeList(const std::string &flag, const std::string &text)
{
    std::vector<size_t> sizes;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t comma = text.find(',', pos);
        const std::string part =
            text.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        sizes.push_back(parseUint(flag, part));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return sizes;
}

/** RAII: select a kernel, restore the previous one on scope exit. */
class KernelScope
{
  public:
    explicit KernelScope(RetentionKernel k) : saved_(retentionKernel())
    {
        setRetentionKernel(k);
    }
    ~KernelScope() { setRetentionKernel(saved_); }

  private:
    RetentionKernel saved_;
};

struct ScenarioRun
{
    double seconds = 0.0;
    uint64_t last_lost = 0;
    std::vector<uint8_t> snapshot;
};

/**
 * One timed scenario under the currently selected kernel. The array is
 * rebuilt per run (same seed => same silicon), warmed with one untimed
 * iteration so FastCached pays its plane-build cost outside the timed
 * region, mirroring steady-state campaign use.
 */
ScenarioRun
runScenario(const std::string &scenario, size_t bytes, unsigned reps)
{
    SramArray array("bench", bytes, kBenchSeed, kBenchArrayId);
    array.powerUp(kVdd);
    array.fill(kFillPattern);

    const auto iteration = [&]() {
        if (scenario == "powerup_resolve") {
            array.powerDown();
            array.powerUp(kVdd); // everything resolves to fingerprint
        } else if (scenario == "decay_survival") {
            array.powerDown();
            array.powerUp(kVdd, kDecayOff, kDecayTemp);
        } else { // droop
            array.droopTo(kDroopV);
        }
    };

    iteration(); // warm-up: fingerprint + cached planes
    ScenarioRun run;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < reps; ++r)
        iteration();
    const auto t1 = std::chrono::steady_clock::now();
    run.seconds = std::chrono::duration<double>(t1 - t0).count();
    run.last_lost = array.lastCellsLost();
    run.snapshot = array.snapshot();
    return run;
}

/** Snapshot after one single decay (or droop) transition from a filled
 * array — the state the sampled scalar check predicts per cell. */
std::vector<uint8_t>
singleTransitionSnapshot(const std::string &scenario, size_t bytes)
{
    SramArray array("plane", bytes, kBenchSeed, kBenchArrayId);
    array.powerUp(kVdd); // nonce 1
    array.fill(kFillPattern);
    if (scenario == "decay_survival") {
        array.powerDown();
        array.powerUp(kVdd, kDecayOff, kDecayTemp); // nonce 2
    } else {
        array.droopTo(kDroopV); // still nonce 1
    }
    return array.snapshot();
}

/**
 * Verify a deterministic stride of cells of a fast-kernel single
 * transition against the exact scalar model math (cellParams +
 * survives* + powerUpState) — the same per-cell evaluation the
 * reference kernel runs, without paying a full-array reference pass.
 */
bool
sampledVerify(const std::string &scenario, size_t bytes)
{
    const std::vector<uint8_t> snap =
        singleTransitionSnapshot(scenario, bytes);
    const RetentionModel model(RetentionConfig::sram6t(),
                               CellRng(kBenchSeed, kBenchArrayId));
    const uint64_t nbits = static_cast<uint64_t>(bytes) * 8;
    const uint64_t stride = std::max<uint64_t>(1, nbits / kSampleCells);
    const bool decay = scenario == "decay_survival";
    const uint64_t nonce = decay ? 2 : 1;
    for (uint64_t cell = 0; cell < nbits; cell += stride) {
        const CellParams p = model.cellParams(cell);
        const bool survives =
            decay ? model.survivesUnpowered(p, kDecayOff, kDecayTemp)
                  : model.survivesAtVoltage(p, kDroopV);
        const bool pattern = (kFillPattern >> (cell % 8)) & 1;
        const bool expected =
            survives ? pattern : model.powerUpState(cell, p, nonce);
        const bool got = (snap[cell / 8] >> (cell % 8)) & 1;
        if (got != expected) {
            std::cout << "ERROR: sampled scalar check failed at cell "
                      << cell << " (" << scenario << ", " << bytes
                      << " bytes)\n";
            return false;
        }
    }
    return true;
}

/** Run the decay transition on @p jobs concurrent threads (shared
 * fingerprint cache) and require byte-identical snapshots. */
bool
crossJobsIdentical(size_t bytes, unsigned jobs)
{
    std::vector<std::vector<uint8_t>> snaps(jobs);
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (unsigned j = 0; j < jobs; ++j)
        threads.emplace_back([&, j] {
            snaps[j] = singleTransitionSnapshot("decay_survival", bytes);
        });
    for (auto &t : threads)
        t.join();
    for (unsigned j = 1; j < jobs; ++j) {
        if (snaps[j] != snaps[0]) {
            std::cout << "ERROR: thread " << j
                      << " snapshot diverges at " << bytes << " bytes\n";
            return false;
        }
    }
    return true;
}

/**
 * Counter-overhead guard: time the decay transition under the fast
 * kernel with and without a telemetry::WorkerScope installed. Rounds
 * interleave the two sides so frequency drift hits both equally, and
 * each side keeps its *minimum* round time — the noise-robust estimator
 * for "how fast can this code go". Fails when the instrumented minimum
 * is more than @p threshold slower (one-sided: instrumented being
 * faster is measurement noise, never a failure).
 */
int
runOverheadGuard(size_t bytes, unsigned reps, unsigned rounds,
                 double threshold)
{
    bench::banner("P3c", "telemetry counter overhead (decay kernel)");
    std::cout << "array: " << bytes << " bytes, " << reps
              << " reps per round, best of " << rounds
              << " interleaved rounds, threshold "
              << jsonNum(threshold * 100) << "%\n\n";

    KernelScope scope(RetentionKernel::Fast);
    runScenario("decay_survival", bytes, reps); // warm fingerprint cache

    double plain_s = 0.0, instr_s = 0.0;
    std::vector<uint8_t> plain_snap, instr_snap;
    for (unsigned r = 0; r < rounds; ++r) {
        const ScenarioRun plain =
            runScenario("decay_survival", bytes, reps);
        if (r == 0 || plain.seconds < plain_s)
            plain_s = plain.seconds;
        plain_snap = plain.snapshot;

        telemetry::WorkerScope telemetry_scope;
        const ScenarioRun instr =
            runScenario("decay_survival", bytes, reps);
        if (r == 0 || instr.seconds < instr_s)
            instr_s = instr.seconds;
        instr_snap = instr.snapshot;
    }
    if (instr_snap != plain_snap) {
        std::cout << "ERROR: instrumented run diverges from plain run!\n";
        return 1;
    }

    const double cells = static_cast<double>(bytes) * 8.0 * reps;
    const double plain_cps = plain_s > 0.0 ? cells / plain_s : 0.0;
    const double instr_cps = instr_s > 0.0 ? cells / instr_s : 0.0;
    const double overhead =
        plain_s > 0.0 ? (instr_s - plain_s) / plain_s : 0.0;
    const bool pass = overhead <= threshold;

    TextTable table({"side", "seconds", "cells/s"});
    table.addRow({"uninstrumented", jsonNum(plain_s),
                  TextTable::num(plain_cps / 1e6, 1) + "M"});
    table.addRow({"instrumented", jsonNum(instr_s),
                  TextTable::num(instr_cps / 1e6, 1) + "M"});
    std::cout << table.render();
    std::cout << "overhead: " << jsonNum(overhead * 100) << "% ("
              << (pass ? "PASS" : "FAIL") << ", limit "
              << jsonNum(threshold * 100) << "%)\n";

    std::string artefact =
        "{\n  \"bench\": \"telemetry_overhead\",\n"
        "  \"scenario\": \"decay_survival\",\n"
        "  \"bytes\": " + std::to_string(bytes) +
        ",\n  \"reps\": " + std::to_string(reps) +
        ",\n  \"rounds\": " + std::to_string(rounds) +
        ",\n  \"uninstrumented_seconds\": " + jsonNum(plain_s) +
        ",\n  \"instrumented_seconds\": " + jsonNum(instr_s) +
        ",\n  \"uninstrumented_cells_per_second\": " + jsonNum(plain_cps) +
        ",\n  \"instrumented_cells_per_second\": " + jsonNum(instr_cps) +
        ",\n  \"overhead_fraction\": " + jsonNum(overhead) +
        ",\n  \"threshold\": " + jsonNum(threshold) +
        ",\n  \"pass\": " + (pass ? "true" : "false") + "\n}\n";
    bench::saveArtefact("BENCH_overhead.json", artefact);
    return pass ? 0 : 1;
}

int
runPlaneScaling(const std::vector<size_t> &sizes, unsigned reps,
                unsigned jobs)
{
    bench::banner("P3b", "SoA plane-size scaling (cells/sec vs bytes)");
    std::cout << "sizes:";
    for (size_t s : sizes)
        std::cout << " " << s;
    std::cout << "  reps: " << reps << "  jobs: " << jobs << "\n\n";

    // Keep the shared power-up planes of the largest die cached so
    // per-scenario array rebuilds don't re-derive them inside the
    // bench loop (three bit planes per die = 3 * bytes).
    size_t max_bytes = 0;
    for (size_t s : sizes)
        max_bytes = std::max(max_bytes, s);
    setFingerprintCacheCapacity(
        std::max<size_t>(size_t{512} << 20, 4 * 3 * max_bytes));

    const char *scenarios[] = {"powerup_resolve", "decay_survival",
                               "droop"};
    TextTable table(
        {"bytes", "scenario", "kernel", "cells/s", "vs ref", "verify"});
    std::string artefact = "{\n  \"bench\": \"plane_scaling\",\n"
                           "  \"reps\": " +
                           std::to_string(reps) +
                           ",\n  \"jobs\": " + std::to_string(jobs) +
                           ",\n  \"sizes\": [\n";
    bool first_size = true;
    for (size_t bytes : sizes) {
        const bool full_ref = bytes <= kFullReferenceMaxBytes;
        artefact += std::string(first_size ? "" : ",\n") +
                    "    {\"bytes\": " + std::to_string(bytes) +
                    ", \"verify\": \"" +
                    (full_ref ? "full" : "sampled") +
                    "\", \"scenarios\": [\n";
        first_size = false;
        bool first_scenario = true;
        for (const char *scenario : scenarios) {
            artefact += std::string(first_scenario ? "" : ",\n") +
                        "      {\"scenario\": \"" + scenario +
                        "\", \"kernels\": [\n";
            first_scenario = false;
            ScenarioRun reference;
            bool first_kernel = true;
            for (RetentionKernel kernel :
                 {RetentionKernel::Reference, RetentionKernel::Fast,
                  RetentionKernel::FastCached}) {
                if (kernel == RetentionKernel::Reference && !full_ref)
                    continue;
                KernelScope scope(kernel);
                const ScenarioRun run =
                    runScenario(scenario, bytes, reps);
                if (kernel == RetentionKernel::Reference) {
                    reference = run;
                } else if (full_ref &&
                           (run.snapshot != reference.snapshot ||
                            run.last_lost != reference.last_lost)) {
                    std::cout << "ERROR: " << toString(kernel)
                              << " diverges from reference on "
                              << scenario << " at " << bytes
                              << " bytes!\n";
                    return 1;
                }
                const double cells_per_sec =
                    run.seconds > 0.0
                        ? static_cast<double>(bytes) * 8.0 * reps /
                              run.seconds
                        : 0.0;
                const double ref_cps =
                    full_ref && reference.seconds > 0.0
                        ? static_cast<double>(bytes) * 8.0 * reps /
                              reference.seconds
                        : 0.0;
                const double speedup =
                    ref_cps > 0.0 ? cells_per_sec / ref_cps : 0.0;
                table.addRow(
                    {std::to_string(bytes), scenario, toString(kernel),
                     TextTable::num(cells_per_sec / 1e6, 1) + "M",
                     full_ref ? TextTable::num(speedup, 1) + "x" : "-",
                     full_ref ? "full" : "sampled"});
                artefact +=
                    std::string(first_kernel ? "" : ",\n") +
                    "        {\"kernel\": \"" + toString(kernel) +
                    "\", \"seconds\": " + jsonNum(run.seconds) +
                    ", \"cells_per_second\": " + jsonNum(cells_per_sec) +
                    ", \"speedup_vs_reference\": " +
                    (full_ref && kernel != RetentionKernel::Reference
                         ? jsonNum(speedup)
                         : std::string("null")) +
                    "}";
                first_kernel = false;
            }
            // Large planes: the reference never ran in full, so check a
            // deterministic sample against the exact scalar math.
            bool verified = true;
            if (!full_ref &&
                std::string(scenario) != "powerup_resolve") {
                KernelScope scope(RetentionKernel::Fast);
                verified = sampledVerify(scenario, bytes);
                if (!verified)
                    return 1;
            }
            artefact += "\n      ], \"verified\": ";
            artefact += verified ? "true" : "false";
            artefact += "}";
        }
        bool jobs_ok = true;
        {
            KernelScope scope(RetentionKernel::Fast);
            jobs_ok = crossJobsIdentical(bytes, jobs);
            if (!jobs_ok)
                return 1;
        }
        artefact += "\n    ], \"cross_jobs_identical\": ";
        artefact += jobs_ok ? "true" : "false";
        artefact += "}";
    }
    artefact += "\n  ]\n}\n";

    std::cout << table.render();
    std::cout << "(small sizes byte-compared against the reference "
                 "kernel in full;\n large sizes checked against exact "
                 "scalar math on a "
              << kSampleCells << "-cell sample;\n every size "
              << "byte-identical across " << jobs
              << " concurrent threads)\n";
    bench::saveArtefact("BENCH_plane.json", artefact);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t bytes = 256 * 1024;
    unsigned reps = 8;
    unsigned jobs = 2;
    bool overhead = false;
    unsigned overhead_rounds = 7;
    double overhead_threshold = 0.02;
    std::vector<size_t> sizes;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageFatal("missing value for " + flag);
            return argv[++i];
        };
        if (flag == "--bytes")
            bytes = parseUint(flag, value());
        else if (flag == "--reps")
            reps = static_cast<unsigned>(parseUint(flag, value()));
        else if (flag == "--sizes")
            sizes = parseSizeList(flag, value());
        else if (flag == "--jobs")
            jobs = static_cast<unsigned>(parseUint(flag, value()));
        else if (flag == "--overhead")
            overhead = true;
        else if (flag == "--overhead-rounds")
            overhead_rounds =
                static_cast<unsigned>(parseUint(flag, value()));
        else if (flag == "--overhead-threshold")
            overhead_threshold = parseFraction(flag, value());
        else if (flag == "--smoke") {
            bytes = 16 * 1024;
            reps = 2;
        } else {
            usageFatal("unknown option " + flag);
        }
    }
    if (bytes == 0 || reps == 0 || jobs == 0)
        usageFatal("--bytes, --reps and --jobs must be >= 1");
    if (overhead_rounds == 0)
        usageFatal("--overhead-rounds must be >= 1");
    for (size_t s : sizes)
        if (s == 0)
            usageFatal("--sizes entries must be >= 1");
    if (overhead && !sizes.empty())
        usageFatal("--overhead and --sizes are mutually exclusive");

    if (overhead)
        return runOverheadGuard(bytes, reps, overhead_rounds,
                                overhead_threshold);
    if (!sizes.empty())
        return runPlaneScaling(sizes, reps, jobs);

    bench::banner("P3", "retention kernel throughput (cells/sec)");
    std::cout << "array: " << bytes << " bytes (" << bytes * 8
              << " cells), " << reps << " reps per scenario\n\n";

    const RetentionKernel kernels[] = {RetentionKernel::Reference,
                                       RetentionKernel::Fast,
                                       RetentionKernel::FastCached};
    const char *scenarios[] = {"powerup_resolve", "decay_survival",
                               "droop"};

    std::string artefact = "{\n  \"bench\": \"retention_microbench\",\n"
                           "  \"bytes\": " +
                           std::to_string(bytes) +
                           ",\n  \"reps\": " + std::to_string(reps) +
                           ",\n  \"scenarios\": [\n";
    TextTable table({"scenario", "kernel", "cells/s", "speedup vs ref"});
    bool first_scenario = true;
    for (const char *scenario : scenarios) {
        artefact += std::string(first_scenario ? "" : ",\n") +
                    "    {\"scenario\": \"" + scenario +
                    "\", \"kernels\": [\n";
        first_scenario = false;
        ScenarioRun reference;
        bool first_kernel = true;
        for (RetentionKernel kernel : kernels) {
            KernelScope scope(kernel);
            const ScenarioRun run = runScenario(scenario, bytes, reps);
            if (kernel == RetentionKernel::Reference) {
                reference = run;
            } else if (run.snapshot != reference.snapshot ||
                       run.last_lost != reference.last_lost) {
                std::cout << "ERROR: " << toString(kernel)
                          << " diverges from reference on " << scenario
                          << "!\n";
                return 1;
            }
            const double cells_per_sec =
                run.seconds > 0.0
                    ? static_cast<double>(bytes) * 8.0 * reps /
                          run.seconds
                    : 0.0;
            const double ref_cps =
                reference.seconds > 0.0
                    ? static_cast<double>(bytes) * 8.0 * reps /
                          reference.seconds
                    : 0.0;
            const double speedup =
                ref_cps > 0.0 ? cells_per_sec / ref_cps : 0.0;
            table.addRow({scenario, toString(kernel),
                          TextTable::num(cells_per_sec / 1e6, 1) + "M",
                          TextTable::num(speedup, 1) + "x"});
            artefact += std::string(first_kernel ? "" : ",\n") +
                        "      {\"kernel\": \"" + toString(kernel) +
                        "\", \"seconds\": " + jsonNum(run.seconds) +
                        ", \"cells_per_second\": " +
                        jsonNum(cells_per_sec) +
                        ", \"speedup_vs_reference\": " +
                        jsonNum(speedup) + "}";
            first_kernel = false;
        }
        artefact += "\n    ]}";
    }
    artefact += "\n  ]\n}\n";

    std::cout << table.render();
    std::cout << "(all kernels byte-identical per scenario)\n";
    bench::saveArtefact("BENCH_retention.json", artefact);
    return 0;
}

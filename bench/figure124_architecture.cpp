/**
 * @file
 * Figures 1, 2 and 4 — the paper's illustrative diagrams, regenerated
 * from the model rather than drawn:
 *
 *  - Figure 1 (the 6T cell): the cell-physics parameters the simulation
 *    actually uses — DRV distribution, retention constants, power-up
 *    statistics — with a DRV histogram sampled from simulated silicon;
 *  - Figure 2 (SoC power domains): the block diagram of each platform's
 *    domains and what hangs off them, printed from the live wiring;
 *  - Figure 4 (the PMIC): regulator type, nominal level, decoupling and
 *    surge characteristics per rail, from the device database.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "sim/stats.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Figures 1/2/4",
                  "cell physics, power domains and PMIC, from the model");

    // --- Figure 1: the cell the attack bends ---
    std::cout << "\n[Figure 1] 6T-cell model parameters:\n";
    const RetentionConfig cell = RetentionConfig::sram6t();
    TextTable f1({"Parameter", "Value"});
    f1.addRow({"DRV mean / sigma",
               TextTable::num(cell.drv_mean.millivolts(), 0) + " mV / " +
                   TextTable::num(cell.drv_sigma.millivolts(), 0) +
                   " mV"});
    f1.addRow({"DRV clamp",
               TextTable::num(cell.drv_min.millivolts(), 0) + " - " +
                   TextTable::num(cell.drv_max.millivolts(), 0) + " mV"});
    f1.addRow({"median unpowered retention @ 25 degC",
               TextTable::num(
                   std::exp(cell.log_median_retention_ref) * 1e6, 2) +
                   " us"});
    f1.addRow({"Arrhenius Ea/k", TextTable::num(cell.arrhenius_kelvin, 0) +
                                     " K (~0.32 eV)"});
    f1.addRow({"metastable power-up cells",
               TextTable::pct(cell.metastable_fraction, 0)});
    std::cout << f1.render();

    // Sampled DRV histogram from one simulated die.
    const RetentionModel model(cell, CellRng(0x2711, 1));
    Histogram drv(0.1, 0.4, 12);
    for (uint64_t c = 0; c < 50000; ++c)
        drv.add(model.cellParams(c).drv.volts());
    std::cout << "\nDRV distribution across 50k simulated cells (V):\n"
              << drv.render(40);

    // --- Figures 2 & 4: the power tree per platform ---
    for (const SocConfig &cfg : SocConfig::allPlatforms()) {
        Soc soc(cfg);
        std::cout << "\n[Figure 2] " << cfg.board_name << " ("
                  << cfg.pmic_name << "):\n";
        for (const auto &dom : soc.board().pmic().domains()) {
            std::cout << "  " << toString(dom->regulatorKind()) << " -> "
                      << dom->name() << " @ "
                      << TextTable::num(dom->nominalVoltage().volts(), 2)
                      << " V\n";
            for (const MemoryArray *load : dom->loads()) {
                std::cout << "      |- " << load->name() << " (";
                if (load->sizeBytes() >= 1024)
                    std::cout << load->sizeBytes() / 1024 << " KB)\n";
                else
                    std::cout << load->sizeBytes() << " B)\n";
            }
        }
        std::cout << "  test pads: ";
        for (const auto &pad : soc.board().testPads())
            std::cout << pad.label << "->" << pad.domain_name << "  ";
        std::cout << "\n";

        std::cout << "[Figure 4] rail electricals:\n";
        TextTable f4({"Rail", "Regulator", "Nominal", "Decap",
                      "Surge / retention current"});
        for (const auto &dom : soc.board().pmic().domains()) {
            const DomainLoadProfile &p = dom->loadProfile();
            f4.addRow({dom->name(), toString(dom->regulatorKind()),
                       TextTable::num(dom->nominalVoltage().volts(), 2) +
                           " V",
                       TextTable::num(p.decap.microfarads(), 0) + " uF",
                       TextTable::num(p.surge_current.milliamps(), 0) +
                           " mA / " +
                           TextTable::num(
                               p.retention_current.milliamps(), 0) +
                           " mA"});
        }
        std::cout << f4.render();
    }

    std::cout << "\npaper: Figure 2 divides the SoC into core / memory / "
                 "I/O domains; Figure 4 shows\nBUCKs driving fluctuating "
                 "loads and LDOs the quiet ones, with decoupling on "
                 "every\nrail — the pins Volt Boot clips onto.\n";
    return 0;
}

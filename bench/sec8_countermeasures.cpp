/**
 * @file
 * Section 8 — countermeasure survey, runnable.
 *
 * For each surveyed defence, runs the complete Volt Boot pipeline
 * against a BCM2711-class device with the defence active and reports
 * whether the attacker recovered the cache-resident secret.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/countermeasures.hh"
#include "soc/soc_config.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Section 8", "countermeasures vs the Volt Boot attack");

    TextTable table({"Defence", "Attack outcome", "Secret recovered",
                     "Notes"});

    // The baseline and the survey.
    for (Countermeasure c : {
             Countermeasure::None,
             Countermeasure::PurgeOnShutdown,
             Countermeasure::BootSramReset,
             Countermeasure::TrustZone,
             Countermeasure::AuthenticatedBoot,
             Countermeasure::EliminateDomainSeparation,
         }) {
        const CountermeasureResult r =
            evaluateCountermeasure(SocConfig::bcm2711(), c);
        table.addRow({toString(c),
                      r.attack_succeeded ? "SUCCEEDS" : "defeated",
                      TextTable::pct(r.recovered_fraction), r.notes});
    }

    // The orderly-shutdown variant shows why purge-on-shutdown is
    // useless against a plug-pull: it works only when the attacker is
    // polite enough to shut down cleanly.
    const CountermeasureResult polite = evaluateCountermeasure(
        SocConfig::bcm2711(), Countermeasure::PurgeOnShutdown,
        /*orderly_shutdown=*/true);
    table.addRow({"purge-on-shutdown (orderly halt)",
                  polite.attack_succeeded ? "SUCCEEDS" : "defeated",
                  TextTable::pct(polite.recovered_fraction),
                  "hook only runs on a clean shutdown"});

    std::cout << table.render();
    std::cout
        << "\npaper: purging residual memory fails against abrupt "
           "disconnects; resetting SRAM at\nstartup, TrustZone NS "
           "enforcement and mandated authenticated boot are effective;\n"
           "eliminating power domain separation works but is "
           "impractical.\n";
    return 0;
}

/**
 * @file
 * Figure 5/6 — the attack execution steps and probe points.
 *
 * Runs the full Volt Boot procedure on each platform and prints the
 * narrated trace: identify domain/pad, attach matched probe, power cycle
 * with the domain riding through on the probe, reboot attacker code,
 * extract. This is the paper's Figure 5 flow with Figure 6's per-board
 * probe points.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Figure 5/6", "attack execution steps per platform");

    for (const SocConfig &cfg : SocConfig::allPlatforms()) {
        std::cout << "\n--- " << cfg.board_name << " (" << cfg.soc_name
                  << ") ---\n";
        Soc soc(cfg);
        soc.powerOn();

        // A victim workload so there is something to steal.
        BareMetalRunner runner(soc);
        const uint64_t base = cfg.dram_base + 0x40000;
        runner.runOn(0, workloads::patternStore(base, 4096, 0xAA));

        VoltBootAttack attack(soc);
        const AttackOutcome out = attack.execute();
        if (out.rebooted_into_attacker_code) {
            if (cfg.jtag_enabled)
                attack.dumpIram();
            else
                attack.dumpL1Way(0, L1Ram::DData, 0);
        }
        for (const std::string &line : attack.trace())
            std::cout << "  " << line << "\n";
        if (!out.failure_reason.empty())
            std::cout << "  FAILURE: " << out.failure_reason << "\n";
    }

    std::cout << "\npaper: probe points TP15 (Pi 4), PP58 (Pi 3), SH13 "
                 "(i.MX53 QSB); four steps:\n"
                 "identify domain pins -> attach matched probe -> power "
                 "cycle & reboot -> extract and analyse.\n";
    return 0;
}

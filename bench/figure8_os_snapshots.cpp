/**
 * @file
 * Figure 8 — "Snapshots of the caches after executing Volt Boot on a
 * system running a general application" (Section 7.1.2).
 *
 * A Linux-class system runs an application that stores the 0xAA pattern
 * in a large data structure and reads it back. Volt Boot strikes; the
 * d-cache dump shows the expected pattern and grepping the i-cache dump
 * finds all of the application's instructions in consecutive address
 * space.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/linux_model.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Figure 8",
                  "cache snapshots under an OS (0xAA pattern app)");

    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    LinuxModel linux_model(soc);
    linux_model.boot();

    // The user application: stores 0xAA into a large structure and
    // reads it back (run as a real program so its instructions cache).
    const uint64_t heap = soc.config().dram_base + 0x40000;
    Program app = Assembler::assemble(
        workloads::patternStore(heap, 16 * 1024, 0xAA));
    app.load_address = soc.config().dram_base + 0x3000;
    linux_model.runProgramOnCore(0, app);

    VoltBootAttack attack(soc);
    if (!attack.execute().rebooted_into_attacker_code) {
        std::cout << "attack failed\n";
        return 1;
    }

    const MemoryImage dcache = attack.dumpL1(0, L1Ram::DData);
    const MemoryImage icache = attack.dumpL1(0, L1Ram::IData);
    const size_t line_bits = soc.config().l1d.line_bytes * 8;

    std::cout << "d-cache way 0 impression (banded pattern = 0xAA "
                 "data):\n"
              << bench::asciiBitmap(
                     attack.dumpL1Way(0, L1Ram::DData, 0), line_bits, 12)
              << "\n";

    // Quantify: pattern bytes present in the d-cache dump.
    size_t aa = 0;
    for (uint8_t b : dcache.bytes())
        aa += b == 0xAA;
    TextTable table({"Check", "Result", "Paper"});
    table.addRow({"0xAA bytes in d-cache dump",
                  std::to_string(aa) + " / " +
                      std::to_string(dcache.sizeBytes()),
                  "d-cache contains the expected pattern"});

    // Grep the i-cache for the app's machine code, line by line, and
    // check the hits cover the program contiguously.
    const std::vector<uint8_t> code = app.bytes();
    size_t lines_found = 0, lines_total = 0;
    for (size_t off = 0; off + 64 <= code.size(); off += 64) {
        ++lines_total;
        const std::span<const uint8_t> needle(code.data() + off, 64);
        lines_found += icache.contains(needle);
    }
    table.addRow({"app code lines found in i-cache",
                  std::to_string(lines_found) + " / " +
                      std::to_string(lines_total),
                  "all instructions found (consecutive)"});
    std::cout << table.render();

    bench::saveArtefact("figure8_dcache_way0.pbm",
                        attack.dumpL1Way(0, L1Ram::DData, 0)
                            .toPbm(line_bits));
    bench::saveArtefact("figure8_icache_way0.pbm",
                        attack.dumpL1Way(0, L1Ram::IData, 0)
                            .toPbm(line_bits));

    std::cout << "\npaper: the d-cache contains the expected 0xAA "
                 "pattern and the i-cache contains all\nthe software's "
                 "instructions within consecutive address spaces.\n";
    return 0;
}

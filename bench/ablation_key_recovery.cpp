/**
 * @file
 * Ablation A3 — AES key recovery from cache dumps vs bit-error rate.
 *
 * A CaSE-style victim keeps an AES-128 key schedule in locked cache
 * lines. The bench compares the attacker's end game under (a) Volt Boot
 * (error-free dump: the keyfinder locates the schedule immediately) and
 * (b) synthetic dumps at increasing bit-error rates standing in for
 * cold-boot-grade corruption: the schedule scan degrades and then fails,
 * reproducing the paper's argument that SRAM's bistable errors defeat
 * cold-boot-style key reconstruction while Volt Boot needs no
 * correction at all.
 */

#include <iostream>
#include <optional>
#include <utility>

#include "bench_util.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "crypto/onchip_crypto.hh"
#include "keyfind/engine.hh"
#include "os/baremetal.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    bench::banner("Ablation A3",
                  "AES key recovery from L1D dumps vs bit-error rate");

    const std::vector<uint8_t> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                      0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                      0x09, 0xcf, 0x4f, 0x3c};

    // --- (a) the real attack: Volt Boot on a CaSE victim ---
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    Cache &l1d = soc.memory().l1d(0);
    l1d.invalidateAll();
    l1d.setEnabled(true);
    std::vector<uint8_t> binary(256, 0x90);
    const uint64_t base = soc.config().dram_base + 0x40000;
    CaseExecution cas(l1d, base, binary, key);

    VoltBootAttack attack(soc);
    attack.execute();
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);

    // Scan-only engine run: bit-identical to the old KeyFinder sweep,
    // but through the batched residual filter.
    keyfind::KeyRecoveryConfig ecfg;
    ecfg.run_correction = false;
    const keyfind::KeyRecoveryEngine engine(ecfg);
    const auto best = [&](const MemoryImage &image)
        -> std::optional<KeyCandidate> {
        auto report = engine.recover(image);
        if (report.scan_hits.empty())
            return std::nullopt;
        return std::move(report.scan_hits.front());
    };

    const auto hit = best(dump);
    std::cout << "Volt Boot dump (" << dump.sizeBytes()
              << " bytes): " << (hit ? "KEY RECOVERED" : "no key") << "\n";
    if (hit) {
        std::cout << "  key bytes: ";
        for (uint8_t b : hit->key)
            std::printf("%02x", b);
        std::cout << "\n  schedule bit errors: " << hit->bit_errors
                  << "  (matches planted key: "
                  << (hit->key == key ? "yes" : "NO") << ")\n";
    }

    // --- (b) degradation sweep: inject bit errors, rescan ---
    std::cout << "\ncold-boot-grade corruption sweep (10 trials per "
                 "rate, 10% scan tolerance):\n";
    TextTable table({"Bit-error rate", "Key found", "Exact key",
                     "Mean schedule bit errors"});
    for (double ber : {0.0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50}) {
        int found = 0, exact = 0;
        double err_sum = 0;
        const int trials = 10;
        for (int t = 0; t < trials; ++t) {
            Rng rng(1000 + static_cast<uint64_t>(ber * 1e6) + t);
            std::vector<uint8_t> noisy = dump.bytes();
            for (auto &b : noisy)
                for (int bit = 0; bit < 8; ++bit)
                    if (rng.uniform() < ber)
                        b ^= 1u << bit;
            const auto cand = best(MemoryImage(std::move(noisy)));
            if (cand) {
                ++found;
                exact += cand->key == key;
                err_sum += static_cast<double>(cand->bit_errors);
            }
        }
        table.addRow({TextTable::pct(ber, 1),
                      std::to_string(found) + "/" + std::to_string(trials),
                      std::to_string(exact) + "/" + std::to_string(trials),
                      found ? TextTable::num(err_sum / found, 1) : "-"});
    }
    std::cout << table.render();

    std::cout << "\ntakeaway: Volt Boot's error-free dumps make key "
                 "theft trivial; bistable SRAM errors\n(2x polarity, no "
                 "ground-state bias) defeat schedule scanning well "
                 "before the ~50% error\nof an actual SRAM cold boot.\n";
    return 0;
}

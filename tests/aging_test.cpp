/**
 * @file
 * Tests for the data-imprinting (circuit aging) model — the Section 9.2
 * attack family the paper contrasts Volt Boot against: recovering
 * long-stored values from power-up state requires ~a decade of imprint
 * for even modest accuracy.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sram/memory_array.hh"

namespace voltboot
{
namespace
{

/** Imprint @p years on a fixed pattern, then measure how much of the
 * pattern the power-up state reveals (fraction of bits matching). */
double
imprintRecovery(double years, uint64_t seed = 0xA6E)
{
    SramArray array("aged", 8192, seed, 1);
    array.powerUp(Volt(0.8));
    // Secret: alternating pattern, held for `years` of uptime.
    array.fill(0xC3);
    array.age(years);

    // Device is retired/discarded; attacker powers it up fresh and
    // correlates the power-up state with candidate secrets.
    array.powerDown();
    array.powerUp(Volt(0.8), Seconds(3600.0), Temperature::celsius(25.0));

    size_t match_bits = 0;
    for (size_t i = 0; i < array.sizeBytes(); ++i) {
        const uint8_t v = array.readByte(i);
        match_bits += 8 - std::popcount(static_cast<uint8_t>(v ^ 0xC3));
    }
    return static_cast<double>(match_bits) / array.sizeBits();
}

TEST(Aging, UnagedArrayRevealsNothing)
{
    // Without age(), the power-up state is uncorrelated with history.
    SramArray array("fresh", 8192, 1, 1);
    array.powerUp(Volt(0.8));
    array.fill(0xC3);
    array.powerDown();
    array.powerUp(Volt(0.8), Seconds(3600.0), Temperature::celsius(25.0));
    size_t match_bits = 0;
    for (size_t i = 0; i < array.sizeBytes(); ++i)
        match_bits += 8 - std::popcount(
                              static_cast<uint8_t>(array.readByte(i) ^
                                                   0xC3));
    EXPECT_NEAR(static_cast<double>(match_bits) / array.sizeBits(), 0.5,
                0.02);
}

TEST(Aging, RecoveryGrowsWithImprintYears)
{
    const double r1 = imprintRecovery(1.0);
    const double r10 = imprintRecovery(10.0);
    const double r40 = imprintRecovery(40.0);
    EXPECT_LT(r1, r10);
    EXPECT_LT(r10, r40);
}

TEST(Aging, DecadeGivesOnlyModestRecovery)
{
    // Section 9.2: "require data to remain in the same SRAM cells with
    // the same value for over a decade to have even modest recovery."
    const double r10 = imprintRecovery(10.0);
    EXPECT_GT(r10, 0.55); // detectable...
    EXPECT_LT(r10, 0.75); // ...but far from an error-free dump
}

TEST(Aging, OpposingImprintsCancel)
{
    SramArray array("flip", 2048, 7, 1);
    array.powerUp(Volt(0.8));
    array.fill(0xFF);
    array.age(5.0);
    array.fill(0x00);
    array.age(5.0);
    // Equal time at both values: net imprint zero.
    for (uint64_t bit = 0; bit < 64; ++bit)
        EXPECT_DOUBLE_EQ(array.imprintYears(bit), 0.0);
}

TEST(Aging, RequiresPowerAndPositiveDuration)
{
    SramArray array("t", 256, 9, 1);
    EXPECT_THROW(array.age(1.0), PanicError); // unpowered
    array.powerUp(Volt(0.8));
    EXPECT_THROW(array.age(0.0), FatalError);
    EXPECT_THROW(array.age(-1.0), FatalError);
}

TEST(Aging, VoltBootNeedsNoAgingAtAll)
{
    // The contrast the paper draws: imprinting needs a decade; the
    // probe-held power cycle reproduces everything instantly.
    SramArray array("vb", 2048, 11, 1);
    array.powerUp(Volt(0.8));
    array.fill(0xC3);
    array.retainAt(Volt(0.8));
    array.resumePowered(Volt(0.8));
    for (size_t i = 0; i < array.sizeBytes(); ++i)
        ASSERT_EQ(array.readByte(i), 0xC3);
}

} // namespace
} // namespace voltboot

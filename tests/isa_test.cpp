/**
 * @file
 * Tests for the vb64 ISA: assembler encoding, disassembler round trips,
 * interpreter semantics, flags, barriers, privilege checks and the
 * register-file-in-SRAM wiring.
 */

#include <gtest/gtest.h>

#include <map>

#include "isa/assembler.hh"
#include "isa/cpu.hh"
#include "isa/insn.hh"
#include "sim/logging.hh"
#include "sram/memory_array.hh"

namespace voltboot
{
namespace
{

/** Simple flat memory port for CPU tests (no caches). */
class FlatPort : public MemoryPort
{
  public:
    explicit FlatPort(size_t size = 1 << 16) : mem_(size, 0) {}

    void
    load(uint64_t addr, const std::vector<uint8_t> &bytes)
    {
        for (size_t i = 0; i < bytes.size(); ++i)
            mem_.at(addr + i) = bytes[i];
    }

    uint32_t
    fetch32(uint64_t addr) override
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(mem_.at(addr + i)) << (8 * i);
        return v;
    }

    uint64_t
    read64(uint64_t addr) override
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(mem_.at(addr + i)) << (8 * i);
        return v;
    }

    void
    write64(uint64_t addr, uint64_t value) override
    {
        for (int i = 0; i < 8; ++i)
            mem_.at(addr + i) = static_cast<uint8_t>(value >> (8 * i));
    }

    uint8_t read8(uint64_t addr) override { return mem_.at(addr); }
    void
    write8(uint64_t addr, uint8_t value) override
    {
        mem_.at(addr) = value;
    }

    void zeroCacheLine(uint64_t addr) override { zva_calls.push_back(addr); }
    void
    cleanInvalidateLine(uint64_t addr) override
    {
        civac_calls.push_back(addr);
    }
    void invalidateAllICache() override { ++iallu_calls; }
    uint64_t
    ramIndexRead(uint64_t descriptor) override
    {
        last_descriptor = descriptor;
        return 0x1234567890abcdefull;
    }
    void
    setCacheEnables(bool d, bool i) override
    {
        dcache_on = d;
        icache_on = i;
    }

    std::vector<uint8_t> mem_;
    std::vector<uint64_t> zva_calls, civac_calls;
    int iallu_calls = 0;
    uint64_t last_descriptor = 0;
    bool dcache_on = false, icache_on = false;
};

/** Harness bundling a CPU with SRAM register files and a flat port. */
class CpuHarness
{
  public:
    CpuHarness()
        : xregs("x", 31 * 8, 1, 100), vregs("v", 32 * 16, 1, 101),
          cpu(0, port, xregs, vregs)
    {
        xregs.powerUp(Volt(0.8));
        vregs.powerUp(Volt(0.8));
        // Registers power up to garbage; zero them for deterministic
        // arithmetic tests.
        xregs.fill(0);
        vregs.fill(0);
    }

    /** Assemble, load at 0, run to halt; returns steps. */
    uint64_t
    run(const std::string &src, uint64_t max_steps = 100000)
    {
        const Program p = Assembler::assemble(src);
        port.load(0, p.bytes());
        cpu.reset(0);
        return cpu.run(max_steps);
    }

    FlatPort port;
    SramArray xregs, vregs;
    Cpu cpu;
};

TEST(Assembler, EncodesAndDisassemblesEveryMnemonic)
{
    const std::string src = R"(
        nop
        movz x1, #0x1234
        movk x1, #0xabcd, lsl #16
        mov x2, x1
        add x3, x2, #5
        sub x3, x3, #1
        add x4, x3, x2
        sub x4, x4, x3
        and x5, x4, x3
        orr x5, x5, x4
        eor x5, x5, x5
        mul x6, x4, x3
        lsl x6, x6, #3
        lsr x6, x6, #2
        ldr x7, [x6, #8]
        str x7, [x6, #16]
        ldrb x8, [x6]
        strb x8, [x6, #1]
        cmp x7, x8
        cmp x7, #42
        subs x9, x7, x8
        dc zva, x6
        dc civac, x6
        ic iallu
        dsb sy
        isb
        ramindex x9, x7
        mrs x10, currentel
        mrs x11, sctlr_el1
        msr sctlr_el1, x11
        vdup v3, #0xaa
        vins v3[1], x9
        vread x12, v3[0]
        hlt
    )";
    const Program p = Assembler::assemble(src);
    EXPECT_EQ(p.words.size(), 34u);
    // Every instruction disassembles to something other than .word.
    for (uint32_t w : p.words)
        EXPECT_EQ(disassemble(w).rfind(".word", 0), std::string::npos)
            << disassemble(w);
}

TEST(Assembler, LabelsAndBranches)
{
    const Program p = Assembler::assemble(R"(
        movz x0, #3
    loop:
        sub x0, x0, #1
        cbnz x0, loop
        b end
        nop
    end:
        hlt
    )");
    EXPECT_EQ(p.words.size(), 6u);
    // cbnz at word 2 branches to word 1: offset -1.
    EXPECT_EQ(decode::imm19(p.words[2]), -1);
    // b at word 3 branches to word 5: offset +2.
    EXPECT_EQ(decode::imm19(p.words[3]), 2);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = Assembler::assemble(
        "// header comment\n\n    nop ; trailing\n    hlt\n");
    EXPECT_EQ(p.words.size(), 2u);
}

TEST(Assembler, WordDirectiveAndOrg)
{
    const Program p = Assembler::assemble(
        "    .org 0x2000\n    .word 0xdeadbeef\n    hlt\n");
    EXPECT_EQ(p.load_address, 0x2000u);
    EXPECT_EQ(p.words[0], 0xdeadbeefu);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        Assembler::assemble("    nop\n    frobnicate x1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
    EXPECT_THROW(Assembler::assemble("    movz x1, #0x10000\n"),
                 FatalError);
    EXPECT_THROW(Assembler::assemble("    b nowhere\n"), FatalError);
    EXPECT_THROW(Assembler::assemble("    ldr x1, [x2, #4096]\n"),
                 FatalError);
    EXPECT_THROW(Assembler::assemble("    add x31, x0, #1\n"), FatalError);
}

TEST(Assembler, ProgramBytesAreLittleEndian)
{
    const Program p = Assembler::assemble("    .word 0x11223344\n");
    EXPECT_EQ(p.bytes(),
              (std::vector<uint8_t>{0x44, 0x33, 0x22, 0x11}));
}

TEST(Cpu, MovAndArithmetic)
{
    CpuHarness h;
    h.run(R"(
        movz x1, #100
        movz x2, #7
        add x3, x1, x2
        sub x4, x1, x2
        mul x5, x1, x2
        add x6, x1, #23
        hlt
    )");
    EXPECT_EQ(h.cpu.x(3), 107u);
    EXPECT_EQ(h.cpu.x(4), 93u);
    EXPECT_EQ(h.cpu.x(5), 700u);
    EXPECT_EQ(h.cpu.x(6), 123u);
}

TEST(Cpu, MovzMovkBuild64BitConstants)
{
    CpuHarness h;
    h.run(R"(
        movz x1, #0x1111
        movk x1, #0x2222, lsl #16
        movk x1, #0x3333, lsl #32
        movk x1, #0x4444, lsl #48
        hlt
    )");
    EXPECT_EQ(h.cpu.x(1), 0x4444333322221111ull);
}

TEST(Cpu, LogicAndShifts)
{
    CpuHarness h;
    h.run(R"(
        movz x1, #0xff00
        movz x2, #0x0ff0
        and x3, x1, x2
        orr x4, x1, x2
        eor x5, x1, x2
        lsl x6, x1, #4
        lsr x7, x1, #8
        hlt
    )");
    EXPECT_EQ(h.cpu.x(3), 0x0f00u);
    EXPECT_EQ(h.cpu.x(4), 0xfff0u);
    EXPECT_EQ(h.cpu.x(5), 0xf0f0u);
    EXPECT_EQ(h.cpu.x(6), 0xff000u);
    EXPECT_EQ(h.cpu.x(7), 0xffu);
}

TEST(Cpu, XzrReadsZeroAndDiscardsWrites)
{
    CpuHarness h;
    h.run(R"(
        movz x1, #5
        add x2, x1, xzr
        hlt
    )");
    EXPECT_EQ(h.cpu.x(2), 5u);
    EXPECT_EQ(h.cpu.x(kZeroReg), 0u);
}

TEST(Cpu, LoadsAndStores)
{
    CpuHarness h;
    h.run(R"(
        movz x1, #0x8000
        movz x2, #0xbeef
        str x2, [x1]
        ldr x3, [x1]
        strb x2, [x1, #16]
        ldrb x4, [x1, #16]
        hlt
    )");
    EXPECT_EQ(h.cpu.x(3), 0xbeefu);
    EXPECT_EQ(h.cpu.x(4), 0xefu);
}

TEST(Cpu, LoopWithCbnz)
{
    CpuHarness h;
    const uint64_t steps = h.run(R"(
        movz x1, #10
        movz x2, #0
    loop:
        add x2, x2, #3
        sub x1, x1, #1
        cbnz x1, loop
        hlt
    )");
    EXPECT_EQ(h.cpu.x(2), 30u);
    EXPECT_GT(steps, 30u);
}

TEST(Cpu, ConditionalBranches)
{
    CpuHarness h;
    h.run(R"(
        movz x1, #5
        movz x2, #9
        cmp x1, x2
        b.lt less
        movz x3, #0
        b end
    less:
        movz x3, #1
    end:
        hlt
    )");
    EXPECT_EQ(h.cpu.x(3), 1u);
}

TEST(Cpu, SignedComparisonUsesFlagsCorrectly)
{
    CpuHarness h;
    // x1 = -1 (all ones), x2 = 1: signed lt must hold.
    h.run(R"(
        movz x1, #0
        sub x1, x1, #1
        movz x2, #1
        cmp x1, x2
        b.lt ok
        movz x3, #0
        b end
    ok:
        movz x3, #1
    end:
        hlt
    )");
    EXPECT_EQ(h.cpu.x(3), 1u);
}

TEST(Cpu, BlAndRet)
{
    CpuHarness h;
    h.run(R"(
        movz x1, #1
        bl func
        movz x2, #2
        hlt
    func:
        movz x3, #3
        ret
    )");
    EXPECT_EQ(h.cpu.x(1), 1u);
    EXPECT_EQ(h.cpu.x(2), 2u);
    EXPECT_EQ(h.cpu.x(3), 3u);
}

TEST(Cpu, VectorRegisterOps)
{
    CpuHarness h;
    h.run(R"(
        vdup v5, #0xaa
        movz x1, #0x1234
        vins v7[1], x1
        vread x2, v5[0]
        vread x3, v7[1]
        hlt
    )");
    EXPECT_EQ(h.cpu.x(2), 0xaaaaaaaaaaaaaaaaull);
    EXPECT_EQ(h.cpu.x(3), 0x1234u);
    EXPECT_EQ(h.cpu.v(5, 1), 0xaaaaaaaaaaaaaaaaull);
}

TEST(Cpu, SystemRegisters)
{
    CpuHarness h;
    h.run(R"(
        mrs x1, currentel
        movz x2, #0x1004
        msr sctlr_el1, x2
        mrs x3, sctlr_el1
        mrs x4, coreid
        hlt
    )");
    EXPECT_EQ(h.cpu.x(1), 3u << 2); // EL3 at reset
    EXPECT_EQ(h.cpu.x(3), 0x1004u);
    EXPECT_EQ(h.cpu.x(4), 0u);
    EXPECT_TRUE(h.port.dcache_on);
    EXPECT_TRUE(h.port.icache_on);
}

TEST(Cpu, CacheMaintenanceReachesThePort)
{
    CpuHarness h;
    h.run(R"(
        movz x1, #0x1000
        dc zva, x1
        dc civac, x1
        ic iallu
        hlt
    )");
    EXPECT_EQ(h.port.zva_calls, (std::vector<uint64_t>{0x1000}));
    EXPECT_EQ(h.port.civac_calls, (std::vector<uint64_t>{0x1000}));
    EXPECT_EQ(h.port.iallu_calls, 1);
}

TEST(Cpu, RamIndexNeedsBarrierPair)
{
    CpuHarness h;
    // Without dsb;isb the data register interface returns garbage.
    h.run(R"(
        movz x1, #7
        ramindex x2, x1
        hlt
    )");
    EXPECT_EQ(h.cpu.x(2), 0xdeadbeefdeadbeefull);

    h.run(R"(
        movz x1, #7
        dsb sy
        isb
        ramindex x2, x1
        hlt
    )");
    EXPECT_EQ(h.cpu.x(2), 0x1234567890abcdefull);
    EXPECT_EQ(h.port.last_descriptor, 7u);
}

TEST(Cpu, IsbAloneIsNotEnough)
{
    CpuHarness h;
    h.run(R"(
        movz x1, #7
        isb
        ramindex x2, x1
        hlt
    )");
    EXPECT_EQ(h.cpu.x(2), 0xdeadbeefdeadbeefull);
}

TEST(Cpu, RamIndexBelowEl3Faults)
{
    CpuHarness h;
    const Program p = Assembler::assemble(R"(
        dsb sy
        isb
        ramindex x2, x1
        hlt
    )");
    h.port.load(0, p.bytes());
    h.cpu.reset(0);
    h.cpu.setEl(1); // a rebooted rich OS, not the secure monitor
    h.cpu.run(100);
    EXPECT_EQ(h.cpu.fault(), CpuFault::PrivilegeViolation);
}

TEST(Cpu, WritingReadOnlySysregFaults)
{
    CpuHarness h;
    h.run("    msr currentel, x1\n    hlt\n");
    EXPECT_EQ(h.cpu.fault(), CpuFault::PrivilegeViolation);
}

TEST(Cpu, ResetPreservesRegisterFiles)
{
    CpuHarness h;
    h.run(R"(
        vdup v9, #0x77
        movz x20, #0xabc
        hlt
    )");
    // A warm reboot: PC and flags reset, register contents do not.
    h.cpu.reset(0);
    EXPECT_EQ(h.cpu.v(9, 0), 0x7777777777777777ull);
    EXPECT_EQ(h.cpu.x(20), 0xabcu);
}

TEST(Cpu, RunStopsAtMaxSteps)
{
    CpuHarness h;
    const Program p = Assembler::assemble("spin:\n    b spin\n");
    h.port.load(0, p.bytes());
    h.cpu.reset(0);
    const uint64_t steps = h.cpu.run(500);
    EXPECT_EQ(steps, 500u);
    EXPECT_FALSE(h.cpu.halted());
}

TEST(Cpu, RegisterFilesLiveInSram)
{
    CpuHarness h;
    h.run("    vdup v0, #0xff\n    movz x5, #0x1234\n    hlt\n");
    // The architectural state is literally bytes in the backing arrays.
    EXPECT_EQ(h.vregs.readWord64(0), 0xffffffffffffffffull);
    EXPECT_EQ(h.xregs.readWord64(5 * 8), 0x1234u);
}

} // namespace
} // namespace voltboot

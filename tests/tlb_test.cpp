/**
 * @file
 * Tests for the TLB, page table, MMU and BTB models, including their
 * behaviour as Volt Boot targets (retention through probed power cycles,
 * RAMINDEX visibility).
 */

#include <gtest/gtest.h>

#include "core/attack.hh"
#include "mem/btb.hh"
#include "mem/memory_system.hh"
#include "mem/tlb.hh"
#include "os/linux_model.hh"
#include "sim/logging.hh"
#include "soc/soc.hh"
#include "sram/memory_array.hh"

namespace voltboot
{
namespace
{

class TlbHarness
{
  public:
    TlbHarness()
        : mem_("mem", 1 << 20, 1, 60), region_(mem_, 0),
          tlb_store_("tlb", 64 * 16, 1, 61)
    {
        mem_.powerUp(Volt(1.1));
        tlb_store_.powerUp(Volt(0.8));
        table_.emplace(region_, /*root=*/0x10000,
                       /*alloc_base=*/0x11000);
        tlb_.emplace("DTLB", 64, 4, tlb_store_);
        tlb_->invalidateAll();
        mmu_.emplace(*tlb_, *table_);
    }

    DramArray mem_;
    MemoryRegion region_;
    SramArray tlb_store_;
    std::optional<PageTable> table_;
    std::optional<Tlb> tlb_;
    std::optional<Mmu> mmu_;
};

TEST(PageTable, MapAndWalk)
{
    TlbHarness h;
    h.table_->map(0x7f0000, 0x40000, /*writable=*/true);
    const auto e = h.table_->walk(0x7f0123);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->ppn, 0x40000u / 4096);
    EXPECT_TRUE(e->writable);
    EXPECT_FALSE(h.table_->walk(0x800000).has_value());
}

TEST(PageTable, DistinctL1RegionsAllocateDistinctTables)
{
    TlbHarness h;
    h.table_->map(0x0000000, 0x1000, false);
    EXPECT_EQ(h.table_->tablesAllocated(), 1u);
    h.table_->map(0x0001000, 0x2000, false); // same L2 table
    EXPECT_EQ(h.table_->tablesAllocated(), 1u);
    h.table_->map(0x10000000, 0x3000, false); // new L1 slot
    EXPECT_EQ(h.table_->tablesAllocated(), 2u);
    // All three still resolve.
    EXPECT_EQ(h.table_->walk(0x0000000)->ppn, 1u);
    EXPECT_EQ(h.table_->walk(0x0001000)->ppn, 2u);
    EXPECT_EQ(h.table_->walk(0x10000000)->ppn, 3u);
}

TEST(PageTable, RejectsUnalignedRoots)
{
    TlbHarness h;
    EXPECT_THROW(PageTable(h.region_, 0x10001, 0x12000), FatalError);
}

TEST(Tlb, MissThenHit)
{
    TlbHarness h;
    EXPECT_FALSE(h.tlb_->lookup(0x5000, 1).has_value());
    EXPECT_EQ(h.tlb_->misses(), 1u);
    TlbEntry e;
    e.vpn = 0x5000 / 4096;
    e.ppn = 0x9000 / 4096;
    e.asid = 1;
    e.valid = true;
    h.tlb_->insert(0x5000, e);
    const auto hit = h.tlb_->lookup(0x5000, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ppn, 0x9000u / 4096);
    EXPECT_EQ(h.tlb_->hits(), 1u);
}

TEST(Tlb, AsidsSeparateAddressSpaces)
{
    TlbHarness h;
    TlbEntry e;
    e.vpn = 1;
    e.ppn = 7;
    e.asid = 1;
    e.valid = true;
    h.tlb_->insert(0x1000, e);
    EXPECT_TRUE(h.tlb_->lookup(0x1000, 1).has_value());
    EXPECT_FALSE(h.tlb_->lookup(0x1000, 2).has_value());
}

TEST(Tlb, InvalidateClearsLookupsNotEntryRam)
{
    TlbHarness h;
    TlbEntry e;
    e.vpn = 3;
    e.ppn = 0xAB;
    e.asid = 0;
    e.valid = true;
    h.tlb_->insert(3 * 4096, e);
    h.tlb_->invalidateAll();
    EXPECT_FALSE(h.tlb_->lookup(3 * 4096, 0).has_value());
    // The ppn word survives in the entry RAM (the Volt Boot point).
    bool found = false;
    for (size_t way = 0; way < 4 && !found; ++way)
        for (size_t set = 0; set < 16 && !found; ++set)
            found = h.tlb_->debugReadWord(way, set, 1) == 0xAB;
    EXPECT_TRUE(found);
}

TEST(Tlb, SetConflictsEvictRoundRobin)
{
    TlbHarness h;
    // 16 sets: vpns congruent mod 16 conflict. Fill one set beyond its
    // 4 ways and check older entries fall out.
    for (uint64_t i = 0; i < 6; ++i) {
        TlbEntry e;
        e.vpn = i * 16;
        e.ppn = 100 + i;
        e.asid = 0;
        e.valid = true;
        h.tlb_->insert(e.vpn * 4096, e);
    }
    size_t alive = 0;
    for (uint64_t i = 0; i < 6; ++i)
        alive += h.tlb_->lookup(i * 16 * 4096, 0).has_value();
    EXPECT_EQ(alive, 4u);
}

TEST(Tlb, ParseDumpRoundTrips)
{
    TlbHarness h;
    // Make the entry RAM deterministic first: insert over a clean slate.
    h.tlb_store_.fill(0);
    for (uint64_t i = 0; i < 8; ++i) {
        TlbEntry e;
        e.vpn = 0x100 + i;
        e.ppn = 0x200 + i;
        e.asid = 42;
        e.valid = true;
        h.tlb_->insert(e.vpn * 4096, e);
    }
    const auto parsed = Tlb::parseDump(h.tlb_->dumpAll());
    EXPECT_EQ(parsed.size(), 8u);
    for (const auto &e : parsed) {
        EXPECT_EQ(e.asid, 42u);
        EXPECT_EQ(e.ppn - 0x200, e.vpn - 0x100);
    }
}

TEST(Mmu, TranslatesThroughTlbAndWalks)
{
    TlbHarness h;
    h.table_->map(0x7f0000, 0x40000, true);
    h.mmu_->setEnabled(true);
    h.mmu_->setAsid(5);
    const auto pa = h.mmu_->translate(0x7f0ABC);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x40ABCu);
    // Second translation hits the TLB.
    const uint64_t misses = h.tlb_->misses();
    EXPECT_EQ(*h.mmu_->translate(0x7f0DEF), 0x40DEFu);
    EXPECT_EQ(h.tlb_->misses(), misses);
    // Unmapped VA faults.
    EXPECT_FALSE(h.mmu_->translate(0x9990000).has_value());
    // Disabled MMU is identity.
    h.mmu_->setEnabled(false);
    EXPECT_EQ(*h.mmu_->translate(0x12345), 0x12345u);
}

TEST(Btb, RecordsAndPredicts)
{
    SramArray store("btb", 256 * 16, 1, 62);
    store.powerUp(Volt(0.8));
    Btb btb("BTB", 256, store);
    btb.invalidateAll();
    btb.recordBranch(0x1000, 0x2000);
    EXPECT_EQ(btb.predict(0x1000), 0x2000u);
    EXPECT_EQ(btb.predict(0x1004), 0u);
    // Aliasing PCs overwrite (direct-mapped).
    btb.recordBranch(0x1000 + 256 * 4, 0x3000);
    EXPECT_EQ(btb.predict(0x1000), 0u);
}

TEST(Btb, ParseDumpRecoversControlFlow)
{
    SramArray store("btb", 256 * 16, 1, 63);
    store.powerUp(Volt(0.8));
    store.fill(0);
    Btb btb("BTB", 256, store);
    btb.recordBranch(0x1100, 0x1180);
    btb.recordBranch(0x2200, 0x2000);
    const auto entries = Btb::parseDump(btb.dumpAll());
    ASSERT_EQ(entries.size(), 2u);
}

TEST(Btb, RejectsBadShape)
{
    SramArray store("btb", 100 * 16, 1, 64);
    store.powerUp(Volt(0.8));
    EXPECT_THROW(Btb("BTB", 100, store), FatalError); // not pow2
    EXPECT_THROW(Btb("BTB", 512, store), FatalError); // too small
}

// --- integration: the microarchitectural RAMs as Volt Boot targets ---

TEST(SocMicroArch, BtbLearnsVictimBranches)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    soc.btb(0).invalidateAll();

    Program p = Assembler::assemble(R"(
        movz x1, #5
    loop:
        sub x1, x1, #1
        cbnz x1, loop
        hlt
    )");
    p.load_address = 0x1000;
    soc.loadProgram(p);
    soc.runCore(0, 0x1000, 1000);
    // The loop branch at 0x1008 targeting 0x1004 is in the BTB.
    EXPECT_EQ(soc.btb(0).predict(0x1008), 0x1004u);
}

TEST(SocMicroArch, TlbAndBtbSurviveProbedPowerCycle)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    // Victim populates both structures.
    soc.dtlb(0).invalidateAll();
    soc.btb(0).invalidateAll();
    PageTable table(*soc.memory().mainMemory(), 0x100000, 0x101000);
    Mmu mmu(soc.dtlb(0), table);
    mmu.setEnabled(true);
    mmu.setAsid(9);
    table.map(0x7f000000, 0x40000, true);
    table.map(0x7f001000, 0x41000, true);
    ASSERT_TRUE(mmu.translate(0x7f000123).has_value());
    ASSERT_TRUE(mmu.translate(0x7f001456).has_value());
    soc.btb(0).recordBranch(0x8000, 0x9000);

    soc.attachProbe("TP15", VoltageProbe{Volt(0.8), Amp(3), Ohm(0.05)});
    soc.powerCycle(Seconds::milliseconds(500));

    // Post-cycle: the attacker parses the raw entry RAM and recovers the
    // victim's address-space layout and control flow.
    const auto tlb_entries = Tlb::parseDump(soc.dtlb(0).dumpAll());
    bool saw_mapping = false;
    for (const auto &e : tlb_entries)
        saw_mapping |= e.vpn == 0x7f000000ull / 4096 &&
                       e.ppn == 0x40000ull / 4096 && e.asid == 9;
    EXPECT_TRUE(saw_mapping);
    EXPECT_EQ(soc.btb(0).predict(0x8000), 0x9000u);
}

TEST(SocMicroArch, MultiProcessTlbLeaksEveryAddressSpace)
{
    // A realistic OS shares the DTLB across processes via ASIDs. After a
    // probed power cycle, the TLB dump exposes the address-space layout
    // of EVERY recently scheduled process, not just the last one.
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    // Boot-like cache setup plus the multi-process schedule.
    for (size_t core = 0; core < soc.coreCount(); ++core) {
        soc.memory().l1i(core).invalidateAll();
        soc.memory().l1d(core).invalidateAll();
        soc.port(core).setCacheEnables(true, true);
    }
    LinuxModel linux_model(soc);
    const auto spaces = linux_model.runMultiProcessWorkload(
        /*processes=*/3, /*pages_each=*/3, /*timeslices=*/9);
    ASSERT_EQ(spaces.size(), 3u);

    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.execute().rebooted_into_attacker_code);
    const auto entries = Tlb::parseDump(attack.dumpDtlb(0));

    for (const auto &space : spaces) {
        size_t found = 0;
        for (const auto &[va, pa] : space.va_pa_pages) {
            for (const auto &e : entries)
                found += e.asid == space.asid && e.vpn == va / 4096 &&
                         e.ppn == pa / 4096;
        }
        EXPECT_EQ(found, space.va_pa_pages.size())
            << "asid " << space.asid;
    }
}

TEST(SocMicroArch, RamIndexReachesTlbAndBtb)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    soc.btb(0).recordBranch(0x4000, 0x5000);

    RamIndexDescriptor d{RamIndexDescriptor::kBtb, 0,
                         (0x4000 >> 2) & 255, 1};
    EXPECT_EQ(soc.port(0).ramIndexRead(d.encode()), 0x5000u);

    soc.dtlb(0).invalidateAll();
    TlbEntry e;
    e.vpn = 0x77;
    e.ppn = 0x88;
    e.asid = 1;
    e.valid = true;
    soc.dtlb(0).insert(e.vpn * 4096, e);
    // Find it through the debug descriptor space.
    bool found = false;
    for (size_t way = 0; way < 4 && !found; ++way) {
        for (size_t set = 0; set < 16 && !found; ++set) {
            RamIndexDescriptor td{RamIndexDescriptor::kDTlb, way, set, 1};
            found = soc.port(0).ramIndexRead(td.encode()) == 0x88;
        }
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace voltboot
